//! Concurrency stress: N threads hammer `compile_batch` on overlapping
//! suites through one shared cache, and every result must be identical
//! to the serial reference while the cache counters stay internally
//! consistent.

use reqisc::benchsuite::mini_suite_capped;
use reqisc::compiler::{metrics, Compiler, Metrics, Pipeline};
use reqisc::microarch::Coupling;
use reqisc::qcircuit::Circuit;

#[test]
fn overlapping_batches_match_serial_metrics_and_stats_stay_consistent() {
    let mut compiler = Compiler::new();
    compiler.hs.search.sweep.restarts = 2;
    compiler.hs.search.sweep.max_sweeps = 150;
    let programs: Vec<Circuit> = mini_suite_capped(5)
        .into_iter()
        .take(6)
        .map(|b| b.circuit)
        .collect();
    assert!(programs.len() >= 4, "need a few programs to overlap");
    let pipelines = [Pipeline::Qiskit, Pipeline::TketSu4, Pipeline::ReqiscEff, Pipeline::ReqiscFull];

    // Serial reference on a *separate* compiler (equal options) so the
    // shared instance starts stone cold for the stress phase.
    let mut reference = Compiler::new();
    reference.hs.search.sweep.restarts = 2;
    reference.hs.search.sweep.max_sweeps = 150;
    let serial: Vec<(Circuit, Metrics)> = programs
        .iter()
        .flat_map(|c| pipelines.iter().map(move |&p| (c, p)))
        .map(|(c, p)| {
            let out = reference.compile_uncached(c, p);
            let m = metrics(&out, &Coupling::xy(1.0));
            (out, m)
        })
        .collect();

    // Stress: 4 hammer threads, each running 3 batches over overlapping
    // slices of the suite (every slice shares programs with its
    // neighbours), all against one shared compiler/cache. Inner batches
    // add their own workers on top.
    let n = programs.len();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let compiler = &compiler;
            let programs = &programs;
            let pipelines = &pipelines;
            let serial = &serial;
            scope.spawn(move || {
                for round in 0..3usize {
                    let lo = (t * n / 4).min(n - 2);
                    let hi = ((t + 2) * n / 4 + round).clamp(lo + 2, n);
                    let slice = &programs[lo..hi];
                    let jobs: Vec<(&Circuit, Pipeline)> = slice
                        .iter()
                        .flat_map(|c| pipelines.iter().map(move |&p| (c, p)))
                        .collect();
                    let outs = compiler.compile_batch(&jobs, 2);
                    for (k, out) in outs.iter().enumerate() {
                        let prog_idx = lo + k / pipelines.len();
                        let pipe_idx = k % pipelines.len();
                        let (ref_out, ref_m) = &serial[prog_idx * pipelines.len() + pipe_idx];
                        assert_eq!(
                            out, ref_out,
                            "thread {t} round {round}: job {k} diverged from serial"
                        );
                        assert_eq!(&metrics(out, &Coupling::xy(1.0)), ref_m);
                    }
                }
            });
        }
    });

    let s = compiler.cache_stats();
    assert!(s.programs.is_consistent(), "programs: {}", s.programs);
    assert!(s.synthesis.is_consistent(), "synthesis: {}", s.synthesis);
    assert!(s.pulses.is_consistent(), "pulses: {}", s.pulses);
    // Overlapping suites guarantee real sharing: far more lookups than
    // distinct jobs, and a strictly positive hit count.
    let distinct_jobs = (programs.len() * pipelines.len()) as u64;
    assert!(
        s.programs.lookups() > distinct_jobs,
        "expected overlapping lookups: {} vs {distinct_jobs}",
        s.programs.lookups()
    );
    assert!(s.programs.hits > 0, "overlap produced no hits: {}", s.programs);
    // Every distinct job was computed at most once per (rare) concurrent
    // first-miss race; inserts can never exceed misses.
    assert!(s.programs.inserts <= s.programs.misses);
}
