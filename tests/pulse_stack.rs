//! Integration: compiled SU(4) circuits are *executable* — every distinct
//! SU(4) instruction a program needs has a verified genAshN pulse program
//! on representative hardware couplings (the full Fig. 2 workflow).

use reqisc::benchsuite::mini_suite;
use reqisc::compiler::{Compiler, Pipeline};
use reqisc::microarch::{realize_gate, solve_with_mirroring, Coupling, DEFAULT_MIRROR_THRESHOLD};
use reqisc::qcircuit::Gate;
use reqisc::qmath::{weyl_coords, WeylCoord};

#[test]
fn compiled_programs_are_pulse_realizable() {
    let compiler = Compiler::new();
    let cps = [Coupling::xy(1.0), Coupling::xx(1.0)];
    // A few representative programs keep runtime bounded.
    for b in mini_suite().into_iter().take(5) {
        let out = compiler.compile(&b.circuit, Pipeline::ReqiscEff);
        // Collect distinct Weyl classes.
        let mut classes: Vec<WeylCoord> = Vec::new();
        for g in out.gates() {
            if !g.is_2q() {
                continue;
            }
            let w = match g {
                Gate::Su4(_, _, m) => weyl_coords(m).unwrap(),
                Gate::Can(_, _, w) => *w,
                other => weyl_coords(&other.matrix()).unwrap(),
            };
            if !classes.iter().any(|k| k.approx_eq(&w, 1e-7)) {
                classes.push(w);
            }
        }
        assert!(!classes.is_empty(), "{}: no 2Q instructions?", b.name);
        for cp in &cps {
            for w in &classes {
                let sol = solve_with_mirroring(cp, w, DEFAULT_MIRROR_THRESHOLD)
                    .unwrap_or_else(|e| panic!("{}: {w} unsolvable: {e}", b.name));
                assert!(
                    sol.pulse.residual < 1e-6,
                    "{}: pulse residual {} for {w}",
                    b.name,
                    sol.pulse.residual
                );
            }
        }
    }
}

#[test]
fn exact_gate_realization_with_corrections() {
    // Full Algorithm 1 (with 1Q corrections) on the workhorse gates under
    // both couplings.
    use reqisc::qmath::gates as qg;
    for cp in [Coupling::xy(1.0), Coupling::xx(1.0)] {
        for (name, u) in [
            ("cnot", qg::cnot()),
            ("cz", qg::cz()),
            ("iswap", qg::iswap()),
            ("sqisw", qg::sqisw()),
            ("b", qg::b_gate()),
            ("swap", qg::swap()),
        ] {
            let r = realize_gate(&cp, &u).unwrap_or_else(|e| panic!("{name}: {e}"));
            let rec = r.reconstruct(&cp);
            assert!(
                rec.approx_eq(&u, 1e-6),
                "{name}: reconstruction residual {:.2e}",
                rec.max_dist(&u)
            );
        }
    }
}

#[test]
fn near_identity_instructions_come_back_mirrored() {
    // QFT's smallest controlled-phase rotations are near-identity; the
    // microarchitecture must mirror them rather than demand unbounded
    // amplitude.
    let qft = reqisc::benchsuite::generators::qft(8);
    let compiler = Compiler::new();
    let out = compiler.compile(&qft, Pipeline::ReqiscEff);
    let cp = Coupling::xy(1.0);
    let mut mirrored = 0;
    for g in out.gates() {
        if !g.is_2q() {
            continue;
        }
        let w = weyl_coords(&g.matrix()).unwrap();
        if w.l1_norm() < 1e-9 {
            continue;
        }
        let sol = solve_with_mirroring(&cp, &w, DEFAULT_MIRROR_THRESHOLD).unwrap();
        if sol.swapped {
            mirrored += 1;
            // Mirrored pulses stay amplitude-bounded.
            assert!(sol.pulse.params.penalty() < 40.0);
        }
    }
    assert!(mirrored > 0, "QFT-8 should contain near-identity rotations");
}
