//! Integration: compiled SU(4) circuits are *executable* — every distinct
//! SU(4) instruction a program needs has a verified genAshN pulse program
//! on representative hardware couplings (the full Fig. 2 workflow).
//!
//! Pulse solving goes through the [`PulseCache`] solver hook: gates of
//! the same instruction class (1e-5 grouping) solve once per coupling,
//! which is both the production calibration model (§5.3.1) and what keeps
//! this suite fast.

use reqisc::benchsuite::mini_suite;
use reqisc::compiler::{Compiler, Pipeline};
use reqisc::microarch::{Coupling, PulseCache, DEFAULT_MIRROR_THRESHOLD};
use reqisc::qcircuit::Gate;
use reqisc::qmath::{weyl_coords, WeylCoord};

#[test]
fn compiled_programs_are_pulse_realizable() {
    let compiler = Compiler::new();
    let cache = PulseCache::new();
    let cps = [Coupling::xy(1.0), Coupling::xx(1.0)];
    // A few representative programs keep runtime bounded.
    for b in mini_suite().into_iter().take(5) {
        let out = compiler.compile(&b.circuit, Pipeline::ReqiscEff);
        // Collect distinct Weyl classes.
        let mut classes: Vec<WeylCoord> = Vec::new();
        for g in out.gates() {
            if !g.is_2q() {
                continue;
            }
            let w = match g {
                Gate::Su4(_, _, m) => weyl_coords(m).unwrap(),
                Gate::Can(_, _, w) => *w,
                other => weyl_coords(&other.matrix()).unwrap(),
            };
            if !classes.iter().any(|k| k.approx_eq(&w, 1e-7)) {
                classes.push(w);
            }
        }
        assert!(!classes.is_empty(), "{}: no 2Q instructions?", b.name);
        for cp in &cps {
            for w in &classes {
                let (sol, _swapped) = cache
                    .solve_with_mirroring(cp, w, DEFAULT_MIRROR_THRESHOLD)
                    .unwrap_or_else(|e| panic!("{}: {w} unsolvable: {e}", b.name));
                assert!(
                    sol.pulse.residual < 1e-6,
                    "{}: pulse residual {} for {w}",
                    b.name,
                    sol.pulse.residual
                );
            }
        }
    }
    // Programs share instruction classes (that is the §5.3.1 point), so
    // the class cache must have produced real sharing.
    let s = cache.stats();
    assert!(s.hits > 0, "no cross-program class sharing: {s}");
    assert!(s.is_consistent(), "inconsistent counters: {s}");
}

#[test]
fn exact_gate_realization_with_corrections() {
    // Full Algorithm 1 (with 1Q corrections) on the workhorse gates under
    // both couplings, via the memoized realization path.
    use reqisc::qmath::gates as qg;
    let cache = PulseCache::new();
    for cp in [Coupling::xy(1.0), Coupling::xx(1.0)] {
        for (name, u) in [
            ("cnot", qg::cnot()),
            ("cz", qg::cz()),
            ("iswap", qg::iswap()),
            ("sqisw", qg::sqisw()),
            ("b", qg::b_gate()),
            ("swap", qg::swap()),
        ] {
            let r = cache.realize(&cp, &u).unwrap_or_else(|e| panic!("{name}: {e}"));
            let rec = r.reconstruct(&cp);
            assert!(
                rec.approx_eq(&u, 1e-6),
                "{name}: reconstruction residual {:.2e}",
                rec.max_dist(&u)
            );
        }
    }
    // CNOT and CZ are the same class under each coupling: at least those
    // two lookups must have hit.
    assert!(cache.stats().hits >= 2, "{}", cache.stats());
}

#[test]
fn near_identity_instructions_come_back_mirrored() {
    // QFT's smallest controlled-phase rotations are near-identity; the
    // microarchitecture must mirror them rather than demand unbounded
    // amplitude.
    let qft = reqisc::benchsuite::generators::qft(8);
    let compiler = Compiler::new();
    let out = compiler.compile(&qft, Pipeline::ReqiscEff);
    let cp = Coupling::xy(1.0);
    let cache = PulseCache::new();
    let mut mirrored = 0;
    let mut gates_seen = 0;
    for g in out.gates() {
        if !g.is_2q() {
            continue;
        }
        let w = weyl_coords(&g.matrix()).unwrap();
        if w.l1_norm() < 1e-9 {
            continue;
        }
        gates_seen += 1;
        let (sol, swapped) = cache.solve_with_mirroring(&cp, &w, DEFAULT_MIRROR_THRESHOLD).unwrap();
        if swapped {
            mirrored += 1;
            // Mirrored pulses stay amplitude-bounded.
            assert!(sol.pulse.params.penalty() < 40.0);
        }
    }
    assert!(mirrored > 0, "QFT-8 should contain near-identity rotations");
    // QFT repeats the same controlled-phase classes across qubit pairs:
    // far fewer solves than gates.
    let s = cache.stats();
    assert!(s.hits > 0 && (s.misses as usize) < gates_seen, "no class reuse: {s}");
}
