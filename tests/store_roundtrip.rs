//! Round-trip and corruption-tolerance tests for the persistent
//! [`CacheStore`]: save/load must be bit-faithful (identical re-saved
//! bytes, unitarily-equivalent warm compiles), every flavour of bad file
//! must degrade to a *counted* cold start, and concurrent saves into one
//! shared directory must never produce a torn file.

use proptest::prelude::*;
use reqisc::benchsuite::generators;
use reqisc::compiler::{CacheStore, Compiler, LoadOutcome, Pipeline};
use reqisc::microarch::Coupling;
use reqisc::qmath::WeylCoord;
use reqisc::qsim::{circuit_unitary, process_infidelity};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, empty scratch directory unique to this process and call.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reqisc-store-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A compiler with the reduced-but-exact search budget the other
/// integration suites use. The tests need many *fresh caches*, not many
/// template libraries, so the (expensive, immutable) library is
/// pre-synthesized once and cloned in.
fn small_compiler() -> Compiler {
    use std::sync::OnceLock;
    static LIB: OnceLock<reqisc::synthesis::TemplateLibrary> = OnceLock::new();
    let mut c = Compiler::new_with_library(
        LIB.get_or_init(|| {
            let mut search = reqisc::synthesis::SearchOptions::default();
            search.sweep.restarts = 3;
            reqisc::synthesis::TemplateLibrary::builtin(&search)
        })
        .clone(),
    );
    c.hs.search.sweep.restarts = 2;
    c.hs.search.sweep.max_sweeps = 150;
    c
}

fn toffoli_chain() -> reqisc::qcircuit::Circuit {
    use reqisc::qcircuit::{Circuit, Gate};
    let mut c = Circuit::new(4);
    c.push(Gate::Ccx(0, 1, 2));
    c.push(Gate::Cx(2, 3));
    c.push(Gate::Ccx(1, 2, 3));
    c.push(Gate::H(0));
    c.push(Gate::Ccx(0, 1, 3));
    c
}

#[test]
fn save_load_roundtrip_bit_identical_pools_and_warm_compiles() {
    let dir = scratch_dir("roundtrip");
    let cold = small_compiler();
    let program = toffoli_chain();
    let out_full = cold.compile(&program, Pipeline::ReqiscFull);
    let out_eff = cold.compile(&program, Pipeline::ReqiscEff);
    // Populate the pulse pool too (compile pipelines don't touch it).
    cold.cache().pulses().solve(&Coupling::xy(1.0), &WeylCoord::cnot()).expect("solve");
    let store = CacheStore::new(&dir);
    let missing = store.load_into(cold.cache());
    assert_eq!(missing, LoadOutcome::Missing, "no file yet: clean cold start");
    let n = store.save(cold.cache()).expect("save");
    assert!(n >= 3, "programs + synthesis + pulse entries, got {n}");
    assert_eq!(store.stats().saved_entries, n as u64);

    // Load into a fresh compiler with identical options.
    let warm = small_compiler();
    let warm_store = CacheStore::new(&dir);
    let outcome = warm_store.load_into(warm.cache());
    match outcome {
        LoadOutcome::Loaded { programs, synthesis, pulses } => {
            assert!(programs >= 2, "both compiled pipelines persisted");
            assert!(synthesis >= 1, "dense-block results persisted");
            assert_eq!(pulses, 1);
            assert_eq!(programs + synthesis + pulses, n);
        }
        other => panic!("expected Loaded, got {other:?}"),
    }
    assert_eq!(warm_store.stats().loaded_entries, n as u64);

    // Bit-identical pool keys and values: re-saving the loaded cache to a
    // different directory must reproduce the file byte-for-byte (saves
    // are sorted, so equal content ⇒ equal bytes).
    let dir2 = scratch_dir("resave");
    let store2 = CacheStore::new(&dir2);
    assert_eq!(store2.save(warm.cache()).expect("resave"), n);
    let a = std::fs::read(store.path()).expect("read original");
    let b = std::fs::read(store2.path()).expect("read resave");
    assert_eq!(a, b, "round-trip must preserve every pool bit-for-bit");

    // Disk-warm compiles are pure program-pool hits, bit-identical to the
    // cold results and unitarily equivalent to the source.
    let warm_full = warm.compile(&program, Pipeline::ReqiscFull);
    let warm_eff = warm.compile(&program, Pipeline::ReqiscEff);
    assert_eq!(warm_full, out_full);
    assert_eq!(warm_eff, out_eff);
    let s = warm.cache_stats().programs;
    assert_eq!((s.hits, s.misses), (2, 0), "disk-warm compiles must be pure hits: {s}");
    let inf = process_infidelity(&circuit_unitary(&warm_full), &circuit_unitary(&program.lowered_to_cx()));
    assert!(inf < 1e-6, "warm result not equivalent to source: {inf}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn corrupt_stale_and_truncated_files_cold_start_with_counted_rejections() {
    let dir = scratch_dir("corrupt");
    let comp = small_compiler();
    comp.compile(&toffoli_chain(), Pipeline::ReqiscEff);
    let store = CacheStore::new(&dir);
    store.save(comp.cache()).expect("save");
    let good = std::fs::read(store.path()).expect("read");

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty file", Vec::new()),
        ("short garbage", b"not a store".to_vec()),
        ("truncated header", good[..16].to_vec()),
        ("truncated payload", good[..good.len() - 7].to_vec()),
        ("bad magic", {
            let mut b = good.clone();
            b[0] ^= 0xff;
            b
        }),
        ("wrong version", {
            let mut b = good.clone();
            b[4] = b[4].wrapping_add(1);
            b
        }),
        ("flipped payload byte", {
            let mut b = good.clone();
            let mid = 32 + (b.len() - 32) / 2;
            b[mid] ^= 0x01;
            b
        }),
        ("trailing garbage", {
            let mut b = good.clone();
            b.extend_from_slice(b"xx");
            b
        }),
    ];
    for (i, (name, bytes)) in cases.iter().enumerate() {
        std::fs::write(store.path(), bytes).expect("write corrupt file");
        let fresh = small_compiler();
        let outcome = store.load_into(fresh.cache());
        assert!(
            matches!(outcome, LoadOutcome::Rejected { .. }),
            "{name}: expected rejection, got {outcome:?}"
        );
        assert!(fresh.cache().is_empty(), "{name}: partial seed after rejection");
        assert_eq!(store.stats().rejected, i as u64 + 1, "{name}: rejection not counted");
    }

    // Restore the good bytes: loads work again (the file itself, not the
    // store handle, was the problem).
    std::fs::write(store.path(), &good).expect("restore");
    let fresh = small_compiler();
    assert!(matches!(store.load_into(fresh.cache()), LoadOutcome::Loaded { .. }));
    // A rejected file is also *overwritten* by the next save, not merged.
    std::fs::write(store.path(), b"garbage again").expect("corrupt");
    store.save(comp.cache()).expect("save over corrupt file");
    let fresh2 = small_compiler();
    assert!(matches!(store.load_into(fresh2.cache()), LoadOutcome::Loaded { .. }));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_saves_into_shared_dir_never_tear() {
    let dir = scratch_dir("race");
    // Two "processes" (two threads with independent caches and store
    // handles — the store has no shared in-process state worth testing)
    // hammer the same directory with interleaved saves and loads.
    let programs: Vec<_> = (0..4).map(|s| generators::reversible_network(3, 6, s)).collect();
    std::thread::scope(|scope| {
        for t in 0..2 {
            let dir = dir.clone();
            let programs = &programs;
            scope.spawn(move || {
                let comp = small_compiler();
                comp.compile(&programs[t], Pipeline::ReqiscEff);
                comp.compile(&programs[t + 2], Pipeline::Qiskit);
                let store = CacheStore::new(&dir);
                for _ in 0..6 {
                    store.save(comp.cache()).expect("racing save");
                    // Interleaved loads must always see a complete file
                    // (or none): atomic rename means never a torn one.
                    let probe = small_compiler();
                    match store.load_into(probe.cache()) {
                        LoadOutcome::Loaded { .. } | LoadOutcome::Missing => {}
                        LoadOutcome::Rejected { reason } => {
                            panic!("racing reader saw a torn store: {reason}")
                        }
                    }
                }
            });
        }
    });
    // The final file is valid and, because saves merge the on-disk union,
    // contains *both* writers' programs unless the very last two saves
    // raced each other — guaranteed at least one writer's worth.
    let store = CacheStore::new(&dir);
    let final_cache = small_compiler();
    match store.load_into(final_cache.cache()) {
        LoadOutcome::Loaded { programs, .. } => {
            assert!(programs >= 2, "lost both writers' pools: {programs}")
        }
        other => panic!("final shared store unusable: {other:?}"),
    }
    // No stray temp files left behind.
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(strays.is_empty(), "leftover temp files: {strays:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_ages_out_unreferenced_entries_and_preserves_results() {
    let dir = scratch_dir("compact");
    let p1 = toffoli_chain();
    let p2 = {
        let mut c = reqisc::qcircuit::Circuit::new(3);
        c.push(reqisc::qcircuit::Gate::Ccx(0, 1, 2));
        c.push(reqisc::qcircuit::Gate::H(1));
        c
    };
    // Process 1: compile both, save (generation 1, everything referenced).
    let a = small_compiler();
    let out1 = a.compile(&p1, Pipeline::ReqiscEff);
    let out2 = a.compile(&p2, Pipeline::Qiskit);
    let store_a = CacheStore::new(&dir);
    let n_full = store_a.save(a.cache()).expect("save");
    let size_full = std::fs::metadata(store_a.path()).expect("meta").len();

    // A plain save never GCs: a process that loads and uses *nothing*
    // still re-persists every entry (they only age).
    let idle = small_compiler();
    let store_idle = CacheStore::new(&dir);
    assert!(matches!(store_idle.load_into(idle.cache()), LoadOutcome::Loaded { .. }));
    assert_eq!(store_idle.save(idle.cache()).expect("idle save"), n_full, "saves only age, never drop");

    // Likewise a compaction whose idle window covers the whole history.
    let lax = small_compiler();
    let store_lax = CacheStore::new(&dir);
    store_lax.load_into(lax.cache());
    let o = store_lax.compact(lax.cache(), 10).expect("lax compact");
    assert_eq!((o.kept, o.dropped), (n_full, 0), "everything is within the idle window");

    // Process 2: load, reference only p1's pipeline entry, compact with a
    // zero idle window — everything unreferenced is dead and must drop.
    let b = small_compiler();
    let store_b = CacheStore::new(&dir);
    assert!(matches!(store_b.load_into(b.cache()), LoadOutcome::Loaded { .. }));
    let warm1 = b.compile(&p1, Pipeline::ReqiscEff);
    assert_eq!(warm1, out1);
    let o = store_b.compact(b.cache(), 0).expect("compact");
    assert!(o.dropped >= 1, "unreferenced entries must drop: {o:?}");
    assert!(o.kept >= 1 && o.kept + o.dropped == n_full);
    let s = store_b.stats();
    assert_eq!((s.compactions, s.gc_dropped), (1, o.dropped as u64));
    let size_gc = std::fs::metadata(store_b.path()).expect("meta").len();
    assert!(size_gc < size_full, "compaction must shrink the file: {size_full} -> {size_gc}");

    // The in-memory cache was purged too: p2 recompiles (a fresh miss),
    // bit-identically — GC changes cost, never results.
    let misses_before = b.cache_stats().programs.misses;
    let again2 = b.compile(&p2, Pipeline::Qiskit);
    assert_eq!(again2, out2, "recomputed result must be identical");
    assert_eq!(
        b.cache_stats().programs.misses,
        misses_before + 1,
        "the compacted entry must be gone from memory (no resurrect-from-RAM)"
    );

    // Process 3: the compacted store still warm-serves what it kept.
    let c = small_compiler();
    let store_c = CacheStore::new(&dir);
    assert!(matches!(store_c.load_into(c.cache()), LoadOutcome::Loaded { .. }));
    assert_eq!(c.compile(&p1, Pipeline::ReqiscEff), out1);
    assert_eq!(c.cache_stats().programs.hits, 1, "kept entry is a pure hit");
    assert_eq!(c.compile(&p2, Pipeline::Qiskit), out2, "dropped entry recomputes identically");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property round-trip: for random programs and SU(4)-emitting
    /// pipelines, a disk-warm compile in a fresh process-alike compiler
    /// is bit-identical to the cold result that was saved.
    #[test]
    fn disk_warm_compile_equals_cold_compile(seed in 0u64..1_000_000, pick in 0usize..3, n in 3usize..5, gates in 4usize..8) {
        let dir = scratch_dir("prop");
        let p = [Pipeline::ReqiscEff, Pipeline::ReqiscFull, Pipeline::BqskitSu4][pick];
        let c = generators::reversible_network(n, gates, seed);
        let cold = small_compiler();
        let cold_out = cold.compile(&c, p);
        let store = CacheStore::new(&dir);
        store.save(cold.cache()).expect("save");
        let warm = small_compiler();
        prop_assert!(matches!(CacheStore::new(&dir).load_into(warm.cache()), LoadOutcome::Loaded { .. }));
        let warm_out = warm.compile(&c, p);
        prop_assert_eq!(&warm_out, &cold_out, "disk-warm diverged from cold (pipeline {})", p.name());
        let s = warm.cache_stats().programs;
        prop_assert_eq!((s.hits, s.misses), (1, 0), "not a pure program-pool hit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
