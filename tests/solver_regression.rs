//! Regression pins for the numerical fixes of PR 1 (KAK face snap),
//! PR 1/3 (EA sliver seeding) and PR 5 (boundary-curve solver), so
//! future solver or KAK refactors cannot silently reintroduce them:
//!
//! * **KAK x = π/4 face snap**: coordinates within 1e-8 of the x = π/4
//!   chamber face used to oscillate between (π/4 − δ, …, z < 0) and
//!   (π/4 + δ, …) under the face rule and fail canonicalization;
//!   `canonicalize` now pins them onto the face.
//! * **EA sliver roots**: frontier-marginal targets (EA binding time
//!   barely above ND's) have their only roots in thin slivers —
//!   β = O(10⁻³) or 1 − α = O(10⁻³) — which uniform grid seeding missed.
//!   PR 1 added log-spaced edge-seed rows, PR 3 a reserve-wave quota, and
//!   PR 5 replaced the lot with the boundary-curve solver, which walks
//!   the pure-detuning boundary family directly: the sliver tier below is
//!   pinned one order *deeper* (ε = 10⁻⁶) than the grid solver ever
//!   reliably reached.

use reqisc::microarch::{optimal_duration, solve_ea, solve_pulse, Coupling, EaSign};
use reqisc::qmath::gates::canonical_gate;
use reqisc::qmath::{kak_decompose, locally_equivalent, WeylCoord, WEYL_EPS};
use std::f64::consts::FRAC_PI_4;

#[test]
fn kak_face_snap_pins_near_pi4_coordinates() {
    // A grid of gates numerically *on* the x = π/4 face, from both sides,
    // with negative z (the face rule's trigger). Pre-fix these made
    // `canonicalize` oscillate and `kak_decompose` reject its own output.
    for dx in [-8e-9, -2e-9, 0.0, 2e-9, 8e-9] {
        for y in [0.05, 0.2, FRAC_PI_4 - 1e-3] {
            for z in [-0.04f64, -1e-3, 1e-3] {
                if y < z.abs() {
                    continue; // outside the chamber by construction
                }
                let g = canonical_gate(FRAC_PI_4 + dx, y, z);
                let k = kak_decompose(&g).unwrap_or_else(|e| {
                    panic!("face-adjacent ({dx:e}, {y}, {z}) failed: {e}")
                });
                assert!(k.coords.in_chamber(), "coords {} left the chamber", k.coords);
                // On the face the chamber demands z ≥ 0.
                if (k.coords.x - FRAC_PI_4).abs() < WEYL_EPS {
                    assert!(k.coords.z >= -WEYL_EPS, "face rule violated: {}", k.coords);
                }
                // The snap may perturb the class by ≤ 1e-8 — never more.
                assert!(
                    locally_equivalent(&g, &canonical_gate(k.coords.x, k.coords.y, k.coords.z), 1e-7)
                        .expect("canonical gate decomposes"),
                    "snap changed the gate class at ({dx:e}, {y}, {z})"
                );
            }
        }
    }
}

#[test]
fn kak_face_snap_lands_exactly_on_the_face() {
    // The pinned coordinate is bitwise π/4: consumers key caches on the
    // quantized class, and an exact pin keeps the CNOT family in one
    // bucket.
    let g = canonical_gate(FRAC_PI_4 - 5e-9, 0.2, -0.1);
    let k = kak_decompose(&g).expect("kak");
    assert_eq!(k.coords.x, FRAC_PI_4, "face coordinate must be pinned exactly");
}

/// The frontier-marginal family under XX coupling: EA− binds with
/// τ₋ − τ₀ = y + z → 0, pushing the root into the (α → 1, β → 0) corner.
#[test]
fn ea_sliver_roots_stay_found_under_xx() {
    let cp = Coupling::xx(1.0);
    for eps in [1e-4, 1e-3, 3e-3] {
        let w = WeylCoord::new(0.7, eps, 0.0);
        let tau = optimal_duration(&w, &cp).tau;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert!(
            !sols.is_empty(),
            "sliver root lost for y = {eps} (pre-fix failure mode: empty)"
        );
        let best = &sols[0];
        assert!(best.residual < 1e-8, "residual {} at y = {eps}", best.residual);
        // Pin the sliver itself: the root lives at the α = 1 edge with
        // tiny β (β ≈ 7 eps for this family). A refactor that finds some
        // *other* valid root is fine for correctness but would un-pin the
        // seeding; widen deliberately if that ever happens.
        assert!(
            1.0 - best.alpha < 1e-3 && best.beta < 0.1,
            "root left the sliver at y = {eps}: alpha = {}, beta = {}",
            best.alpha,
            best.beta
        );
    }
}

/// PR-3/PR-5 regression: the grid solver refined only the 16 globally
/// best-residual seeds, starving the β = O(10⁻³) / 1 − α = O(10⁻³)
/// sliver rows (PR 3 patched it with an edge-family reserve quota). The
/// PR-5 boundary-curve solver finds these roots by construction — a 1-D
/// sign-scan over the pure-detuning boundary family in log-spaced drive
/// magnitude — so the deep-marginal family is pinned down to
/// τ₋ − τ₀ = y + z = 10⁻⁶, one order deeper than the quota-era pin
/// (10⁻⁵), and must converge deterministically to the sliver root.
#[test]
fn ea_seed_quota_keeps_deep_sliver_roots() {
    let cp = Coupling::xx(1.0);
    for eps in [1e-6, 3e-6, 1e-5, 3e-5, 5e-5, 7e-4] {
        let w = WeylCoord::new(0.7, eps, 0.0);
        let tau = optimal_duration(&w, &cp).tau;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert!(!sols.is_empty(), "deep sliver root lost at y = {eps}");
        let best = &sols[0];
        assert!(best.residual < 1e-8, "residual {} at y = {eps}", best.residual);
        assert!(
            1.0 - best.alpha < 1e-2 && best.beta < 0.1,
            "best root left the sliver at y = {eps}: alpha = {}, beta = {}",
            best.alpha,
            best.beta
        );
    }
}

#[test]
fn frontier_marginal_targets_solve_under_representative_couplings() {
    // The compiler-facing entry point must keep succeeding on marginal
    // targets across coupling shapes (XY and anisotropic couplings route
    // these through ND; XX forces the EA sliver).
    let cps = [Coupling::xy(1.0), Coupling::xx(1.0), Coupling::new(1.0, 0.6, 0.2)];
    for cp in &cps {
        for eps in [1e-3, 3e-3, 1e-2] {
            for w in [
                WeylCoord::new(0.7, eps, 0.0),
                WeylCoord::new(0.7, eps, eps / 2.0),
                WeylCoord::new(0.5, eps, -eps / 2.0),
                // Near the SWAP corner: EA with a marginal z-deficit.
                WeylCoord::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4 - eps),
            ] {
                assert!(w.in_chamber(), "test case {w} must be canonical");
                let s = solve_pulse(cp, &w).unwrap_or_else(|e| {
                    panic!("({}, {}, {}): {w} unsolvable: {e}", cp.a, cp.b, cp.c)
                });
                assert!(
                    s.residual < 1e-7,
                    "({}, {}, {}): {w} residual {}",
                    cp.a,
                    cp.b,
                    cp.c,
                    s.residual
                );
            }
        }
    }
}
