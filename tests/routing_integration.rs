//! Integration: topology-aware compilation — the full logical-compile →
//! route → verify flow on real benchmark programs across topologies and
//! routers.

use reqisc::benchsuite::mini_suite;
use reqisc::compiler::{
    expand_swaps_to_cx, route, routing_preserves_semantics, Compiler, Pipeline, RouteOptions,
    Router, Topology,
};
use std::sync::OnceLock;

fn compiler() -> &'static Compiler {
    static C: OnceLock<Compiler> = OnceLock::new();
    C.get_or_init(Compiler::new)
}

#[test]
fn routed_programs_stay_correct_on_chain_and_grid() {
    for b in mini_suite() {
        let n = b.circuit.num_qubits();
        if n > 9 {
            continue;
        }
        let logical = compiler().compile(&b.circuit, Pipeline::ReqiscEff);
        for topo in [Topology::chain(n), Topology::grid_for(n)] {
            for router in [Router::Sabre, Router::MirroringSabre] {
                let mut o = RouteOptions::default();
                o.router = router;
                let r = route(&logical, &topo, &o);
                assert!(
                    routing_preserves_semantics(&logical, &r, &topo),
                    "{} broke on {:?} ({} phys qubits)",
                    b.name,
                    router,
                    topo.len()
                );
            }
        }
    }
}

#[test]
fn mirroring_reduces_su4_routing_overhead_on_average() {
    let mut sabre_total = 0usize;
    let mut mirror_total = 0usize;
    for b in mini_suite() {
        let n = b.circuit.num_qubits();
        if n > 10 {
            continue;
        }
        let logical = compiler().compile(&b.circuit, Pipeline::ReqiscEff);
        let topo = Topology::chain(n);
        let mut so = RouteOptions::default();
        so.router = Router::Sabre;
        sabre_total += route(&logical, &topo, &so).circuit.count_2q();
        let mut mo = RouteOptions::default();
        mo.router = Router::MirroringSabre;
        mirror_total += route(&logical, &topo, &mo).circuit.count_2q();
    }
    assert!(
        mirror_total <= sabre_total,
        "mirroring-SABRE worse in aggregate: {mirror_total} vs {sabre_total}"
    );
}

#[test]
fn cnot_flow_pays_more_routing_overhead_than_su4_flow() {
    // The Fig. 12 headline: SWAPs cost 3 CX on the CNOT ISA but at most
    // one (often zero) SU(4) on the SU(4) ISA.
    let mut cnot_overhead = 0.0;
    let mut su4_overhead = 0.0;
    let mut count = 0;
    for b in mini_suite() {
        let n = b.circuit.num_qubits();
        if n > 10 {
            continue;
        }
        let topo = Topology::chain(n);
        let cnot_logical = compiler().compile(&b.circuit, Pipeline::Tket);
        let su4_logical = compiler().compile(&b.circuit, Pipeline::ReqiscEff);
        if cnot_logical.count_2q() == 0 || su4_logical.count_2q() == 0 {
            continue;
        }
        let mut so = RouteOptions::default();
        so.router = Router::Sabre;
        let cnot_routed = expand_swaps_to_cx(&route(&cnot_logical, &topo, &so).circuit);
        let su4_routed = route(&su4_logical, &topo, &RouteOptions::default()).circuit;
        cnot_overhead += cnot_routed.count_2q() as f64 / cnot_logical.count_2q() as f64;
        su4_overhead += su4_routed.count_2q() as f64 / su4_logical.count_2q() as f64;
        count += 1;
    }
    assert!(count >= 10, "not enough programs");
    assert!(
        su4_overhead < cnot_overhead,
        "SU(4) routing overhead {su4_overhead} not below CNOT {cnot_overhead}"
    );
}
