//! Cross-crate integration: real benchmark programs through the full
//! compile → verify → simulate stack.

use reqisc::benchsuite::{mini_suite, Category};
use reqisc::compiler::{metrics, Compiler, Pipeline};
use reqisc::microarch::Coupling;
use reqisc::qsim::{circuit_unitary, process_infidelity};
use std::sync::OnceLock;

fn compiler() -> &'static Compiler {
    static C: OnceLock<Compiler> = OnceLock::new();
    C.get_or_init(Compiler::new)
}

#[test]
fn every_category_compiles_equivalently_under_reqisc_full() {
    for b in mini_suite() {
        if b.circuit.num_qubits() > 8 {
            continue; // dense verification cap
        }
        let out = compiler().compile(&b.circuit, Pipeline::ReqiscFull);
        let inf = process_infidelity(
            &circuit_unitary(&b.circuit.lowered_to_cx()),
            &circuit_unitary(&out),
        );
        assert!(inf < 1e-6, "{}: infidelity {inf}", b.name);
    }
}

#[test]
fn every_category_compiles_equivalently_under_baselines() {
    for b in mini_suite() {
        if b.circuit.num_qubits() > 8 {
            continue;
        }
        let orig = circuit_unitary(&b.circuit.lowered_to_cx());
        for p in [Pipeline::Qiskit, Pipeline::Tket] {
            let out = compiler().compile(&b.circuit, p);
            let inf = process_infidelity(&orig, &circuit_unitary(&out));
            assert!(inf < 1e-6, "{} via {}: infidelity {inf}", b.name, p.name());
        }
    }
}

#[test]
fn reqisc_dominates_baselines_on_type1_counts() {
    let cp = Coupling::xy(1.0);
    let mut wins = 0;
    let mut total = 0;
    for b in mini_suite() {
        if !b.category.is_type1() || b.circuit.num_qubits() > 10 {
            continue;
        }
        let q = metrics(&compiler().compile(&b.circuit, Pipeline::Qiskit), &cp);
        let full = metrics(&compiler().compile(&b.circuit, Pipeline::ReqiscFull), &cp);
        total += 1;
        if full.count_2q <= q.count_2q {
            wins += 1;
        }
        assert!(
            full.duration <= q.duration * 1.05,
            "{}: ReQISC duration {} vs Qiskit {}",
            b.name,
            full.duration,
            q.duration
        );
    }
    assert!(total > 5, "not enough Type-I programs covered");
    assert!(
        wins * 10 >= total * 9,
        "ReQISC-Full lost #2Q on too many programs: {wins}/{total}"
    );
}

#[test]
fn duration_reductions_match_paper_scale() {
    // The paper reports 40–90% duration reductions; check the mini suite
    // average lands in a compatible band (> 30%).
    let cp = Coupling::xy(1.0);
    let mut reductions = Vec::new();
    for b in mini_suite() {
        let orig = metrics(&b.circuit.lowered_to_cx(), &cp);
        let full = metrics(&compiler().compile(&b.circuit, Pipeline::ReqiscFull), &cp);
        if orig.duration > 0.0 {
            reductions.push(1.0 - full.duration / orig.duration);
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(avg > 0.3, "average duration reduction too small: {avg}");
}

#[test]
fn qaoa_profits_from_rzz_native_su4() {
    // Type-II: each Rzz is already one SU(4); the CNOT baseline pays 2 CX
    // per Rzz.
    let cp = Coupling::xy(1.0);
    let b = mini_suite()
        .into_iter()
        .find(|b| b.category == Category::Qaoa)
        .unwrap();
    let q = metrics(&compiler().compile(&b.circuit, Pipeline::Qiskit), &cp);
    let eff = metrics(&compiler().compile(&b.circuit, Pipeline::ReqiscEff), &cp);
    assert!(eff.count_2q < q.count_2q, "eff {} vs qiskit {}", eff.count_2q, q.count_2q);
}
