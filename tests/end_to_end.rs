//! Cross-crate integration: real benchmark programs through the full
//! compile → verify → simulate stack.
//!
//! Two tiers:
//!
//! * **Fast tier** (default `cargo test`): every category compiles once —
//!   one pipeline per category, round-robin over all eight pipelines so
//!   each pipeline is exercised — in a single shared-cache
//!   [`Compiler::compile_batch`] fan-out, plus two cheap headline checks.
//! * **Exhaustive tier** (`cargo test -- --ignored`): the full
//!   category × pipeline product with metric-dominance and
//!   duration-reduction sweeps, as CI runs in its own job.

use reqisc::benchsuite::{mini_suite, mini_suite_capped, Category};
use reqisc::compiler::{metrics, Compiler, Pipeline};
use reqisc::microarch::Coupling;
use reqisc::qcircuit::Circuit;
use reqisc::qsim::{circuit_unitary, process_infidelity};
use std::sync::OnceLock;

fn compiler() -> &'static Compiler {
    static C: OnceLock<Compiler> = OnceLock::new();
    C.get_or_init(Compiler::new)
}

fn assert_equivalent(name: &str, pipeline: Pipeline, orig: &Circuit, out: &Circuit) {
    let inf = process_infidelity(
        &circuit_unitary(&orig.lowered_to_cx()),
        &circuit_unitary(out),
    );
    assert!(inf < 1e-6, "{name} via {}: infidelity {inf}", pipeline.name());
}

// --- fast tier ------------------------------------------------------------

#[test]
fn fast_tier_every_category_compiles_equivalently() {
    // One pipeline per category, rotating through all eight pipelines so
    // the whole pipeline matrix stays covered at ~1/8 the work of the
    // exhaustive product.
    let programs = mini_suite_capped(8);
    let assigned: Vec<Pipeline> = (0..programs.len())
        .map(|i| Pipeline::ALL[i % Pipeline::ALL.len()])
        .collect();
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .zip(&assigned)
        .map(|(b, &p)| (&b.circuit, p))
        .collect();
    let outs = compiler().compile_batch(&jobs, 0);
    for ((b, &p), out) in programs.iter().zip(&assigned).zip(&outs) {
        assert_equivalent(&b.name, p, &b.circuit, out);
    }
    let stats = compiler().cache_stats();
    assert!(stats.programs.is_consistent() && stats.synthesis.is_consistent());
}

#[test]
fn fast_tier_reqisc_beats_qiskit_on_a_type1_program() {
    let cp = Coupling::xy(1.0);
    let b = mini_suite()
        .into_iter()
        .find(|b| b.category == Category::Tof)
        .unwrap();
    let q = metrics(&compiler().compile(&b.circuit, Pipeline::Qiskit), &cp);
    let full = metrics(&compiler().compile(&b.circuit, Pipeline::ReqiscFull), &cp);
    assert!(full.count_2q <= q.count_2q, "full {} vs qiskit {}", full.count_2q, q.count_2q);
    assert!(full.duration <= q.duration * 1.05);
}

#[test]
fn fast_tier_qaoa_profits_from_rzz_native_su4() {
    // Type-II: each Rzz is already one SU(4); the CNOT baseline pays 2 CX
    // per Rzz.
    let cp = Coupling::xy(1.0);
    let b = mini_suite()
        .into_iter()
        .find(|b| b.category == Category::Qaoa)
        .unwrap();
    let q = metrics(&compiler().compile(&b.circuit, Pipeline::Qiskit), &cp);
    let eff = metrics(&compiler().compile(&b.circuit, Pipeline::ReqiscEff), &cp);
    assert!(eff.count_2q < q.count_2q, "eff {} vs qiskit {}", eff.count_2q, q.count_2q);
}

// --- exhaustive tier (cargo test -- --ignored) ----------------------------

#[test]
#[ignore = "exhaustive tier: run with `cargo test -- --ignored`"]
fn every_category_compiles_equivalently_under_reqisc_full() {
    let programs = mini_suite_capped(8);
    let jobs: Vec<(&Circuit, Pipeline)> =
        programs.iter().map(|b| (&b.circuit, Pipeline::ReqiscFull)).collect();
    let outs = compiler().compile_batch(&jobs, 0);
    for (b, out) in programs.iter().zip(&outs) {
        assert_equivalent(&b.name, Pipeline::ReqiscFull, &b.circuit, out);
    }
}

#[test]
#[ignore = "exhaustive tier: run with `cargo test -- --ignored`"]
fn every_category_compiles_equivalently_under_baselines() {
    let programs = mini_suite_capped(8);
    let pipelines = [Pipeline::Qiskit, Pipeline::Tket];
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    let outs = compiler().compile_batch(&jobs, 0);
    for (i, b) in programs.iter().enumerate() {
        for (j, &p) in pipelines.iter().enumerate() {
            assert_equivalent(&b.name, p, &b.circuit, &outs[i * pipelines.len() + j]);
        }
    }
}

#[test]
#[ignore = "exhaustive tier: run with `cargo test -- --ignored`"]
fn reqisc_dominates_baselines_on_type1_counts() {
    let cp = Coupling::xy(1.0);
    let programs: Vec<_> = mini_suite()
        .into_iter()
        .filter(|b| b.category.is_type1() && b.circuit.num_qubits() <= 10)
        .collect();
    let pipelines = [Pipeline::Qiskit, Pipeline::ReqiscFull];
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    let outs = compiler().compile_batch(&jobs, 0);
    let mut wins = 0;
    let mut total = 0;
    for (i, b) in programs.iter().enumerate() {
        let q = metrics(&outs[2 * i], &cp);
        let full = metrics(&outs[2 * i + 1], &cp);
        total += 1;
        if full.count_2q <= q.count_2q {
            wins += 1;
        }
        assert!(
            full.duration <= q.duration * 1.05,
            "{}: ReQISC duration {} vs Qiskit {}",
            b.name,
            full.duration,
            q.duration
        );
    }
    assert!(total > 5, "not enough Type-I programs covered");
    assert!(
        wins * 10 >= total * 9,
        "ReQISC-Full lost #2Q on too many programs: {wins}/{total}"
    );
}

#[test]
#[ignore = "exhaustive tier: run with `cargo test -- --ignored`"]
fn duration_reductions_match_paper_scale() {
    // The paper reports 40–90% duration reductions; check the mini suite
    // average lands in a compatible band (> 30%).
    let cp = Coupling::xy(1.0);
    let programs = mini_suite();
    let jobs: Vec<(&Circuit, Pipeline)> =
        programs.iter().map(|b| (&b.circuit, Pipeline::ReqiscFull)).collect();
    let outs = compiler().compile_batch(&jobs, 0);
    let mut reductions = Vec::new();
    for (b, out) in programs.iter().zip(&outs) {
        let orig = metrics(&b.circuit.lowered_to_cx(), &cp);
        let full = metrics(out, &cp);
        if orig.duration > 0.0 {
            reductions.push(1.0 - full.duration / orig.duration);
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(avg > 0.3, "average duration reduction too small: {avg}");
}
