//! Old-vs-new EA-solver equivalence: PR 5 replaced the tiered
//! grid-search + Nelder–Mead `solve_ea` with the boundary-curve solver.
//! This suite freezes the **legacy grid solver** verbatim (below) and
//! pins behaviour equivalence against it, so the rewrite can never
//! silently change what the compiler emits:
//!
//! * a proptest over couplings × Weyl targets (filtered to targets with
//!   well-separated eigenphases — see the note on degenerate classes)
//!   asserting the two solvers agree on solvability, find the same best
//!   root, and that every legacy root is found by the new solver;
//! * named-gate pins (SWAP under XX, the sliver family, generic
//!   anisotropic roots) with per-solution parameter matching;
//! * scheme-level pins: `solve_pulse` picks the same subscheme, τ, and
//!   pulse params for the named classes — which is what keeps
//!   `SolvedClass` content and pulse-class keys stable across the
//!   rewrite (no store-format bump; the byte-level golden pins live in
//!   `qmath::fingerprint` and `tests/store_roundtrip.rs` and are
//!   untouched).
//!
//! Degenerate-eigenphase targets (`x ≈ y` or `y ≈ z` classes, phases
//! closer than ~0.05 rad) have *tangential* root structures where both
//! solvers sample an arbitrary subset of a near-continuum; there the
//! contract is "same best root" only, covered by the named pins (SWAP,
//! sliver) rather than the proptest.

use proptest::prelude::*;
use reqisc::microarch::{optimal_duration, solve_ea, solve_pulse, Coupling, EaSign};
use reqisc::qmath::WeylCoord;

/// The PR-1..4 grid solver, frozen at its final (PR 3) form: 6 β tiers,
/// log-spaced edge-family seed rows, top-16 residual ranking with the
/// edge-family reserve wave, Nelder–Mead refinement. Kept verbatim as the
/// behavioural reference — do not "fix" it.
mod legacy_grid {
    use reqisc::microarch::{ea_params, residual, Coupling, EaSign, PulseParams};
    use reqisc::qmath::WeylCoord;

    type Seed = (f64, f64, f64, f64, u8);
    const SEED_FAMILY_GRID: u8 = 0;
    const SEED_FAMILY_TINY_BETA: u8 = 1;
    const SEED_FAMILY_ALPHA_EDGE: u8 = 2;
    const TOP_SEEDS: usize = 16;
    const EDGE_SEED_QUOTA: usize = 4;

    pub struct EaSolution {
        pub alpha: f64,
        pub beta: f64,
        pub params: PulseParams,
        pub residual: f64,
    }

    fn select_seed_indices(seeds: &[Seed]) -> (Vec<usize>, Vec<usize>) {
        let mut order: Vec<usize> = (0..seeds.len()).collect();
        order.sort_by(|&a, &b| seeds[a].0.partial_cmp(&seeds[b].0).unwrap());
        let primary: Vec<usize> = order.iter().copied().take(TOP_SEEDS).collect();
        let mut reserve: Vec<usize> = Vec::new();
        for fam in [SEED_FAMILY_TINY_BETA, SEED_FAMILY_ALPHA_EDGE] {
            let have = primary.iter().filter(|&&i| seeds[i].4 == fam).count();
            if have >= EDGE_SEED_QUOTA {
                continue;
            }
            reserve.extend(
                order
                    .iter()
                    .copied()
                    .filter(|&i| seeds[i].4 == fam && !primary.contains(&i))
                    .take(EDGE_SEED_QUOTA - have),
            );
        }
        (primary, reserve)
    }

    pub fn solve_ea(
        cp: &Coupling,
        sign: EaSign,
        w: &WeylCoord,
        tau: f64,
        tol: f64,
    ) -> Vec<EaSolution> {
        let eta = match sign {
            EaSign::Plus => (cp.a - cp.b) / (cp.a + cp.c),
            EaSign::Minus => (cp.a - cp.b) / (cp.a - cp.c),
        };
        let f = |al: f64, be: f64| -> f64 {
            let alc = al.clamp(0.0, 1.0);
            let bec = be.max(0.0).max(eta - alc);
            residual(cp, &ea_params(cp, sign, alc, bec), tau, w)
        };
        let mut solutions: Vec<EaSolution> = Vec::new();
        for beta_max in [2.5f64, 6.0, 12.0, 40.0, 120.0, 400.0] {
            let grid = if beta_max > 12.0 { 48usize } else { 18usize };
            let mut seeds: Vec<Seed> = Vec::new();
            for i in 0..=grid {
                for jj in 0..=grid {
                    let al = i as f64 / grid as f64;
                    let be = beta_max * jj as f64 / grid as f64;
                    if al + be < eta - 1e-12 {
                        continue;
                    }
                    seeds.push((f(al, be), al, be, 0.08, SEED_FAMILY_GRID));
                }
            }
            let first_of_grid = beta_max == 2.5 || beta_max == 40.0;
            if first_of_grid {
                for i in 0..=grid {
                    let al = i as f64 / grid as f64;
                    for be in [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2] {
                        if al + be < eta - 1e-12 {
                            continue;
                        }
                        seeds.push((f(al, be), al, be, 0.004, SEED_FAMILY_TINY_BETA));
                    }
                }
            }
            for jj in (if first_of_grid { 0 } else { 1 })..=grid {
                let be = beta_max * jj as f64 / grid as f64;
                for dal in [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2] {
                    let al = 1.0 - dal;
                    if al + be < eta - 1e-12 {
                        continue;
                    }
                    seeds.push((f(al, be), al, be, 0.004, SEED_FAMILY_ALPHA_EDGE));
                }
            }
            let refine = |indices: &[usize], solutions: &mut Vec<EaSolution>| {
                for &i in indices {
                    let (_, al0, be0, step, _) = seeds[i];
                    if let Some((al, be, r)) = nelder_mead_2d(&f, al0, be0, step, 600) {
                        if r < tol {
                            let alc = al.clamp(0.0, 1.0);
                            let bec = be.max(0.0).max(eta - alc);
                            let params = ea_params(cp, sign, alc, bec);
                            if !solutions.iter().any(|s| {
                                (s.params.omega1 - params.omega1).abs()
                                    + (s.params.omega2 - params.omega2).abs()
                                    + (s.params.delta - params.delta).abs()
                                    < 1e-6 * (1.0 + params.penalty())
                            }) {
                                solutions.push(EaSolution {
                                    alpha: alc,
                                    beta: bec,
                                    params,
                                    residual: r,
                                });
                            }
                        }
                    }
                }
            };
            let (primary, reserve) = select_seed_indices(&seeds);
            refine(&primary, &mut solutions);
            if solutions.is_empty() && first_of_grid {
                refine(&reserve, &mut solutions);
            }
            if !solutions.is_empty() {
                break;
            }
        }
        solutions.sort_by(|a, b| a.params.penalty().partial_cmp(&b.params.penalty()).unwrap());
        solutions
    }

    fn nelder_mead_2d(
        f: &dyn Fn(f64, f64) -> f64,
        x0: f64,
        y0: f64,
        step: f64,
        max_iter: usize,
    ) -> Option<(f64, f64, f64)> {
        let mut pts = [
            (x0, y0, f(x0, y0)),
            (x0 + step, y0, f(x0 + step, y0)),
            (x0, y0 + step, f(x0, y0 + step)),
        ];
        for _ in 0..max_iter {
            pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            let (best, mid, worst) = (pts[0], pts[1], pts[2]);
            if (worst.2 - best.2).abs() < 1e-16 && best.2 < 1e-15 {
                return Some(best);
            }
            let cx = 0.5 * (best.0 + mid.0);
            let cy = 0.5 * (best.1 + mid.1);
            let rx = cx + (cx - worst.0);
            let ry = cy + (cy - worst.1);
            let fr = f(rx, ry);
            if fr < best.2 {
                let ex = cx + 2.0 * (cx - worst.0);
                let ey = cy + 2.0 * (cy - worst.1);
                let fe = f(ex, ey);
                pts[2] = if fe < fr { (ex, ey, fe) } else { (rx, ry, fr) };
            } else if fr < mid.2 {
                pts[2] = (rx, ry, fr);
            } else {
                let kx = cx + 0.5 * (worst.0 - cx);
                let ky = cy + 0.5 * (worst.1 - cy);
                let fk = f(kx, ky);
                if fk < worst.2 {
                    pts[2] = (kx, ky, fk);
                } else {
                    for i in 1..3 {
                        let sx = best.0 + 0.5 * (pts[i].0 - best.0);
                        let sy = best.1 + 0.5 * (pts[i].1 - best.1);
                        pts[i] = (sx, sy, f(sx, sy));
                    }
                }
            }
            let spread = (pts[0].0 - pts[2].0).abs()
                + (pts[0].1 - pts[2].1).abs()
                + (pts[0].0 - pts[1].0).abs();
            if spread < 1e-14 {
                break;
            }
        }
        pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        Some(pts[0])
    }
}

/// Pairwise separation (mod 2π) of the three non-conserved target
/// M-phases for `sign` — the degeneracy measure the solver keys on.
fn min_phase_separation(w: &WeylCoord, sign: EaSign) -> f64 {
    let phis = w.magic_eigenphases();
    let t: Vec<f64> = (0..4)
        .filter(|&i| i != match sign {
            EaSign::Plus => 2,
            EaSign::Minus => 3,
        })
        .map(|i| 2.0 * phis[i])
        .collect();
    let ang = |d: f64| {
        let two_pi = 2.0 * std::f64::consts::PI;
        let r = d.rem_euclid(two_pi);
        r.min(two_pi - r)
    };
    let mut sep = f64::INFINITY;
    for i in 0..t.len() {
        for j in (i + 1)..t.len() {
            sep = sep.min(ang(t[i] - t[j]));
        }
    }
    sep
}

/// Matching tolerance on pulse params (absolute, relative to penalty).
fn params_match(
    a: &reqisc::microarch::PulseParams,
    b: &reqisc::microarch::PulseParams,
    tol: f64,
) -> bool {
    (a.omega1 - b.omega1).abs() + (a.omega2 - b.omega2).abs() + (a.delta - b.delta).abs()
        < tol * (1.0 + a.penalty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (coupling, target) pairs with EA binding and well-separated
    /// eigenphases: the boundary-curve solver must agree with the frozen
    /// grid solver on solvability, match its best root's parameters, and
    /// find every root the grid found.
    #[test]
    fn boundary_curve_matches_legacy_grid(
        b in 0.05f64..1.0,
        cfrac in -0.95f64..0.95,
        x in 0.08f64..0.78,
        yfrac in 0.05f64..1.0,
        zfrac in -0.95f64..0.95,
    ) {
        let cp = Coupling::new(1.0, b, b * cfrac);
        let w = WeylCoord::new(x, x * yfrac, x * yfrac * zfrac);
        prop_assume!(w.in_chamber());
        let dur = optimal_duration(&w, &cp);
        let ft = dur.frontier;
        // Only EA-binding targets reach solve_ea in the scheme.
        prop_assume!(!(ft.t0 >= ft.tp - 1e-12 && ft.t0 >= ft.tm - 1e-12));
        let sign = if ft.tm >= ft.tp - 1e-12 { EaSign::Minus } else { EaSign::Plus };
        // Degenerate classes have tangential near-continuum roots where
        // both solvers sample arbitrary subsets; the named pins cover
        // them, the proptest covers the transversal domain.
        prop_assume!(min_phase_separation(&w, sign) > 0.1);
        let tau = dur.tau;
        let old = legacy_grid::solve_ea(&cp, sign, &w, tau, 1e-8);
        let new = solve_ea(&cp, sign, &w, tau, 1e-8);
        prop_assert_eq!(
            old.is_empty(), new.is_empty(),
            "solvability diverged for {} under ({}, {}, {}) {:?}: old {} new {}",
            w, cp.a, cp.b, cp.c, sign, old.len(), new.len()
        );
        if old.is_empty() {
            return;
        }
        // Same best root, to parameter tolerance.
        prop_assert!(
            params_match(&old[0].params, &new[0].params, 1e-5),
            "best root diverged for {}: old (a={}, b={}, pen={}) new (a={}, b={}, pen={})",
            w, old[0].alpha, old[0].beta, old[0].params.penalty(),
            new[0].alpha, new[0].beta, new[0].params.penalty()
        );
        // Everything the grid found, the curve walk finds too (the new
        // solver may legitimately find MORE verified roots — each is
        // residual-checked — but never fewer).
        prop_assert!(new.len() >= old.len(), "lost roots: old {} new {}", old.len(), new.len());
        for o in &old {
            prop_assert!(
                new.iter().any(|n| params_match(&o.params, &n.params, 1e-4)),
                "legacy root (a={}, b={}, pen={}) lost for {}",
                o.alpha, o.beta, o.params.penalty(), w
            );
        }
        // Every new root is genuinely verified.
        for n in &new {
            prop_assert!(n.residual < 1e-8);
        }
    }
}

#[test]
fn swap_under_xx_same_roots_as_legacy() {
    // The Fig. 4 case — maximally degenerate target, both known roots.
    let cp = Coupling::xx(1.0);
    let w = WeylCoord::swap();
    let tau = 3.0 * std::f64::consts::FRAC_PI_4;
    let old = legacy_grid::solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
    let new = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
    assert!(!old.is_empty() && !new.is_empty());
    // The best root is the (α, β) = (2/3, 1) optimum in both.
    assert!(params_match(&old[0].params, &new[0].params, 1e-6));
    assert!((new[0].alpha - 2.0 / 3.0).abs() < 1e-6 && (new[0].beta - 1.0).abs() < 1e-5);
    // Every legacy root is reproduced.
    for o in &old {
        assert!(
            new.iter().any(|n| params_match(&o.params, &n.params, 1e-5)),
            "legacy SWAP root (a={}, b={}) lost",
            o.alpha,
            o.beta
        );
    }
}

#[test]
fn sliver_family_same_best_root_as_legacy() {
    // The frontier-marginal sliver family: the legacy solver needed the
    // edge-seed quota + reserve waves here; the boundary solver finds the
    // same edge root by construction (and to tighter residual).
    let cp = Coupling::xx(1.0);
    for eps in [1e-3, 1e-4, 1e-5] {
        let w = WeylCoord::new(0.7, eps, 0.0);
        let tau = optimal_duration(&w, &cp).tau;
        let old = legacy_grid::solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        let new = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert!(!old.is_empty() && !new.is_empty(), "eps = {eps}");
        assert!(
            params_match(&old[0].params, &new[0].params, 1e-6),
            "sliver best diverged at eps = {eps}: old (a={}, b={}) new (a={}, b={})",
            old[0].alpha,
            old[0].beta,
            new[0].alpha,
            new[0].beta
        );
        assert!(new[0].residual <= old[0].residual + 1e-12, "residual regressed at eps = {eps}");
    }
}

#[test]
fn generic_anisotropic_roots_match_legacy_exactly() {
    let cp = Coupling::new(1.0, 0.6, 0.2);
    for (sign, w) in [
        (EaSign::Plus, WeylCoord::new(0.5, 0.3, -0.2)),
        (EaSign::Minus, WeylCoord::new(0.5, 0.3, 0.2)),
    ] {
        let tau = optimal_duration(&w, &cp).tau;
        let old = legacy_grid::solve_ea(&cp, sign, &w, tau, 1e-8);
        let new = solve_ea(&cp, sign, &w, tau, 1e-8);
        assert_eq!(old.len(), 1, "{w}");
        assert_eq!(new.len(), 1, "{w}");
        // Transversal interior roots match to full Newton precision.
        assert!((old[0].alpha - new[0].alpha).abs() < 1e-7, "{w}");
        assert!((old[0].beta - new[0].beta).abs() < 1e-6, "{w}");
        assert!(params_match(&old[0].params, &new[0].params, 1e-7), "{w}");
    }
}

#[test]
fn scheme_level_pins_unchanged_for_named_classes() {
    // `SolvedClass` stability across the rewrite: the compiler-facing
    // solve must keep subscheme, τ, and params for the classes the store
    // serves — this is what "no STORE_FORMAT_VERSION bump" rests on.
    use reqisc::microarch::Subscheme;
    let xx = Coupling::xx(1.0);
    let s = solve_pulse(&xx, &WeylCoord::swap()).expect("swap");
    assert!(matches!(s.subscheme, Subscheme::EaMinus | Subscheme::EaPlus));
    assert!((s.tau - 3.0 * std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    // The legacy best root for SWAP: (α, β) = (2/3, 1) ⇒ Ω₁ = √(10)/3·?
    // — pin through the frozen solver rather than a magic constant.
    let old = legacy_grid::solve_ea(&xx, EaSign::Minus, &WeylCoord::swap(), s.tau, 1e-8);
    assert!(params_match(&old[0].params, &s.params, 1e-6), "SWAP pulse params moved");

    let xy = Coupling::xy(1.0);
    let c = solve_pulse(&xy, &WeylCoord::cnot()).expect("cnot");
    assert_eq!(c.subscheme, Subscheme::Nd);
    assert!((c.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-12);

    // Frontier-marginal: the compiler-facing path serves the identical
    // sliver root the legacy solver selected.
    let w = WeylCoord::new(0.7, 1e-3, 0.0);
    let s = solve_pulse(&xx, &w).expect("sliver");
    let old = legacy_grid::solve_ea(&xx, EaSign::Minus, &w, s.tau, 1e-8);
    assert!(params_match(&old[0].params, &s.params, 1e-6), "sliver pulse params moved");
}
