//! Integration: QASM-lite serialization round-trips compiled output, so
//! bench artifacts can be stored and re-loaded.

use reqisc::benchsuite::mini_suite;
use reqisc::compiler::{Compiler, Pipeline};
use reqisc::qcircuit::{emit, parse};
use reqisc::qsim::{circuit_unitary, process_infidelity};

#[test]
fn compiled_su4_circuits_roundtrip_through_qasm_lite() {
    let compiler = Compiler::new();
    for b in mini_suite().into_iter().take(6) {
        if b.circuit.num_qubits() > 8 {
            continue;
        }
        let out = compiler.compile(&b.circuit, Pipeline::ReqiscEff);
        let text = emit(&out);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", b.name));
        let inf = process_infidelity(&circuit_unitary(&out), &circuit_unitary(&back));
        assert!(inf < 1e-10, "{}: roundtrip infidelity {inf}", b.name);
    }
}

#[test]
fn high_level_programs_roundtrip_too() {
    for b in mini_suite() {
        let text = emit(&b.circuit);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", b.name));
        assert_eq!(back.len(), b.circuit.len(), "{}", b.name);
        assert_eq!(back.num_qubits(), b.circuit.num_qubits());
    }
}
