//! Smoke tests for the `reqisc` facade crate: every re-exported subsystem
//! resolves, and a trivial program compiles end-to-end through the full
//! SU(4)-native pipeline.

use reqisc::compiler::{metrics, Compiler, Pipeline};
use reqisc::microarch::Coupling;
use reqisc::qcircuit::{Circuit, Gate};

#[test]
fn all_reexports_resolve() {
    // One load-bearing symbol per subsystem; failures here are compile
    // errors, which is the point of the smoke test.
    let _kak = reqisc::qmath::kak_decompose(&reqisc::qmath::gates::cnot()).unwrap();
    let _circ = reqisc::qcircuit::Circuit::new(2);
    let _sv = reqisc::qsim::StateVector::zero(1);
    let _cp = reqisc::microarch::Coupling::xy(1.0);
    let _sw = reqisc::synthesis::SweepOptions::default();
    let _cc = reqisc::compiler::Compiler::new();
    let _suite = reqisc::benchsuite::mini_suite();
}

#[test]
fn ccx_compiles_through_reqisc_full() {
    let mut program = Circuit::new(3);
    program.push(Gate::Ccx(0, 1, 2));
    let compiler = Compiler::new();
    let out = compiler.compile(&program, Pipeline::ReqiscFull);
    let m = metrics(&out, &Coupling::xy(1.0));
    // The SU(4)-native pipeline beats the 6-CNOT textbook lowering.
    assert!(m.count_2q > 0 && m.count_2q <= 5, "count_2q = {}", m.count_2q);
    // And the result is semantically the Toffoli.
    let inf = reqisc::qsim::process_infidelity(&program.unitary(), &out.unitary());
    assert!(inf < 1e-6, "infidelity {inf}");
}
