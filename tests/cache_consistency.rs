//! Property tests (vendored proptest): the compilation cache is
//! *semantically invisible* — a cache-hit `compile` returns a circuit
//! unitarily equivalent to (in fact bit-identical with) a cold-cache
//! `compile`, across random circuits and every pipeline.

use proptest::prelude::*;
use reqisc::benchsuite::generators;
use reqisc::compiler::{Compiler, Pipeline};
use reqisc::qsim::{circuit_unitary, process_infidelity};
use std::sync::OnceLock;

/// Shared compiler with a reduced (but still exact-threshold) search
/// budget; sharing it across cases is the point — later cases hit
/// entries earlier cases populated, exercising the warm path under many
/// distinct programs.
fn compiler() -> &'static Compiler {
    static C: OnceLock<Compiler> = OnceLock::new();
    C.get_or_init(|| {
        let mut c = Compiler::new();
        c.hs.search.sweep.restarts = 2;
        c.hs.search.sweep.max_sweeps = 150;
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Warm (cache-hit) compiles agree bit-for-bit with the memoized
    /// result and unitarily with an uncached cold compile and with the
    /// source program.
    #[test]
    fn cache_hit_equals_cold_compile(seed in 0u64..1_000_000, pick in 0usize..Pipeline::ALL.len(), n in 3usize..5, gates in 4usize..9) {
        let c = generators::reversible_network(n, gates, seed);
        let p = Pipeline::ALL[pick];
        let cold = compiler().compile_uncached(&c, p);
        let first = compiler().compile(&c, p);   // fills (or hits) the program pool
        let warm = compiler().compile(&c, p);    // guaranteed hit
        prop_assert_eq!(&first, &warm, "cache hit diverged from its own memoized result");
        let u_cold = circuit_unitary(&cold);
        let inf_cold = process_infidelity(&u_cold, &circuit_unitary(&warm));
        prop_assert!(inf_cold < 1e-9, "warm vs cold infidelity {} (pipeline {})", inf_cold, p.name());
        let inf_src = process_infidelity(&circuit_unitary(&c.lowered_to_cx()), &u_cold);
        prop_assert!(inf_src < 1e-6, "compiled program not equivalent: {} ({})", inf_src, p.name());
    }

    /// The block-synthesis pool is shared across *different* programs:
    /// compiling a program and a gate-level superset never corrupts
    /// either result.
    #[test]
    fn shared_block_pool_is_safe_across_programs(seed in 0u64..1_000_000, gates in 5usize..9) {
        let base = generators::reversible_network(3, gates, seed);
        let mut extended = base.clone();
        extended.extend(&generators::reversible_network(3, 3, seed ^ 0xABCD));
        for c in [&base, &extended] {
            let out = compiler().compile(c, Pipeline::ReqiscFull);
            let inf = process_infidelity(
                &circuit_unitary(&c.lowered_to_cx()),
                &circuit_unitary(&out),
            );
            prop_assert!(inf < 1e-6, "infidelity {}", inf);
        }
    }
}

/// The counters the properties above exercised stay arithmetically
/// consistent (not a proptest case: checked once after the whole run,
/// ordering with the cases is irrelevant because counters only grow).
#[test]
fn cache_counters_stay_consistent() {
    // Force at least one populated pool even if this test runs first.
    let c = generators::reversible_network(3, 6, 42);
    compiler().compile(&c, Pipeline::ReqiscFull);
    compiler().compile(&c, Pipeline::ReqiscFull);
    let s = compiler().cache_stats();
    assert!(s.programs.is_consistent(), "programs: {}", s.programs);
    assert!(s.synthesis.is_consistent(), "synthesis: {}", s.synthesis);
    assert!(s.programs.hits >= 1);
}
