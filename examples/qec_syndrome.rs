//! Fault-tolerance outlook (paper §7): genAshN gives a √2× faster CNOT on
//! XY-coupled hardware and *native* Clifford entanglers (iSWAP, SWAP) —
//! exactly the gates modern dynamic surface-code schedules lean on.
//!
//! This example builds one syndrome-extraction round of a distance-3
//! repetition code plus a SWAP-heavy "dynamic" variant, and compares pulse
//! durations between the conventional CNOT ISA and the ReQISC SU(4) ISA.
//!
//! ```sh
//! cargo run --release --example qec_syndrome
//! ```

use reqisc::compiler::{gate_duration, metrics, Compiler, Pipeline};
use reqisc::microarch::{duration_in_g, Coupling};
use reqisc::qcircuit::{Circuit, Gate};
use reqisc::qmath::WeylCoord;

/// One stabilizer round of a distance-3 repetition code:
/// data qubits 0,2,4 — ancillas 1,3.
fn repetition_round() -> Circuit {
    let mut c = Circuit::new(5);
    for (d, a) in [(0usize, 1usize), (2, 1), (2, 3), (4, 3)] {
        c.push(Gate::Cx(d, a));
    }
    c
}

/// A "dynamic-code" style round that walks the data qubits with SWAPs
/// (McEwen–Bacon–Gidney-style schedules trade locality for SWAP layers).
fn dynamic_round() -> Circuit {
    let mut c = repetition_round();
    c.push(Gate::Swap(0, 1));
    c.push(Gate::Swap(2, 3));
    c.push(Gate::ISwap(1, 2));
    c.push(Gate::ISwap(3, 4));
    c
}

fn main() {
    let cp = Coupling::xy(1.0);
    let compiler = Compiler::new();
    println!("gate duration on XY coupling (g^-1):");
    for (name, w) in [
        ("CNOT (conventional)", None),
        ("CNOT (genAshN)", Some(WeylCoord::cnot())),
        ("iSWAP (genAshN)", Some(WeylCoord::iswap())),
        ("SWAP  (genAshN)", Some(WeylCoord::swap())),
        ("SWAP  (3x conventional CNOT)", None),
    ] {
        let d = match (name, w) {
            (_, Some(w)) => duration_in_g(&w, &cp),
            ("CNOT (conventional)", _) => reqisc::microarch::conventional_cnot_duration(),
            _ => 3.0 * reqisc::microarch::conventional_cnot_duration(),
        };
        println!("  {name:<28} {d:.3}");
    }
    println!();
    for (label, round) in [("repetition round", repetition_round()), ("dynamic round", dynamic_round())] {
        let cnot = compiler.compile(&round, Pipeline::Tket);
        let su4 = compiler.compile(&round, Pipeline::ReqiscEff);
        let mc = metrics(&cnot, &cp);
        let ms = metrics(&su4, &cp);
        println!(
            "{label:<18} CNOT-ISA: #2Q = {:>2}, T = {:>6.2}   SU(4)-ISA: #2Q = {:>2}, T = {:>6.2}  ({:.2}x faster)",
            mc.count_2q,
            mc.duration,
            ms.count_2q,
            ms.duration,
            mc.duration / ms.duration
        );
        let _ = gate_duration(&Gate::Cx(0, 1), &cp);
    }
}
