//! Variational (Type-II) workloads: a QAOA ansatz compiled with the
//! calibration-friendly ReQISC-Eff scheme, demonstrating the bounded
//! distinct-SU(4) count that makes continuous ISAs practical (§5.3.1).
//!
//! ```sh
//! cargo run --release --example variational_workload
//! ```

use reqisc::benchsuite::generators::{qaoa, uccsd};
use reqisc::compiler::{distinct_su4_count, metrics, Compiler, Pipeline};
use reqisc::microarch::Coupling;

fn main() {
    let compiler = Compiler::new();
    let cp = Coupling::xy(1.0);
    for (name, program) in [
        ("qaoa(6 qubits, 2 layers)", qaoa(6, 2, 1)),
        ("uccsd(6 qubits)", uccsd(6, 1, 2)),
    ] {
        println!("== {name} ==");
        let orig = metrics(&program.lowered_to_cx(), &cp);
        println!("  original (CNOT):   #2Q = {:>3}, duration = {:>7.2}", orig.count_2q, orig.duration);
        for p in [Pipeline::Tket, Pipeline::ReqiscEff, Pipeline::ReqiscFull] {
            let out = compiler.compile(&program, p);
            let m = metrics(&out, &cp);
            println!(
                "  {:<18} #2Q = {:>3}, duration = {:>7.2}, distinct SU(4) = {}",
                p.name(),
                m.count_2q,
                m.duration,
                // Default SU4_CLASS_TOL grouping — this example used to
                // group at 1e-7, which counted synthesis jitter (~1e-6
                // coordinate noise) as distinct instructions.
                distinct_su4_count(&out)
            );
        }
        println!();
    }
}
