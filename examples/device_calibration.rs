//! Simulated gate calibration (paper §4.5): characterize a device whose
//! true coupling and drive transfer differ from the nominal model, then
//! fine-tune a CNOT pulse to the target Weyl coordinates.
//!
//! ```sh
//! cargo run --release --example device_calibration
//! ```

use reqisc::microarch::{
    calibrate_gate, characterize_coupling, characterize_drive_gain, solve_pulse, Coupling,
    SimulatedDevice,
};
use reqisc::qmath::WeylCoord;

fn main() {
    // The "experiment": 7% coupling error, 7% drive-gain error, drive
    // offset, detuning miscalibration — all unknown to the controller.
    let dev = SimulatedDevice {
        true_coupling: Coupling::xy(1.07),
        gain_omega: 0.93,
        bias_omega: 0.004,
        gain_delta: 1.05,
    };
    let nominal = Coupling::xy(1.0);

    let g = characterize_coupling(&dev, &nominal);
    let gain = characterize_drive_gain(&dev, &nominal, g);
    println!("characterization: g = {g:.4} (true 1.07), drive gain = {gain:.4} (true 0.93)");

    for (name, target) in [
        ("CNOT", WeylCoord::cnot()),
        ("SQiSW", WeylCoord::sqisw()),
        ("B", WeylCoord::b_gate()),
    ] {
        // Naive execution with the nominal model:
        let naive = solve_pulse(&nominal, &target).expect("solvable");
        let naive_err = dev
            .measure_coords(&naive.params, naive.tau)
            .map(|w| w.dist(&target))
            .unwrap_or(f64::NAN);
        // Calibrated:
        let cal = calibrate_gate(&dev, &nominal, &target).expect("calibratable");
        println!(
            "{name:<6} naive coord error = {naive_err:.2e}  calibrated = {:.2e}  ({} tuner steps)",
            cal.coord_error, cal.iterations
        );
    }
}
