//! Bring-your-own Hamiltonian: realize arbitrary two-qubit gates natively
//! on three different device couplings with the genAshN scheme, including
//! the exact 1Q corrections (paper Algorithm 1 end-to-end).
//!
//! ```sh
//! cargo run --release --example pulse_programming
//! ```

use rand::SeedableRng;
use reqisc::microarch::{normal_form, realize_gate, Coupling};
use reqisc::qmath::gates as qg;
use reqisc::qmath::{haar_su4, CMat, C64};

fn show(name: &str, cp: &Coupling, target: &CMat) {
    match realize_gate(cp, target) {
        Ok(r) => {
            let rec = r.reconstruct(cp);
            println!(
                "{name:<18} tau = {:.4}  |Ω1| = {:.3}  |Ω2| = {:.3}  |δ| = {:.3}  residual = {:.1e}",
                r.pulse.tau,
                r.pulse.params.omega1.abs(),
                r.pulse.params.omega2.abs(),
                r.pulse.params.delta.abs(),
                rec.max_dist(target)
            );
        }
        Err(e) => println!("{name:<18} failed: {e}"),
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let random_gate = haar_su4(&mut rng);

    for (label, cp) in [
        ("XY coupling (transmons)", Coupling::xy(1.0)),
        ("XX coupling (trapped ions)", Coupling::xx(1.0)),
        ("anisotropic (a,b,c)=(1,.6,-.2)", Coupling::new(1.0, 0.6, -0.2)),
    ] {
        println!("== {label} ==");
        show("CNOT", &cp, &qg::cnot());
        show("iSWAP", &cp, &qg::iswap());
        show("SWAP", &cp, &qg::swap());
        show("B gate", &cp, &qg::b_gate());
        show("Haar-random SU(4)", &cp, &random_gate);
        println!();
    }

    // The scheme accepts *arbitrary* coupling Hamiltonians: here the
    // lab-frame Hamiltonian of paper Eq. (7), with local Z terms, is
    // brought into normal form first.
    let zi = qg::pauli_z().kron(&qg::id2());
    let iz = qg::id2().kron(&qg::pauli_z());
    let xx = qg::pauli_x().kron(&qg::pauli_x());
    let lab_frame = &(&zi.scale(C64::real(-0.8)) + &iz.scale(C64::real(-0.6)))
        + &xx.scale(C64::real(1.0));
    let nf = normal_form(&lab_frame).expect("normalizable");
    println!(
        "lab-frame Eq.(7) normal form: (a, b, c) = ({:.3}, {:.3}, {:.3}), residual {:.1e}",
        nf.coupling.a,
        nf.coupling.b,
        nf.coupling.c,
        nf.reconstruct().max_dist(&lab_frame)
    );
}
