//! Quickstart: compile a small arithmetic program to the SU(4) ISA and
//! compare it against a conventional CNOT-based flow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reqisc::compiler::{metrics, Compiler, Pipeline};
use reqisc::microarch::{solve_pulse, Coupling};
use reqisc::qcircuit::{Circuit, Gate};
use reqisc::qmath::WeylCoord;

fn main() {
    // A toy arithmetic kernel: two Toffolis and a CNOT (the building
    // blocks of every Type-I benchmark in the paper).
    let mut program = Circuit::new(4);
    program.push(Gate::Ccx(0, 1, 2));
    program.push(Gate::Cx(2, 3));
    program.push(Gate::Ccx(1, 2, 3));

    let compiler = Compiler::new();
    let cp = Coupling::xy(1.0); // flux-tunable transmons

    println!("pipeline      #2Q  depth2Q  duration(g^-1)");
    for p in [Pipeline::Qiskit, Pipeline::ReqiscEff, Pipeline::ReqiscFull] {
        let out = compiler.compile(&program, p);
        let m = metrics(&out, &cp);
        println!(
            "{:<12} {:>4}  {:>7}  {:>10.2}",
            p.name(),
            m.count_2q,
            m.depth_2q,
            m.duration
        );
    }

    // Under the hood every SU(4) instruction becomes one pulse. Here is
    // the pulse program for a CNOT-class gate on this device:
    let pulse = solve_pulse(&cp, &WeylCoord::cnot()).expect("solvable");
    println!(
        "\nCNOT pulse on XY coupling: tau = {:.4} g^-1 ({:?}), \
         omega1 = {:.4}, omega2 = {:.4}, delta = {:.4}, residual = {:.1e}",
        pulse.tau,
        pulse.subscheme,
        pulse.params.omega1,
        pulse.params.omega2,
        pulse.params.delta,
        pulse.residual
    );
}
