//! End-to-end: a Cuccaro ripple-carry adder compiled with template-based
//! synthesis, routed onto a 1D chain with mirroring-SABRE, and validated
//! by noisy simulation (the paper's Fig. 15 flow on one real workload).
//!
//! ```sh
//! cargo run --release --example adder_on_chain
//! ```

use reqisc::benchsuite::generators::ripple_add;
use reqisc::compiler::{
    expand_swaps_to_cx, gate_duration, metrics, route, Compiler, Pipeline, RouteOptions, Router,
    Topology,
};
use reqisc::microarch::Coupling;
use reqisc::qsim::{hellinger_fidelity, ideal_distribution, noisy_distribution, NoiseModel};

fn main() {
    let adder = ripple_add(2); // 2-bit adder on 6 qubits
    let compiler = Compiler::new();
    let cp = Coupling::xy(1.0);
    let topo = Topology::chain(adder.num_qubits());

    // Conventional flow: TKet-like + SABRE, SWAP = 3 CNOTs.
    let base = compiler.compile(&adder, Pipeline::Tket);
    let mut so = RouteOptions::default();
    so.router = Router::Sabre;
    let base_routed = expand_swaps_to_cx(&route(&base, &topo, &so).circuit);

    // ReQISC flow: template synthesis + mirroring-SABRE.
    let req = compiler.compile(&adder, Pipeline::ReqiscEff);
    let req_routed = route(&req, &topo, &RouteOptions::default());
    println!(
        "routing: {} swaps inserted, {} absorbed into SU(4)s",
        req_routed.swaps_inserted, req_routed.swaps_absorbed
    );
    let req_routed = req_routed.circuit;

    for (label, c) in [("cnot-baseline", &base_routed), ("reqisc", &req_routed)] {
        let m = metrics(c, &cp);
        let noise = NoiseModel::duration_scaled(|g| gate_duration(g, &cp));
        let noisy = noisy_distribution(c, &noise, 150, 7);
        let f = hellinger_fidelity(&noisy, &ideal_distribution(c));
        println!(
            "{label:<14} #2Q = {:>3}  duration = {:>7.2} g^-1  fidelity = {:.4}",
            m.count_2q, m.duration, f
        );
    }
}
