//! Eigen-decompositions for the small operators ReQISC manipulates.
//!
//! Three solvers are provided, all based on Jacobi rotations (which are
//! simple, numerically excellent, and easily verified at the 4×4/8×8 sizes
//! used throughout this workspace):
//!
//! * [`eig_real_symmetric`] — real symmetric matrices,
//! * [`eig_hermitian`] — complex Hermitian matrices,
//! * [`simdiag_commuting_symmetric`] — *simultaneous* diagonalization of two
//!   commuting real symmetric matrices, the workhorse of the canonical (KAK)
//!   decomposition in [`crate::kak`].

// lint:allow-file(tolerance-literal, eigensolver convergence and deflation guards; pure numerics)
use crate::c64::{C64, ONE, ZERO};
use crate::mat::CMat;

/// Result of a real symmetric eigendecomposition `A = Q · diag(λ) · Qᵀ`.
#[derive(Debug, Clone)]
pub struct RealEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose columns are the corresponding eigenvectors.
    pub vectors: Vec<Vec<f64>>, // column-major: vectors[j] is eigenvector j
}

/// Diagonalizes a real symmetric matrix with cyclic Jacobi rotations.
///
/// `a` is given row-major with dimension `n × n`. Returns eigenvalues in
/// ascending order with matching eigenvector columns.
///
/// # Panics
///
/// Panics if `a.len() != n * n`.
pub fn eig_real_symmetric(a: &[f64], n: usize) -> RealEig {
    assert_eq!(a.len(), n * n, "shape mismatch");
    let mut m: Vec<f64> = a.to_vec();
    // q starts as identity, accumulates rotations (row-major).
    let mut q = vec![0.0; n * n];
    for i in 0..n {
        q[i * n + i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off < 1e-30 {
            break;
        }
        for p in 0..n {
            for r in p + 1..n {
                let apq = m[p * n + r];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[r * n + r];
                let theta = 0.5 * (aqq - app).atan2(2.0 * apq) + std::f64::consts::FRAC_PI_4;
                // Classic Jacobi angle: tan(2φ) = 2 a_pq / (a_pp - a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let _ = theta;
                let (s, c) = phi.sin_cos();
                // Rotate rows/cols p and r of m: m ← Gᵀ m G with
                // G = [[c, -s], [s, c]] acting on the (p, r) plane.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkr = m[k * n + r];
                    m[k * n + p] = c * mkp + s * mkr;
                    m[k * n + r] = -s * mkp + c * mkr;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mrk = m[r * n + k];
                    m[p * n + k] = c * mpk + s * mrk;
                    m[r * n + k] = -s * mpk + c * mrk;
                }
                for k in 0..n {
                    let qkp = q[k * n + p];
                    let qkr = q[k * n + r];
                    q[k * n + p] = c * qkp + s * qkr;
                    q[k * n + r] = -s * qkp + c * qkr;
                }
            }
        }
    }
    // Extract and sort ascending.
    let mut idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    idx.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());
    let values = idx.iter().map(|&i| vals[i]).collect();
    let vectors = idx
        .iter()
        .map(|&j| (0..n).map(|i| q[i * n + j]).collect())
        .collect();
    RealEig { values, vectors }
}

/// Result of a Hermitian eigendecomposition `H = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct HermEig {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMat,
}

/// Diagonalizes a complex Hermitian matrix with cyclic complex Jacobi
/// rotations.
///
/// # Panics
///
/// Panics if `h` is not square. The Hermiticity of `h` is the caller's
/// responsibility; only the lower/upper averages are used.
pub fn eig_hermitian(h: &CMat) -> HermEig {
    assert!(h.is_square(), "eig of non-square matrix");
    let n = h.rows();
    // Work on the Hermitian average to be robust to tiny asymmetries.
    let mut m = CMat::from_fn(n, n, |i, j| (h[(i, j)] + h[(j, i)].conj()).scale(0.5));
    let mut v = CMat::identity(n);
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)].norm_sqr();
            }
        }
        if off < 1e-30 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-18 {
                    continue;
                }
                // Complex Jacobi: factor out the phase of a_pq, then do a
                // real rotation. G acts on the (p, q) plane as
                // [[c, -s·e^{iφ}], [s·e^{-iφ}, c]] with φ = arg(a_pq).
                let phase = apq.unit();
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let t2 = 2.0 * apq.abs();
                let ang = 0.5 * t2.atan2(app - aqq);
                let (s, c) = ang.sin_cos();
                let gpq = phase.scale(-s); // entry (p,q) of G
                let gqp = phase.conj().scale(s); // entry (q,p) of G
                let gc = C64::real(c);
                // m ← G† m G ; v ← v G
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * gc + mkq * gqp;
                    m[(k, q)] = mkp * gpq + mkq * gc;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = gc * mpk + gqp.conj() * mqk;
                    m[(q, k)] = gpq.conj() * mpk + gc * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * gc + vkq * gqp;
                    v[(k, q)] = vkp * gpq + vkq * gc;
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| vals[i]).collect();
    let vectors = CMat::from_fn(n, n, |i, j| v[(i, idx[j])]);
    HermEig { values, vectors }
}

/// Simultaneously diagonalizes two *commuting* real symmetric matrices.
///
/// Returns an orthogonal `Q` (row-major, `n × n`) such that both `Qᵀ A Q`
/// and `Qᵀ B Q` are diagonal. The strategy is: diagonalize `A`; inside each
/// (near-)degenerate eigenspace of `A`, diagonalize the restriction of `B`.
///
/// This is the key primitive behind the magic-basis KAK decomposition, where
/// `A` and `B` are the real and imaginary parts of the complex symmetric
/// unitary `U_m · U_mᵀ`.
///
/// # Panics
///
/// Panics if the slices are not `n × n`.
pub fn simdiag_commuting_symmetric(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "shape mismatch for a");
    assert_eq!(b.len(), n * n, "shape mismatch for b");
    let ea = eig_real_symmetric(a, n);
    // q columns = eigenvectors of a, ordered ascending.
    let mut q: Vec<f64> = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            q[i * n + j] = ea.vectors[j][i];
        }
    }
    // b' = Qᵀ B Q
    let bq = mat_mul_real(b, &q, n);
    let bt = mat_mul_real(&transpose_real(&q, n), &bq, n);
    // Group degenerate clusters of A's spectrum.
    let tol = 1e-9 * (1.0 + ea.values.iter().fold(0.0f64, |m, v| m.max(v.abs())));
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (ea.values[end] - ea.values[start]).abs() <= tol {
            end += 1;
        }
        let k = end - start;
        if k > 1 {
            // Diagonalize the k×k block of bt.
            let mut blk = vec![0.0; k * k];
            for i in 0..k {
                for j in 0..k {
                    blk[i * k + j] = bt[(start + i) * n + (start + j)];
                }
            }
            let eb = eig_real_symmetric(&blk, k);
            // Rotate the corresponding columns of q by eb's eigenvectors.
            let mut newcols = vec![0.0; n * k];
            for j in 0..k {
                for i in 0..n {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += q[i * n + (start + l)] * eb.vectors[j][l];
                    }
                    newcols[i * k + j] = acc;
                }
            }
            for j in 0..k {
                for i in 0..n {
                    q[i * n + (start + j)] = newcols[i * k + j];
                }
            }
        }
        start = end;
    }
    q
}

fn mat_mul_real(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let v = a[i * n + k];
            if v == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += v * b[k * n + j];
            }
        }
    }
    out
}

fn transpose_real(a: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[j * n + i] = a[i * n + j];
        }
    }
    out
}

/// Converts a row-major real matrix to a [`CMat`].
pub fn real_to_cmat(a: &[f64], n: usize) -> CMat {
    CMat::from_fn(n, n, |i, j| C64::real(a[i * n + j]))
}

/// Reconstructs `V · diag(e^{iθ_k}) · V†` from phases and a unitary.
pub fn unitary_from_phases(phases: &[f64], v: &CMat) -> CMat {
    let d = CMat::diag(&phases.iter().map(|&t| C64::cis(t)).collect::<Vec<_>>());
    v.mul_mat(&d).mul_mat(&v.adjoint())
}

#[allow(unused_imports)]
use crate::c64; // keep ZERO/ONE referenced for doc builds

const _: C64 = ZERO;
const _: C64 = ONE;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        a
    }

    #[test]
    fn real_symmetric_reconstruction() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 4, 6, 8] {
            let a = random_symmetric(n, &mut rng);
            let e = eig_real_symmetric(&a, n);
            // Check A v = λ v for every pair.
            for j in 0..n {
                for i in 0..n {
                    let mut av = 0.0;
                    for k in 0..n {
                        av += a[i * n + k] * e.vectors[j][k];
                    }
                    assert!(
                        (av - e.values[j] * e.vectors[j][i]).abs() < 1e-9,
                        "eigenpair residual too large at n={n}"
                    );
                }
            }
            // Eigenvalues ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn hermitian_reconstruction() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 8] {
            let h = CMat::from_fn(n, n, |i, j| {
                if i == j {
                    C64::real(rng.gen_range(-1.0..1.0))
                } else {
                    C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                }
            });
            let h = CMat::from_fn(n, n, |i, j| (h[(i, j)] + h[(j, i)].conj()).scale(0.5));
            let e = eig_hermitian(&h);
            let d = CMat::diag(&e.values.iter().map(|&v| C64::real(v)).collect::<Vec<_>>());
            let rec = e.vectors.mul_mat(&d).mul_mat(&e.vectors.adjoint());
            assert!(rec.approx_eq(&h, 1e-9), "hermitian reconstruction failed n={n}");
            assert!(e.vectors.is_unitary(1e-10));
        }
    }

    #[test]
    fn hermitian_degenerate_spectrum() {
        // Pauli X ⊗ I has eigenvalues {±1, ±1} (degenerate).
        let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let h = x.kron(&CMat::identity(2));
        let e = eig_hermitian(&h);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[3] - 1.0).abs() < 1e-12);
        let d = CMat::diag(&e.values.iter().map(|&v| C64::real(v)).collect::<Vec<_>>());
        let rec = e.vectors.mul_mat(&d).mul_mat(&e.vectors.adjoint());
        assert!(rec.approx_eq(&h, 1e-10));
    }

    #[test]
    fn simdiag_on_commuting_pair() {
        let mut rng = StdRng::seed_from_u64(3);
        // Build commuting symmetric pair: both diagonal in a common random
        // orthogonal basis, with deliberate degeneracies in the first.
        let n = 4;
        let g = random_symmetric(n, &mut rng);
        let e = eig_real_symmetric(&g, n);
        let mut q0 = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                q0[i * n + j] = e.vectors[j][i];
            }
        }
        let da = [1.0, 1.0, 2.0, 2.0]; // degenerate
        let db = [0.5, -0.5, 3.0, 7.0];
        let mk = |d: &[f64]| {
            let mut m = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += q0[i * n + k] * d[k] * q0[j * n + k];
                    }
                    m[i * n + j] = acc;
                }
            }
            m
        };
        let a = mk(&da);
        let b = mk(&db);
        let q = simdiag_commuting_symmetric(&a, &b, n);
        // Verify both QᵀAQ and QᵀBQ diagonal.
        for (mat, name) in [(&a, "A"), (&b, "B")] {
            let mq = mat_mul_real(mat, &q, n);
            let d = mat_mul_real(&transpose_real(&q, n), &mq, n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        assert!(d[i * n + j].abs() < 1e-8, "{name} off-diag {}", d[i * n + j]);
                    }
                }
            }
        }
        // Q orthogonal.
        let qtq = mat_mul_real(&transpose_real(&q, n), &q, n);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[i * n + j] - want).abs() < 1e-10);
            }
        }
    }
}
