//! Haar-random unitary sampling.
//!
//! Table 3 of the paper benchmarks the microarchitecture over 10⁵
//! Haar-random SU(4) targets; [`haar_su4`] provides those samples. Sampling
//! uses the Ginibre + QR construction (QR implemented as modified
//! Gram–Schmidt with the phase-of-R diagonal correction that makes the
//! distribution exactly Haar).

use crate::c64::C64;
use crate::mat::CMat;
use rand::Rng;

/// Samples a standard complex Gaussian entry.
fn gaussian_c64<R: Rng + ?Sized>(rng: &mut R) -> C64 {
    // Box–Muller.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = (-2.0 * u1.ln()).sqrt();
    C64::new(r * u2.cos(), r * u2.sin())
}

/// Samples an `n × n` Haar-random unitary.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let u = reqisc_qmath::haar_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMat {
    let g = CMat::from_fn(n, n, |_, _| gaussian_c64(rng));
    // Modified Gram–Schmidt on columns, recording the R diagonal.
    let mut q = g;
    let mut rdiag = vec![C64::default(); n];
    for j in 0..n {
        for k in 0..j {
            let mut ip = C64::default();
            for i in 0..n {
                ip += q[(i, k)].conj() * q[(i, j)];
            }
            for i in 0..n {
                let v = q[(i, k)];
                q[(i, j)] -= ip * v;
            }
        }
        let norm = (0..n).map(|i| q[(i, j)].norm_sqr()).sum::<f64>().sqrt();
        rdiag[j] = C64::real(norm);
        for i in 0..n {
            q[(i, j)] = q[(i, j)] / norm;
        }
    }
    // For Ginibre input, R's diagonal is positive real after MGS, so the
    // phase correction diag(r_jj/|r_jj|) is the identity and Q is already
    // Haar-distributed.
    q
}

/// Samples a Haar-random element of SU(2).
pub fn haar_su2<R: Rng + ?Sized>(rng: &mut R) -> CMat {
    let u = haar_unitary(2, rng);
    u.scale(u.det().sqrt().recip())
}

/// Samples a Haar-random element of SU(4).
pub fn haar_su4<R: Rng + ?Sized>(rng: &mut R) -> CMat {
    let u = haar_unitary(4, rng);
    // det^{1/4}: divide by any fourth root; Haar measure is invariant.
    let d = u.det();
    let root = C64::cis(d.arg() / 4.0);
    u.scale(root.recip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64::ONE;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(123);
        for n in [2usize, 4, 8] {
            let u = haar_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-10), "n = {n}");
        }
    }

    #[test]
    fn special_unitaries_have_unit_det() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let a = haar_su2(&mut rng);
            assert!((a.det() - ONE).abs() < 1e-10);
            let b = haar_su4(&mut rng);
            assert!((b.det() - ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn samples_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = haar_su4(&mut rng);
        let b = haar_su4(&mut rng);
        assert!(a.max_dist(&b) > 1e-3, "independent samples should differ");
    }

    #[test]
    fn first_moment_vanishes() {
        // E[U] = 0 for Haar measure; check the empirical mean is small.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400;
        let mut acc = CMat::zeros(2, 2);
        for _ in 0..n {
            acc = &acc + &haar_unitary(2, &mut rng);
        }
        acc = acc.scale(C64::real(1.0 / n as f64));
        assert!(acc.fro_norm() < 0.15, "mean too large: {}", acc.fro_norm());
    }
}
