//! The magic (Bell) basis and Kronecker factorization.
//!
//! In the magic basis two-qubit local unitaries become real orthogonal
//! matrices and canonical gates become diagonal — the foundation of the KAK
//! decomposition in [`crate::kak`].

// lint:allow-file(tolerance-literal, basis-transform degeneracy guards; pure numerics)
use crate::c64::{C64, I, ONE, ZERO};
use crate::mat::CMat;
use crate::gates::{pauli_x, pauli_y, pauli_z};

/// The magic-basis change matrix
/// `M = (1/√2)·[[1,0,0,i],[0,i,1,0],[0,i,-1,0],[1,0,0,-i]]`.
pub fn magic_basis() -> CMat {
    let s = C64::real(1.0 / std::f64::consts::SQRT_2);
    CMat::from_slice(
        4,
        4,
        &[
            ONE, ZERO, ZERO, I, //
            ZERO, I, ONE, ZERO, //
            ZERO, I, -ONE, ZERO, //
            ONE, ZERO, ZERO, -I,
        ],
    )
    .scale(s)
}

/// Conjugates into the magic basis: `M† · U · M`.
pub fn to_magic(u: &CMat) -> CMat {
    let m = magic_basis();
    m.adjoint().mul_mat(u).mul_mat(&m)
}

/// Conjugates out of the magic basis: `M · U · M†`.
pub fn from_magic(u: &CMat) -> CMat {
    let m = magic_basis();
    m.mul_mat(u).mul_mat(&m.adjoint())
}

/// The diagonals of `M†(XX)M`, `M†(YY)M`, `M†(ZZ)M`.
///
/// These three ±1 vectors, together with `(1,1,1,1)`, form an orthogonal
/// basis of R⁴; projecting eigenphases onto them recovers Weyl coordinates.
pub fn magic_pauli_diagonals() -> ([f64; 4], [f64; 4], [f64; 4]) {
    let take_diag = |p: &CMat| -> [f64; 4] {
        let d = to_magic(p);
        let mut out = [0.0; 4];
        for (k, o) in out.iter_mut().enumerate() {
            *o = d[(k, k)].re;
            debug_assert!(d[(k, k)].im.abs() < 1e-12);
        }
        out
    };
    (
        take_diag(&pauli_x().kron(&pauli_x())),
        take_diag(&pauli_y().kron(&pauli_y())),
        take_diag(&pauli_z().kron(&pauli_z())),
    )
}

/// Error from [`kron_factor`] when the input is not a Kronecker product.
#[derive(Debug, Clone, PartialEq)]
pub struct KronFactorError {
    /// Residual `max|G - g·(A⊗B)|` of the best attempt.
    pub residual: f64,
}

impl std::fmt::Display for KronFactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not a Kronecker product of unitaries (residual {:.3e})",
            self.residual
        )
    }
}

impl std::error::Error for KronFactorError {}

/// Factors a 4×4 matrix `G ≈ g·(A ⊗ B)` with `A, B ∈ SU(2)` and `|g| = 1`.
///
/// # Errors
///
/// Returns [`KronFactorError`] when `G` is not (numerically) a Kronecker
/// product of unitaries within `tol`.
pub fn kron_factor(g: &CMat, tol: f64) -> Result<(C64, CMat, CMat), KronFactorError> {
    assert_eq!((g.rows(), g.cols()), (4, 4), "kron_factor expects 4x4");
    // Locate the entry of maximum modulus.
    let (mut r, mut c, mut best) = (0usize, 0usize, -1.0f64);
    for i in 0..4 {
        for j in 0..4 {
            let v = g[(i, j)].abs();
            if v > best {
                best = v;
                r = i;
                c = j;
            }
        }
    }
    let (i0, k0, j0, l0) = (r >> 1, r & 1, c >> 1, c & 1);
    // G[(i<<1)|k][(j<<1)|l] = A_ij · B_kl.
    let mut a = CMat::zeros(2, 2);
    let mut b = CMat::zeros(2, 2);
    for k in 0..2 {
        for l in 0..2 {
            b[(k, l)] = g[((i0 << 1) | k, (j0 << 1) | l)];
        }
    }
    for i in 0..2 {
        for j in 0..2 {
            a[(i, j)] = g[((i << 1) | k0, (j << 1) | l0)];
        }
    }
    // a⊗b = G·G[r][c]; normalize each factor to SU(2).
    let norm_su2 = |m: &CMat| -> Option<CMat> {
        let d = m.det();
        if d.abs() < 1e-18 {
            return None;
        }
        Some(m.scale(d.sqrt().recip()))
    };
    let (a, b) = match (norm_su2(&a), norm_su2(&b)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(KronFactorError { residual: f64::INFINITY }),
    };
    // Global phase from the Hilbert–Schmidt overlap.
    let phase = a.kron(&b).hs_inner(g).scale(0.25);
    let rec = a.kron(&b).scale(phase);
    let residual = rec.max_dist(g);
    if residual > tol {
        return Err(KronFactorError { residual });
    }
    Ok((phase, a, b))
}

/// Transports an SO(4) matrix through the magic basis into `SU(2)⊗SU(2)`.
///
/// # Errors
///
/// Returns [`KronFactorError`] if `o` is not (numerically) in SO(4).
pub fn so4_to_su2_pair(o: &CMat) -> Result<(C64, CMat, CMat), KronFactorError> {
    // The tolerance is looser than machine precision because inputs are
    // products of long gate chains; the KAK caller re-verifies the full
    // reconstruction at 1e-6 anyway.
    kron_factor(&from_magic(o), 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{canonical_gate, hadamard, u3};
    use crate::haar::haar_su2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn magic_is_unitary() {
        assert!(magic_basis().is_unitary(1e-14));
    }

    #[test]
    fn canonical_is_diagonal_in_magic_basis() {
        let c = canonical_gate(0.3, 0.2, 0.1);
        let cm = to_magic(&c);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(cm[(i, j)].abs() < 1e-12, "off-diagonal {}", cm[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn pauli_diagonals_are_orthogonal_sign_vectors() {
        let (dx, dy, dz) = magic_pauli_diagonals();
        for d in [dx, dy, dz] {
            for v in d {
                assert!((v.abs() - 1.0).abs() < 1e-12);
            }
            assert!(d.iter().sum::<f64>().abs() < 1e-12, "not orthogonal to ones");
        }
        let dot = |a: &[f64; 4], b: &[f64; 4]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        assert!(dot(&dx, &dy).abs() < 1e-12);
        assert!(dot(&dx, &dz).abs() < 1e-12);
        assert!(dot(&dy, &dz).abs() < 1e-12);
    }

    #[test]
    fn local_unitary_is_real_in_magic_basis() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let a = haar_su2(&mut rng);
            let b = haar_su2(&mut rng);
            let loc = a.kron(&b);
            let m = to_magic(&loc);
            assert!(m.is_real(1e-10), "SU(2)⊗SU(2) not real in magic basis");
        }
    }

    #[test]
    fn kron_factor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let a = haar_su2(&mut rng);
            let b = haar_su2(&mut rng);
            let g0 = C64::cis(0.77);
            let g = a.kron(&b).scale(g0);
            let (phase, fa, fb) = kron_factor(&g, 1e-9).expect("factorizable");
            assert!(fa.kron(&fb).scale(phase).approx_eq(&g, 1e-10));
            assert!((fa.det() - crate::c64::ONE).abs() < 1e-10);
            assert!((fb.det() - crate::c64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn kron_factor_rejects_entangling() {
        let cx = crate::gates::cnot();
        assert!(kron_factor(&cx, 1e-8).is_err());
    }

    #[test]
    fn kron_factor_handles_structured_locals() {
        // Gates with many zero entries exercise the max-entry bookkeeping.
        let g = hadamard().kron(&u3(0.0, 0.3, 0.4));
        let (phase, a, b) = kron_factor(&g, 1e-9).expect("factorizable");
        assert!(a.kron(&b).scale(phase).approx_eq(&g, 1e-10));
    }
}
