//! Matrix exponentials of Hamiltonians.
//!
//! The genAshN microarchitecture verifies its pulse solutions by evolving
//! `e^{-i(H + H₁ + H₂)τ}` exactly. Since every Hamiltonian here is Hermitian
//! the exponential is computed spectrally via [`crate::eig::eig_hermitian`].

// lint:allow-file(tolerance-literal, series-truncation guard; pure numerics)
use crate::c64::C64;
use crate::eig::eig_hermitian;
use crate::mat::CMat;

/// Computes `e^{-i·H·t}` for a Hermitian `H`.
///
/// # Panics
///
/// Panics if `h` is not square.
///
/// # Examples
///
/// ```
/// use reqisc_qmath::{expm_i_hermitian, CMat};
/// use std::f64::consts::PI;
/// let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// // e^{-i X π/2} = -i X
/// let u = expm_i_hermitian(&x, PI / 2.0);
/// assert!((u[(0, 1)].im + 1.0).abs() < 1e-12);
/// ```
pub fn expm_i_hermitian(h: &CMat, t: f64) -> CMat {
    assert!(h.is_square(), "expm of non-square matrix");
    let e = eig_hermitian(h);
    let n = h.rows();
    let d = CMat::diag(
        &e.values
            .iter()
            .map(|&lam| C64::cis(-lam * t))
            .collect::<Vec<_>>(),
    );
    let _ = n;
    e.vectors.mul_mat(&d).mul_mat(&e.vectors.adjoint())
}

/// Computes `e^{A}` for a general (small) matrix via scaling-and-squaring
/// with a truncated Taylor series.
///
/// Used only in tests and diagnostics; the hot paths use
/// [`expm_i_hermitian`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm(a: &CMat) -> CMat {
    assert!(a.is_square(), "expm of non-square matrix");
    let n = a.rows();
    let norm = a.fro_norm();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(C64::real(1.0 / (2f64.powi(s as i32))));
    let mut term = CMat::identity(n);
    let mut sum = CMat::identity(n);
    for k in 1..=24 {
        term = term.mul_mat(&scaled).scale(C64::real(1.0 / k as f64));
        sum = &sum + &term;
        if term.fro_norm() < 1e-18 {
            break;
        }
    }
    for _ in 0..s {
        sum = sum.mul_mat(&sum);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64::I;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exp_of_zero_is_identity() {
        let z = CMat::zeros(4, 4);
        assert!(expm(&z).approx_eq(&CMat::identity(4), 1e-14));
        assert!(expm_i_hermitian(&z, 1.0).approx_eq(&CMat::identity(4), 1e-12));
    }

    #[test]
    fn hermitian_exp_is_unitary() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let h0 = CMat::from_fn(4, 4, |_, _| {
                C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let h = CMat::from_fn(4, 4, |i, j| (h0[(i, j)] + h0[(j, i)].conj()).scale(0.5));
            let u = expm_i_hermitian(&h, 0.7);
            assert!(u.is_unitary(1e-10));
        }
    }

    #[test]
    fn spectral_matches_taylor() {
        let mut rng = StdRng::seed_from_u64(17);
        let h0 = CMat::from_fn(4, 4, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let h = CMat::from_fn(4, 4, |i, j| (h0[(i, j)] + h0[(j, i)].conj()).scale(0.5));
        let t = 1.3;
        let a = expm_i_hermitian(&h, t);
        let b = expm(&h.scale(I.scale(-t)));
        assert!(a.approx_eq(&b, 1e-10));
    }

    #[test]
    fn group_property() {
        let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let a = expm_i_hermitian(&x, 0.4);
        let b = expm_i_hermitian(&x, 0.6);
        let ab = a.mul_mat(&b);
        assert!(ab.approx_eq(&expm_i_hermitian(&x, 1.0), 1e-12));
    }
}
