//! Weyl-chamber coordinates of two-qubit gates.
//!
//! A gate's nonlocal content is the point `(x, y, z)` with
//! `U ~ Can(x, y, z) = e^{-i(x·XX + y·YY + z·ZZ)}` (paper §2.2). The
//! canonical chamber is `W = {π/4 ≥ x ≥ y ≥ |z|, z ≥ 0 if x = π/4}`.

use crate::fingerprint::quantize;
use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};
use std::fmt;

/// Tolerance used by chamber predicates and coordinate comparisons.
pub const WEYL_EPS: f64 = 1e-9;

/// The SU(4) instruction-class grouping tolerance used by calibration
/// consumers and the compilation cache (paper §5.3.1 / §6.5): synthesis
/// converges to ~1e-11 infidelity, leaving ~1e-6 coordinate noise, so
/// grouping tighter than 1e-5 over-splits identical instructions.
pub const SU4_CLASS_TOL: f64 = 1e-5;

/// A point in (or near) the Weyl chamber.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeylCoord {
    /// Coefficient of `XX`.
    pub x: f64,
    /// Coefficient of `YY`.
    pub y: f64,
    /// Coefficient of `ZZ`.
    pub z: f64,
}

impl WeylCoord {
    /// Creates a coordinate triple (not necessarily canonical).
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The origin (identity-gate class).
    pub const fn identity() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Coordinates of the CNOT/CZ class.
    pub const fn cnot() -> Self {
        Self::new(FRAC_PI_4, 0.0, 0.0)
    }

    /// Coordinates of the iSWAP class.
    pub const fn iswap() -> Self {
        Self::new(FRAC_PI_4, FRAC_PI_4, 0.0)
    }

    /// Coordinates of the SWAP class.
    pub const fn swap() -> Self {
        Self::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4)
    }

    /// Coordinates of the SQiSW (√iSWAP) class.
    pub const fn sqisw() -> Self {
        Self::new(FRAC_PI_8, FRAC_PI_8, 0.0)
    }

    /// Coordinates of the B-gate class.
    pub const fn b_gate() -> Self {
        Self::new(FRAC_PI_4, FRAC_PI_8, 0.0)
    }

    /// Coordinates of the ECP class.
    pub const fn ecp() -> Self {
        Self::new(FRAC_PI_4, FRAC_PI_8, FRAC_PI_8)
    }

    /// True when the triple lies in the canonical Weyl chamber
    /// `π/4 ≥ x ≥ y ≥ |z|` with `z ≥ 0` on the `x = π/4` face.
    pub fn in_chamber(&self) -> bool {
        let Self { x, y, z } = *self;
        let ok = x <= FRAC_PI_4 + WEYL_EPS
            && x >= y - WEYL_EPS
            && y >= z.abs() - WEYL_EPS
            && y >= -WEYL_EPS;
        let face = x < FRAC_PI_4 - WEYL_EPS || z >= -WEYL_EPS;
        ok && face
    }

    /// L1 norm `|x| + |y| + |z|` — the paper's near-identity criterion
    /// (§4.3, Fig. 5a): gates with `‖(x,y,z)‖₁ ≤ r` are mirrored.
    pub fn l1_norm(&self) -> f64 {
        self.x.abs() + self.y.abs() + self.z.abs()
    }

    /// Euclidean distance to another coordinate triple.
    pub fn dist(&self, other: &Self) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// True when within `tol` (component-wise) of `other`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol
            && (self.y - other.y).abs() <= tol
            && (self.z - other.z).abs() <= tol
    }

    /// Canonical coordinates of the *mirror gate* `SWAP · Can(x, y, z)`
    /// (paper §4.3):
    ///
    /// ```text
    /// SWAP·Can(x,y,z) ~ Can(π/4-z, π/4-y, x-π/4)   if z ≥ 0
    ///                   Can(π/4+z, π/4-y, π/4-x)   if z < 0
    /// ```
    pub fn mirror(&self) -> Self {
        let Self { x, y, z } = *self;
        if z >= 0.0 {
            Self::new(FRAC_PI_4 - z, FRAC_PI_4 - y, x - FRAC_PI_4)
        } else {
            Self::new(FRAC_PI_4 + z, FRAC_PI_4 - y, FRAC_PI_4 - x)
        }
    }

    /// True when this gate class is "near identity" under threshold `r`
    /// and should be mirrored before pulse-level realization (§4.3).
    pub fn is_near_identity(&self, r: f64) -> bool {
        self.l1_norm() <= r
    }

    /// The locally-equivalent mirror image `(π/2 - x, y, -z)` used to extend
    /// the chamber (Appendix A.1, `W_ext`).
    pub fn ext_image(&self) -> Self {
        Self::new(std::f64::consts::FRAC_PI_2 - self.x, self.y, -self.z)
    }

    /// The four magic-basis eigenphases `φ_k` of `Can(x, y, z)`, ordered
    /// by Bell state as `[Φ⁺, Φ⁻, Ψ⁺, Ψ⁻]`:
    ///
    /// ```text
    /// φ(Φ⁺) = −(x − y + z)    φ(Φ⁻) = −(−x + y + z)
    /// φ(Ψ⁺) = −(x + y − z)    φ(Ψ⁻) = +(x + y + z)
    /// ```
    ///
    /// The *squared* phases `2φ_k` are the eigenphases of `U_m·U_mᵀ`
    /// (see [`crate::kak::local_invariant_trace`]); each maps to one
    /// linear combination of the coordinates because the Bell states
    /// diagonalize `XX`, `YY`, and `ZZ` simultaneously. The EA solver's
    /// boundary curves are level sets of these phases.
    pub fn magic_eigenphases(&self) -> [f64; 4] {
        let Self { x, y, z } = *self;
        [-(x - y + z), -(-x + y + z), -(x + y - z), x + y + z]
    }

    /// Target-side counterpart of [`crate::kak::local_invariant_trace`]:
    /// `Σ_k e^{2iφ_k}` over [`WeylCoord::magic_eigenphases`]. A two-qubit
    /// unitary is locally equivalent to `Can(x, y, z)` exactly when its
    /// trace invariant equals this value *and* one eigenvalue is pinned
    /// (the EA subschemes pin one Bell phase by construction).
    pub fn local_invariant_trace(&self) -> crate::c64::C64 {
        let mut s = crate::c64::C64::real(0.0);
        for p in self.magic_eigenphases() {
            s += crate::c64::C64::cis(2.0 * p);
        }
        s
    }

    /// Hashable *class key*: the coordinates quantized to `tol`-sized
    /// buckets. Gates whose coordinates agree within `tol` — the same
    /// SU(4) instruction under the paper's §5.3.1 grouping — usually share
    /// a key; a bucket-edge straddler lands in a neighbouring key, which
    /// can only cost a cache miss, never alias distinct classes beyond
    /// `tol`. Used by the compilation service's memo tables (group at
    /// ≥ 1e-5: synthesis converges to ~1e-11 infidelity, leaving ~1e-6
    /// coordinate noise).
    pub fn class_key(&self, tol: f64) -> WeylClassKey {
        WeylClassKey([
            quantize(self.x, tol),
            quantize(self.y, tol),
            quantize(self.z, tol),
        ])
    }
}

/// Quantized Weyl coordinates — a hashable stand-in for "same SU(4)
/// instruction class at the grouping tolerance". See
/// [`WeylCoord::class_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeylClassKey(pub [i64; 3]);

impl fmt::Display for WeylCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_gates_are_canonical() {
        for c in [
            WeylCoord::identity(),
            WeylCoord::cnot(),
            WeylCoord::iswap(),
            WeylCoord::swap(),
            WeylCoord::sqisw(),
            WeylCoord::b_gate(),
            WeylCoord::ecp(),
        ] {
            assert!(c.in_chamber(), "{c} not in chamber");
        }
    }

    #[test]
    fn chamber_rejects_outsiders() {
        assert!(!WeylCoord::new(1.0, 0.0, 0.0).in_chamber());
        assert!(!WeylCoord::new(0.1, 0.2, 0.0).in_chamber()); // x < y
        assert!(!WeylCoord::new(0.2, 0.1, 0.15).in_chamber()); // y < |z|
        assert!(!WeylCoord::new(FRAC_PI_4, 0.2, -0.1).in_chamber()); // face rule
        // Negative z is fine off the face.
        assert!(WeylCoord::new(0.2, 0.15, -0.1).in_chamber());
    }

    #[test]
    fn mirror_of_identity_is_swap() {
        let m = WeylCoord::identity().mirror();
        // (π/4, π/4, -π/4) ~ SWAP class: |z| = π/4 = y = x.
        assert!((m.x - FRAC_PI_4).abs() < 1e-12);
        assert!((m.y - FRAC_PI_4).abs() < 1e-12);
        assert!((m.z.abs() - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn mirror_of_swap_is_identity_class() {
        let m = WeylCoord::swap().mirror();
        assert!(m.l1_norm() < 1e-12);
    }

    #[test]
    fn mirror_moves_near_identity_away() {
        let c = WeylCoord::new(0.05, 0.02, 0.01);
        assert!(c.is_near_identity(0.1));
        assert!(!c.mirror().is_near_identity(0.3));
    }

    #[test]
    fn mirror_negative_z_branch() {
        let c = WeylCoord::new(0.2, 0.1, -0.05);
        let m = c.mirror();
        assert!((m.x - (FRAC_PI_4 - 0.05)).abs() < 1e-12);
        assert!((m.y - (FRAC_PI_4 - 0.1)).abs() < 1e-12);
        assert!((m.z - (FRAC_PI_4 - 0.2)).abs() < 1e-12);
    }

    #[test]
    fn class_key_groups_within_tolerance() {
        let tol = 1e-5;
        let a = WeylCoord::new(0.700000, 0.300000, 0.100000);
        let b = WeylCoord::new(0.700003, 0.299998, 0.100002);
        assert_eq!(a.class_key(tol), b.class_key(tol));
        // Clearly distinct classes never share a key.
        assert_ne!(
            WeylCoord::cnot().class_key(tol),
            WeylCoord::iswap().class_key(tol)
        );
        assert_ne!(
            WeylCoord::identity().class_key(tol),
            WeylCoord::sqisw().class_key(tol)
        );
        // -0.0 and 0.0 coordinates agree.
        assert_eq!(
            WeylCoord::new(0.2, 0.1, -0.0).class_key(tol),
            WeylCoord::new(0.2, 0.1, 0.0).class_key(tol)
        );
    }

    #[test]
    fn ext_image_involution() {
        let c = WeylCoord::new(0.2, 0.1, 0.05);
        let e = c.ext_image().ext_image();
        assert!(c.approx_eq(&e, 1e-14));
    }
}
