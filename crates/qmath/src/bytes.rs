//! Bounds-checked little-endian binary codec for the persistent cache
//! store.
//!
//! The on-disk cache format (see `reqisc-compiler`'s `store` module) is a
//! flat byte stream assembled from these primitives. Two invariants every
//! codec in the workspace must keep:
//!
//! * **Determinism** — encoding the same value twice yields the same
//!   bytes (f64s are written as raw IEEE-754 bits, `-0.0` included: the
//!   store round-trips values *exactly*, canonicalization is the cache
//!   key's job, not the codec's).
//! * **Total decoding** — a [`ByteReader`] never panics on malformed
//!   input; every read is bounds-checked and returns [`CodecError`] so a
//!   truncated or corrupted store file degrades to a clean cold start.
//!
//! Layout changes to any codec built on these primitives must bump the
//! store's format version (decoders are not expected to skip unknown
//! fields).

use crate::c64::C64;
use crate::kak::Kak;
use crate::mat::CMat;
use crate::weyl::WeylCoord;

/// Error produced by [`ByteReader`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What failed to decode.
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode failed: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

impl CodecError {
    /// Shorthand constructor.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (borrowed).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` (little-endian).
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` for layout independence.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends the raw IEEE-754 bits of `v`.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix — callers frame themselves).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked reader over an immutable byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "unexpected end of input: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting overflow (a
    /// corrupted length field must fail cleanly on 32-bit hosts too).
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::new(format!("length {v} overflows usize")))
    }

    /// Reads a `u64` length field and validates it against the bytes
    /// actually remaining, scaled by the minimum encoded size of one
    /// element — the guard that keeps a corrupted count from triggering a
    /// huge up-front allocation.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(CodecError::new(format!(
                "count {n} needs ≥ {need} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads raw IEEE-754 bits as `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Borrows the next `len` raw bytes (bounds-checked) — the reader
    /// half of [`ByteWriter::put_bytes`] for length-prefixed blobs.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        self.take(len)
    }
}

/// Encodes a complex scalar as `(re, im)` raw bits.
pub fn write_c64(w: &mut ByteWriter, z: C64) {
    w.put_f64(z.re);
    w.put_f64(z.im);
}

/// Decodes a complex scalar.
pub fn read_c64(r: &mut ByteReader<'_>) -> Result<C64, CodecError> {
    let re = r.get_f64()?;
    let im = r.get_f64()?;
    Ok(C64 { re, im })
}

/// Encodes a matrix: `rows, cols` then row-major `(re, im)` pairs.
pub fn write_cmat(w: &mut ByteWriter, m: &CMat) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            write_c64(w, m[(i, j)]);
        }
    }
}

/// Decodes a matrix, rejecting dimensions larger than the remaining
/// input could possibly hold.
pub fn read_cmat(r: &mut ByteReader<'_>) -> Result<CMat, CodecError> {
    let rows = r.get_usize()?;
    let cols = r.get_usize()?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| CodecError::new("matrix dimensions overflow"))?;
    if n.saturating_mul(16) > r.remaining() {
        return Err(CodecError::new(format!(
            "{rows}x{cols} matrix needs {} bytes, {} remain",
            n.saturating_mul(16),
            r.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_c64(r)?);
    }
    Ok(CMat::from_slice(rows, cols, &data))
}

/// Encodes Weyl coordinates as three raw f64s.
pub fn write_weyl(w: &mut ByteWriter, c: &WeylCoord) {
    w.put_f64(c.x);
    w.put_f64(c.y);
    w.put_f64(c.z);
}

/// Decodes Weyl coordinates.
pub fn read_weyl(r: &mut ByteReader<'_>) -> Result<WeylCoord, CodecError> {
    Ok(WeylCoord::new(r.get_f64()?, r.get_f64()?, r.get_f64()?))
}

/// Encodes a KAK decomposition (phase, four local gates, coordinates).
pub fn write_kak(w: &mut ByteWriter, k: &Kak) {
    write_c64(w, k.phase);
    write_cmat(w, &k.a1);
    write_cmat(w, &k.a2);
    write_weyl(w, &k.coords);
    write_cmat(w, &k.b1);
    write_cmat(w, &k.b2);
}

/// Decodes a KAK decomposition.
pub fn read_kak(r: &mut ByteReader<'_>) -> Result<Kak, CodecError> {
    Ok(Kak {
        phase: read_c64(r)?,
        a1: read_cmat(r)?,
        a2: read_cmat(r)?,
        coords: read_weyl(r)?,
        b1: read_cmat(r)?,
        b2: read_cmat(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::kak::kak_decompose;

    #[test]
    fn primitive_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_usize(99);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128().unwrap(), 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 99);
        // -0.0 round-trips bit-exactly (the codec never canonicalizes).
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64().is_err());
        assert_eq!(r.get_u8().unwrap(), 1); // position unchanged by failures
        let mut r2 = ByteReader::new(&bytes);
        assert!(r2.get_u128().is_err());
        assert!(r2.get_f64().is_err());
    }

    #[test]
    fn count_guard_rejects_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_count(8).is_err());
    }

    #[test]
    fn cmat_roundtrip_and_dimension_guard() {
        for m in [gates::cnot(), gates::hadamard(), gates::swap()] {
            let mut w = ByteWriter::new();
            write_cmat(&mut w, &m);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = read_cmat(&mut r).expect("roundtrip");
            assert!(r.is_exhausted());
            assert_eq!(back.rows(), m.rows());
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    assert_eq!(back[(i, j)].re.to_bits(), m[(i, j)].re.to_bits());
                    assert_eq!(back[(i, j)].im.to_bits(), m[(i, j)].im.to_bits());
                }
            }
        }
        // A forged huge dimension fails fast instead of allocating.
        let mut w = ByteWriter::new();
        w.put_usize(1 << 40);
        w.put_usize(1 << 40);
        let bytes = w.into_bytes();
        assert!(read_cmat(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn kak_roundtrip_reconstructs_identically() {
        let k = kak_decompose(&gates::cnot()).expect("kak");
        let mut w = ByteWriter::new();
        write_kak(&mut w, &k);
        let bytes = w.into_bytes();
        let back = read_kak(&mut ByteReader::new(&bytes)).expect("roundtrip");
        assert!(back.reconstruct().approx_eq(&k.reconstruct(), 0.0), "bit-exact reconstruction");
        assert_eq!(back.coords.x.to_bits(), k.coords.x.to_bits());
    }
}
