//! Singular-value decomposition and polar factors for small complex
//! matrices.
//!
//! The approximate-synthesis sweep in `reqisc-synthesis` repeatedly needs the
//! unitary polar factor of a 4×4 "environment" matrix; [`polar_unitary`]
//! provides it via a one-sided Jacobi SVD, which is accurate even for
//! rank-deficient environments.

// lint:allow-file(tolerance-literal, Jacobi rotation convergence guards; pure numerics)
use crate::c64::{C64, ONE};
use crate::mat::CMat;

/// A singular value decomposition `A = U · diag(σ) · V†`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (unitary).
    pub u: CMat,
    /// Singular values in descending order (non-negative).
    pub sigma: Vec<f64>,
    /// Right singular vectors (unitary).
    pub v: CMat,
}

/// Computes the SVD of a square complex matrix by one-sided Jacobi.
///
/// One-sided Jacobi orthogonalizes the columns of a working copy `W = A·V`
/// by accumulating plane rotations into `V`; on convergence the column norms
/// are the singular values and the normalized columns form `U`.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn svd(a: &CMat) -> Svd {
    assert!(a.is_square(), "svd expects a square matrix");
    let n = a.rows();
    let mut w = a.clone();
    let mut v = CMat::identity(n);
    for _sweep in 0..128 {
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                // Gram entries for columns p, q of w.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = C64::default();
                for k in 0..n {
                    let wp = w[(k, p)];
                    let wq = w[(k, q)];
                    app += wp.norm_sqr();
                    aqq += wq.norm_sqr();
                    apq += wp.conj() * wq;
                }
                if apq.abs() <= 1e-15 * (app * aqq).sqrt().max(1e-300) {
                    continue;
                }
                rotated = true;
                // Complex Jacobi rotation diagonalizing [[app, apq],[apq*, aqq]].
                let phase = apq.unit();
                let ang = 0.5 * (2.0 * apq.abs()).atan2(app - aqq);
                let (s, c) = ang.sin_cos();
                let gpq = phase.scale(-s);
                let gqp = phase.conj().scale(s);
                let gc = C64::real(c);
                for k in 0..n {
                    let wp = w[(k, p)];
                    let wq = w[(k, q)];
                    w[(k, p)] = wp * gc + wq * gqp;
                    w[(k, q)] = wp * gpq + wq * gc;
                }
                for k in 0..n {
                    let vp = v[(k, p)];
                    let vq = v[(k, q)];
                    v[(k, p)] = vp * gc + vq * gqp;
                    v[(k, q)] = vp * gpq + vq * gc;
                }
            }
        }
        if !rotated {
            break;
        }
    }
    // Column norms → singular values; normalize columns → U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| (0..n).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());
    let mut u = CMat::identity(n);
    let mut sigma = vec![0.0; n];
    let mut vv = CMat::identity(n);
    // Track columns already used to complete the basis for zero σ.
    for (jj, &j) in order.iter().enumerate() {
        sigma[jj] = norms[j];
        for i in 0..n {
            vv[(i, jj)] = v[(i, j)];
        }
        if norms[j] > 1e-150 {
            for i in 0..n {
                u[(i, jj)] = w[(i, j)] / norms[j];
            }
        } else {
            // Fill with a unit vector orthogonal to previous columns
            // (Gram–Schmidt against existing ones).
            let mut col = vec![C64::default(); n];
            'basis: for b in 0..n {
                for c in col.iter_mut() {
                    *c = C64::default();
                }
                col[b] = ONE;
                for prev in 0..jj {
                    let mut ip = C64::default();
                    for i in 0..n {
                        ip += u[(i, prev)].conj() * col[i];
                    }
                    for (i, c) in col.iter_mut().enumerate() {
                        *c -= ip * u[(i, prev)];
                    }
                }
                let nrm = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                if nrm > 1e-6 {
                    for c in col.iter_mut() {
                        *c = *c / nrm;
                    }
                    break 'basis;
                }
            }
            for i in 0..n {
                u[(i, jj)] = col[i];
            }
        }
    }
    Svd { u, sigma, v: vv }
}

/// Returns the unitary polar factor of `a`: the unitary `P` maximizing
/// `Re Tr(a† · P)`.
///
/// When `a = U Σ V†`, the polar factor is `U V†`. For rank-deficient `a` the
/// completion is an arbitrary-but-valid unitary, which is exactly what the
/// synthesis sweep needs (any maximizer works).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn polar_unitary(a: &CMat) -> CMat {
    let d = svd(a);
    d.u.mul_mat(&d.v.adjoint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::haar_unitary;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(n: usize, rng: &mut StdRng) -> CMat {
        CMat::from_fn(n, n, |_, _| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
    }

    #[test]
    fn svd_reconstructs() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 3, 4, 8] {
            let a = random_mat(n, &mut rng);
            let d = svd(&a);
            let s = CMat::diag(&d.sigma.iter().map(|&x| C64::real(x)).collect::<Vec<_>>());
            let rec = d.u.mul_mat(&s).mul_mat(&d.v.adjoint());
            assert!(rec.approx_eq(&a, 1e-10), "svd reconstruction failed n={n}");
            assert!(d.u.is_unitary(1e-10));
            assert!(d.v.is_unitary(1e-10));
            for w in d.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "sigma not sorted");
            }
        }
    }

    #[test]
    fn svd_of_unitary_has_unit_sigma() {
        let u = haar_unitary(4, &mut StdRng::seed_from_u64(1));
        let d = svd(&u);
        for s in d.sigma {
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 matrix.
        let a = CMat::from_fn(4, 4, |i, j| {
            C64::real((i as f64 + 1.0) * (j as f64 - 1.5))
        });
        let d = svd(&a);
        assert!(d.sigma[1].abs() < 1e-9, "expected rank 1, sigma = {:?}", d.sigma);
        assert!(d.u.is_unitary(1e-9));
        let s = CMat::diag(&d.sigma.iter().map(|&x| C64::real(x)).collect::<Vec<_>>());
        assert!(d.u.mul_mat(&s).mul_mat(&d.v.adjoint()).approx_eq(&a, 1e-9));
    }

    #[test]
    fn polar_factor_is_unitary_maximizer() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_mat(4, &mut rng);
        let p = polar_unitary(&a);
        assert!(p.is_unitary(1e-10));
        // Re Tr(a† p) must beat a few random unitaries.
        let best = a.hs_inner(&p).re;
        for k in 0..8 {
            let q = haar_unitary(4, &mut StdRng::seed_from_u64(100 + k));
            assert!(a.hs_inner(&q).re <= best + 1e-9);
        }
    }
}
