//! Content fingerprinting for cache keys.
//!
//! The compilation-cache layer addresses entries by *content*: a circuit,
//! matrix, or option set is reduced to a 128-bit FNV-1a digest of its
//! canonical byte stream. 128 bits keeps accidental collisions out of
//! reach for any realistic cache population (birthday bound ≈ 2⁶⁴
//! entries), while staying allocation-free and `no_std`-friendly.
//!
//! Two hashing disciplines coexist:
//!
//! * **Exact** ([`Fnv128::write_f64`]): hashes the raw IEEE-754 bits.
//!   Used for content addressing where bitwise-identical inputs must (and
//!   deterministic pipelines do) produce bitwise-identical keys.
//! * **Quantized** ([`Fnv128::write_f64_quantized`]): hashes
//!   `round(v / tol)` so values within the grouping tolerance usually
//!   share a bucket. Used for *class* keys (Weyl coordinates, coupling
//!   coefficients) where the paper's calibration argument groups
//!   instructions at a 1e-5 tolerance. Boundary straddlers may land in
//!   adjacent buckets — that costs a cache miss, never a wrong hit.
//!
//! ## Stability guarantee
//!
//! These fingerprints are **persistent-format keys**: the on-disk compile
//! store (`reqisc-compiler`'s `store` module) addresses entries by them,
//! so their byte-level definition is frozen. Concretely:
//!
//! * the FNV-1a offset/prime constants, the little-endian widening of
//!   integers, the `-0.0 → 0.0` normalization, and the length-prefixing
//!   of strings never change silently;
//! * any change to them (or to a type's `fingerprint()` field order)
//!   must bump the store's format version so stale files are rejected
//!   instead of mis-addressed.
//!
//! The `golden_digests_are_stable` test pins known digests; if it fails,
//! you changed the format — bump the store version, don't update the pin
//! in place without doing so.

/// Incremental 128-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv128 {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV128_OFFSET }
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Absorbs a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs a `usize` (widened to `u64` for layout independence).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a signed 64-bit value.
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorbs the exact IEEE-754 bit pattern of `v`, normalizing the two
    /// zero representations (`-0.0` hashes like `0.0`).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_u64(v.to_bits());
    }

    /// Absorbs `v` quantized to `tol`-sized buckets: `round(v / tol)`.
    ///
    /// Values within `tol` of each other *usually* share a bucket (always
    /// within `tol/2` of the bucket center); straddlers of a bucket edge
    /// hash differently, which can only cause a cache miss.
    #[inline]
    pub fn write_f64_quantized(&mut self, v: f64, tol: f64) {
        debug_assert!(tol > 0.0, "quantization tolerance must be positive");
        self.write_i64(quantize(v, tol));
    }

    /// Absorbs a string as raw bytes (length-prefixed against ambiguity).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantizes `v` to an integer bucket index at tolerance `tol`
/// (`round(v / tol)`, with `-0.0` normalized).
#[inline]
pub fn quantize(v: f64, tol: f64) -> i64 {
    let q = (v / tol).round();
    if q == 0.0 {
        0
    } else {
        q as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv128::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv128::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv128::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn zero_normalization() {
        let mut a = Fnv128::new();
        a.write_f64(0.0);
        let mut b = Fnv128::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn quantization_groups_near_values() {
        assert_eq!(quantize(0.100004, 1e-5), quantize(0.100001, 1e-5));
        assert_ne!(quantize(0.2, 1e-5), quantize(0.3, 1e-5));
        assert_eq!(quantize(-0.0, 1.0), 0);
    }

    /// Golden digests: these exact values are what shipped stores are
    /// keyed by. A failure here means the hash definition changed — that
    /// invalidates every on-disk cache, so the store format version must
    /// be bumped in the same change.
    #[test]
    fn golden_digests_are_stable() {
        let mut h = Fnv128::new();
        h.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(h.finish(), 0x0619_098f_3865_9878_f047_fc45_23ab_fdfd);

        let mut h = Fnv128::new();
        h.write_str("reqisc");
        assert_eq!(h.finish(), 0x824e_63be_9a00_24ea_8335_ec8b_1dbe_04ee);

        let mut h = Fnv128::new();
        h.write_f64_quantized(std::f64::consts::FRAC_PI_4, 1e-5);
        assert_eq!(quantize(std::f64::consts::FRAC_PI_4, 1e-5), 78540);
        assert_eq!(h.finish(), 0x5110_c418_d465_97cb_af8d_413b_60b2_cae2);

        // The matrix fingerprint used by the synthesis pool's content
        // addressing, pinned on CNOT.
        assert_eq!(
            crate::gates::cnot().fingerprint(),
            0xe7d2_16d7_50a4_5ea7_898c_3045_b778_890d
        );
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let mut h = Fnv128::new();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }
}
