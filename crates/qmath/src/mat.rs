//! Dense complex matrices sized for quantum operators.
//!
//! [`CMat`] is a row-major dense matrix over [`C64`]. Everything in this
//! workspace manipulates operators of dimension `2^n` for small `n` (the hot
//! path is 4×4 and 8×8), so a simple contiguous representation with `O(n³)`
//! kernels is both adequate and easy to verify.

// lint:allow-file(tolerance-literal, pivot underflow guard; pure numerics)
use crate::c64::{C64, ONE, ZERO};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use reqisc_qmath::CMat;
/// let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// assert!(x.mul_mat(&x).approx_eq(&CMat::identity(2), 1e-15));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data: data.to_vec() }
    }

    /// Creates a matrix from a row-major slice of real entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self {
            rows,
            cols,
            data: data.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates a diagonal matrix from its diagonal entries.
    pub fn diag(d: &[C64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a matrix entry-by-entry from a closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                let row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = ZERO;
            for j in 0..self.cols {
                acc += self.data[i * self.cols + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (adjoint) `self†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_dist(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.dist(*b))
            .fold(0.0, f64::max)
    }

    /// True when every entry of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_dist(other) <= tol
    }

    /// 128-bit content fingerprint of the exact entry bit patterns (with
    /// `-0.0` normalized). Bitwise-identical matrices — what deterministic
    /// pipelines produce for repeated subprograms — share a fingerprint;
    /// used as a content-address by the compilation cache.
    pub fn fingerprint(&self) -> u128 {
        let mut h = crate::fingerprint::Fnv128::new();
        h.write_usize(self.rows);
        h.write_usize(self.cols);
        for z in &self.data {
            h.write_f64(z.re);
            h.write_f64(z.im);
        }
        h.finish()
    }

    /// True when `self† · self ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && self.adjoint().mul_mat(self).approx_eq(&Self::identity(self.rows), tol)
    }

    /// True when `self ≈ self†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// True when every entry has an imaginary part below `tol`.
    pub fn is_real(&self, tol: f64) -> bool {
        self.data.iter().all(|z| z.im.abs() <= tol)
    }

    /// Determinant by LU factorization with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> C64 {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = ONE;
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return ZERO;
            }
            if p != k {
                for j in 0..n {
                    let t = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = t;
                }
                det = -det;
            }
            let piv = a[(k, k)];
            det *= piv;
            for i in k + 1..n {
                let f = a[(i, k)] / piv;
                for j in k..n {
                    let v = a[(k, j)];
                    a[(i, j)] -= f * v;
                }
            }
        }
        det
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns `None` when the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Self> {
        assert!(self.is_square(), "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for k in 0..n {
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if p != k {
                for j in 0..n {
                    a.data.swap(k * n + j, p * n + j);
                    inv.data.swap(k * n + j, p * n + j);
                }
            }
            let piv = a[(k, k)].recip();
            for j in 0..n {
                a[(k, j)] *= piv;
                inv[(k, j)] *= piv;
            }
            for i in 0..n {
                if i == k {
                    continue;
                }
                let f = a[(i, k)];
                if f.re == 0.0 && f.im == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let av = a[(k, j)];
                    let iv = inv[(k, j)];
                    a[(i, j)] -= f * av;
                    inv[(i, j)] -= f * iv;
                }
            }
        }
        Some(inv)
    }

    /// `Tr(self† · other)`, the Hilbert–Schmidt inner product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hs_inner(&self, other: &Self) -> C64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }

    /// Swaps two columns in place.
    pub fn swap_cols(&mut self, c1: usize, c2: usize) {
        if c1 == c2 {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(i * self.cols + c1, i * self.cols + c2);
        }
    }

    /// Returns the matrix with row `r` scaled by `s`.
    pub fn scale_row(&mut self, r: usize, s: C64) {
        for j in 0..self.cols {
            self[(r, j)] *= s;
        }
    }

    /// Returns the matrix with column `c` scaled by `s`.
    pub fn scale_col(&mut self, c: usize, s: C64) {
        for i in 0..self.rows {
            self[(i, c)] *= s;
        }
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.mul_mat(rhs)
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(C64::real(-1.0))
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> CMat {
        CMat::from_slice(2, 2, &[ZERO, C64::imag(-1.0), C64::imag(1.0), ZERO])
    }

    #[test]
    fn identity_is_neutral() {
        let x = pauli_x();
        let i2 = CMat::identity(2);
        assert!(x.mul_mat(&i2).approx_eq(&x, 0.0));
        assert!(i2.mul_mat(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y) = (pauli_x(), pauli_y());
        // XY = iZ
        let xy = x.mul_mat(&y);
        let z = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        assert!(xy.approx_eq(&z.scale(C64::imag(1.0)), 1e-15));
    }

    #[test]
    fn kron_shape_and_values() {
        let x = pauli_x();
        let xx = x.kron(&x);
        assert_eq!((xx.rows(), xx.cols()), (4, 4));
        assert!((xx[(0, 3)] - ONE).abs() < 1e-15);
        assert!(xx.is_unitary(1e-14));
    }

    #[test]
    fn det_of_unitaries() {
        assert!((pauli_x().det() - C64::real(-1.0)).abs() < 1e-15);
        assert!((CMat::identity(4).det() - ONE).abs() < 1e-15);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = CMat::from_slice(
            3,
            3,
            &[
                C64::new(1.0, 0.5),
                C64::new(2.0, -1.0),
                C64::new(0.0, 0.3),
                C64::new(0.0, 1.0),
                C64::new(1.0, 0.0),
                C64::new(-1.0, 2.0),
                C64::new(3.0, 0.0),
                C64::new(0.5, 0.5),
                C64::new(1.0, -1.0),
            ],
        );
        let inv = m.inverse().expect("invertible");
        assert!(m.mul_mat(&inv).approx_eq(&CMat::identity(3), 1e-12));
    }

    #[test]
    fn singular_inverse_is_none() {
        let m = CMat::from_real(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(m.inverse().is_none());
        assert!(m.det().abs() < 1e-14);
    }

    #[test]
    fn adjoint_and_trace() {
        let y = pauli_y();
        assert!(y.is_hermitian(1e-15));
        assert!(y.trace().abs() < 1e-15);
        assert!(y.adjoint().approx_eq(&y, 1e-15));
    }

    #[test]
    fn mul_vec_matches_mul_mat() {
        let m = pauli_x().kron(&pauli_y());
        let v: Vec<C64> = (0..4).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let col = CMat::from_fn(4, 1, |i, _| v[i]);
        let expect = m.mul_mat(&col);
        let got = m.mul_vec(&v);
        for i in 0..4 {
            assert!(got[i].dist(expect[(i, 0)]) < 1e-14);
        }
    }

    #[test]
    fn hs_inner_norm_consistency() {
        let x = pauli_x();
        let ip = x.hs_inner(&x);
        assert!((ip.re - x.fro_norm().powi(2)).abs() < 1e-14);
        assert!(ip.im.abs() < 1e-15);
    }
}
