//! Canonical (KAK) decomposition of two-qubit unitaries.
//!
//! Any `U ∈ U(4)` factors as
//! `U = g · (A₁⊗A₂) · Can(x, y, z) · (B₁⊗B₂)` with `A_i, B_i ∈ SU(2)`,
//! `|g| = 1`, and `(x, y, z)` in the Weyl chamber (paper Eq. (1)).
//!
//! The algorithm works in the magic basis, where `Can` gates are diagonal
//! and local gates are real orthogonal: diagonalize the complex symmetric
//! unitary `U_m·U_mᵀ` with a real orthogonal matrix (simultaneous Jacobi on
//! its commuting real and imaginary parts), peel off the diagonal square
//! root, and canonicalize the resulting coordinates into the chamber with
//! explicit, phase-tracked local-gate moves.

use crate::c64::{C64, ONE};
use crate::eig::simdiag_commuting_symmetric;
use crate::gates::{canonical_gate, hadamard, pauli_x, pauli_y, pauli_z, rx, s_gate, sdg_gate};
use crate::magic::{magic_pauli_diagonals, so4_to_su2_pair, to_magic};
use crate::mat::CMat;
use crate::weyl::WeylCoord;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// A canonical decomposition `U = phase · (a1⊗a2) · Can(coords) · (b1⊗b2)`.
#[derive(Debug, Clone)]
pub struct Kak {
    /// Global phase `g` with `|g| = 1`.
    pub phase: C64,
    /// Left local gate on qubit 0 (applied after the canonical gate).
    pub a1: CMat,
    /// Left local gate on qubit 1.
    pub a2: CMat,
    /// Canonical (Weyl) coordinates, in the chamber.
    pub coords: WeylCoord,
    /// Right local gate on qubit 0 (applied before the canonical gate).
    pub b1: CMat,
    /// Right local gate on qubit 1.
    pub b2: CMat,
}

impl Kak {
    /// Rebuilds the 4×4 unitary this decomposition represents.
    pub fn reconstruct(&self) -> CMat {
        let left = self.a1.kron(&self.a2);
        let right = self.b1.kron(&self.b2);
        left.mul_mat(&canonical_gate(self.coords.x, self.coords.y, self.coords.z))
            .mul_mat(&right)
            .scale(self.phase)
    }
}

/// Error produced when [`kak_decompose`] is given a non-unitary input.
#[derive(Debug, Clone, PartialEq)]
pub struct KakError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for KakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KAK decomposition failed: {}", self.message)
    }
}

impl std::error::Error for KakError {}

/// Computes the canonical decomposition of a two-qubit unitary.
///
/// # Errors
///
/// Returns [`KakError`] if `u` is not 4×4 unitary (within `1e-8`) or if the
/// internal factorization fails to reconstruct `u` to `1e-6` (which would
/// indicate a numerically pathological input).
///
/// # Examples
///
/// ```
/// use reqisc_qmath::{kak_decompose, gates};
/// let k = kak_decompose(&gates::cnot()).unwrap();
/// assert!((k.coords.x - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
/// assert!(k.coords.y.abs() < 1e-9 && k.coords.z.abs() < 1e-9);
/// ```
pub fn kak_decompose(u: &CMat) -> Result<Kak, KakError> {
    if u.rows() != 4 || u.cols() != 4 {
        return Err(KakError { message: "expected a 4x4 matrix".into() });
    }
    if !u.is_unitary(1e-8) {
        return Err(KakError { message: "input is not unitary".into() });
    }
    // 1. Project to SU(4), remembering the removed phase.
    let det = u.det();
    let phase0 = C64::cis(det.arg() / 4.0);
    let su = u.scale(phase0.recip());

    // 2. Magic basis; P = U_m·U_mᵀ is complex symmetric unitary.
    let um = to_magic(&su);
    let p = um.mul_mat(&um.transpose());

    // 3. Simultaneously diagonalize Re(P), Im(P) with a real orthogonal Q.
    let n = 4usize;
    let mut re = vec![0.0; 16];
    let mut im = vec![0.0; 16];
    for i in 0..4 {
        for j in 0..4 {
            // Symmetrize against round-off.
            let v = (p[(i, j)] + p[(j, i)]).scale(0.5);
            re[i * 4 + j] = v.re;
            im[i * 4 + j] = v.im;
        }
    }
    let mut q = simdiag_commuting_symmetric(&re, &im, n);
    // Enforce det Q = +1 (so Q ∈ SO(4) maps to local unitaries).
    if det_real4(&q) < 0.0 {
        for row in 0..4 {
            q[row * 4] = -q[row * 4];
        }
    }
    let qc = CMat::from_fn(4, 4, |i, j| C64::real(q[i * 4 + j]));

    // 4. Eigenphases θ_k of P in Q's basis; adjust branches so Σθ = 0.
    let d = qc.transpose().mul_mat(&p).mul_mat(&qc);
    let mut theta: Vec<f64> = (0..4).map(|k| d[(k, k)].arg()).collect();
    let sum: f64 = theta.iter().sum();
    // det P = 1 so Σθ ≡ 0 (mod 2π); fold the residue into θ₀.
    let wraps = (sum / (2.0 * PI)).round();
    theta[0] -= wraps * 2.0 * PI;

    // 5. F = Q·diag(e^{iθ/2})·Qᵀ; O = F†·U_m is real special orthogonal.
    let half = CMat::diag(&theta.iter().map(|&t| C64::cis(t / 2.0)).collect::<Vec<_>>());
    let f = qc.mul_mat(&half).mul_mat(&qc.transpose());
    let o = f.adjoint().mul_mat(&um);
    if !o.is_real(1e-6) {
        return Err(KakError { message: format!("inner factor not real (max imag {:.2e})", max_imag(&o)) });
    }
    // U_m = K1 · diag(e^{iθ/2}) · K2 with K1 = Q, K2 = Qᵀ·O real orthogonal.
    let k2 = qc.transpose().mul_mat(&o);

    // 6. Coordinates from projecting the half-phases onto the magic
    //    diagonals of XX/YY/ZZ: θ_k/2 = -(x·dX_k + y·dY_k + z·dZ_k).
    let (dx, dy, dz) = magic_pauli_diagonals();
    let proj = |dv: &[f64; 4]| -> f64 {
        -(0..4).map(|k| theta[k] / 2.0 * dv[k]).sum::<f64>() / 4.0
    };
    let coords = WeylCoord::new(proj(&dx), proj(&dy), proj(&dz));

    // 7. Transport K1, K2 out of the magic basis into SU(2)⊗SU(2).
    let (g1, a1, a2) = so4_to_su2_pair(&qc)
        .map_err(|e| KakError { message: format!("left factor: {e}") })?;
    let (g2, b1, b2) = so4_to_su2_pair(&k2.clone())
        .map_err(|e| KakError { message: format!("right factor: {e}") })?;

    let mut kak = Kak {
        phase: phase0 * g1 * g2,
        a1,
        a2,
        coords,
        b1,
        b2,
    };
    canonicalize(&mut kak);

    // 8. Verify.
    let rec = kak.reconstruct();
    if !rec.approx_eq(u, 1e-6) {
        return Err(KakError {
            message: format!("reconstruction residual {:.3e}", rec.max_dist(u)),
        });
    }
    if !kak.coords.in_chamber() {
        return Err(KakError {
            message: format!(
                "coords {} = ({:e}, {:e}, {:e}) not canonical",
                kak.coords, kak.coords.x, kak.coords.y, kak.coords.z
            ),
        });
    }
    Ok(kak)
}

/// Returns only the Weyl coordinates of a two-qubit unitary.
///
/// # Errors
///
/// Same conditions as [`kak_decompose`].
pub fn weyl_coords(u: &CMat) -> Result<WeylCoord, KakError> {
    kak_decompose(u).map(|k| k.coords)
}

/// The local-equivalence trace invariant `tr(U_m · U_mᵀ)` of a two-qubit
/// unitary, where `U_m` is `u` in the magic basis.
///
/// The eigenvalues of `M = U_m U_mᵀ` are the squared magic eigenphases
/// `e^{2iφ_k}`; for `det u = 1` their multiset *characterizes* the local
/// equivalence class (Makhlin), and because `M` is unitary with fixed
/// determinant, the full multiset is already pinned by this single complex
/// trace once one eigenvalue is known. That makes the trace the cheapest
/// smooth local-equivalence residual available — no eigendecomposition, no
/// chamber canonicalization, no branch folds — which is exactly what the
/// EA boundary-curve solver in `reqisc-microarch` needs: compare against
/// [`crate::weyl::WeylCoord::local_invariant_trace`] of the target.
///
/// Cost: one basis conjugation plus a sum of squared entries (`tr(A·Aᵀ) =
/// Σ_{ij} A_{ij}²`, no conjugation).
pub fn local_invariant_trace(u: &CMat) -> C64 {
    let m = crate::magic::to_magic(u);
    let mut s = C64::real(0.0);
    for i in 0..4 {
        for j in 0..4 {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s
}

/// True when two 4×4 unitaries are locally equivalent (same Weyl point).
///
/// # Errors
///
/// Propagates [`KakError`] from either decomposition.
pub fn locally_equivalent(u: &CMat, v: &CMat, tol: f64) -> Result<bool, KakError> {
    Ok(weyl_coords(u)?.approx_eq(&weyl_coords(v)?, tol))
}

fn max_imag(m: &CMat) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            worst = worst.max(m[(i, j)].im.abs());
        }
    }
    worst
}

fn det_real4(a: &[f64]) -> f64 {
    // Expand along first row using 3x3 minors.
    let m3 = |r: [usize; 3], c: [usize; 3]| -> f64 {
        a[r[0] * 4 + c[0]] * (a[r[1] * 4 + c[1]] * a[r[2] * 4 + c[2]] - a[r[1] * 4 + c[2]] * a[r[2] * 4 + c[1]])
            - a[r[0] * 4 + c[1]] * (a[r[1] * 4 + c[0]] * a[r[2] * 4 + c[2]] - a[r[1] * 4 + c[2]] * a[r[2] * 4 + c[0]])
            + a[r[0] * 4 + c[2]] * (a[r[1] * 4 + c[0]] * a[r[2] * 4 + c[1]] - a[r[1] * 4 + c[1]] * a[r[2] * 4 + c[0]])
    };
    a[0] * m3([1, 2, 3], [1, 2, 3]) - a[1] * m3([1, 2, 3], [0, 2, 3]) + a[2] * m3([1, 2, 3], [0, 1, 3])
        - a[3] * m3([1, 2, 3], [0, 1, 2])
}

// --- canonicalization ------------------------------------------------------

/// In-place coordinate moves. Each individual move preserves
/// `kak.reconstruct()` exactly; the face pin in [`canonicalize`] is the one
/// exception (see below).
struct Canon<'a> {
    k: &'a mut Kak,
}

impl Canon<'_> {
    fn coord(&self, idx: usize) -> f64 {
        match idx {
            0 => self.k.coords.x,
            1 => self.k.coords.y,
            _ => self.k.coords.z,
        }
    }

    fn coord_mut(&mut self, idx: usize) -> &mut f64 {
        match idx {
            0 => &mut self.k.coords.x,
            1 => &mut self.k.coords.y,
            _ => &mut self.k.coords.z,
        }
    }

    /// Shifts coordinate `idx` by `sign·π/2`, absorbing the Pauli⊗Pauli and
    /// phase into the left locals:
    /// `Can(x,…) = (∓i)·(P⊗P)·Can(x∓π/2,…)`.
    fn shift(&mut self, idx: usize, sign: f64) {
        let p = match idx {
            0 => pauli_x(),
            1 => pauli_y(),
            _ => pauli_z(),
        };
        *self.coord_mut(idx) += sign * FRAC_PI_2;
        // Decreasing the stored coordinate means we factored
        // Can(c) = -i (P⊗P) Can(c-π/2); increasing uses +i.
        let ph = if sign < 0.0 { C64::imag(-1.0) } else { C64::imag(1.0) };
        self.k.phase *= ph;
        self.k.a1 = self.k.a1.mul_mat(&p);
        self.k.a2 = self.k.a2.mul_mat(&p);
    }

    /// Negates the two coordinates other than `keep` by conjugating with a
    /// Pauli on qubit 0.
    fn negate_other_two(&mut self, keep: usize) {
        let p = match keep {
            0 => pauli_x(), // X⊗I negates y and z
            1 => pauli_y(), // Y⊗I negates x and z
            _ => pauli_z(), // Z⊗I negates x and y
        };
        for idx in 0..3 {
            if idx != keep {
                let v = self.coord(idx);
                *self.coord_mut(idx) = -v;
            }
        }
        self.k.a1 = self.k.a1.mul_mat(&p);
        self.k.b1 = p.mul_mat(&self.k.b1);
    }

    /// Swaps two coordinates by conjugating with a Clifford on both qubits.
    fn swap_coords(&mut self, i: usize, j: usize) {
        assert!(i < j);
        // (i,j) = (0,1): S-conjugation; (0,2): H; (1,2): Rx(π/2).
        let (c, cdg) = match (i, j) {
            (0, 1) => (sdg_gate(), s_gate()),
            (0, 2) => (hadamard(), hadamard()),
            _ => (rx(FRAC_PI_2), rx(-FRAC_PI_2)),
        };
        let vi = self.coord(i);
        let vj = self.coord(j);
        *self.coord_mut(i) = vj;
        *self.coord_mut(j) = vi;
        // Can(old) = (C⊗C) · Can(swapped) · (C†⊗C†) with the conventions
        // picked so the identity holds exactly (verified by tests).
        self.k.a1 = self.k.a1.mul_mat(&c);
        self.k.a2 = self.k.a2.mul_mat(&c);
        self.k.b1 = cdg.mul_mat(&self.k.b1);
        self.k.b2 = cdg.mul_mat(&self.k.b2);
    }
}

/// Tolerance of the `x = π/4` face snap in [`kak_decompose`]'s
/// canonicalization: coordinates within this distance of the face are
/// pinned to *bitwise* `π/4`, perturbing reconstruction by at most the
/// same amount.
///
/// This constant is part of the cache-key stability contract: the
/// persistent compile store addresses pulse solutions by quantized Weyl
/// class ([`crate::weyl::WeylCoord::class_key`] at
/// [`crate::weyl::SU4_CLASS_TOL`]), and the face snap is what keeps the
/// whole CNOT family in one bucket instead of straddling `π/4 ± ε`.
/// Changing it silently diverges disk-cache keys from canonicalization —
/// any change must bump the store format version.
pub const KAK_FACE_SNAP_TOL: f64 = 1e-8;

/// How far below zero `z` must sit (on the `x = π/4` face) before the
/// face rule bothers to flip it — values inside this band are noise.
const FACE_Z_GUARD: f64 = 1e-12;

/// Coordinates with magnitude under this are snapped to exactly `0.0`
/// on output so `-0.0` never leaks into cache keys or display.
const COORD_ZERO_SNAP: f64 = 1e-14;

/// Moves the coordinates of `kak` into the canonical Weyl chamber while
/// preserving the reconstructed unitary up to ~[`KAK_FACE_SNAP_TOL`]:
/// coordinates within that tolerance of the `x = π/4` face are pinned to
/// it, perturbing reconstruction by at most that much (exact everywhere
/// else).
fn canonicalize(kak: &mut Kak) {
    let mut c = Canon { k: kak };
    for _round in 0..4 {
        // 1. Fold every coordinate into (-π/4, π/4].
        for idx in 0..3 {
            while c.coord(idx) > FRAC_PI_4 + 1e-12 {
                c.shift(idx, -1.0);
            }
            while c.coord(idx) <= -FRAC_PI_4 - 1e-12 {
                c.shift(idx, 1.0);
            }
            // Map the open lower face -π/4 (within eps) up to +π/4.
            if c.coord(idx) < -FRAC_PI_4 + 1e-12 {
                c.shift(idx, 1.0);
            }
        }
        // 2. Sort by |coordinate| descending (stable bubble over 3 entries).
        for _ in 0..3 {
            if c.coord(0).abs() < c.coord(1).abs() - 1e-15 {
                c.swap_coords(0, 1);
            }
            if c.coord(1).abs() < c.coord(2).abs() - 1e-15 {
                c.swap_coords(1, 2);
            }
        }
        // 3. Fix signs: make x ≥ 0 (negate x with z as companion), then
        //    y ≥ 0 (negate y with z).
        if c.coord(0) < 0.0 {
            c.negate_other_two(1); // negates x and z
        }
        if c.coord(1) < 0.0 {
            c.negate_other_two(0); // negates y and z
        }
        // 4. Face rule: on x = π/4 require z ≥ 0 (tolerance must be at
        // least as wide as `in_chamber`'s WEYL_EPS).
        if (c.coord(0) - FRAC_PI_4).abs() < KAK_FACE_SNAP_TOL && c.coord(2) < -FACE_Z_GUARD {
            // (π/4, y, z<0) → negate (x,z) → (-π/4, y, -z) → shift x up.
            c.negate_other_two(1);
            c.shift(0, 1.0);
            // x is only known to be on the face within KAK_FACE_SNAP_TOL
            // above, and the transform maps x = π/4 - δ to π/4 + δ, which
            // `in_chamber` (tolerance WEYL_EPS = 1e-9) rejects — folding it
            // back just oscillates. The gate is numerically *on* the face,
            // so pin the coordinate there (perturbs reconstruction by at
            // most the snap tolerance, far inside every consumer's own).
            *c.coord_mut(0) = FRAC_PI_4;
        }
        if c.k.coords.in_chamber() {
            break;
        }
    }
    // Snap tiny negative zeros for tidy output.
    for v in [&mut kak.coords.x, &mut kak.coords.y, &mut kak.coords.z] {
        if v.abs() < COORD_ZERO_SNAP {
            *v = 0.0;
        }
    }
}

/// Decomposes `u` against a fixed target convention and returns the pieces
/// `(phase, a1, a2, coords, b1, b2)` — convenience for callers that do not
/// want to depend on the [`Kak`] struct.
///
/// # Errors
///
/// Same conditions as [`kak_decompose`].
pub fn kak_parts(u: &CMat) -> Result<(C64, CMat, CMat, WeylCoord, CMat, CMat), KakError> {
    let k = kak_decompose(u)?;
    Ok((k.phase, k.a1, k.a2, k.coords, k.b1, k.b2))
}

/// Verifies `u ~ Can(coords)` up to local gates, returning the max residual
/// in the coordinates. Mostly used by tests and the microarchitecture's
/// self-checks.
///
/// # Errors
///
/// Same conditions as [`kak_decompose`].
pub fn coord_residual(u: &CMat, target: &WeylCoord) -> Result<f64, KakError> {
    let c = weyl_coords(u)?;
    Ok((c.x - target.x)
        .abs()
        .max((c.y - target.y).abs())
        .max((c.z - target.z).abs()))
}

const _: C64 = ONE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{b_gate, cnot, cz, ecp_gate, iswap, sqisw, swap, u3};
    use crate::haar::{haar_su2, haar_unitary};
    use crate::magic::kron_factor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_roundtrip(u: &CMat) -> Kak {
        let k = kak_decompose(u).expect("kak");
        let rec = k.reconstruct();
        assert!(
            rec.approx_eq(u, 1e-8),
            "reconstruction residual {:.3e}",
            rec.max_dist(u)
        );
        assert!(k.coords.in_chamber(), "coords {} not canonical", k.coords);
        assert!(k.a1.is_unitary(1e-9) && k.a2.is_unitary(1e-9));
        assert!(k.b1.is_unitary(1e-9) && k.b2.is_unitary(1e-9));
        k
    }

    #[test]
    fn named_gate_coordinates() {
        let cases: Vec<(CMat, WeylCoord)> = vec![
            (cnot(), WeylCoord::cnot()),
            (cz(), WeylCoord::cnot()),
            (iswap(), WeylCoord::iswap()),
            (swap(), WeylCoord::swap()),
            (sqisw(), WeylCoord::sqisw()),
            (b_gate(), WeylCoord::b_gate()),
            (ecp_gate(), WeylCoord::ecp()),
        ];
        for (g, want) in cases {
            let k = check_roundtrip(&g);
            assert!(
                k.coords.approx_eq(&want, 1e-8),
                "got {} want {}",
                k.coords,
                want
            );
        }
    }

    #[test]
    fn identity_and_locals_have_zero_coords() {
        let mut rng = StdRng::seed_from_u64(21);
        check_roundtrip(&CMat::identity(4));
        for _ in 0..8 {
            let l = haar_su2(&mut rng).kron(&haar_su2(&mut rng));
            let k = check_roundtrip(&l);
            assert!(k.coords.l1_norm() < 1e-7, "locals must map to origin");
        }
    }

    #[test]
    fn haar_random_roundtrips() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..60 {
            let u = haar_unitary(4, &mut rng);
            check_roundtrip(&u);
        }
    }

    #[test]
    fn canonical_gates_return_their_own_coords() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            // Random point inside the open chamber.
            let x: f64 = rng.gen_range(0.0..FRAC_PI_4);
            let y: f64 = rng.gen_range(0.0..x.min(FRAC_PI_4 - 1e-3));
            let z: f64 = rng.gen_range(-y..y.max(1e-12));
            let g = canonical_gate(x, y, z);
            let k = check_roundtrip(&g);
            assert!(
                k.coords.approx_eq(&WeylCoord::new(x, y, z), 1e-7),
                "got {} want ({x}, {y}, {z})",
                k.coords
            );
        }
    }

    #[test]
    fn dressed_canonical_gates_keep_coords() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let x: f64 = rng.gen_range(0.0..FRAC_PI_4);
            let y: f64 = rng.gen_range(0.0..=x);
            let z: f64 = rng.gen_range(-y..=y);
            let core = canonical_gate(x, y, z);
            let l = haar_su2(&mut rng).kron(&haar_su2(&mut rng));
            let r = haar_su2(&mut rng).kron(&haar_su2(&mut rng));
            let u = l.mul_mat(&core).mul_mat(&r);
            let k = check_roundtrip(&u);
            // Same class: compare against the canonicalized version of (x,y,z).
            let kc = kak_decompose(&core).unwrap();
            assert!(
                k.coords.approx_eq(&kc.coords, 1e-7),
                "dressing changed coords: {} vs {}",
                k.coords,
                kc.coords
            );
        }
    }

    #[test]
    fn locally_equivalent_detects_classes() {
        assert!(locally_equivalent(&cnot(), &cz(), 1e-8).unwrap());
        assert!(!locally_equivalent(&cnot(), &iswap(), 1e-3).unwrap());
    }

    #[test]
    fn global_phase_recovered() {
        let g = C64::cis(0.9);
        let u = cnot().scale(g);
        let k = check_roundtrip(&u);
        assert!((k.phase.abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_unitary() {
        let m = CMat::from_fn(4, 4, |i, j| C64::real((i + j) as f64));
        assert!(kak_decompose(&m).is_err());
    }

    #[test]
    fn rejects_wrong_shape() {
        assert!(kak_decompose(&CMat::identity(2)).is_err());
    }

    #[test]
    fn coord_residual_zero_for_self() {
        let c = WeylCoord::new(0.3, 0.2, -0.1);
        // Canonicalize reference coords through a decomposition first.
        let g = canonical_gate(c.x, c.y, c.z);
        let canonical = weyl_coords(&g).unwrap();
        assert!(coord_residual(&g, &canonical).unwrap() < 1e-8);
    }

    #[test]
    fn kron_of_u3s_roundtrip() {
        let u = u3(0.3, 0.5, -0.7).kron(&u3(1.1, -0.2, 0.9));
        let k = check_roundtrip(&u);
        assert!(k.coords.l1_norm() < 1e-7);
        let _ = kron_factor(&u, 1e-8).expect("still a product");
    }
}
