//! A minimal double-precision complex scalar.
//!
//! The whole workspace operates on unitaries of dimension at most a few
//! thousand, so a small self-contained complex type (rather than an external
//! dependency) keeps the numeric kernel auditable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use reqisc_qmath::C64;
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// `e^{iθ}` on the unit circle.
    ///
    /// ```
    /// use reqisc_qmath::C64;
    /// let z = C64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (cheaper than [`C64::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs().sqrt();
        let t = self.arg() / 2.0;
        Self { re: r * t.cos(), im: r * t.sin() }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// `z/|z|`; returns `1` for `z == 0` so the result is always unimodular.
    pub fn unit(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            ONE
        } else {
            Self { re: self.re / a, im: self.im / a }
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `|self - other|`, the distance between two complex numbers.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for C64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for C64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl Mul<f64> for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self { re: self.re / rhs, im: self.im / rhs }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<It: Iterator<Item = Self>>(iter: It) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        a.dist(b) < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(1.5, -2.5);
        assert!(close(z + ZERO, z));
        assert!(close(z * ONE, z));
        assert!(close(z - z, ZERO));
        assert!(close(z / z, ONE));
        assert!(close(-z + z, ZERO));
    }

    #[test]
    fn mul_matches_polar() {
        let a = C64::cis(0.3).scale(2.0);
        let b = C64::cis(1.1).scale(0.5);
        let p = a * b;
        assert!((p.abs() - 1.0).abs() < 1e-12);
        assert!((p.arg() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), C64::real(25.0)));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        for k in 0..16 {
            let t = k as f64 * 0.41 - 3.0;
            assert!(close(C64::imag(t).exp(), C64::cis(t)));
        }
    }

    #[test]
    fn sqrt_squares_back() {
        for k in 0..20 {
            let z = C64::new((k as f64) * 0.7 - 6.0, (k as f64) * -0.3 + 2.0);
            let s = z.sqrt();
            assert!(close(s * s, z));
        }
    }

    #[test]
    fn recip_inverts() {
        let z = C64::new(-0.7, 0.2);
        assert!(close(z * z.recip(), ONE));
    }

    #[test]
    fn unit_is_unimodular() {
        assert!(close(ZERO.unit(), ONE));
        let z = C64::new(-3.0, 1.0);
        assert!((z.unit().abs() - 1.0).abs() < 1e-14);
        assert!((z.unit().arg() - z.arg()).abs() < 1e-14);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", C64::new(1.0, -1.0)).is_empty());
    }
}
