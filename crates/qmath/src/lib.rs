#![warn(missing_docs)]
//! # reqisc-qmath
//!
//! The linear-algebra substrate of the ReQISC reproduction: complex
//! scalars and small dense matrices, eigen/singular-value decompositions,
//! Hamiltonian exponentials, the magic basis, Haar sampling, and — the
//! centerpiece — the canonical (KAK) decomposition with Weyl-chamber
//! canonicalization.
//!
//! Everything is implemented from scratch; all operators in this workspace
//! are `2ⁿ × 2ⁿ` for small `n`, so simple `O(n³)` kernels with Jacobi
//! iterations are accurate and fast.
//!
//! ## Quick start
//!
//! ```
//! use reqisc_qmath::{gates, kak_decompose};
//!
//! // Where does CNOT sit in the Weyl chamber?
//! let k = kak_decompose(&gates::cnot()).unwrap();
//! assert!((k.coords.x - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
//! // And the decomposition reconstructs the gate exactly.
//! assert!(k.reconstruct().approx_eq(&gates::cnot(), 1e-9));
//! ```

pub mod bytes;
pub mod c64;
pub mod eig;
pub mod expm;
pub mod fingerprint;
pub mod gates;
pub mod haar;
pub mod kak;
pub mod magic;
pub mod mat;
pub mod svd;
pub mod weyl;

pub use bytes::{ByteReader, ByteWriter, CodecError};
pub use c64::C64;
pub use eig::{eig_hermitian, eig_real_symmetric, HermEig, RealEig};
pub use expm::{expm, expm_i_hermitian};
pub use fingerprint::Fnv128;
pub use haar::{haar_su2, haar_su4, haar_unitary};
pub use kak::{
    kak_decompose, kak_parts, local_invariant_trace, locally_equivalent, weyl_coords, Kak,
    KakError, KAK_FACE_SNAP_TOL,
};
pub use magic::{from_magic, kron_factor, magic_basis, to_magic};
pub use mat::CMat;
pub use svd::{polar_unitary, svd, Svd};
pub use weyl::{WeylClassKey, WeylCoord, SU4_CLASS_TOL, WEYL_EPS};
