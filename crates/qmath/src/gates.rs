//! The standard gate library: 1Q rotations and the named 2Q gates used
//! throughout the paper, plus the canonical gate `Can(x, y, z)`.
//!
//! Convention (paper Eq. (1)): `Can(x, y, z) = e^{-i(x·XX + y·YY + z·ZZ)}`,
//! so `CNOT ~ Can(π/4, 0, 0)`, `iSWAP ~ Can(π/4, π/4, 0)`,
//! `SWAP ~ Can(π/4, π/4, π/4)` and `B ~ Can(π/4, π/8, 0)`.

use crate::c64::{C64, I, ONE, ZERO};
use crate::mat::CMat;
use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, SQRT_2};

/// 2×2 identity.
pub fn id2() -> CMat {
    CMat::identity(2)
}

/// Pauli X.
pub fn pauli_x() -> CMat {
    CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
}

/// Pauli Y.
pub fn pauli_y() -> CMat {
    CMat::from_slice(2, 2, &[ZERO, -I, I, ZERO])
}

/// Pauli Z.
pub fn pauli_z() -> CMat {
    CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
}

/// Hadamard.
pub fn hadamard() -> CMat {
    CMat::from_real(2, 2, &[1.0, 1.0, 1.0, -1.0]).scale(C64::real(1.0 / SQRT_2))
}

/// Phase gate S = diag(1, i).
pub fn s_gate() -> CMat {
    CMat::from_slice(2, 2, &[ONE, ZERO, ZERO, I])
}

/// S† = diag(1, -i).
pub fn sdg_gate() -> CMat {
    CMat::from_slice(2, 2, &[ONE, ZERO, ZERO, -I])
}

/// T = diag(1, e^{iπ/4}).
pub fn t_gate() -> CMat {
    CMat::from_slice(2, 2, &[ONE, ZERO, ZERO, C64::cis(FRAC_PI_4)])
}

/// T† = diag(1, e^{-iπ/4}).
pub fn tdg_gate() -> CMat {
    CMat::from_slice(2, 2, &[ONE, ZERO, ZERO, C64::cis(-FRAC_PI_4)])
}

/// X-rotation `Rx(θ) = e^{-iθX/2}`.
pub fn rx(theta: f64) -> CMat {
    let (s, c) = (theta / 2.0).sin_cos();
    CMat::from_slice(
        2,
        2,
        &[C64::real(c), C64::imag(-s), C64::imag(-s), C64::real(c)],
    )
}

/// Y-rotation `Ry(θ) = e^{-iθY/2}`.
pub fn ry(theta: f64) -> CMat {
    let (s, c) = (theta / 2.0).sin_cos();
    CMat::from_slice(
        2,
        2,
        &[C64::real(c), C64::real(-s), C64::real(s), C64::real(c)],
    )
}

/// Z-rotation `Rz(θ) = e^{-iθZ/2}`.
pub fn rz(theta: f64) -> CMat {
    CMat::from_slice(
        2,
        2,
        &[C64::cis(-theta / 2.0), ZERO, ZERO, C64::cis(theta / 2.0)],
    )
}

/// The generic 1Q gate
/// `U3(θ, φ, λ) = [[cos(θ/2), -e^{iλ}sin(θ/2)], [e^{iφ}sin(θ/2), e^{i(φ+λ)}cos(θ/2)]]`.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> CMat {
    let (s, c) = (theta / 2.0).sin_cos();
    CMat::from_slice(
        2,
        2,
        &[
            C64::real(c),
            -C64::cis(lambda).scale(s),
            C64::cis(phi).scale(s),
            C64::cis(phi + lambda).scale(c),
        ],
    )
}

/// CNOT (control = qubit 0, target = qubit 1 in big-endian index order).
pub fn cnot() -> CMat {
    CMat::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
    )
}

/// Controlled-Z.
pub fn cz() -> CMat {
    CMat::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, -1.0,
        ],
    )
}

/// SWAP.
pub fn swap() -> CMat {
    CMat::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ],
    )
}

/// iSWAP.
pub fn iswap() -> CMat {
    CMat::from_slice(
        4,
        4,
        &[
            ONE, ZERO, ZERO, ZERO, //
            ZERO, ZERO, I, ZERO, //
            ZERO, I, ZERO, ZERO, //
            ZERO, ZERO, ZERO, ONE,
        ],
    )
}

/// `SQiSW = √iSWAP`, the gate of Huang et al. (coords `(π/8, π/8, 0)`).
pub fn sqisw() -> CMat {
    let r = C64::real(1.0 / SQRT_2);
    let ir = I.scale(1.0 / SQRT_2);
    CMat::from_slice(
        4,
        4,
        &[
            ONE, ZERO, ZERO, ZERO, //
            ZERO, r, ir, ZERO, //
            ZERO, ir, r, ZERO, //
            ZERO, ZERO, ZERO, ONE,
        ],
    )
}

/// The B gate of Zhang et al. (coords `(π/4, π/8, 0)`).
pub fn b_gate() -> CMat {
    canonical_gate(FRAC_PI_4, FRAC_PI_8, 0.0)
}

/// The ECP gate (coords `(π/4, π/8, π/8)`).
pub fn ecp_gate() -> CMat {
    canonical_gate(FRAC_PI_4, FRAC_PI_8, FRAC_PI_8)
}

/// The canonical gate `Can(x, y, z) = e^{-i(x·XX + y·YY + z·ZZ)}`.
///
/// Because `XX`, `YY`, `ZZ` commute, the exponential factors into three
/// closed-form rotations; this construction is exact (no iterative solver).
///
/// # Examples
///
/// ```
/// use reqisc_qmath::gates::{canonical_gate, swap};
/// use std::f64::consts::FRAC_PI_4;
/// let g = canonical_gate(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4);
/// // SWAP = e^{iπ/4} · Can(π/4, π/4, π/4)
/// let diff = g.scale(reqisc_qmath::C64::cis(FRAC_PI_4)).max_dist(&swap());
/// assert!(diff < 1e-12);
/// ```
pub fn canonical_gate(x: f64, y: f64, z: f64) -> CMat {
    let xx = pauli_x().kron(&pauli_x());
    let yy = pauli_y().kron(&pauli_y());
    let zz = pauli_z().kron(&pauli_z());
    let rot = |p: &CMat, t: f64| -> CMat {
        // e^{-i t P} = cos(t) I - i sin(t) P for P² = I.
        let (s, c) = t.sin_cos();
        &CMat::identity(4).scale(C64::real(c)) + &p.scale(C64::imag(-s))
    };
    rot(&xx, x).mul_mat(&rot(&yy, y)).mul_mat(&rot(&zz, z))
}

/// Decomposes a 2×2 unitary as `U = e^{iγ}·U3(θ, φ, λ)`, returning
/// `(θ, φ, λ, γ)`.
///
/// # Panics
///
/// Panics if `u` is not 2×2 unitary within `1e-8`.
///
/// # Examples
///
/// ```
/// use reqisc_qmath::gates::{hadamard, u3, zyz_decompose};
/// use reqisc_qmath::C64;
/// let (t, p, l, g) = zyz_decompose(&hadamard());
/// let rec = u3(t, p, l).scale(C64::cis(g));
/// assert!(rec.approx_eq(&hadamard(), 1e-12));
/// ```
pub fn zyz_decompose(u: &CMat) -> (f64, f64, f64, f64) {
    /// Amplitude below which a matrix entry is treated as exactly zero
    /// when choosing the θ = π branch and resolving phase ambiguities.
    const ZYZ_ZERO_TOL: f64 = 1e-9;
    assert!(u.rows() == 2 && u.is_unitary(1e-8), "zyz expects a 2x2 unitary");
    let a = u[(0, 0)];
    let c = u[(1, 0)];
    let theta = 2.0 * c.abs().atan2(a.abs());
    if a.abs() > ZYZ_ZERO_TOL {
        let gamma = a.arg();
        let phi = if c.abs() > ZYZ_ZERO_TOL { c.arg() - gamma } else { 0.0 };
        let b = u[(0, 1)];
        let lambda = if b.abs() > ZYZ_ZERO_TOL { (-b).arg() - gamma } else { u[(1, 1)].arg() - gamma - phi };
        (theta, phi, lambda, gamma)
    } else {
        // θ = π: U = e^{iγ}[[0, -e^{iλ}], [e^{iφ}, 0]]; split freely (γ=0).
        let phi = c.arg();
        let lambda = (-u[(0, 1)]).arg();
        (theta, phi, lambda, 0.0)
    }
}

/// Embeds a 1Q gate on one side of a two-qubit register:
/// `on_first = true` gives `g ⊗ I`, otherwise `I ⊗ g`.
pub fn embed_1q(g: &CMat, on_first: bool) -> CMat {
    if on_first {
        g.kron(&id2())
    } else {
        id2().kron(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn one_qubit_gates_are_unitary() {
        for g in [
            id2(),
            pauli_x(),
            pauli_y(),
            pauli_z(),
            hadamard(),
            s_gate(),
            sdg_gate(),
            t_gate(),
            tdg_gate(),
            rx(0.7),
            ry(-1.3),
            rz(2.9),
            u3(0.3, 1.1, -0.4),
        ] {
            assert!(g.is_unitary(1e-12));
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [cnot(), cz(), swap(), iswap(), sqisw(), b_gate(), ecp_gate()] {
            assert!(g.is_unitary(1e-12));
        }
    }

    #[test]
    fn sqisw_squares_to_iswap() {
        assert!(sqisw().mul_mat(&sqisw()).approx_eq(&iswap(), 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        assert!(u3(0.0, 0.0, 0.0).approx_eq(&id2(), 1e-15));
        // U3(π, 0, π) = X
        assert!(u3(PI, 0.0, PI).approx_eq(&pauli_x(), 1e-12));
        // U3(π/2, 0, π) = H
        assert!(u3(PI / 2.0, 0.0, PI).approx_eq(&hadamard(), 1e-12));
    }

    #[test]
    fn rotations_compose() {
        let a = rz(0.4).mul_mat(&rz(0.6));
        assert!(a.approx_eq(&rz(1.0), 1e-13));
        let b = rx(2.0 * PI);
        assert!(b.approx_eq(&id2().scale(C64::real(-1.0)), 1e-12));
    }

    #[test]
    fn canonical_gate_identities() {
        assert!(canonical_gate(0.0, 0.0, 0.0).approx_eq(&CMat::identity(4), 1e-15));
        // Can(π/4,0,0) is locally equivalent to CNOT: verify the known exact
        // relation CNOT = e^{iπ/4}(I⊗H)... instead check spectra-free:
        // Can(π/4,0,0)² ~ e^{-iπ/2 XX} = -i XX.
        let c = canonical_gate(FRAC_PI_4, 0.0, 0.0);
        let xx = pauli_x().kron(&pauli_x());
        assert!(c.mul_mat(&c).approx_eq(&xx.scale(C64::imag(-1.0)), 1e-12));
    }

    #[test]
    fn iswap_from_canonical() {
        // Can(π/4, π/4, 0) has -i on the swap block, i.e. it equals iSWAP†;
        // conjugating by Z⊗I negates (x, y) and recovers iSWAP exactly.
        let c = canonical_gate(FRAC_PI_4, FRAC_PI_4, 0.0);
        let zi = embed_1q(&pauli_z(), true);
        assert!(zi.mul_mat(&c).mul_mat(&zi).approx_eq(&iswap(), 1e-12));
    }

    #[test]
    fn embed_shapes() {
        let g = embed_1q(&hadamard(), true);
        assert_eq!(g.rows(), 4);
        assert!(g.is_unitary(1e-12));
        let g2 = embed_1q(&hadamard(), false);
        assert!(!g.approx_eq(&g2, 1e-3));
    }
}
