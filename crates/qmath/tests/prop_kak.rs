//! Property-based tests for the KAK decomposition and its supporting
//! decompositions: these are the invariants every other crate builds on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reqisc_qmath::gates::canonical_gate;
use reqisc_qmath::{
    expm_i_hermitian, haar_su2, haar_unitary, kak_decompose, polar_unitary, weyl_coords, C64,
    CMat, WeylCoord,
};
use std::f64::consts::FRAC_PI_4;

fn random_hermitian(n: usize, seed: u64) -> CMat {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = haar_unitary(n, &mut rng);
    // H = G + G† is Hermitian for any G; scale down to keep spectra tame.
    (&g + &g.adjoint()).scale(C64::real(0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KAK(U).reconstruct() == U for Haar-random U(4).
    #[test]
    fn kak_roundtrip_haar(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let k = kak_decompose(&u).unwrap();
        prop_assert!(k.reconstruct().approx_eq(&u, 1e-7));
        prop_assert!(k.coords.in_chamber());
    }

    /// Weyl coordinates are invariant under local dressing.
    #[test]
    fn coords_are_local_invariants(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let l = haar_su2(&mut rng).kron(&haar_su2(&mut rng));
        let r = haar_su2(&mut rng).kron(&haar_su2(&mut rng));
        let c0 = weyl_coords(&u).unwrap();
        let c1 = weyl_coords(&l.mul_mat(&u).mul_mat(&r)).unwrap();
        prop_assert!(c0.approx_eq(&c1, 1e-6), "coords moved: {c0} vs {c1}");
    }

    /// Coordinates of a chamber-interior canonical gate are recovered exactly.
    #[test]
    fn canonical_coords_recovered(
        xf in 0.02f64..0.98,
        yf in 0.02f64..0.98,
        zf in -0.95f64..0.95,
    ) {
        let x = xf * FRAC_PI_4;
        let y = yf * x.min(FRAC_PI_4 * 0.999);
        let z = zf * y;
        let g = canonical_gate(x, y, z);
        let c = weyl_coords(&g).unwrap();
        prop_assert!(
            c.approx_eq(&WeylCoord::new(x, y, z), 1e-6),
            "got {c} want ({x},{y},{z})"
        );
    }

    /// Hermitian evolution stays unitary and composes additively in time.
    #[test]
    fn evolution_group_property(seed in 0u64..10_000, t1 in 0.01f64..1.5, t2 in 0.01f64..1.5) {
        let h = random_hermitian(4, seed);
        let a = expm_i_hermitian(&h, t1);
        let b = expm_i_hermitian(&h, t2);
        prop_assert!(a.is_unitary(1e-9));
        prop_assert!(a.mul_mat(&b).approx_eq(&expm_i_hermitian(&h, t1 + t2), 1e-8));
    }

    /// The polar factor of any matrix is unitary and is a fixed point for
    /// unitary inputs.
    #[test]
    fn polar_properties(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(4, &mut rng);
        let p = polar_unitary(&u);
        prop_assert!(p.is_unitary(1e-9));
        prop_assert!(p.approx_eq(&u, 1e-7), "polar of unitary should be itself");
    }

    /// Mirror involution: mirroring twice returns the original class.
    #[test]
    fn mirror_is_involution_on_classes(
        xf in 0.05f64..0.95,
        yf in 0.05f64..0.95,
        zf in 0.0f64..0.95,
    ) {
        let x = xf * FRAC_PI_4;
        let y = yf * x;
        let z = zf * y;
        let c = WeylCoord::new(x, y, z);
        // SWAP·(SWAP·U) = U, so mirror(mirror(c)) must be locally equivalent
        // to c. Compare through actual unitaries.
        let g = canonical_gate(c.x, c.y, c.z);
        let m1 = c.mirror();
        let g1 = canonical_gate(m1.x, m1.y, m1.z);
        // coords(SWAP·g) == canonical coords of the mirror formula's gate.
        let swap = reqisc_qmath::gates::swap();
        let lhs = weyl_coords(&swap.mul_mat(&g)).unwrap();
        let rhs = weyl_coords(&g1).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-6), "mirror formula wrong: {lhs} vs {rhs}");
    }
}
