//! Coupling Hamiltonians and their normal form (paper §4.1, Algorithm 1
//! line 2).
//!
//! The genAshN scheme accepts *any* two-qubit coupling Hamiltonian. A
//! general coupling is brought into the canonical form
//! `H = (U₁⊗U₂)(a·XX + b·YY + c·ZZ)(U₁⊗U₂)† + H₁' + H₂'` with
//! `a ≥ b ≥ |c|`, by an SVD of its 3×3 two-local Pauli coefficient matrix
//! (Bennett et al. / Dür et al. canonicalization).

// lint:allow-file(tolerance-literal, coupling-model degeneracy guards local to this module)
use reqisc_qmath::eig::eig_real_symmetric;
use reqisc_qmath::gates::{id2, pauli_x, pauli_y, pauli_z};
use reqisc_qmath::{expm, CMat, C64};

/// Canonical coupling coefficients `(a, b, c)` with `a ≥ b ≥ |c|`, `a > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// XX coefficient.
    pub a: f64,
    /// YY coefficient.
    pub b: f64,
    /// ZZ coefficient (may be negative).
    pub c: f64,
}

impl Coupling {
    /// Creates canonical coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless `a ≥ b ≥ |c|` and `a > 0`.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && a >= b - 1e-12 && b >= c.abs() - 1e-12, "not canonical: ({a},{b},{c})");
        Self { a, b, c }
    }

    /// XY coupling `g/2·(XX + YY)` — mainstream flux-tunable transmons.
    pub fn xy(g: f64) -> Self {
        Self::new(g / 2.0, g / 2.0, 0.0)
    }

    /// XX coupling `g·XX` — trapped ions, lab-frame transmons.
    pub fn xx(g: f64) -> Self {
        Self::new(g, 0.0, 0.0)
    }

    /// Coupling strength `g = a + b + |c|` (paper Eq. (3)), used to compare
    /// platforms.
    pub fn strength(&self) -> f64 {
        self.a + self.b + self.c.abs()
    }

    /// Hashable fingerprint of the coefficients, quantized at `1e-9`
    /// (well below any physically meaningful coupling difference). Used
    /// with [`reqisc_qmath::WeylClassKey`] to key the pulse-solution
    /// cache.
    pub fn class_key(&self) -> [i64; 3] {
        use reqisc_qmath::fingerprint::quantize;
        const TOL: f64 = 1e-9;
        [quantize(self.a, TOL), quantize(self.b, TOL), quantize(self.c, TOL)]
    }

    /// The 4×4 Hamiltonian `a·XX + b·YY + c·ZZ`.
    pub fn hamiltonian(&self) -> CMat {
        let xx = pauli_x().kron(&pauli_x());
        let yy = pauli_y().kron(&pauli_y());
        let zz = pauli_z().kron(&pauli_z());
        &(&xx.scale(C64::real(self.a)) + &yy.scale(C64::real(self.b)))
            + &zz.scale(C64::real(self.c))
    }
}

/// Result of canonicalizing an arbitrary 4×4 Hermitian coupling:
/// `H = (u1⊗u2)·Hc·(u1⊗u2)† + h1⊗I + I⊗h2 + e·I`.
#[derive(Debug, Clone)]
pub struct NormalForm {
    /// Canonical coefficients of the two-local part.
    pub coupling: Coupling,
    /// Local basis change on qubit 0.
    pub u1: CMat,
    /// Local basis change on qubit 1.
    pub u2: CMat,
    /// Residual 1Q Hermitian term on qubit 0 (2×2).
    pub h1: CMat,
    /// Residual 1Q Hermitian term on qubit 1 (2×2).
    pub h2: CMat,
    /// Identity (energy-offset) coefficient.
    pub energy: f64,
}

impl NormalForm {
    /// Rebuilds the original Hamiltonian from the normal-form pieces.
    pub fn reconstruct(&self) -> CMat {
        let loc = self.u1.kron(&self.u2);
        let core = loc
            .mul_mat(&self.coupling.hamiltonian())
            .mul_mat(&loc.adjoint());
        let one = &self.h1.kron(&id2()) + &id2().kron(&self.h2);
        &(&core + &one) + &CMat::identity(4).scale(C64::real(self.energy))
    }
}

/// Error from [`normal_form`] when the input is not Hermitian.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalFormError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for NormalFormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "normal form failed: {}", self.message)
    }
}

impl std::error::Error for NormalFormError {}

/// Pauli matrices indexed I=0, X=1, Y=2, Z=3.
fn pauli(i: usize) -> CMat {
    match i {
        0 => id2(),
        1 => pauli_x(),
        2 => pauli_y(),
        _ => pauli_z(),
    }
}

/// Brings an arbitrary 4×4 Hermitian coupling into normal form.
///
/// # Errors
///
/// Returns [`NormalFormError`] if `h` is not Hermitian within `1e-9`, if the
/// two-local part vanishes (no entangling power — the gate scheme has
/// nothing to steer), or if reconstruction fails numerically.
pub fn normal_form(h: &CMat) -> Result<NormalForm, NormalFormError> {
    if h.rows() != 4 || h.cols() != 4 {
        return Err(NormalFormError { message: "expected 4x4".into() });
    }
    if !h.is_hermitian(1e-9) {
        return Err(NormalFormError { message: "input is not Hermitian".into() });
    }
    // Pauli coefficients: H = e·I + Σ r_j σ_j⊗I + Σ s_k I⊗σ_k + Σ J_jk σ_j⊗σ_k.
    let coeff = |j: usize, k: usize| -> f64 {
        let p = pauli(j).kron(&pauli(k));
        (p.hs_inner(h).re) / 4.0
    };
    let energy = coeff(0, 0);
    let r: Vec<f64> = (1..4).map(|j| coeff(j, 0)).collect();
    let s: Vec<f64> = (1..4).map(|k| coeff(0, k)).collect();
    let mut j = [[0.0f64; 3]; 3];
    for (jj, row) in j.iter_mut().enumerate() {
        for (kk, v) in row.iter_mut().enumerate() {
            *v = coeff(jj + 1, kk + 1);
        }
    }
    // SVD of J with rotation factors: J = O1 · diag(a,b,±c) · O2ᵀ.
    let (o1, d, o2) = svd3_rotations(&j);
    if d[0].abs() < 1e-12 {
        return Err(NormalFormError { message: "two-local part vanishes".into() });
    }
    let coupling = Coupling { a: d[0], b: d[1], c: d[2] };
    // Lift the SO(3) factors to SU(2): U σ_k U† = Σ_j O_jk σ_j.
    let u1 = su2_from_so3(&o1);
    let u2 = su2_from_so3(&o2);
    // Residual locals stay as given (they commute out of the two-local part
    // only after the basis change; we keep them in the original frame).
    let h1 = &(&pauli_x().scale(C64::real(r[0])) + &pauli_y().scale(C64::real(r[1])))
        + &pauli_z().scale(C64::real(r[2]));
    let h2 = &(&pauli_x().scale(C64::real(s[0])) + &pauli_y().scale(C64::real(s[1])))
        + &pauli_z().scale(C64::real(s[2]));
    let nf = NormalForm { coupling, u1, u2, h1, h2, energy };
    let rec = nf.reconstruct();
    if !rec.approx_eq(h, 1e-7) {
        return Err(NormalFormError {
            message: format!("reconstruction residual {:.3e}", rec.max_dist(h)),
        });
    }
    Ok(nf)
}

/// SVD of a real 3×3 matrix with *rotation* factors:
/// `J = O1 · diag(d) · O2ᵀ`, `O1, O2 ∈ SO(3)`, `d = (a, b, c)` with
/// `a ≥ b ≥ |c|` and `a, b ≥ 0` (the sign, if any, is pushed into `c`).
fn svd3_rotations(j: &[[f64; 3]; 3]) -> (CMatR3, [f64; 3], CMatR3) {
    // Eigen-decompose JᵀJ = V Σ² Vᵀ.
    let mut jtj = [0.0f64; 9];
    for a in 0..3 {
        for b in 0..3 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += j[k][a] * j[k][b];
            }
            jtj[a * 3 + b] = acc;
        }
    }
    let e = eig_real_symmetric(&jtj, 3);
    // Descending singular values.
    let order = [2usize, 1, 0];
    let mut v = [[0.0f64; 3]; 3]; // columns = right singular vectors
    let mut sig = [0.0f64; 3];
    for (col, &oi) in order.iter().enumerate() {
        sig[col] = e.values[oi].max(0.0).sqrt();
        for row in 0..3 {
            v[row][col] = e.vectors[oi][row];
        }
    }
    // Left vectors: u_i = J v_i / σ_i; complete the basis for tiny σ.
    let mut u = [[0.0f64; 3]; 3];
    for col in 0..3 {
        if sig[col] > 1e-12 {
            for row in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += j[row][k] * v[k][col];
                }
                u[row][col] = acc / sig[col];
            }
        } else {
            // Cross product of earlier columns (col is 1 or 2 here).
            let (p, q) = match col {
                1 => (0, 2),
                _ => (0, 1),
            };
            let _ = q;
            let a0 = [u[0][0], u[1][0], u[2][0]];
            let base = if col == 1 {
                // Any unit vector orthogonal to a0.
                orth_complement(&a0)
            } else {
                let a1 = [u[0][1], u[1][1], u[2][1]];
                cross(&a0, &a1)
            };
            let _ = p;
            for row in 0..3 {
                u[row][col] = base[row];
            }
        }
    }
    // Re-orthogonalize u (Gram–Schmidt) against numerical drift.
    gram_schmidt3(&mut u);
    // Make both factors rotations; absorb signs into σ₃ (c).
    if det3(&u) < 0.0 {
        for row in u.iter_mut() {
            row[2] = -row[2];
        }
        sig[2] = -sig[2];
    }
    if det3(&v) < 0.0 {
        for row in v.iter_mut() {
            row[2] = -row[2];
        }
        sig[2] = -sig[2];
    }
    (CMatR3(u), sig, CMatR3(v))
}

/// Thin wrapper for a real 3×3 rotation used only inside this module.
#[derive(Debug, Clone, Copy)]
pub struct CMatR3(pub [[f64; 3]; 3]);

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

fn cross(a: &[f64; 3], b: &[f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn orth_complement(a: &[f64; 3]) -> [f64; 3] {
    let trial = if a[0].abs() < 0.9 { [1.0, 0.0, 0.0] } else { [0.0, 1.0, 0.0] };
    let mut v = cross(a, &trial);
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    for x in v.iter_mut() {
        *x /= n;
    }
    v
}

fn gram_schmidt3(u: &mut [[f64; 3]; 3]) {
    for col in 0..3 {
        for prev in 0..col {
            let mut ip = 0.0;
            for row in 0..3 {
                ip += u[row][prev] * u[row][col];
            }
            for row in 0..3 {
                u[row][col] -= ip * u[row][prev];
            }
        }
        let mut n = 0.0;
        for row in 0..3 {
            n += u[row][col] * u[row][col];
        }
        let n = n.sqrt();
        for row in 0..3 {
            u[row][col] /= n;
        }
    }
}

/// Lifts `R ∈ SO(3)` to `U ∈ SU(2)` with `U σ_k U† = Σ_j R_jk σ_j`.
fn su2_from_so3(r: &CMatR3) -> CMat {
    let m = &r.0;
    // Axis–angle extraction, robust near angle = π via the symmetric part.
    let tr = m[0][0] + m[1][1] + m[2][2];
    let cos_t = ((tr - 1.0) / 2.0).clamp(-1.0, 1.0);
    let theta = cos_t.acos();
    let axis = if theta < 1e-9 {
        [0.0, 0.0, 1.0]
    } else if (std::f64::consts::PI - theta).abs() < 1e-6 {
        // R ≈ 2nnᵀ - I: read the axis from the diagonal.
        let nx = ((m[0][0] + 1.0) / 2.0).max(0.0).sqrt();
        let ny = ((m[1][1] + 1.0) / 2.0).max(0.0).sqrt();
        let nz = ((m[2][2] + 1.0) / 2.0).max(0.0).sqrt();
        // Fix relative signs from the off-diagonals.
        let (mut ax, mut ay, mut az) = (nx, ny, nz);
        if nx >= ny && nx >= nz {
            ay = if m[0][1] < 0.0 { -ny } else { ny };
            az = if m[0][2] < 0.0 { -nz } else { nz };
        } else if ny >= nz {
            ax = if m[0][1] < 0.0 { -nx } else { nx };
            az = if m[1][2] < 0.0 { -nz } else { nz };
        } else {
            ax = if m[0][2] < 0.0 { -nx } else { nx };
            ay = if m[1][2] < 0.0 { -ny } else { ny };
        }
        [ax, ay, az]
    } else {
        let s = 2.0 * theta.sin();
        [
            (m[2][1] - m[1][2]) / s,
            (m[0][2] - m[2][0]) / s,
            (m[1][0] - m[0][1]) / s,
        ]
    };
    // U = exp(-i θ/2 n·σ)
    let nsig = &(&pauli_x().scale(C64::real(axis[0])) + &pauli_y().scale(C64::real(axis[1])))
        + &pauli_z().scale(C64::real(axis[2]));
    expm(&nsig.scale(C64::imag(-theta / 2.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reqisc_qmath::haar_su2;

    #[test]
    fn named_couplings() {
        let xy = Coupling::xy(1.0);
        assert!((xy.strength() - 1.0).abs() < 1e-15);
        let xx = Coupling::xx(1.0);
        assert!((xx.strength() - 1.0).abs() < 1e-15);
        assert!(xy.hamiltonian().is_hermitian(1e-14));
    }

    #[test]
    fn normal_form_of_canonical_is_itself() {
        let c = Coupling::new(0.7, 0.4, -0.2);
        let nf = normal_form(&c.hamiltonian()).expect("normal form");
        assert!((nf.coupling.a - 0.7).abs() < 1e-9);
        assert!((nf.coupling.b - 0.4).abs() < 1e-9);
        assert!((nf.coupling.c.abs() - 0.2).abs() < 1e-9);
        assert!(nf.h1.fro_norm() < 1e-9);
        assert!(nf.h2.fro_norm() < 1e-9);
    }

    #[test]
    fn normal_form_of_rotated_coupling() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let cc: f64 = rng.gen_range(-0.3..0.3);
            let bb: f64 = rng.gen_range(0.0f64..1.0).max(cc.abs());
            let c = Coupling::new(1.0, bb, cc);
            let u1 = haar_su2(&mut rng);
            let u2 = haar_su2(&mut rng);
            let loc = u1.kron(&u2);
            let h = loc.mul_mat(&c.hamiltonian()).mul_mat(&loc.adjoint());
            let nf = normal_form(&h).expect("normal form");
            assert!((nf.coupling.a - c.a).abs() < 1e-7, "a: {} vs {}", nf.coupling.a, c.a);
            assert!((nf.coupling.b - c.b).abs() < 1e-7);
            assert!((nf.coupling.c.abs() - c.c.abs()).abs() < 1e-7);
            assert!(nf.reconstruct().approx_eq(&h, 1e-8));
        }
    }

    #[test]
    fn normal_form_with_local_terms() {
        // Lab-frame Hamiltonian of Eq. (7): -ω1/2 ZI - ω2/2 IZ + g XX.
        let g = 1.0;
        let zi = pauli_z().kron(&id2());
        let iz = id2().kron(&pauli_z());
        let xx = pauli_x().kron(&pauli_x());
        let h = &(&zi.scale(C64::real(-0.8)) + &iz.scale(C64::real(-0.6)))
            + &xx.scale(C64::real(g));
        let nf = normal_form(&h).expect("normal form");
        assert!((nf.coupling.a - g).abs() < 1e-9);
        assert!(nf.coupling.b.abs() < 1e-9);
        assert!(nf.reconstruct().approx_eq(&h, 1e-9));
        // Locals captured.
        assert!(nf.h1.fro_norm() > 0.1);
    }

    #[test]
    fn normal_form_canonical_ordering() {
        // ZZ-dominant coupling must be rotated into XX-dominant form.
        let zz = pauli_z().kron(&pauli_z());
        let h = zz.scale(C64::real(2.0));
        let nf = normal_form(&h).expect("normal form");
        assert!((nf.coupling.a - 2.0).abs() < 1e-8);
        assert!(nf.coupling.b.abs() < 1e-8);
        assert!(nf.reconstruct().approx_eq(&h, 1e-8));
    }

    #[test]
    fn rejects_non_hermitian() {
        let mut m = CMat::identity(4);
        m[(0, 1)] = C64::new(1.0, 0.0);
        assert!(normal_form(&m).is_err());
    }

    #[test]
    fn rejects_pure_local() {
        let zi = pauli_z().kron(&id2());
        assert!(normal_form(&zi).is_err());
    }

    #[test]
    fn su2_lift_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let u = haar_su2(&mut rng);
            // Build R from U, lift back, compare action on Paulis.
            let mut r = [[0.0f64; 3]; 3];
            let paulis = [pauli_x(), pauli_y(), pauli_z()];
            for (k, pk) in paulis.iter().enumerate() {
                let rot = u.mul_mat(pk).mul_mat(&u.adjoint());
                for (jj, pj) in paulis.iter().enumerate() {
                    r[jj][k] = pj.hs_inner(&rot).re / 2.0;
                }
            }
            let v = su2_from_so3(&CMatR3(r));
            for pk in &paulis {
                let a = u.mul_mat(pk).mul_mat(&u.adjoint());
                let b = v.mul_mat(pk).mul_mat(&v.adjoint());
                assert!(a.approx_eq(&b, 1e-7), "lift mismatch");
            }
        }
    }
}
