//! The genAshN gate scheme end-to-end (paper Algorithm 1, Fig. 3).
//!
//! Given a coupling Hamiltonian and a target two-qubit gate, this module
//! ① decodes the instruction into Weyl coordinates, ② handles the
//! near-identity singularity by compile-time gate mirroring (§4.3),
//! ③ selects the micro-op mode (ND / EA+ / EA−) from the binding frontier
//! time, solves the pulse parameters, and computes the 1Q corrections that
//! make the evolution *exactly* equal the target.
//!
//! Naming note: the paper's main text and appendix swap the EA+/EA− labels;
//! we follow the main text (Algorithm 1): **EA+** ⇔ binding time
//! `τ₊ = (x+y−z)/(a+b−c)` ⇔ antisymmetric drive (`Ω₁ = 0`), **EA−** ⇔
//! `τ₋ = (x+y+z)/(a+b+c)` ⇔ symmetric drive (`Ω₂ = 0`).

// lint:allow-file(tolerance-literal, pulse-scheme residual and branch guards local to the solve path)
use crate::coupling::Coupling;
use crate::duration::{optimal_duration, Duration, Image};
use crate::solver::{evolve, residual, solve_ea_profiled, solve_nd, EaSign, EaSolveProfile, PulseParams};
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{kak_decompose, weyl_coords, CMat, C64};

/// Default near-identity mirroring threshold `r` on the L1 norm of the Weyl
/// coordinates (§4.3; hardware-dependent in general).
pub const DEFAULT_MIRROR_THRESHOLD: f64 = 0.15;

/// The micro-op execution mode (Algorithm 1 / Fig. 3(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscheme {
    /// No detuning (`δ = 0`), binding time `τ₀ = x/a`.
    Nd,
    /// Equal amplitudes, opposite signs (`Ω₁ = 0`), binding `τ₊`.
    EaPlus,
    /// Equal amplitudes, same sign (`Ω₂ = 0`), binding `τ₋`.
    EaMinus,
}

/// A solved pulse program for one SU(4) instruction.
#[derive(Debug, Clone)]
pub struct PulseSolution {
    /// Interaction duration τ (units of inverse coupling coefficients).
    pub tau: f64,
    /// Drive parameters (Ω₁, Ω₂, δ).
    pub params: PulseParams,
    /// Selected micro-op mode.
    pub subscheme: Subscheme,
    /// Whether the `(π/2−x, y, −z)` image was steered instead of `(x,y,z)`.
    pub image: Image,
    /// Canonical target coordinates this pulse realizes (up to locals).
    pub target: WeylCoord,
    /// Verified Weyl-coordinate error of `e^{-iτ(H+H₁+H₂)}`.
    pub residual: f64,
}

/// Error from the pulse solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "genAshN solve failed: {}", self.message)
    }
}

impl std::error::Error for SolveError {}

/// Solves pulse parameters realizing a gate locally equivalent to
/// `Can(w)` in optimal time under coupling `cp` (Algorithm 1 lines 1–32).
///
/// `w` must be canonical. Near-identity handling is *not* applied here —
/// see [`solve_with_mirroring`] for the compiler-facing entry point.
///
/// # Errors
///
/// Returns [`SolveError`] if the numerical solver fails to reach the
/// requested tolerance (which would indicate coordinates at a control
/// singularity — e.g. deep near-identity gates).
pub fn solve_pulse(cp: &Coupling, w: &WeylCoord) -> Result<PulseSolution, SolveError> {
    solve_pulse_profiled(cp, w).0
}

/// [`solve_pulse`] plus the accumulated EA-solver cost profile of every
/// subscheme attempt — the cold-path observability hook the pulse cache
/// aggregates into its solver counters. Wrong-subscheme fallback attempts
/// show up as `early_rejects` profiles costing zero evaluations (the
/// conserved-eigenphase precheck). The profile rides *outside* the
/// `Result` so failed solves — the most expensive cold path of all, every
/// subscheme burning its full budget — report their true cost instead of
/// a zeroed profile.
pub fn solve_pulse_profiled(
    cp: &Coupling,
    w: &WeylCoord,
) -> (Result<PulseSolution, SolveError>, EaSolveProfile) {
    let tol = 1e-8;
    if !w.in_chamber() {
        return (
            Err(SolveError { message: format!("coordinates {w} not canonical") }),
            EaSolveProfile::default(),
        );
    }
    let dur: Duration = optimal_duration(w, cp);
    let tau = dur.tau;
    if tau <= 1e-14 {
        // Identity class: no pulse at all.
        return (
            Ok(PulseSolution {
                tau: 0.0,
                params: PulseParams { omega1: 0.0, omega2: 0.0, delta: 0.0 },
                subscheme: Subscheme::Nd,
                image: Image::Direct,
                target: *w,
                residual: 0.0,
            }),
            EaSolveProfile::default(),
        );
    }
    let eff = dur.effective;
    let ft = dur.frontier;
    // Which frontier binds picks the subscheme; ties prefer ND (cheapest
    // control), then EA− (symmetric drive).
    let sub = if ft.t0 >= ft.tp - 1e-12 && ft.t0 >= ft.tm - 1e-12 {
        Subscheme::Nd
    } else if ft.tm >= ft.tp - 1e-12 {
        Subscheme::EaMinus
    } else {
        Subscheme::EaPlus
    };
    let mut profile = EaSolveProfile::default();
    let mut attempt = |sub: Subscheme| -> Option<(Subscheme, PulseParams, f64)> {
        match sub {
            Subscheme::Nd => {
                if (eff.x - cp.a * tau).abs() > 1e-9 {
                    return None;
                }
                let p = solve_nd(cp, &eff, tau);
                let r = residual(cp, &p, tau, w);
                profile.verifies += 1;
                (r < tol).then_some((sub, p, r))
            }
            Subscheme::EaPlus => {
                let (sols, pr) = solve_ea_profiled(cp, EaSign::Plus, w, tau, tol);
                profile = profile.merged(&pr);
                sols.first().map(|s| (sub, s.params, s.residual))
            }
            Subscheme::EaMinus => {
                let (sols, pr) = solve_ea_profiled(cp, EaSign::Minus, w, tau, tol);
                profile = profile.merged(&pr);
                sols.first().map(|s| (sub, s.params, s.residual))
            }
        }
    };
    // Try the selected subscheme first, then the others (ties and boundary
    // points are sometimes better conditioned in a neighbouring sector).
    let order = match sub {
        Subscheme::Nd => [Subscheme::Nd, Subscheme::EaMinus, Subscheme::EaPlus],
        Subscheme::EaMinus => [Subscheme::EaMinus, Subscheme::EaPlus, Subscheme::Nd],
        Subscheme::EaPlus => [Subscheme::EaPlus, Subscheme::EaMinus, Subscheme::Nd],
    };
    for s in order {
        if let Some((sub, params, r)) = attempt(s) {
            return (
                Ok(PulseSolution {
                    tau,
                    params,
                    subscheme: sub,
                    image: dur.image,
                    target: *w,
                    residual: r,
                }),
                profile,
            );
        }
    }
    (
        Err(SolveError {
            message: format!(
                "no subscheme converged for {w} under ({}, {}, {})",
                cp.a, cp.b, cp.c
            ),
        }),
        profile,
    )
}

/// Output of the compiler-facing solve: the pulse plus the mirroring
/// decision (§4.3).
#[derive(Debug, Clone)]
pub struct MirroredSolution {
    /// The pulse program (for the mirrored gate when `swapped`).
    pub pulse: PulseSolution,
    /// True when a logical SWAP was appended and the qubit mapping must be
    /// updated by the compiler.
    pub swapped: bool,
}

/// Near-identity-aware solve: gates with `‖w‖₁ ≤ r` are replaced by their
/// mirror `SWAP·Can(w)` (far from the origin), and the logical SWAP is left
/// to the compiler's mapping tracker — no extra 2Q gate is executed.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying solver.
pub fn solve_with_mirroring(
    cp: &Coupling,
    w: &WeylCoord,
    r: f64,
) -> Result<MirroredSolution, SolveError> {
    if w.is_near_identity(r) && w.l1_norm() > 1e-12 {
        let m = w.mirror();
        // The mirror formula lands in the chamber for near-identity inputs.
        let mc = canonicalize_coords(&m)?;
        Ok(MirroredSolution { pulse: solve_pulse(cp, &mc)?, swapped: true })
    } else {
        Ok(MirroredSolution { pulse: solve_pulse(cp, w)?, swapped: false })
    }
}

/// Canonicalizes arbitrary coordinates through an actual gate (robust to
/// out-of-chamber inputs).
pub(crate) fn canonicalize_coords(w: &WeylCoord) -> Result<WeylCoord, SolveError> {
    let g = reqisc_qmath::gates::canonical_gate(w.x, w.y, w.z);
    weyl_coords(&g).map_err(|e| SolveError { message: e.to_string() })
}

/// A fully corrected realization of a specific target unitary:
/// `(a1⊗a2) · e^{-iτ(H+H₁+H₂)} · (b1⊗b2) · phase = target`
/// (Algorithm 1 lines 33–37).
#[derive(Debug, Clone)]
pub struct GateRealization {
    /// The pulse program.
    pub pulse: PulseSolution,
    /// Post-evolution 1Q correction on qubit 0.
    pub a1: CMat,
    /// Post-evolution 1Q correction on qubit 1.
    pub a2: CMat,
    /// Pre-evolution 1Q correction on qubit 0.
    pub b1: CMat,
    /// Pre-evolution 1Q correction on qubit 1.
    pub b2: CMat,
    /// Global phase factor.
    pub phase: C64,
}

impl GateRealization {
    /// Reconstructs the realized unitary
    /// `phase · (a1⊗a2) · e^{-iτ(H+H₁+H₂)} · (b1⊗b2)`.
    pub fn reconstruct(&self, cp: &Coupling) -> CMat {
        let evo = evolve(cp, &self.pulse.params, self.pulse.tau);
        self.a1
            .kron(&self.a2)
            .mul_mat(&evo)
            .mul_mat(&self.b1.kron(&self.b2))
            .scale(self.phase)
    }
}

/// Realizes an exact target unitary: solves the pulse for its Weyl class
/// and computes the 1Q corrections from two canonical decompositions.
///
/// # Errors
///
/// Returns [`SolveError`] if `u` is not a 4×4 unitary or the pulse solve
/// fails.
pub fn realize_gate(cp: &Coupling, u: &CMat) -> Result<GateRealization, SolveError> {
    let kt = kak_decompose(u).map_err(|e| SolveError { message: e.to_string() })?;
    let pulse = solve_pulse(cp, &kt.coords)?;
    let evo = evolve(cp, &pulse.params, pulse.tau);
    let kr = kak_decompose(&evo).map_err(|e| SolveError { message: e.to_string() })?;
    if kt.coords.dist(&kr.coords) > 1e-6 {
        return Err(SolveError {
            message: format!("realized class {} differs from target {}", kr.coords, kt.coords),
        });
    }
    // U_t = (p_t/p_r)·(a_t·a_r†)·U_r·(b_r†·b_t) per qubit.
    let a1 = kt.a1.mul_mat(&kr.a1.adjoint());
    let a2 = kt.a2.mul_mat(&kr.a2.adjoint());
    let b1 = kr.b1.adjoint().mul_mat(&kt.b1);
    let b2 = kr.b2.adjoint().mul_mat(&kt.b2);
    let phase = kt.phase * kr.phase.recip();
    Ok(GateRealization { pulse, a1, a2, b1, b2, phase })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;
    use std::f64::consts::FRAC_PI_8;

    #[test]
    fn cnot_under_xy_is_nd() {
        let cp = Coupling::xy(1.0);
        let s = solve_pulse(&cp, &WeylCoord::cnot()).expect("solve");
        assert_eq!(s.subscheme, Subscheme::Nd);
        assert!(s.residual < 1e-8);
        assert!((s.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn swap_under_xx_is_ea() {
        let cp = Coupling::xx(1.0);
        let s = solve_pulse(&cp, &WeylCoord::swap()).expect("solve");
        assert!(matches!(s.subscheme, Subscheme::EaMinus | Subscheme::EaPlus));
        assert!(s.residual < 1e-7);
        assert!((s.tau - 3.0 * std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn identity_is_free() {
        let cp = Coupling::xy(1.0);
        let s = solve_pulse(&cp, &WeylCoord::identity()).expect("solve");
        assert_eq!(s.tau, 0.0);
        assert_eq!(s.params.penalty(), 0.0);
    }

    #[test]
    fn near_identity_gets_mirrored() {
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::new(0.03, 0.01, 0.005);
        let m = solve_with_mirroring(&cp, &w, DEFAULT_MIRROR_THRESHOLD).expect("solve");
        assert!(m.swapped);
        // The mirrored gate is far from the origin and solvable with
        // bounded amplitudes.
        assert!(m.pulse.params.penalty() < 20.0);
        assert!(m.pulse.residual < 1e-7);
    }

    #[test]
    fn far_gates_not_mirrored() {
        let cp = Coupling::xy(1.0);
        let m = solve_with_mirroring(&cp, &WeylCoord::cnot(), DEFAULT_MIRROR_THRESHOLD)
            .expect("solve");
        assert!(!m.swapped);
    }

    #[test]
    fn realize_cnot_exactly() {
        let cp = Coupling::xy(1.0);
        let r = realize_gate(&cp, &qg::cnot()).expect("realize");
        let rec = r.reconstruct(&cp);
        assert!(
            rec.approx_eq(&qg::cnot(), 1e-6),
            "residual {:.3e}",
            rec.max_dist(&qg::cnot())
        );
    }

    #[test]
    fn realize_random_su4() {
        use rand::SeedableRng;
        let cp = Coupling::xy(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..4 {
            let u = reqisc_qmath::haar_su4(&mut rng);
            let r = realize_gate(&cp, &u).expect("realize");
            let rec = r.reconstruct(&cp);
            assert!(rec.approx_eq(&u, 1e-6), "residual {:.3e}", rec.max_dist(&u));
            // 1Q corrections are unitary.
            assert!(r.a1.is_unitary(1e-8) && r.b2.is_unitary(1e-8));
        }
    }

    #[test]
    fn realize_under_xx_coupling() {
        let cp = Coupling::xx(1.0);
        let r = realize_gate(&cp, &qg::iswap()).expect("realize");
        let rec = r.reconstruct(&cp);
        assert!(rec.approx_eq(&qg::iswap(), 1e-6));
    }

    #[test]
    fn sqisw_family_zero_drive_xy() {
        // iSWAP-family gates are drive-free under XY coupling.
        let cp = Coupling::xy(1.0);
        let s = solve_pulse(&cp, &WeylCoord::new(FRAC_PI_8, FRAC_PI_8, 0.0)).expect("solve");
        assert!(s.params.penalty() < 1e-8, "penalty {}", s.params.penalty());
    }
}
