//! Gate calibration (paper §4.5).
//!
//! The paper calibrates genAshN gates by (1) separately characterizing the
//! coupling term and the drive transfer functions, (2) applying both parts
//! simultaneously, measuring the realized Weyl coordinate via process
//! tomography, and (3) tuning the control parameters to minimize the
//! Euclidean distance to the target coordinates.
//!
//! This module reproduces that loop against a [`SimulatedDevice`] whose
//! *true* coupling strength and drive transfer coefficients differ from the
//! controller's nominal model — the controller only observes realized
//! unitaries, exactly like an experiment.

// lint:allow-file(tolerance-literal, calibration fit convergence guards local to this module)
use crate::coupling::Coupling;
use crate::solver::PulseParams;
use reqisc_qmath::gates::{id2, pauli_x, pauli_z};
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{expm_i_hermitian, weyl_coords, CMat, C64};

/// A two-qubit device with imperfectly known parameters.
///
/// The controller programs nominal `(Ω₁, Ω₂, δ, τ)`; the device executes
/// with `Ω_true = gain_omega·Ω + bias_omega` (per-channel), `δ_true =
/// gain_delta·δ`, and its own true coupling.
#[derive(Debug, Clone)]
pub struct SimulatedDevice {
    /// The true coupling Hamiltonian coefficients.
    pub true_coupling: Coupling,
    /// Multiplicative error on both drive amplitudes.
    pub gain_omega: f64,
    /// Additive drive offset (units of the coupling strength).
    pub bias_omega: f64,
    /// Multiplicative error on the detuning channel.
    pub gain_delta: f64,
}

impl SimulatedDevice {
    /// An ideal device (controller model exact).
    pub fn ideal(cp: Coupling) -> Self {
        Self { true_coupling: cp, gain_omega: 1.0, bias_omega: 0.0, gain_delta: 1.0 }
    }

    /// Executes a nominal pulse program and returns the realized unitary.
    pub fn execute(&self, p: &PulseParams, tau: f64) -> CMat {
        let tp = PulseParams {
            omega1: self.gain_omega * p.omega1 + self.bias_omega,
            omega2: self.gain_omega * p.omega2 + self.bias_omega,
            delta: self.gain_delta * p.delta,
        };
        let x = pauli_x();
        let z = pauli_z();
        let h1 = &x.scale(C64::real(tp.omega1 + tp.omega2)) + &z.scale(C64::real(tp.delta));
        let h2 = &x.scale(C64::real(tp.omega1 - tp.omega2)) + &z.scale(C64::real(tp.delta));
        let h = &(&self.true_coupling.hamiltonian() + &h1.kron(&id2())) + &id2().kron(&h2);
        expm_i_hermitian(&h, tau)
    }

    /// Simulated process tomography: the Weyl coordinates of the realized
    /// gate (the paper measures these experimentally; here they are exact).
    pub fn measure_coords(&self, p: &PulseParams, tau: f64) -> Option<WeylCoord> {
        weyl_coords(&self.execute(p, tau)).ok()
    }
}

/// The characterized device model produced by the first calibration stage.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Estimated coupling strength `g` (assuming the nominal coupling
    /// *shape*; the paper calibrates per family, e.g. iSWAP for XY).
    pub g_est: f64,
    /// Estimated drive gain.
    pub gain_est: f64,
}

/// Stage 1 (paper: "the iSWAP-family component … and the drive components
/// are separately calibrated"): estimate the coupling strength from
/// drive-free evolutions of increasing duration, fitting the growth of the
/// measured `x` coordinate.
pub fn characterize_coupling(dev: &SimulatedDevice, shape: &Coupling) -> f64 {
    // For drive-free evolution the Weyl x coordinate grows as a_true·t
    // (folded into the chamber); use short times to stay in the linear
    // regime: t chosen so x stays below π/4 for plausible couplings.
    let zero = PulseParams { omega1: 0.0, omega2: 0.0, delta: 0.0 };
    // Short probes keep the leading coordinate in its linear (unfolded)
    // regime even when the true coupling is up to ~2× the nominal model.
    let probe = 0.12 / shape.a.max(1e-9);
    let mut slopes = Vec::new();
    for k in 1..=2 {
        let t = probe * k as f64;
        if let Some(w) = dev.measure_coords(&zero, t) {
            if w.x < std::f64::consts::FRAC_PI_4 * 0.9 {
                slopes.push(w.x / t);
            }
        }
    }
    let a_est = slopes.iter().sum::<f64>() / slopes.len().max(1) as f64;
    // Scale the nominal shape to the estimated leading coefficient.
    a_est / shape.a * shape.strength()
}

/// Stage 1b: estimate the drive gain from a Rabi-style experiment — a
/// symmetric drive of nominal amplitude Ω produces coordinate motion whose
/// deviation from the drive-free case pins the transfer gain.
pub fn characterize_drive_gain(dev: &SimulatedDevice, shape: &Coupling, g_est: f64) -> f64 {
    // Strategy: for a strong symmetric drive (Ω ≫ g), the realized gate's
    // local invariants depend on Ω_true·τ; we fit the gain by matching the
    // first Weyl coordinate of the driven evolution against the
    // controller's own model prediction as a function of the gain.
    // A gentle drive keeps the coordinate response single-valued over the
    // gain search range (strong drives fold the Weyl trajectory).
    let omega = 1.2 * g_est.max(0.1);
    let tau = 0.5 / g_est.max(0.1);
    let p = PulseParams { omega1: omega, omega2: 0.0, delta: 0.0 };
    let measured = match dev.measure_coords(&p, tau) {
        Some(w) => w,
        None => return 1.0,
    };
    // 1-D search over candidate gains with the nominal model.
    let model = Coupling::new(
        shape.a * g_est / shape.strength(),
        shape.b * g_est / shape.strength(),
        shape.c * g_est / shape.strength(),
    );
    let predict = |gain: f64| -> Option<WeylCoord> {
        let mp = PulseParams { omega1: gain * omega, omega2: 0.0, delta: 0.0 };
        let x = pauli_x();
        let h1 = x.scale(C64::real(mp.omega1 + mp.omega2));
        let h2 = x.scale(C64::real(mp.omega1 - mp.omega2));
        let h = &(&model.hamiltonian() + &h1.kron(&id2())) + &id2().kron(&h2);
        weyl_coords(&expm_i_hermitian(&h, tau)).ok()
    };
    let mut best = (f64::INFINITY, 1.0);
    let mut lo = 0.5;
    let mut hi = 2.0;
    for _ in 0..3 {
        let steps = 24;
        for k in 0..=steps {
            let gain = lo + (hi - lo) * k as f64 / steps as f64;
            if let Some(w) = predict(gain) {
                let d = w.dist(&measured);
                if d < best.0 {
                    best = (d, gain);
                }
            }
        }
        let span = (hi - lo) / steps as f64 * 2.0;
        lo = (best.1 - span).max(0.01);
        hi = best.1 + span;
    }
    best.1
}

/// Result of a full gate calibration.
#[derive(Debug, Clone)]
pub struct CalibratedGate {
    /// Tuned control parameters.
    pub params: PulseParams,
    /// Interaction duration (from the calibrated model).
    pub tau: f64,
    /// Final Euclidean distance of the realized Weyl coordinates from the
    /// target.
    pub coord_error: f64,
    /// Iterations of the fine-tuning loop used.
    pub iterations: usize,
}

/// Stage 2–3: solve the pulse on the characterized model, then fine-tune
/// `(Ω₁, Ω₂, δ)` against simulated tomography to minimize the coordinate
/// distance (paper: "control parameters are tuned to minimize the
/// Euclidean distance from target coordinates").
///
/// # Errors
///
/// Returns the underlying solver error when even the nominal model has no
/// pulse solution.
pub fn calibrate_gate(
    dev: &SimulatedDevice,
    shape: &Coupling,
    target: &WeylCoord,
) -> Result<CalibratedGate, crate::scheme::SolveError> {
    let g_est = characterize_coupling(dev, shape);
    let gain_est = characterize_drive_gain(dev, shape, g_est);
    let model = Coupling::new(
        shape.a * g_est / shape.strength(),
        shape.b * g_est / shape.strength(),
        shape.c * g_est / shape.strength(),
    );
    let nominal = crate::scheme::solve_pulse(&model, target)?;
    // Initial estimate: compensate the estimated gain.
    let mut p = PulseParams {
        omega1: nominal.params.omega1 / gain_est,
        omega2: nominal.params.omega2 / gain_est,
        delta: nominal.params.delta,
    };
    let tau = nominal.tau;
    let err_of = |p: &PulseParams| -> f64 {
        dev.measure_coords(p, tau).map_or(1e3, |w| w.dist(target))
    };
    let mut err = err_of(&p);
    let mut iterations = 0;
    // Coordinate-descent fine-tuning with shrinking steps (a stand-in for
    // the paper's XEB-based refinement; same objective).
    let scale = g_est.max(0.1);
    let mut step = 0.1 * scale;
    while step > 1e-9 * scale && err > 1e-10 && iterations < 400 {
        let mut improved = false;
        for dim in 0..3 {
            for sgn in [1.0, -1.0] {
                let mut q = p;
                match dim {
                    0 => q.omega1 += sgn * step,
                    1 => q.omega2 += sgn * step,
                    _ => q.delta += sgn * step,
                }
                let e = err_of(&q);
                iterations += 1;
                if e < err {
                    err = e;
                    p = q;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    Ok(CalibratedGate { params: p, tau, coord_error: err, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distorted_xy() -> SimulatedDevice {
        SimulatedDevice {
            true_coupling: Coupling::xy(1.07), // 7% coupling error
            gain_omega: 0.93,
            bias_omega: 0.004,
            gain_delta: 1.05,
        }
    }

    #[test]
    fn coupling_characterization_recovers_g() {
        let dev = distorted_xy();
        let g = characterize_coupling(&dev, &Coupling::xy(1.0));
        assert!((g - 1.07).abs() < 0.02, "g estimate {g}");
    }

    #[test]
    fn drive_gain_characterization() {
        let dev = distorted_xy();
        let g = characterize_coupling(&dev, &Coupling::xy(1.0));
        let gain = characterize_drive_gain(&dev, &Coupling::xy(1.0), g);
        assert!((gain - 0.93).abs() < 0.1, "gain estimate {gain}");
    }

    #[test]
    fn ideal_device_needs_no_tuning() {
        let dev = SimulatedDevice::ideal(Coupling::xy(1.0));
        let cal = calibrate_gate(&dev, &Coupling::xy(1.0), &WeylCoord::cnot()).unwrap();
        assert!(cal.coord_error < 1e-7, "error {}", cal.coord_error);
    }

    #[test]
    fn calibration_fixes_distorted_cnot() {
        let dev = distorted_xy();
        let shape = Coupling::xy(1.0);
        let target = WeylCoord::cnot();
        // Uncalibrated: solve on the nominal model and execute naively.
        let naive = crate::scheme::solve_pulse(&shape, &target).unwrap();
        let naive_err = dev
            .measure_coords(&naive.params, naive.tau)
            .map(|w| w.dist(&target))
            .unwrap_or(1.0);
        let cal = calibrate_gate(&dev, &shape, &target).unwrap();
        assert!(
            cal.coord_error < naive_err / 20.0,
            "calibration didn't help: {} vs naive {}",
            cal.coord_error,
            naive_err
        );
        assert!(cal.coord_error < 2e-3, "residual coordinate error {}", cal.coord_error);
    }

    #[test]
    fn calibration_works_for_su4_class() {
        // An asymmetric SU(4) class (not a named gate).
        let dev = distorted_xy();
        let target = WeylCoord::new(0.6, 0.3, 0.1);
        let target = reqisc_qmath::weyl_coords(&reqisc_qmath::gates::canonical_gate(
            target.x, target.y, target.z,
        ))
        .unwrap();
        let cal = calibrate_gate(&dev, &Coupling::xy(1.0), &target).unwrap();
        assert!(cal.coord_error < 5e-3, "residual {}", cal.coord_error);
    }
}
