//! Numerical solvers for the genAshN subschemes (paper §4.2, Algorithm 1
//! lines 12–31).
//!
//! * **ND** (no detuning): two independent sinc inversions with the
//!   smallest-root (amplitude-minimal) branch.
//! * **EA+ / EA−** (equal amplitude): solved by parameterizing the
//!   feasibility **boundary curves** of the paper's `(α, β)` eigenvalue
//!   domain directly, instead of the historical tiered grid search.
//!
//! ## The boundary-curve formulation
//!
//! Each EA subscheme conserves one Bell state: `Ψ⁻` for EA− (symmetric
//! drive) and `Ψ⁺` for EA+ (antisymmetric drive). At the binding frontier
//! time, that conserved eigenphase matches the target *by construction*,
//! so local equivalence to the target reduces to **one complex equation**
//! in the smooth invariant `F(α, β) = tr(U_m·U_mᵀ) − Σ_k e^{2iφ_k}` (see
//! [`reqisc_qmath::local_invariant_trace`]): no chamber folds, no KAK per
//! probe, and an immediate O(1) rejection when the conserved phase cannot
//! match (which is what makes wrong-subscheme fallback attempts free).
//!
//! For a unitary with fixed determinant, `det(M − e^{it}·I)` collapses to
//! a *real* scalar `g_t = Im(e1·e^{iθ_t}) − sin(t + θ_t)` affine in the
//! triplet trace `e1` — so "the realized spectrum contains the target
//! eigenphase `t`" is a smooth curve `{g_t = 0}` in `(α, β)`, and on that
//! curve `F` is confined to a fixed complex ray whose real coordinate
//! `h_t = Re(F·e^{iθ_t})` is the single remaining root condition. The
//! solver therefore:
//!
//! 1. solves the **pure-detuning and pure-amplitude boundary families**
//!    (the `α = 1` / `β = 0` and `δ = 0` edges, where frontier-marginal
//!    sliver roots live) as 1-D sign-scans in log-spaced coordinates —
//!    the O(10⁻³)-sliver roots that used to need edge-seed quotas and
//!    reserve waves are now found by construction;
//! 2. walks the interior matched-eigenphase curves `{g_t = 0}` on a
//!    shared lattice over `(α, ln β)` (log below β = 1, phase-resolved
//!    above), brackets sign changes of `h_t` along them, and polishes
//!    each bracket with a local 2-D Newton in the `(g, h)` chart;
//! 3. for targets with (near-)degenerate eigenphases — `x ≈ y`, `y ≈ z`
//!    SU(4) classes, where roots are tangential and can split into close
//!    pairs — refines the best-separated curve and falls back to a few
//!    Nelder–Mead polishes of the true Weyl residual.
//!
//! Every candidate is verified against the exact evolution
//! `e^{-iτ(H + H₁ + H₂)}` exactly as before; returned solutions are
//! sorted by the physical implementation penalty `|Ω| + |δ|`.

// lint:allow-file(tolerance-literal, solver-internal convergence and root-bracketing epsilons; the cache-key contract tolerances live in qmath as KAK_FACE_SNAP_TOL / SU4_CLASS_TOL)
use crate::coupling::Coupling;
use reqisc_qmath::gates::{id2, pauli_x, pauli_z};
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{expm_i_hermitian, local_invariant_trace, weyl_coords, CMat, C64};
use std::cell::Cell;

/// Normalized sinc `sin(u)/u` with the removable singularity filled.
pub fn sinc(u: f64) -> f64 {
    if u.abs() < 1e-8 {
        1.0 - u * u / 6.0
    } else {
        u.sin() / u
    }
}

/// Solves `sinc(u) = v` for the smallest `u ∈ [lo, π]`.
///
/// Valid for `0 ≤ v ≤ sinc(lo)` with `lo ∈ [0, π]`; `sinc` is strictly
/// decreasing there, so bisection is exact to machine precision.
///
/// # Panics
///
/// Panics if `v` lies outside `[−ε, sinc(lo)+ε]`.
pub fn sinc_inverse(v: f64, lo: f64) -> f64 {
    let lo = lo.max(0.0);
    assert!(
        v >= -1e-9 && v <= sinc(lo) + 1e-9,
        "sinc_inverse target {v} out of range [0, {}]",
        sinc(lo)
    );
    let v = v.clamp(0.0, sinc(lo));
    let (mut a, mut b) = (lo, std::f64::consts::PI);
    if sinc(a) - v <= 0.0 {
        return a;
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        if sinc(m) - v > 0.0 {
            a = m;
        } else {
            b = m;
        }
        if b - a < 1e-16 {
            break;
        }
    }
    0.5 * (a + b)
}

/// Pulse parameters of one subscheme solution.
#[derive(Debug, Clone, Copy)]
pub struct PulseParams {
    /// Symmetric drive amplitude Ω₁ (qubit drives `Ω₁±Ω₂`).
    pub omega1: f64,
    /// Antisymmetric drive amplitude Ω₂.
    pub omega2: f64,
    /// Common drive detuning δ.
    pub delta: f64,
}

impl PulseParams {
    /// The paper's physical-implementation penalty `|Ω₁| + |Ω₂| + |δ|`.
    pub fn penalty(&self) -> f64 {
        self.omega1.abs() + self.omega2.abs() + self.delta.abs()
    }

    /// Local drive Hamiltonians `(H₁, H₂)` acting on the two-qubit space:
    /// `H₁ = (Ω₁+Ω₂)·X⊗I + δ·Z⊗I`, `H₂ = (Ω₁−Ω₂)·I⊗X + δ·I⊗Z` (Eq. (4)).
    pub fn drive_hamiltonians(&self) -> (CMat, CMat) {
        let x = pauli_x();
        let z = pauli_z();
        let h1 = &x.scale(C64::real(self.omega1 + self.omega2)) + &z.scale(C64::real(self.delta));
        let h2 = &x.scale(C64::real(self.omega1 - self.omega2)) + &z.scale(C64::real(self.delta));
        (h1.kron(&id2()), id2().kron(&h2))
    }
}

/// Evolves `e^{-iτ(H_coupling + H₁ + H₂)}` for the given pulse parameters.
pub fn evolve(cp: &Coupling, p: &PulseParams, tau: f64) -> CMat {
    let (h1, h2) = p.drive_hamiltonians();
    let h = &(&cp.hamiltonian() + &h1) + &h2;
    expm_i_hermitian(&h, tau)
}

/// Weyl-coordinate residual of a pulse candidate against a canonical
/// target.
pub fn residual(cp: &Coupling, p: &PulseParams, tau: f64, target: &WeylCoord) -> f64 {
    match weyl_coords(&evolve(cp, p, tau)) {
        Ok(c) => c.dist(target),
        Err(_) => f64::INFINITY,
    }
}

/// ND subscheme: `δ = 0`, solve the two sinc inversions
/// (Algorithm 1 lines 13–15).
///
/// `w` must be the *effective* (possibly mirrored) coordinates with
/// `τ = x/a` binding. Degenerate couplings (`b = ±c`) are handled by the
/// zero-amplitude limit.
pub fn solve_nd(cp: &Coupling, w: &WeylCoord, tau: f64) -> PulseParams {
    let (a, b, c) = (cp.a, cp.b, cp.c);
    debug_assert!((w.x - a * tau).abs() < 1e-9, "ND requires τ = x/a");
    let solve_branch = |coupling_term: f64, angle: f64| -> f64 {
        // sin(angle) = coupling_term·τ·sinc(Sτ), S ≥ coupling_term.
        if coupling_term.abs() * tau < 1e-12 {
            // No coupling in this channel: the angle must already be 0 and
            // any S works; choose the amplitude-free S = 0.
            return 0.0;
        }
        let v = (angle.sin() / (coupling_term * tau)).clamp(0.0, 1.0);
        let u = sinc_inverse(v, coupling_term * tau);
        u / tau
    };
    let s1 = solve_branch(b - c, w.y - w.z);
    let s2 = solve_branch(b + c, w.y + w.z);
    let omega1 = 0.5 * (s1 * s1 - (b - c) * (b - c)).max(0.0).sqrt();
    let omega2 = 0.5 * (s2 * s2 - (b + c) * (b + c)).max(0.0).sqrt();
    PulseParams { omega1, omega2, delta: 0.0 }
}

/// Which equal-amplitude variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EaSign {
    /// EA+: `Ω₁ = 0` (opposite-sign drive amplitudes), binding time τ₊.
    Plus,
    /// EA−: `Ω₂ = 0` (same-sign drive amplitudes), binding time τ₋.
    Minus,
}

/// Maps the paper's `(α, β)` eigenvalue parameters to pulse parameters for
/// an EA subscheme (Algorithm 1 lines 19–31), **projecting** infeasible
/// inputs: a negative radicand (outside the feasible region
/// `α ∈ [0, 1], β ≥ 0, α + β ≥ η`) is clamped to zero amplitude, which is
/// the boundary value the region's closure attains. Callers probing
/// arbitrary points should prefer [`ea_params_checked`], which reports
/// infeasibility instead of silently projecting — the boundary-curve
/// solver uses it so a root search can never converge to a masked-invalid
/// point.
pub fn ea_params(cp: &Coupling, sign: EaSign, alpha: f64, beta: f64) -> PulseParams {
    let (om2, de2) = ea_radicands(cp, sign, alpha, beta);
    ea_params_from_radicands(cp, sign, om2.max(0.0), de2.max(0.0))
}

/// [`ea_params`] with explicit infeasibility: returns `None` when either
/// radicand is negative beyond numerical rounding (relative to the
/// `O((1+β)²)` scale of the radicands), i.e. when `(α, β)` lies genuinely
/// outside the feasible region rather than on its boundary.
pub fn ea_params_checked(
    cp: &Coupling,
    sign: EaSign,
    alpha: f64,
    beta: f64,
) -> Option<PulseParams> {
    let (om2, de2) = ea_radicands(cp, sign, alpha, beta);
    let tol = -1e-9 * (1.0 + beta) * (1.0 + beta);
    if om2 < tol || de2 < tol {
        return None;
    }
    Some(ea_params_from_radicands(cp, sign, om2.max(0.0), de2.max(0.0)))
}

/// The two squared-amplitude radicands of the EA parameterization, in
/// units of `scale²`.
fn ea_radicands(cp: &Coupling, sign: EaSign, alpha: f64, beta: f64) -> (f64, f64) {
    let eta = ea_eta(cp, sign);
    (
        (1.0 - alpha) * beta * (1.0 - eta + alpha + beta),
        alpha * (1.0 + beta) * (alpha + beta - eta),
    )
}

fn ea_params_from_radicands(cp: &Coupling, sign: EaSign, om2: f64, de2: f64) -> PulseParams {
    let scale = ea_scale(cp, sign);
    let om = scale * om2.sqrt();
    let de = scale * de2.sqrt();
    match sign {
        EaSign::Plus => PulseParams { omega1: 0.0, omega2: om, delta: -de },
        EaSign::Minus => PulseParams { omega1: om, omega2: 0.0, delta: de },
    }
}

fn ea_scale(cp: &Coupling, sign: EaSign) -> f64 {
    match sign {
        EaSign::Plus => cp.a + cp.c,
        EaSign::Minus => cp.a - cp.c,
    }
}

fn ea_eta(cp: &Coupling, sign: EaSign) -> f64 {
    (cp.a - cp.b) / ea_scale(cp, sign)
}

/// A converged EA root with its parameterization and verification residual.
#[derive(Debug, Clone, Copy)]
pub struct EaSolution {
    /// Eigenvalue parameter α ∈ [0, 1].
    pub alpha: f64,
    /// Eigenvalue parameter β ≥ 0.
    pub beta: f64,
    /// Physical pulse parameters.
    pub params: PulseParams,
    /// Weyl-coordinate residual of the verified evolution.
    pub residual: f64,
}

/// Deterministic counters of one [`solve_ea_profiled`] call — the
/// cold-path profile `solverbench` and the CI `solver-profile` job assert
/// budgets on (wall-clock-free, so a seeding regression fails loudly even
/// on a noisy single-core runner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EaSolveProfile {
    /// Cheap invariant-trace evaluations (`F = tr M − T`): the analog of
    /// the grid solver's seed evaluations, one 4×4 `expm` each — no KAK.
    pub evals: u64,
    /// Full Weyl-residual verifications (one KAK decomposition each),
    /// including Nelder–Mead polish steps on degenerate targets.
    pub verifies: u64,
    /// Matched-eigenphase curve points located on the lattice.
    pub curve_points: u64,
    /// Local polish starts (Newton or Nelder–Mead).
    pub newton_starts: u64,
    /// Local polish iterations across all starts.
    pub newton_iters: u64,
    /// Roots found on the pure-detuning boundary family (`Ω = 0`).
    pub delta_family_roots: u64,
    /// Roots found on the pure-amplitude boundary family (`δ = 0`).
    pub omega_family_roots: u64,
    /// Roots found by the interior curve walk.
    pub interior_roots: u64,
    /// Solves rejected outright by the conserved-eigenphase precheck (no
    /// root can exist at this `(sign, τ)`): each cost zero evaluations.
    pub early_rejects: u64,
    /// Solves whose target eigenphases were (near-)degenerate, taking the
    /// tangential-root path.
    pub degenerate_targets: u64,
}

impl EaSolveProfile {
    /// Component-wise sum — for aggregating attempts.
    pub fn merged(&self, other: &EaSolveProfile) -> EaSolveProfile {
        EaSolveProfile {
            evals: self.evals + other.evals,
            verifies: self.verifies + other.verifies,
            curve_points: self.curve_points + other.curve_points,
            newton_starts: self.newton_starts + other.newton_starts,
            newton_iters: self.newton_iters + other.newton_iters,
            delta_family_roots: self.delta_family_roots + other.delta_family_roots,
            omega_family_roots: self.omega_family_roots + other.omega_family_roots,
            interior_roots: self.interior_roots + other.interior_roots,
            early_rejects: self.early_rejects + other.early_rejects,
            degenerate_targets: self.degenerate_targets + other.degenerate_targets,
        }
    }
}

/// Angle tolerance of the conserved-eigenphase precheck and of the
/// boundary-family fixed-pair gate.
const PHASE_MATCH_TOL: f64 = 1e-6;

/// Below this pairwise separation (radians, mod 2π) of target eigenphases
/// the root structure turns tangential and the degenerate path runs.
const DEGENERATE_PHASE_SEP: f64 = 0.05;

/// Hard β ceiling — the historical grid solver's top tier bound.
const BETA_CAP: f64 = 400.0;

/// Total eigenphase-winding budget (radians) a scan resolves before the
/// escalation doubles it; bounds the phase-spaced β range per pass.
const PHASE_BUDGET: f64 = 30.0;

/// Bell-phase mismatch distance to 0 mod 2π.
fn ang(d: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let r = d.rem_euclid(two_pi);
    r.min(two_pi - r)
}

/// Eval counters shared by the solve's closures (interior mutability so
/// the residual-map lambdas stay `Fn`).
#[derive(Default)]
struct Counters {
    evals: Cell<u64>,
    verifies: Cell<u64>,
    curve_points: Cell<u64>,
    newton_starts: Cell<u64>,
    newton_iters: Cell<u64>,
}

/// Per-solve context: the target's Bell phases, the conserved index, and
/// the rotation data of the boundary-curve chart.
struct Ctx<'a> {
    cp: &'a Coupling,
    sign: EaSign,
    w: &'a WeylCoord,
    tau: f64,
    eta: f64,
    scale: f64,
    /// Target M-phases `2φ_k` of the representative `tau` binds, ordered
    /// `[Φ⁺, Φ⁻, Ψ⁺, Ψ⁻]`.
    t: [f64; 4],
    /// `Σ_k e^{i t_k}` — the target's trace invariant.
    big_t: C64,
    /// Index into `t` of the Bell state the subscheme conserves.
    fixed_idx: usize,
    /// Sum of the three non-conserved target phases.
    s3: f64,
    c: Counters,
}

impl<'a> Ctx<'a> {
    /// Builds the context with trace targets from `rep`, a locally
    /// equivalent representative of `w` (the chamber point or its
    /// extended image) — whichever one `tau` actually binds.
    fn with_rep(cp: &'a Coupling, sign: EaSign, w: &'a WeylCoord, rep: &WeylCoord, tau: f64) -> Self {
        let phis = rep.magic_eigenphases();
        let t = [2.0 * phis[0], 2.0 * phis[1], 2.0 * phis[2], 2.0 * phis[3]];
        let mut big_t = C64::real(0.0);
        for tk in t {
            big_t += C64::cis(tk);
        }
        let fixed_idx = match sign {
            EaSign::Plus => 2,  // Ψ⁺ conserved by the antisymmetric drive
            EaSign::Minus => 3, // Ψ⁻ conserved by the symmetric drive
        };
        let s3 = (0..4).filter(|&i| i != fixed_idx).map(|i| t[i]).sum();
        Ctx {
            cp,
            sign,
            w,
            tau,
            eta: ea_eta(cp, sign),
            scale: ea_scale(cp, sign),
            t,
            big_t,
            fixed_idx,
            s3,
            c: Counters::default(),
        }
    }

    /// Realized M-phase of the conserved Bell state (exact: it is an
    /// eigenvector of the full drive-on Hamiltonian).
    fn fixed_realized(&self) -> f64 {
        let (a, b, c) = (self.cp.a, self.cp.b, self.cp.c);
        match self.sign {
            // Ψ⁺: E = a+b−c ⇒ M-phase −2τ(a+b−c).
            EaSign::Plus => -2.0 * self.tau * (a + b - c),
            // Ψ⁻: E = −(a+b+c) ⇒ M-phase +2τ(a+b+c).
            EaSign::Minus => 2.0 * self.tau * (a + b + c),
        }
    }

    /// Projects a probe point onto the closed feasible region. The
    /// projection is explicit (and `ea_params_checked` would accept the
    /// result) — nothing downstream relies on silent radicand masking.
    fn project(&self, al: f64, be: f64) -> (f64, f64) {
        let al = al.clamp(0.0, 1.0);
        (al, be.max(self.eta - al).max(0.0))
    }

    fn params(&self, al: f64, be: f64) -> PulseParams {
        let (al, be) = self.project(al, be);
        ea_params_checked(self.cp, self.sign, al, be)
            .expect("projected point must be feasible")
    }

    /// `F = tr M − T` for the given params (counted).
    fn f_params(&self, p: &PulseParams) -> C64 {
        self.c.evals.set(self.c.evals.get() + 1);
        local_invariant_trace(&evolve(self.cp, p, self.tau)) - self.big_t
    }

    fn f(&self, al: f64, be: f64) -> C64 {
        self.f_params(&self.params(al, be))
    }

    /// `(g_k, h_k)` at a point for curve phase `t_k` (`k` indexes
    /// `self.t`); see the module docs for the chart.
    fn gh(&self, al: f64, be: f64, k: usize) -> (f64, f64) {
        let f = self.f(al, be);
        self.gh_from_f(f, k)
    }

    fn gh_from_f(&self, f: C64, k: usize) -> (f64, f64) {
        let tk = self.t[k];
        let theta = 0.5 * (tk - self.s3);
        let rot = C64::cis(theta);
        // e1 = tr M_trip = (F + T) − conserved eigenvalue (exact).
        let e1 = f + self.big_t - C64::cis(self.fixed_realized());
        let g = (e1 * rot).im - (tk + theta).sin();
        let h = (f * rot).re;
        (g, h)
    }

    /// Counted full-KAK Weyl verification.
    fn verify(&self, p: &PulseParams) -> f64 {
        self.c.verifies.set(self.c.verifies.get() + 1);
        residual(self.cp, p, self.tau, self.w)
    }

    /// Fixed-pair data of a boundary family (0 = pure-detuning δ-only,
    /// 1 = pure-amplitude Ω-only): `(fixed target phase, fixed realized
    /// phase, varying-pair target phase sum)`. On a one-axis drive the
    /// Hamiltonian conserves a second Bell state, so the family can hold
    /// roots only when that state's phase also matches — the gate that
    /// makes boundary scans O(1) to skip.
    fn family_fixed(&self, family: usize) -> (f64, f64, f64) {
        let (a, b, c) = (self.cp.a, self.cp.b, self.cp.c);
        let t = &self.t;
        match (self.sign, family) {
            // EA−, δ-only: fixed {Ψ⁺, Ψ⁻}; varying {Φ⁺, Φ⁻}.
            (EaSign::Minus, 0) => (t[2], -2.0 * self.tau * (a + b - c), t[0] + t[1]),
            // EA−, Ω-only: fixed {Φ⁻, Ψ⁻}; varying {Φ⁺, Ψ⁺}.
            (EaSign::Minus, _) => (t[1], -2.0 * self.tau * (b + c - a), t[0] + t[2]),
            // EA+, δ-only: fixed {Ψ⁺, Ψ⁻}; varying {Φ⁺, Φ⁻}.
            (EaSign::Plus, 0) => (t[3], 2.0 * self.tau * (a + b + c), t[0] + t[1]),
            // EA+, Ω-only: fixed {Φ⁺, Ψ⁺}; varying {Φ⁻, Ψ⁻}.
            (EaSign::Plus, _) => (t[0], -2.0 * self.tau * (a - b + c), t[1] + t[3]),
        }
    }

    fn family_mismatch(&self, family: usize) -> f64 {
        let (ft, fr, _) = self.family_fixed(family);
        ang(fr - ft)
    }
}

/// A located root candidate before final dedup.
struct Root {
    alpha: f64,
    beta: f64,
    params: PulseParams,
    residual: f64,
}

/// Solves an EA subscheme by the boundary-curve method (module docs),
/// returning all distinct converged roots sorted by implementation
/// penalty (paper §4.2).
pub fn solve_ea(cp: &Coupling, sign: EaSign, w: &WeylCoord, tau: f64, tol: f64) -> Vec<EaSolution> {
    solve_ea_profiled(cp, sign, w, tau, tol).0
}

/// [`solve_ea`] plus the solve's deterministic cost profile.
pub fn solve_ea_profiled(
    cp: &Coupling,
    sign: EaSign,
    w: &WeylCoord,
    tau: f64,
    tol: f64,
) -> (Vec<EaSolution>, EaSolveProfile) {
    // `tau` binds either the chamber representative or its extended image
    // (π/2−x, y, −z); their M-eigenphase multisets differ (pair π-shifts),
    // so the trace targets must come from the one `tau` saturates. The
    // conserved-eigenphase test identifies it exactly — and rejects the
    // whole solve for free when neither matches (no root can exist).
    let reps = [*w, w.ext_image()];
    let mut ctx = Ctx::with_rep(cp, sign, w, &reps[0], tau);
    if ang(ctx.fixed_realized() - ctx.t[ctx.fixed_idx]) > PHASE_MATCH_TOL {
        let ctx2 = Ctx::with_rep(cp, sign, w, &reps[1], tau);
        if ang(ctx2.fixed_realized() - ctx2.t[ctx2.fixed_idx]) > PHASE_MATCH_TOL {
            return (
                Vec::new(),
                EaSolveProfile { early_rejects: 1, ..EaSolveProfile::default() },
            );
        }
        ctx = ctx2;
    }

    let mut profile = EaSolveProfile::default();
    let mut roots = boundary_family(&ctx, 0, tol);
    profile.delta_family_roots = roots.len() as u64;
    let omega_roots = boundary_family(&ctx, 1, tol);
    profile.omega_family_roots = omega_roots.len() as u64;
    roots.extend(omega_roots);
    let have_boundary_roots = !roots.is_empty();
    let interior_roots = interior(&ctx, tol, have_boundary_roots, &mut profile);
    profile.interior_roots = interior_roots.iter().filter(|r| r.residual < tol).count() as u64;
    roots.extend(interior_roots);
    // Escalation: nothing anywhere below the winding budget, but the
    // conserved phase says roots can exist — scan the legacy solver's
    // high-β tiers (up to the historical cap) before giving up.
    if !roots.iter().any(|r| r.residual < tol) {
        let q_ref = ctx.scale.abs().max(1e-12);
        let b_hi = (PHASE_BUDGET / (ctx.tau.max(1e-9) * q_ref)).min(BETA_CAP);
        if b_hi < BETA_CAP {
            let escalated = escalation_scan(&ctx, tol, b_hi);
            profile.interior_roots +=
                escalated.iter().filter(|r| r.residual < tol).count() as u64;
            roots.extend(escalated);
        }
    }

    // Filter by the verified residual, sort by (penalty, residual), and
    // deduplicate by pulse parameters — the historical output contract.
    roots.retain(|r| r.residual < tol);
    roots.sort_by(|a, b| {
        (a.params.penalty(), a.residual)
            .partial_cmp(&(b.params.penalty(), b.residual))
            .unwrap()
    });
    let mut out: Vec<EaSolution> = Vec::new();
    for r in roots {
        if !out.iter().any(|s| {
            (s.params.omega1 - r.params.omega1).abs()
                + (s.params.omega2 - r.params.omega2).abs()
                + (s.params.delta - r.params.delta).abs()
                < 1e-6 * (1.0 + r.params.penalty())
        }) {
            out.push(EaSolution {
                alpha: r.alpha,
                beta: r.beta,
                params: r.params,
                residual: r.residual,
            });
        }
    }
    profile.evals = ctx.c.evals.get();
    profile.verifies = ctx.c.verifies.get();
    profile.curve_points = ctx.c.curve_points.get();
    profile.newton_starts = ctx.c.newton_starts.get();
    profile.newton_iters = ctx.c.newton_iters.get();
    (out, profile)
}

/// 1-D solve over one boundary family of the feasible region.
///
/// `family`: `0` = pure detuning (`Ω = 0`, the union of the `β = 0` and
/// `α = 1` edges, parameterized by the physical `δ`); `1` = pure
/// amplitude (`δ = 0`, the `α + β = η` diagonal and the `α = 0` edge,
/// parameterized by `Ω`). On these one-axis drives a second Bell state is
/// conserved, `F` minus its fixed mismatch is confined to a known complex
/// ray, and roots are sign changes of the ray coordinate along log- and
/// phase-spaced scan points — frontier-marginal sliver roots fall in the
/// log-spaced span by construction.
fn boundary_family(ctx: &Ctx, family: usize, tol: f64) -> Vec<Root> {
    let (fixed_target, fixed_realized, s_pair) = ctx.family_fixed(family);
    if ang(fixed_realized - fixed_target) > PHASE_MATCH_TOL {
        return Vec::new();
    }
    let const_c = C64::cis(fixed_realized) - C64::cis(fixed_target);
    let rot = C64::cis(-0.5 * s_pair);
    let to_ab = |q: f64| -> (f64, f64) {
        let s = ctx.scale;
        let eta = ctx.eta;
        let r = (q / s) * (q / s);
        if family == 0 {
            // δ = s·√(α(1+β)(α+β−η)); β = 0 below the (α = 1, β = 0)
            // corner value, α = 1 above it.
            let q0 = s * (1.0 - eta).max(0.0).sqrt();
            if q <= q0 {
                let al = 0.5 * (eta + (eta * eta + 4.0 * r).sqrt());
                (al.min(1.0), 0.0)
            } else {
                let half = 0.5 * eta - 1.0;
                let be = half + (half * half + r - (1.0 - eta)).max(0.0).sqrt();
                (1.0, be.max(0.0))
            }
        } else {
            // Ω = s·√((1−α)β(1−η+α+β)); the α+β = η diagonal below the
            // (α = 0, β = η) corner value, α = 0 above it.
            let q0 = if ctx.eta > 0.0 { s * ctx.eta.sqrt() } else { 0.0 };
            if q < q0 {
                let disc = ((1.0 + eta) * (1.0 + eta) - 4.0 * (eta - r)).max(0.0).sqrt();
                let al = 0.5 * ((1.0 + eta) - disc);
                (al.clamp(0.0, 1.0), (eta - al).max(0.0))
            } else {
                let half = 0.5 * (1.0 - eta);
                let be = -half + (half * half + r).sqrt();
                (0.0, be.max(ctx.eta))
            }
        }
    };
    let h_of = |q: f64| -> f64 {
        let (al, be) = to_ab(q);
        ((ctx.f(al, be) - const_c) * rot).re
    };
    // Log-spaced drive magnitudes cover the slivers; phase-spaced points
    // resolve the winding above the coupling scale.
    let q_ref = ctx.scale.abs().max(1e-12);
    let mut qs: Vec<f64> = (0..14).map(|j| q_ref * 1e-5 * 10f64.powf(5.0 * j as f64 / 13.0)).collect();
    let dq = 0.45 / ctx.tau.max(1e-9);
    let q_hi = (PHASE_BUDGET / ctx.tau.max(1e-9)).min(500.0 * q_ref);
    let mut q = q_ref + dq;
    while q < q_hi {
        qs.push(q);
        q += dq;
    }
    let mut roots = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for &qq in &qs {
        let h = h_of(qq);
        if let Some((pq, ph)) = prev {
            if ph == 0.0 {
                // The previous scan point is itself the root — verify it
                // directly (a bisection seeded with flo = 0 would treat
                // it as positive and walk away from it).
                let (al, be) = to_ab(pq);
                let p = ctx.params(al, be);
                let r = ctx.verify(&p);
                if r < tol {
                    roots.push(Root { alpha: al, beta: be, params: p, residual: r });
                }
            } else if (ph < 0.0) != (h < 0.0) {
                let (mut lo, mut hi, mut flo) = (pq, qq, ph);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    let fm = h_of(mid);
                    if (fm < 0.0) == (flo < 0.0) {
                        lo = mid;
                        flo = fm;
                    } else {
                        hi = mid;
                    }
                    if hi - lo < 1e-14 * (1.0 + hi) {
                        break;
                    }
                }
                let (al, be) = to_ab(0.5 * (lo + hi));
                let p = ctx.params(al, be);
                let r = ctx.verify(&p);
                if r < tol {
                    roots.push(Root { alpha: al, beta: be, params: p, residual: r });
                }
            }
        }
        prev = Some((qq, h));
    }
    roots
}

/// Interior curve walk on a shared `(α, ln β)` lattice: evaluate `F` once
/// per node, locate `g_k` sign changes along both lattice directions,
/// link nearby curve points with opposite `h` into Newton starts, and
/// route (near-)degenerate targets through the tangential-root path.
///
fn interior(
    ctx: &Ctx,
    tol: f64,
    have_boundary_roots: bool,
    profile: &mut EaSolveProfile,
) -> Vec<Root> {
    let mut rows: Vec<f64> = vec![0.06, 0.18, 0.3, 0.42, 0.54, 0.66, 0.78, 0.9];
    for j in 2..=6 {
        rows.push(1.0 - 10f64.powf(-(j as f64)));
    }
    // The exact edges join the lattice only when their boundary family
    // carries a fixed-pair mismatch: then g is well-behaved there and
    // curve/edge crossings bracket roots hugging the edge. (With a
    // matched fixed pair, g vanishes identically along the edge and the
    // 1-D boundary scan owns it instead.)
    if ctx.family_mismatch(1) > 1e-4 {
        rows.insert(0, 0.0);
    }
    if ctx.family_mismatch(0) > 1e-4 {
        rows.push(1.0);
    }
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // β grid: coarse log ladder through the sliver decades (the boundary
    // families and near-edge rows own those roots), dense log spacing
    // through [1e-2, 1] where interior roots live, then phase-spaced
    // above 1 out to the winding budget.
    let q_ref = ctx.scale.abs().max(1e-12);
    let db = 0.9 / (ctx.tau.max(1e-9) * q_ref * 2.0);
    let mut betas: Vec<f64> = (0..6).map(|j| 10f64.powf(-8.0 + 6.0 * j as f64 / 5.0)).collect();
    betas.extend((0..=10).map(|j| 10f64.powf(-2.0 + 2.0 * j as f64 / 10.0)));
    let b_hi = (PHASE_BUDGET / (ctx.tau.max(1e-9) * q_ref)).min(BETA_CAP);
    let mut bb = 1.0f64 + db;
    while bb < b_hi {
        betas.push(bb);
        bb += db * (1.0 + bb * 0.15);
    }
    betas.push(b_hi);

    let ks: Vec<usize> = (0..4).filter(|&i| i != ctx.fixed_idx).collect();
    let (na, nb) = (rows.len(), betas.len());
    let mut lat = vec![[(f64::NAN, f64::NAN); 4]; na * nb];
    let mut fabs = vec![f64::NAN; na * nb];
    for (i, &al) in rows.iter().enumerate() {
        for (j, &be) in betas.iter().enumerate() {
            if al + be < ctx.eta {
                continue;
            }
            let f = ctx.f(al, be);
            fabs[i * nb + j] = f.abs();
            for &k in &ks {
                lat[i * nb + j][k] = ctx.gh_from_f(f, k);
            }
        }
    }

    // Curve points per k: (α, β, h), from sign changes along both lattice
    // directions, linearly interpolated (log-β along rows).
    let mut pts: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 4];
    for &k in &ks {
        for i in 0..na {
            for j in 0..nb {
                let (g0, h0) = lat[i * nb + j][k];
                if g0.is_nan() {
                    continue;
                }
                if j + 1 < nb {
                    let (g1, h1) = lat[i * nb + j + 1][k];
                    if !g1.is_nan() && (g0 < 0.0) != (g1 < 0.0) {
                        let t = g0 / (g0 - g1);
                        let be = betas[j] * (betas[j + 1] / betas[j]).powf(t);
                        pts[k].push((rows[i], be, h0 + t * (h1 - h0)));
                    }
                }
                if i + 1 < na {
                    let (g1, h1) = lat[(i + 1) * nb + j][k];
                    if !g1.is_nan() && (g0 < 0.0) != (g1 < 0.0) {
                        let t = g0 / (g0 - g1);
                        let al = rows[i] + t * (rows[i + 1] - rows[i]);
                        pts[k].push((al, betas[j], h0 + t * (h1 - h0)));
                    }
                }
            }
        }
    }
    ctx.c
        .curve_points
        .set(ctx.c.curve_points.get() + pts.iter().map(|p| p.len() as u64).sum::<u64>());

    // Scaled distance between curve points: α weighted up, β compared in
    // whichever of log or phase-step units is tighter.
    let metric = |a: &(f64, f64, f64), b: &(f64, f64, f64)| -> f64 {
        let dl = ((a.1.max(1e-12)) / (b.1.max(1e-12)))
            .ln()
            .abs()
            .min((a.1 - b.1).abs() / db.max(1e-12));
        (3.0 * (a.0 - b.0)).abs() + dl
    };

    // Target-degeneracy detection: any tracked pair coinciding mod 2π
    // makes roots tangential (x ≈ y / y ≈ z SU(4) families).
    let mut degenerate = false;
    for (ii, &k1) in ks.iter().enumerate() {
        for &k2 in ks.iter().skip(ii + 1) {
            if ang(ctx.t[k1] - ctx.t[k2]) < DEGENERATE_PHASE_SEP {
                degenerate = true;
            }
        }
    }
    profile.degenerate_targets = u64::from(degenerate);

    // Newton starts: linked opposite-h curve-point pairs plus small-h
    // points, each with a promise score (smaller = closer to a root).
    let mut starts: Vec<(f64, f64, usize, f64)> = Vec::new();
    for &k in &ks {
        let list = &pts[k];
        for i in 0..list.len() {
            let (al, be, h) = list[i];
            if h.abs() < 0.03 {
                starts.push((al, be, k, h.abs()));
            }
            for pj in list.iter().skip(i + 1) {
                if metric(&list[i], pj) < 0.7 && (h < 0.0) != (pj.2 < 0.0) {
                    starts.push((
                        0.5 * (al + pj.0),
                        (be.max(1e-12) * pj.1.max(1e-12)).sqrt(),
                        k,
                        h.abs().min(pj.2.abs()),
                    ));
                }
            }
        }
    }
    // Lattice-local |F| minima as extra starts — only degenerate targets
    // need them; transversal roots are caught by the curve net.
    if degenerate {
        for i in 0..na {
            for j in 0..nb {
                let v = fabs[i * nb + j];
                if v.is_nan() || v > 0.5 {
                    continue;
                }
                let mut is_min = true;
                for (di, dj) in [(0i64, -1i64), (0, 1), (-1, 0), (1, 0)] {
                    let (ni, nj) = (i as i64 + di, j as i64 + dj);
                    if ni >= 0 && nj >= 0 && (ni as usize) < na && (nj as usize) < nb {
                        let nv = fabs[ni as usize * nb + nj as usize];
                        if !nv.is_nan() && nv < v {
                            is_min = false;
                        }
                    }
                }
                if is_min {
                    starts.push((rows[i], betas[j], ks[0], v));
                }
            }
        }
    }
    // Sort most promising first; dedup within a radius (across k too: the
    // same location under two phases converges to the same root).
    // Near-degenerate targets split roots into close pairs, so their
    // dedup radius must stay below the pair separation.
    starts.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap());
    let dedup_r = if degenerate { 0.08 } else { 0.2 };
    let mut kept: Vec<(f64, f64, usize, f64)> = Vec::new();
    for s in starts {
        if !kept.iter().any(|t| metric(&(s.0, s.1, 0.0), &(t.0, t.1, 0.0)) < dedup_r) {
            kept.push(s);
        }
    }
    let mut starts = kept;

    // The tracked phase with the largest separation from the other two:
    // curves and Newton stay transversal for it even when the remaining
    // pair degenerates.
    let k_sep = *ks
        .iter()
        .max_by(|&&a, &&b| {
            let sep = |k: usize| {
                ks.iter()
                    .filter(|&&o| o != k)
                    .map(|&o| ang(ctx.t[k] - ctx.t[o]))
                    .fold(f64::INFINITY, f64::min)
            };
            sep(a).partial_cmp(&sep(b)).unwrap()
        })
        .unwrap();

    // Degenerate-pair targets split roots into |h| dips that need not
    // cross zero at lattice resolution: chain the separated-phase curve,
    // refine the most promising segments, and add sign changes and dip
    // bottoms as extra starts. Budgets bound the work: a winding ladder
    // (escalation window) yields thousands of curve points, and only the
    // smallest-|h| stretches can hold roots.
    if degenerate && !have_boundary_roots {
        let mut pool: Vec<(f64, f64, f64)> = pts[k_sep].clone();
        let mut chains: Vec<Vec<(f64, f64, f64)>> = Vec::new();
        while let Some(seed) = pool.pop() {
            let mut cur = vec![seed];
            loop {
                let last = *cur.last().unwrap();
                let Some((bi, _)) = pool
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, metric(&last, p)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .filter(|&(_, d)| d < 1.0)
                else {
                    break;
                };
                cur.push(pool.swap_remove(bi));
            }
            chains.push(cur);
        }
        // Candidate segments (adjacent chain pairs), most promising (the
        // smallest endpoint |h|) first, refined 4x under a global budget.
        let mut segments: Vec<(f64, (f64, f64, f64), (f64, f64, f64))> = Vec::new();
        for ch in &chains {
            for i in 0..ch.len().saturating_sub(1) {
                let (p, q) = (ch[i], ch[i + 1]);
                let score = p.2.abs().min(q.2.abs());
                if score < 0.35 {
                    segments.push((score, p, q));
                }
            }
        }
        segments.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Stage 1: refine the 48 most promising segments; collect exact
        // sign-change brackets and dip candidates with their *refined*
        // minimum |h|.
        let mut dips: Vec<(f64, [(f64, f64, f64); 3])> = Vec::new();
        for &(_, p, q) in segments.iter().take(48) {
            let mut fine = vec![p];
            for m in 1..4 {
                let t = m as f64 / 4.0;
                let al = p.0 + t * (q.0 - p.0);
                let be = p.1.max(1e-12) * (q.1.max(1e-12) / p.1.max(1e-12)).powf(t);
                if let Some(pt) = correct_onto_curve(ctx, al, be, k_sep) {
                    fine.push(pt);
                }
            }
            fine.push(q);
            for w in fine.windows(2) {
                let (a, b) = (w[0], w[1]);
                // Sign changes between refined neighbors are exact brackets.
                if (a.2 < 0.0) != (b.2 < 0.0) {
                    starts.push((
                        0.5 * (a.0 + b.0),
                        (a.1.max(1e-12) * b.1.max(1e-12)).sqrt(),
                        k_sep,
                        a.2.abs().min(b.2.abs()) * 0.01,
                    ));
                }
            }
            let besti = (0..fine.len())
                .min_by(|&a, &b| fine[a].2.abs().partial_cmp(&fine[b].2.abs()).unwrap())
                .unwrap();
            if besti > 0 && besti + 1 < fine.len() {
                dips.push((
                    fine[besti].2.abs(),
                    [fine[besti - 1], fine[besti], fine[besti + 1]],
                ));
            }
        }
        // Stage 2: ternary-search the globally deepest dips (a tangential
        // root bottoms out without a sign change).
        dips.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (_, [lo, mid, hi]) in dips.into_iter().take(12) {
            let eval_at = |t: f64| -> Option<(f64, f64, f64)> {
                let al = lo.0 + t * (hi.0 - lo.0);
                let be = lo.1.max(1e-12) * (hi.1.max(1e-12) / lo.1.max(1e-12)).powf(t);
                correct_onto_curve(ctx, al, be, k_sep)
            };
            let (mut a, mut b) = (0.0f64, 1.0f64);
            let mut best_pt = mid;
            for _ in 0..7 {
                let t1 = a + (b - a) / 3.0;
                let t2 = b - (b - a) / 3.0;
                match (eval_at(t1), eval_at(t2)) {
                    (Some(p1), Some(p2)) => {
                        if p1.2.abs() < best_pt.2.abs() {
                            best_pt = p1;
                        }
                        if p2.2.abs() < best_pt.2.abs() {
                            best_pt = p2;
                        }
                        if p1.2.abs() < p2.2.abs() {
                            b = t2;
                        } else {
                            a = t1;
                        }
                    }
                    _ => break,
                }
            }
            starts.push((best_pt.0, best_pt.1, k_sep, best_pt.2.abs() * 0.1));
        }
        starts.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap());
    }

    let mut roots: Vec<Root> = Vec::new();
    if degenerate {
        // Candidate pool: score starts by their true residual (one verify
        // each — tangential |h| barely discriminates here), then keep the
        // union of the lowest-penalty half (the best-root contract:
        // low-amplitude basins must get polish slots — this is what pins
        // e.g. SWAP's (2/3, 1) optimum) and the lowest-residual half
        // (root-finding robustness: marginal targets can hide their only
        // roots in high-penalty corners). The window is generous: ~60 KAK
        // evaluations are noise next to the legacy path's thousands, and
        // a degenerate target's root basin can rank anywhere by |h|.
        let (pen_n, res_n) = if have_boundary_roots { (2, 2) } else { (8, 8) };
        let window = if have_boundary_roots { 6 } else { 24 };
        let cand: Vec<(f64, f64, f64, f64)> = starts
            .into_iter()
            .take(window)
            .map(|(al, be, _k, _s)| {
                // Symmetric degenerate targets hide their roots in basins
                // narrower than the lattice pitch (the legacy rational
                // grid hit e.g. SWAP's (1/2, 5/2) exactly); a couple of
                // coordinate-descent rounds on cheap |F| pull each
                // candidate into its local basin before the expensive
                // residual scoring.
                let (al, be) = refine_on_f(ctx, al, be);
                let (al, be) = ctx.project(al, be);
                let r = ctx.verify(&ctx.params(al, be));
                (al, be, ctx.params(al, be).penalty(), r)
            })
            .collect();
        let mut by_penalty = cand.clone();
        by_penalty.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let mut by_residual = cand;
        by_residual.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap());
        let mut scored: Vec<(f64, f64, f64)> = Vec::new();
        for (al, be, _pen, r) in
            by_penalty.into_iter().take(pen_n).chain(by_residual.into_iter().take(res_n))
        {
            if !scored.iter().any(|&(a, b2, _)| {
                (a - al).abs() < 1e-12 && (b2 - be).abs() < 1e-12 * (1.0 + be)
            }) {
                scored.push((al, be, r));
            }
        }
        // Pass 1: a cheap Newton attempt on every start. Split-pair
        // (near-degenerate) roots are transversal at fine scale, so this
        // lands them exactly; root-continuum points (marginal targets)
        // verify below tol immediately.
        let mut failures: Vec<(f64, f64, f64)> = Vec::new();
        for &(al0, be0, r0) in &scored {
            ctx.c.newton_starts.set(ctx.c.newton_starts.get() + 1);
            if r0 < tol {
                let p = ctx.params(al0, be0);
                roots.push(Root { alpha: al0, beta: be0, params: p, residual: r0 });
                continue;
            }
            if let Some((al, be)) = newton_gh(ctx, al0, be0, k_sep, 30) {
                let (al, be) = ctx.project(al, be);
                let p = ctx.params(al, be);
                let r = ctx.verify(&p);
                if r < tol {
                    roots.push(Root { alpha: al, beta: be, params: p, residual: r });
                    continue;
                }
            }
            failures.push((al0, be0, r0));
        }
        // Pass 2: Nelder–Mead on the true Weyl residual for the most
        // promising failures — the only functional that stays conical at
        // exactly-degenerate (tangential) roots. Raw (α, β) coordinates
        // and the legacy step sizes: log-β reflections overshoot the
        // narrow conical valleys these roots sit in.
        // Boundary-rooted degenerate targets (the marginal sliver
        // continuum) already hold their best root exactly; NM passes
        // would only wander the flat valley collecting duplicates.
        let nm_budget = if have_boundary_roots {
            0
        } else if roots.is_empty() {
            4
        } else {
            2
        };
        for (al0, be0, _r0) in failures.into_iter().take(nm_budget) {
            // Stage A: minimize the *smooth* |F| (cheap trace evals). The
            // Weyl residual is cliff-bounded around degenerate roots
            // (canonicalization folds), so a residual search can only
            // succeed from inside a basin that may be 1e-4 wide — |F| has
            // no folds and funnels the simplex into that basin.
            let obj_f = |al: f64, be: f64| -> f64 {
                ctx.c.newton_iters.set(ctx.c.newton_iters.get() + 1);
                let (al, be) = ctx.project(al, be);
                ctx.f(al, be).abs()
            };
            let step = if al0 > 0.99 || be0 < 0.05 { 0.004 } else { 0.08 };
            let Some((al1, be1, f1)) = nelder_mead_2d(&obj_f, al0, be0, step, 400) else {
                continue;
            };
            if f1 > 1e-6 {
                continue; // no tangential zero in reach
            }
            // Stage B: finish on the true Weyl residual from inside the
            // basin (|F| bottoms out at its ~1e-14 noise floor, which is
            // only ~1e-7 in eigenphase — not yet tol).
            let obj_r = |al: f64, be: f64| -> f64 {
                ctx.c.newton_iters.set(ctx.c.newton_iters.get() + 1);
                let (al, be) = ctx.project(al, be);
                ctx.verify(&ctx.params(al, be))
            };
            if let Some((al, be, r)) = nelder_mead_2d(&obj_r, al1, be1, 1e-3, 300) {
                if r < tol.max(1e-9) {
                    let (al, be) = ctx.project(al, be);
                    let p = ctx.params(al, be);
                    roots.push(Root { alpha: al, beta: be, params: p, residual: r });
                }
            }
        }
        return roots;
    }

    for (al0, be0, k, _s) in starts {
        ctx.c.newton_starts.set(ctx.c.newton_starts.get() + 1);
        if let Some((al, be)) = newton_gh(ctx, al0, be0, k, 20) {
            let (al, be) = ctx.project(al, be);
            let p = ctx.params(al, be);
            let r = ctx.verify(&p);
            roots.push(Root { alpha: al, beta: be, params: p, residual: r });
        }
    }
    roots
}

/// High-β rescue pass over `(b_lo, 400]`: roots out here wind the drive
/// phase tens of times (huge amplitudes) and — for the near-degenerate
/// targets that need them — sit on a 2-D *plateau* where `F ≈ 0`
/// everywhere and the curve chart degenerates. The only robust tool on a
/// plateau is the legacy recipe: rank lattice nodes by the true Weyl
/// residual and Nelder–Mead the best few. Runs only when everything
/// below the winding budget came up empty, exactly like the legacy
/// solver's 120/400 grid tiers (which burned ~35000 KAK evaluations on
/// this path).
fn escalation_scan(ctx: &Ctx, tol: f64, b_lo: f64) -> Vec<Root> {
    let q_ref = ctx.scale.abs().max(1e-12);
    // Constant phase-resolved β steps (eigenphases grow linearly in β out
    // here; a stretch would alias them), bounded per row.
    let db = (0.9 / (ctx.tau.max(1e-9) * q_ref * 2.0)).max((BETA_CAP - b_lo) / 1024.0);
    let rows = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0 - 1e-3];
    let mut nodes: Vec<(f64, f64, f64)> = Vec::new();
    for &al in &rows {
        let mut be = b_lo;
        while be <= BETA_CAP {
            let f = ctx.f(al, be);
            nodes.push((al, be, f.abs()));
            be += db;
        }
    }
    // Rank by |F|, verify the best few dozen, polish the best handful.
    nodes.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let mut verified: Vec<(f64, f64, f64)> = nodes
        .into_iter()
        .take(32)
        .map(|(al, be, _)| {
            let r = ctx.verify(&ctx.params(al, be));
            (al, be, r)
        })
        .collect();
    // Polish slots, half by β and half by residual: on a plateau every
    // candidate neighbours some ladder root and the low-β members carry
    // the smallest drive amplitudes (the final penalty order), while
    // isolated high-β roots are only visible through their residual.
    let mut by_beta = verified.clone();
    by_beta.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    verified.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let mut picks: Vec<(f64, f64, f64)> = Vec::new();
    for cand in by_beta.into_iter().take(3).chain(verified.into_iter().take(3)) {
        if !picks.iter().any(|p| (p.0 - cand.0).abs() < 1e-12 && (p.1 - cand.1).abs() < 1e-9) {
            picks.push(cand);
        }
    }
    let mut roots = Vec::new();
    for (al0, be0, r0) in picks {
        ctx.c.newton_starts.set(ctx.c.newton_starts.get() + 1);
        if r0 < tol {
            let p = ctx.params(al0, be0);
            roots.push(Root { alpha: al0, beta: be0, params: p, residual: r0 });
            continue;
        }
        let obj = |al: f64, u: f64| -> f64 {
            ctx.c.newton_iters.set(ctx.c.newton_iters.get() + 1);
            let (al, be) = ctx.project(al, u.exp());
            ctx.verify(&ctx.params(al, be))
        };
        if let Some((al, u, r)) = nelder_mead_2d(&obj, al0, be0.max(1e-25).ln(), 0.05, 300) {
            if r < tol.max(1e-9) {
                let (al, be) = ctx.project(al, u.exp());
                let p = ctx.params(al, be);
                roots.push(Root { alpha: al, beta: be, params: p, residual: r });
            }
        }
    }
    roots
}

/// Two rounds of 5-point coordinate descent on `|F|` around a candidate
/// start — cheap trace evaluations that pull a lattice-pitch-accurate
/// point into the (often much narrower) root basin of a degenerate
/// target before any KAK-priced polish runs.
fn refine_on_f(ctx: &Ctx, al0: f64, be0: f64) -> (f64, f64) {
    let (mut al, mut be) = ctx.project(al0, be0);
    let mut da = 0.06;
    let mut dbb = 0.12 * be.max(0.05);
    for _ in 0..2 {
        let mut best = (ctx.f(al, be).abs(), al);
        for cand in [al - da, al - 0.5 * da, al + 0.5 * da, al + da] {
            let c = cand.clamp(0.0, 1.0);
            let v = ctx.f(c, be).abs();
            if v < best.0 {
                best = (v, c);
            }
        }
        al = best.1;
        let mut bestb = (ctx.f(al, be).abs(), be);
        for cand in [be - dbb, be - 0.5 * dbb, be + 0.5 * dbb, be + dbb] {
            let c = cand.max(ctx.eta - al).max(0.0);
            let v = ctx.f(al, c).abs();
            if v < bestb.0 {
                bestb = (v, c);
            }
        }
        be = bestb.1;
        da *= 0.3;
        dbb *= 0.3;
    }
    (al, be)
}

/// Pulls a point back onto the curve `{g_k = 0}` with two 1-D secant
/// steps along whichever direction `g` responds to more, returning
/// `(α, β, h)` there.
fn correct_onto_curve(ctx: &Ctx, al0: f64, be0: f64, k: usize) -> Option<(f64, f64, f64)> {
    let (mut al, mut u) = (al0.clamp(0.0, 1.0), be0.max(1e-12).ln());
    let mut out = None;
    for _ in 0..2 {
        let (g0, h0) = ctx.gh(al, u.exp(), k);
        if !g0.is_finite() || !h0.is_finite() {
            return None;
        }
        out = Some((al, u.exp(), h0));
        if g0.abs() < 1e-10 {
            break;
        }
        let d = 1e-6;
        let (ga, _) = ctx.gh((al + d).min(1.0), u.exp(), k);
        let (gu, _) = ctx.gh(al, (u + d).exp(), k);
        let dga = (ga - g0) / d;
        let dgu = (gu - g0) / d;
        if dgu.abs() >= dga.abs() && dgu.abs() > 1e-14 {
            u = clamp_log_beta(u - g0 / dgu);
        } else if dga.abs() > 1e-14 {
            al = (al - g0 / dga).clamp(0.0, 1.0);
        } else {
            return None;
        }
    }
    out
}

/// Keeps a log-β iterate inside the numerically safe window (a step off a
/// near-flat derivative must not explode `exp(u)` into the Hamiltonian).
fn clamp_log_beta(u: f64) -> f64 {
    if u.is_finite() {
        u.clamp(-60.0, BETA_CAP.ln() + 0.7)
    } else {
        0.0
    }
}

/// Damped 2-D Newton on `(g_k, h_k)` in `(α, ln β)`; returns the
/// converged point or `None` (with an early abort when the bracket is a
/// phantom and the scores never contract).
fn newton_gh(ctx: &Ctx, al0: f64, be0: f64, k: usize, max_iter: usize) -> Option<(f64, f64)> {
    let (mut al, mut u) = (al0, be0.max(1e-25).ln());
    let mut best = f64::INFINITY;
    for it in 0..max_iter {
        ctx.c.newton_iters.set(ctx.c.newton_iters.get() + 1);
        let be = u.exp();
        let (g0, h0) = ctx.gh(al, be, k);
        let score = g0.abs() + h0.abs();
        if !score.is_finite() {
            return None;
        }
        if score < 1e-13 {
            return Some((al, u.exp()));
        }
        best = best.min(score);
        if it == 6 && best > 0.1 {
            return None;
        }
        let da = 1e-7 * (1.0 - al).clamp(1e-3, 0.5) + 1e-9;
        let du = 1e-7;
        // Backward difference at the α = 1 clamp: a forward probe would
        // collapse onto the clamped point (zero columns, fake-singular
        // Jacobian) and lose edge-hugging roots.
        let (al_probe, da_sign) = if al + da > 1.0 { (al - da, -1.0) } else { (al + da, 1.0) };
        let (ga, ha) = ctx.gh(al_probe, be, k);
        let (gu, hu) = ctx.gh(al, (u + du).exp(), k);
        let j00 = da_sign * (ga - g0) / da;
        let j01 = (gu - g0) / du;
        let j10 = da_sign * (ha - h0) / da;
        let j11 = (hu - h0) / du;
        let det = j00 * j11 - j01 * j10;
        if det.abs() < 1e-18 {
            return None;
        }
        let mut step_a = (-g0 * j11 + h0 * j01) / det;
        let mut step_u = (-j00 * h0 + j10 * g0) / det;
        let m = step_a.abs().max(step_u.abs());
        if m > 0.5 {
            step_a *= 0.5 / m;
            step_u *= 0.5 / m;
        }
        al = (al + step_a).clamp(0.0, 1.0);
        u = clamp_log_beta(u + step_u);
    }
    None
}

/// Minimal 2-D Nelder–Mead. Returns `(x, y, f(x,y))` of the best vertex,
/// or `None` if the simplex degenerates before converging.
fn nelder_mead_2d(
    f: &dyn Fn(f64, f64) -> f64,
    x0: f64,
    y0: f64,
    step: f64,
    max_iter: usize,
) -> Option<(f64, f64, f64)> {
    let mut pts = [
        (x0, y0, f(x0, y0)),
        (x0 + step, y0, f(x0 + step, y0)),
        (x0, y0 + step, f(x0, y0 + step)),
    ];
    for _ in 0..max_iter {
        pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let (best, mid, worst) = (pts[0], pts[1], pts[2]);
        if best.2 < 1e-12 || ((worst.2 - best.2).abs() < 1e-16 && best.2 < 1e-15) {
            return Some(best);
        }
        let cx = 0.5 * (best.0 + mid.0);
        let cy = 0.5 * (best.1 + mid.1);
        // Reflection.
        let rx = cx + (cx - worst.0);
        let ry = cy + (cy - worst.1);
        let fr = f(rx, ry);
        if fr < best.2 {
            // Expansion.
            let ex = cx + 2.0 * (cx - worst.0);
            let ey = cy + 2.0 * (cy - worst.1);
            let fe = f(ex, ey);
            pts[2] = if fe < fr { (ex, ey, fe) } else { (rx, ry, fr) };
        } else if fr < mid.2 {
            pts[2] = (rx, ry, fr);
        } else {
            // Contraction.
            let kx = cx + 0.5 * (worst.0 - cx);
            let ky = cy + 0.5 * (worst.1 - cy);
            let fk = f(kx, ky);
            if fk < worst.2 {
                pts[2] = (kx, ky, fk);
            } else {
                // Shrink toward best.
                for i in 1..3 {
                    let sx = best.0 + 0.5 * (pts[i].0 - best.0);
                    let sy = best.1 + 0.5 * (pts[i].1 - best.1);
                    pts[i] = (sx, sy, f(sx, sy));
                }
            }
        }
        let spread = (pts[0].0 - pts[2].0).abs()
            + (pts[0].1 - pts[2].1).abs()
            + (pts[0].0 - pts[1].0).abs();
        if spread < 1e-14 {
            break;
        }
    }
    pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    Some(pts[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, PI};

    #[test]
    fn sinc_basics() {
        assert!((sinc(0.0) - 1.0).abs() < 1e-15);
        assert!(sinc(PI).abs() < 1e-15);
        assert!((sinc(PI / 2.0) - 2.0 / PI).abs() < 1e-15);
    }

    #[test]
    fn sinc_inverse_roundtrip() {
        for k in 1..20 {
            let u = PI * k as f64 / 21.0;
            let v = sinc(u);
            let got = sinc_inverse(v, 0.0);
            assert!((got - u).abs() < 1e-10, "u={u} got={got}");
        }
    }

    #[test]
    fn sinc_inverse_respects_lower_bound() {
        let lo = 1.0;
        let u = sinc_inverse(sinc(2.0), lo);
        assert!((u - 2.0).abs() < 1e-10);
        assert!(sinc_inverse(sinc(lo), lo) >= lo - 1e-12);
    }

    #[test]
    fn nd_solves_cnot_under_xy() {
        // CNOT (π/4, 0, 0) under XY coupling: τ = x/a = π/2, and the sinc
        // equations give nonzero symmetric drives.
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::cnot();
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        let r = residual(&cp, &p, tau, &w);
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn nd_solves_iswap_family_with_zero_drive() {
        // iSWAP-family under XY coupling needs no local drives at all
        // (paper Fig. 6 caption).
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::new(FRAC_PI_8, FRAC_PI_8, 0.0); // SQiSW
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        assert!(p.omega1.abs() < 1e-9 && p.omega2.abs() < 1e-9);
        assert!(residual(&cp, &p, tau, &w) < 1e-9);
    }

    #[test]
    fn nd_handles_xx_coupling_b_equals_c() {
        // XX coupling: b = c = 0 → both channels degenerate; gates with
        // y = z = 0 (CNOT family) are free.
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::cnot();
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        assert!(p.penalty() < 1e-12);
        assert!(residual(&cp, &p, tau, &w) < 1e-9);
    }

    #[test]
    fn ea_params_checked_flags_infeasible_points() {
        let cp = Coupling::new(1.0, 0.6, 0.2);
        // Deep inside the feasible region: both agree.
        let a = ea_params(&cp, EaSign::Minus, 0.6, 1.0);
        let b = ea_params_checked(&cp, EaSign::Minus, 0.6, 1.0).expect("feasible");
        assert!((a.omega1 - b.omega1).abs() + (a.delta - b.delta).abs() < 1e-15);
        // α + β clearly below η: the detuning radicand is genuinely
        // negative — `ea_params` silently projects, the checked variant
        // reports the infeasibility.
        let eta = (cp.a - cp.b) / (cp.a - cp.c); // = 0.5
        assert!(ea_params_checked(&cp, EaSign::Minus, 0.1, eta - 0.3).is_none());
        assert_eq!(ea_params(&cp, EaSign::Minus, 0.1, eta - 0.3).delta, 0.0);
        // α > 1 is outside the domain too (the old code masked it).
        assert!(ea_params_checked(&cp, EaSign::Minus, 1.2, 1.0).is_none());
        // Boundary rounding stays feasible.
        assert!(ea_params_checked(&cp, EaSign::Minus, 1.0, 0.5).is_some());
    }

    #[test]
    fn ea_solves_swap_under_xx() {
        // The paper's Fig. 4 case: SWAP under XX coupling uses EA− and has
        // several roots; the selected one has minimal |Ω|+|δ|.
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::swap();
        let tau = 3.0 * FRAC_PI_4;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert!(!sols.is_empty(), "no EA- solution found for SWAP under XX");
        let best = &sols[0];
        assert!(best.residual < 1e-8);
        // Verify the evolution realizes SWAP-class exactly.
        assert!(residual(&cp, &best.params, tau, &w) < 1e-8);
        // The known optimum: (α, β) = (2/3, 1).
        assert!(
            (best.alpha - 2.0 / 3.0).abs() < 1e-6 && (best.beta - 1.0).abs() < 1e-5,
            "best root moved: alpha = {}, beta = {}",
            best.alpha,
            best.beta
        );
    }

    #[test]
    fn ea_finds_multiple_roots() {
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::swap();
        let tau = 3.0 * FRAC_PI_4;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-7);
        // Fig. 4 shows several valid intersections.
        assert!(!sols.is_empty());
        // Sorted by penalty.
        for pair in sols.windows(2) {
            assert!(pair[0].params.penalty() <= pair[1].params.penalty() + 1e-12);
        }
    }

    #[test]
    fn conserved_phase_precheck_rejects_for_free() {
        // EA− at EA+'s binding time: the conserved Ψ⁻ phase cannot match,
        // so the solve must reject without a single evaluation — this is
        // what makes `solve_pulse`'s wrong-subscheme fallbacks free.
        let cp = Coupling::new(1.0, 0.95, 0.9);
        let w = WeylCoord::new(0.7, 0.6, 0.5);
        let tp = (w.x + w.y - w.z) / (cp.a + cp.b - cp.c);
        let (sols, profile) = solve_ea_profiled(&cp, EaSign::Minus, &w, tp, 1e-8);
        assert!(sols.is_empty());
        assert_eq!(profile.early_rejects, 1);
        assert_eq!(profile.evals, 0, "early reject must cost zero evaluations");
    }

    #[test]
    fn profile_counts_are_bounded_on_the_sliver_tier() {
        // The frontier-marginal sliver family: the boundary-curve solver
        // must find the edge root by construction within a deterministic
        // evaluation budget (the historical grid solver spent ~4300–10000
        // full-KAK residual evaluations here).
        let cp = Coupling::xx(1.0);
        for eps in [1e-3, 1e-5, 1e-6] {
            let w = WeylCoord::new(0.7, eps, 0.0);
            let tau = crate::duration::optimal_duration(&w, &cp).tau;
            let (sols, profile) = solve_ea_profiled(&cp, EaSign::Minus, &w, tau, 1e-8);
            assert!(!sols.is_empty(), "sliver root lost at eps = {eps}");
            assert!(
                profile.delta_family_roots >= 1,
                "sliver root must come from the pure-detuning boundary family (eps = {eps})"
            );
            assert!(
                profile.evals + profile.verifies < 2500,
                "eps = {eps}: budget blown: {profile:?}"
            );
            assert!(sols[0].residual < 1e-10, "boundary bisection should be near-exact");
        }
    }

    #[test]
    fn ea_interior_root_matches_known_generic_case() {
        // A generic anisotropic coupling with a transversal interior root;
        // the curve walk pins it to full precision (the historical grid
        // solver converged to the same point).
        let cp = Coupling::new(1.0, 0.6, 0.2);
        let w = WeylCoord::new(0.5, 0.3, 0.2);
        let tau = crate::duration::optimal_duration(&w, &cp).tau;
        let (sols, profile) = solve_ea_profiled(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert_eq!(sols.len(), 1);
        assert!((sols[0].alpha - 0.34353436).abs() < 1e-6);
        assert!((sols[0].beta - 2.96708814).abs() < 1e-5);
        assert!(profile.interior_roots >= 1);
        assert!(profile.evals < 1500, "generic interior solve over budget: {profile:?}");
    }

    #[test]
    fn drive_hamiltonians_shape() {
        let p = PulseParams { omega1: 0.3, omega2: 0.1, delta: -0.2 };
        let (h1, h2) = p.drive_hamiltonians();
        assert!(h1.is_hermitian(1e-14));
        assert!(h2.is_hermitian(1e-14));
        // h1 acts trivially on qubit 2.
        assert!((h1[(0, 1)].abs() - 0.0).abs() < 1e-14);
    }
}
