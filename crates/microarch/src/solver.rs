//! Numerical solvers for the genAshN subschemes (paper §4.2, Algorithm 1
//! lines 12–31).
//!
//! * **ND** (no detuning): two independent sinc inversions with the
//!   smallest-root (amplitude-minimal) branch.
//! * **EA+ / EA−** (equal amplitude): the transcendental system is solved in
//!   the paper's `(α, β)` eigenvalue parameterization — coarse grid search
//!   followed by Nelder–Mead refinement, selecting among converged roots the
//!   one with minimal *physical implementation penalty* `|Ω| + |δ|`
//!   (paper §4.2 step ③). Every solution is verified against the exact
//!   evolution `e^{-iτ(H + H₁ + H₂)}`.

use crate::coupling::Coupling;
use reqisc_qmath::gates::{id2, pauli_x, pauli_z};
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{expm_i_hermitian, weyl_coords, CMat, C64};

/// Normalized sinc `sin(u)/u` with the removable singularity filled.
pub fn sinc(u: f64) -> f64 {
    if u.abs() < 1e-8 {
        1.0 - u * u / 6.0
    } else {
        u.sin() / u
    }
}

/// Solves `sinc(u) = v` for the smallest `u ∈ [lo, π]`.
///
/// Valid for `0 ≤ v ≤ sinc(lo)` with `lo ∈ [0, π]`; `sinc` is strictly
/// decreasing there, so bisection is exact to machine precision.
///
/// # Panics
///
/// Panics if `v` lies outside `[−ε, sinc(lo)+ε]`.
pub fn sinc_inverse(v: f64, lo: f64) -> f64 {
    let lo = lo.max(0.0);
    assert!(
        v >= -1e-9 && v <= sinc(lo) + 1e-9,
        "sinc_inverse target {v} out of range [0, {}]",
        sinc(lo)
    );
    let v = v.clamp(0.0, sinc(lo));
    let (mut a, mut b) = (lo, std::f64::consts::PI);
    if sinc(a) - v <= 0.0 {
        return a;
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        if sinc(m) - v > 0.0 {
            a = m;
        } else {
            b = m;
        }
        if b - a < 1e-16 {
            break;
        }
    }
    0.5 * (a + b)
}

/// Pulse parameters of one subscheme solution.
#[derive(Debug, Clone, Copy)]
pub struct PulseParams {
    /// Symmetric drive amplitude Ω₁ (qubit drives `Ω₁±Ω₂`).
    pub omega1: f64,
    /// Antisymmetric drive amplitude Ω₂.
    pub omega2: f64,
    /// Common drive detuning δ.
    pub delta: f64,
}

impl PulseParams {
    /// The paper's physical-implementation penalty `|Ω₁| + |Ω₂| + |δ|`.
    pub fn penalty(&self) -> f64 {
        self.omega1.abs() + self.omega2.abs() + self.delta.abs()
    }

    /// Local drive Hamiltonians `(H₁, H₂)` acting on the two-qubit space:
    /// `H₁ = (Ω₁+Ω₂)·X⊗I + δ·Z⊗I`, `H₂ = (Ω₁−Ω₂)·I⊗X + δ·I⊗Z` (Eq. (4)).
    pub fn drive_hamiltonians(&self) -> (CMat, CMat) {
        let x = pauli_x();
        let z = pauli_z();
        let h1 = &x.scale(C64::real(self.omega1 + self.omega2)) + &z.scale(C64::real(self.delta));
        let h2 = &x.scale(C64::real(self.omega1 - self.omega2)) + &z.scale(C64::real(self.delta));
        (h1.kron(&id2()), id2().kron(&h2))
    }
}

/// Evolves `e^{-iτ(H_coupling + H₁ + H₂)}` for the given pulse parameters.
pub fn evolve(cp: &Coupling, p: &PulseParams, tau: f64) -> CMat {
    let (h1, h2) = p.drive_hamiltonians();
    let h = &(&cp.hamiltonian() + &h1) + &h2;
    expm_i_hermitian(&h, tau)
}

/// Weyl-coordinate residual of a pulse candidate against a canonical
/// target.
pub fn residual(cp: &Coupling, p: &PulseParams, tau: f64, target: &WeylCoord) -> f64 {
    match weyl_coords(&evolve(cp, p, tau)) {
        Ok(c) => c.dist(target),
        Err(_) => f64::INFINITY,
    }
}

/// ND subscheme: `δ = 0`, solve the two sinc inversions
/// (Algorithm 1 lines 13–15).
///
/// `w` must be the *effective* (possibly mirrored) coordinates with
/// `τ = x/a` binding. Degenerate couplings (`b = ±c`) are handled by the
/// zero-amplitude limit.
pub fn solve_nd(cp: &Coupling, w: &WeylCoord, tau: f64) -> PulseParams {
    let (a, b, c) = (cp.a, cp.b, cp.c);
    debug_assert!((w.x - a * tau).abs() < 1e-9, "ND requires τ = x/a");
    let solve_branch = |coupling_term: f64, angle: f64| -> f64 {
        // sin(angle) = coupling_term·τ·sinc(Sτ), S ≥ coupling_term.
        if coupling_term.abs() * tau < 1e-12 {
            // No coupling in this channel: the angle must already be 0 and
            // any S works; choose the amplitude-free S = 0.
            return 0.0;
        }
        let v = (angle.sin() / (coupling_term * tau)).clamp(0.0, 1.0);
        let u = sinc_inverse(v, coupling_term * tau);
        u / tau
    };
    let s1 = solve_branch(b - c, w.y - w.z);
    let s2 = solve_branch(b + c, w.y + w.z);
    let omega1 = 0.5 * (s1 * s1 - (b - c) * (b - c)).max(0.0).sqrt();
    let omega2 = 0.5 * (s2 * s2 - (b + c) * (b + c)).max(0.0).sqrt();
    PulseParams { omega1, omega2, delta: 0.0 }
}

/// Which equal-amplitude variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EaSign {
    /// EA+: `Ω₁ = 0` (opposite-sign drive amplitudes), binding time τ₊.
    Plus,
    /// EA−: `Ω₂ = 0` (same-sign drive amplitudes), binding time τ₋.
    Minus,
}

/// Maps the paper's `(α, β)` eigenvalue parameters to pulse parameters for
/// an EA subscheme (Algorithm 1 lines 19–31).
pub fn ea_params(cp: &Coupling, sign: EaSign, alpha: f64, beta: f64) -> PulseParams {
    let (a, c) = (cp.a, cp.c);
    let scale = match sign {
        EaSign::Plus => a + c,
        EaSign::Minus => a - c,
    };
    let eta = match sign {
        EaSign::Plus => (a - cp.b) / (a + c),
        EaSign::Minus => (a - cp.b) / (a - c),
    };
    let om = scale * ((1.0 - alpha) * beta * (1.0 - eta + alpha + beta)).max(0.0).sqrt();
    let de = scale * (alpha * (1.0 + beta) * (alpha + beta - eta)).max(0.0).sqrt();
    match sign {
        EaSign::Plus => PulseParams { omega1: 0.0, omega2: om, delta: -de },
        EaSign::Minus => PulseParams { omega1: om, omega2: 0.0, delta: de },
    }
}

/// A converged EA root with its parameterization and verification residual.
#[derive(Debug, Clone, Copy)]
pub struct EaSolution {
    /// Eigenvalue parameter α ∈ [0, 1].
    pub alpha: f64,
    /// Eigenvalue parameter β ≥ 0.
    pub beta: f64,
    /// Physical pulse parameters.
    pub params: PulseParams,
    /// Weyl-coordinate residual of the verified evolution.
    pub residual: f64,
}

/// One candidate NM start: `(residual, α, β, simplex step, family)`.
type Seed = (f64, f64, f64, f64, u8);

/// Seed families of the EA grid search. The sliver rows are *edge*
/// families: their roots live where the coarse grid cannot see them.
const SEED_FAMILY_GRID: u8 = 0;
const SEED_FAMILY_TINY_BETA: u8 = 1;
const SEED_FAMILY_ALPHA_EDGE: u8 = 2;

/// Refinement budget: how many globally best-residual seeds get a
/// Nelder–Mead run per tier.
const TOP_SEEDS: usize = 16;

/// Minimum refined seeds from each *edge* family (when it has any).
///
/// Selection used to be purely residual-ranked (`sort; take(16)`), which
/// starved the β = O(10⁻³) and 1 − α = O(10⁻³) sliver rows whenever ≥ 16
/// coarse-grid seeds ranked ahead — frontier-marginal targets then
/// converged only by luck. Sliver seeds can rank poorly initially (they
/// start far from the coarse landscape's shallow basins) yet be the only
/// starts that reach the true root, so each edge family is guaranteed
/// this many refinement slots regardless of rank.
const EDGE_SEED_QUOTA: usize = 4;

/// Picks the seeds to refine, in two waves:
///
/// * **primary** — the globally best [`TOP_SEEDS`] by initial residual
///   (exactly the historical choice, so the common converging path costs
///   what it always did);
/// * **reserve** — the best remaining seeds of any edge family holding
///   fewer than [`EDGE_SEED_QUOTA`] primary slots. The caller refines
///   these only when *no* primary seed converges — which is precisely the
///   starvation case the quota exists for (everything the coarse ranking
///   liked was a false basin, and the sliver rows it starved hold the
///   real root).
fn select_seed_indices(seeds: &[Seed]) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..seeds.len()).collect();
    order.sort_by(|&a, &b| seeds[a].0.partial_cmp(&seeds[b].0).unwrap());
    let primary: Vec<usize> = order.iter().copied().take(TOP_SEEDS).collect();
    let mut reserve: Vec<usize> = Vec::new();
    for fam in [SEED_FAMILY_TINY_BETA, SEED_FAMILY_ALPHA_EDGE] {
        let have = primary.iter().filter(|&&i| seeds[i].4 == fam).count();
        if have >= EDGE_SEED_QUOTA {
            continue;
        }
        reserve.extend(
            order
                .iter()
                .copied()
                .filter(|&i| seeds[i].4 == fam && !primary.contains(&i))
                .take(EDGE_SEED_QUOTA - have),
        );
    }
    (primary, reserve)
}

/// Solves an EA subscheme by coarse grid search + Nelder–Mead refinement
/// over `(α, β)`, returning all distinct converged roots sorted by
/// implementation penalty (paper §4.2).
pub fn solve_ea(cp: &Coupling, sign: EaSign, w: &WeylCoord, tau: f64, tol: f64) -> Vec<EaSolution> {
    let eta = match sign {
        EaSign::Plus => (cp.a - cp.b) / (cp.a + cp.c),
        EaSign::Minus => (cp.a - cp.b) / (cp.a - cp.c),
    };
    let f = |al: f64, be: f64| -> f64 {
        let alc = al.clamp(0.0, 1.0);
        let bec = be.max(0.0).max(eta - alc); // enforce α+β ≥ η
        residual(cp, &ea_params(cp, sign, alc, bec), tau, w)
    };
    let mut solutions: Vec<EaSolution> = Vec::new();
    // The physical amplitude is `scale · O(β)` with `scale = a ∓ c`, so
    // near-isotropic couplings (a ≈ b ≈ c) push the root to β ≫ 1. The high
    // tiers are only reached when the cheap ones fail, keeping the common
    // path fast.
    for beta_max in [2.5f64, 6.0, 12.0, 40.0, 120.0, 400.0] {
        let grid = if beta_max > 12.0 { 48usize } else { 18usize };
        // Seeds carry their own simplex step: the uniform grid explores at
        // 0.08, while the log-spaced tiny-β row (roots for frontier-marginal
        // targets live in a sliver β = O(10⁻³)) needs a step that does not
        // overshoot the sliver.
        let mut seeds: Vec<Seed> = Vec::new();
        for i in 0..=grid {
            for jj in 0..=grid {
                let al = i as f64 / grid as f64;
                let be = beta_max * jj as f64 / grid as f64;
                if al + be < eta - 1e-12 {
                    continue;
                }
                seeds.push((f(al, be), al, be, 0.08, SEED_FAMILY_GRID));
            }
        }
        let first_of_grid = beta_max == 2.5 || beta_max == 40.0;
        // This row is independent of `beta_max` (it only spans the α grid),
        // so only evaluate it on the first tier of each grid size — NM is
        // deterministic, and repeating identical seeds on later tiers would
        // just re-burn hundreds of evolution residuals on the failure path.
        if first_of_grid {
            for i in 0..=grid {
                let al = i as f64 / grid as f64;
                for be in [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2] {
                    if al + be < eta - 1e-12 {
                        continue;
                    }
                    seeds.push((f(al, be), al, be, 0.004, SEED_FAMILY_TINY_BETA));
                }
            }
        }
        // Symmetric sliver at the α = 1 edge (t0/tm-marginal targets). The
        // jj = 0 column (β = 0) is tier-invariant like the tiny-β row, so
        // skip it after the first tier of each grid size.
        for jj in (if first_of_grid { 0 } else { 1 })..=grid {
            let be = beta_max * jj as f64 / grid as f64;
            for dal in [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2] {
                let al = 1.0 - dal;
                if al + be < eta - 1e-12 {
                    continue;
                }
                seeds.push((f(al, be), al, be, 0.004, SEED_FAMILY_ALPHA_EDGE));
            }
        }
        let refine = |indices: &[usize], solutions: &mut Vec<EaSolution>| {
            for &i in indices {
                let (_, al0, be0, step, _) = seeds[i];
                if let Some((al, be, r)) = nelder_mead_2d(&f, al0, be0, step, 600) {
                    if r < tol {
                        let alc = al.clamp(0.0, 1.0);
                        let bec = be.max(0.0).max(eta - alc);
                        let params = ea_params(cp, sign, alc, bec);
                        // Deduplicate by pulse parameters.
                        if !solutions.iter().any(|s| {
                            (s.params.omega1 - params.omega1).abs()
                                + (s.params.omega2 - params.omega2).abs()
                                + (s.params.delta - params.delta).abs()
                                < 1e-6 * (1.0 + params.penalty())
                        }) {
                            solutions.push(EaSolution {
                                alpha: alc,
                                beta: bec,
                                params,
                                residual: r,
                            });
                        }
                    }
                }
            }
        };
        let (primary, reserve) = select_seed_indices(&seeds);
        refine(&primary, &mut solutions);
        if solutions.is_empty() && first_of_grid {
            // The coarse ranking converged nowhere: give the starved edge
            // slivers their guaranteed shot before escalating tiers. Only
            // the tiers that seed the *full* edge rows (the first of each
            // grid size) carry a reserve — later tiers re-seed only the
            // tier-dependent α-edge columns, and paying 8 extra NM runs on
            // every escalation would tax all failure paths ~50%.
            refine(&reserve, &mut solutions);
        }
        if !solutions.is_empty() {
            break;
        }
    }
    solutions.sort_by(|a, b| a.params.penalty().partial_cmp(&b.params.penalty()).unwrap());
    solutions
}

/// Minimal 2-D Nelder–Mead. Returns `(x, y, f(x,y))` of the best vertex, or
/// `None` if the simplex degenerates before converging.
fn nelder_mead_2d(
    f: &dyn Fn(f64, f64) -> f64,
    x0: f64,
    y0: f64,
    step: f64,
    max_iter: usize,
) -> Option<(f64, f64, f64)> {
    let mut pts = [
        (x0, y0, f(x0, y0)),
        (x0 + step, y0, f(x0 + step, y0)),
        (x0, y0 + step, f(x0, y0 + step)),
    ];
    for _ in 0..max_iter {
        pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let (best, mid, worst) = (pts[0], pts[1], pts[2]);
        if (worst.2 - best.2).abs() < 1e-16 && best.2 < 1e-15 {
            return Some(best);
        }
        let cx = 0.5 * (best.0 + mid.0);
        let cy = 0.5 * (best.1 + mid.1);
        // Reflection.
        let rx = cx + (cx - worst.0);
        let ry = cy + (cy - worst.1);
        let fr = f(rx, ry);
        if fr < best.2 {
            // Expansion.
            let ex = cx + 2.0 * (cx - worst.0);
            let ey = cy + 2.0 * (cy - worst.1);
            let fe = f(ex, ey);
            pts[2] = if fe < fr { (ex, ey, fe) } else { (rx, ry, fr) };
        } else if fr < mid.2 {
            pts[2] = (rx, ry, fr);
        } else {
            // Contraction.
            let kx = cx + 0.5 * (worst.0 - cx);
            let ky = cy + 0.5 * (worst.1 - cy);
            let fk = f(kx, ky);
            if fk < worst.2 {
                pts[2] = (kx, ky, fk);
            } else {
                // Shrink toward best.
                for i in 1..3 {
                    let sx = best.0 + 0.5 * (pts[i].0 - best.0);
                    let sy = best.1 + 0.5 * (pts[i].1 - best.1);
                    pts[i] = (sx, sy, f(sx, sy));
                }
            }
        }
        let spread = (pts[0].0 - pts[2].0).abs()
            + (pts[0].1 - pts[2].1).abs()
            + (pts[0].0 - pts[1].0).abs();
        if spread < 1e-14 {
            break;
        }
    }
    pts.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    Some(pts[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, PI};

    #[test]
    fn sinc_basics() {
        assert!((sinc(0.0) - 1.0).abs() < 1e-15);
        assert!(sinc(PI).abs() < 1e-15);
        assert!((sinc(PI / 2.0) - 2.0 / PI).abs() < 1e-15);
    }

    #[test]
    fn sinc_inverse_roundtrip() {
        for k in 1..20 {
            let u = PI * k as f64 / 21.0;
            let v = sinc(u);
            let got = sinc_inverse(v, 0.0);
            assert!((got - u).abs() < 1e-10, "u={u} got={got}");
        }
    }

    #[test]
    fn sinc_inverse_respects_lower_bound() {
        let lo = 1.0;
        let u = sinc_inverse(sinc(2.0), lo);
        assert!((u - 2.0).abs() < 1e-10);
        assert!(sinc_inverse(sinc(lo), lo) >= lo - 1e-12);
    }

    #[test]
    fn nd_solves_cnot_under_xy() {
        // CNOT (π/4, 0, 0) under XY coupling: τ = x/a = π/2, and the sinc
        // equations give nonzero symmetric drives.
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::cnot();
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        let r = residual(&cp, &p, tau, &w);
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn nd_solves_iswap_family_with_zero_drive() {
        // iSWAP-family under XY coupling needs no local drives at all
        // (paper Fig. 6 caption).
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::new(FRAC_PI_8, FRAC_PI_8, 0.0); // SQiSW
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        assert!(p.omega1.abs() < 1e-9 && p.omega2.abs() < 1e-9);
        assert!(residual(&cp, &p, tau, &w) < 1e-9);
    }

    #[test]
    fn nd_handles_xx_coupling_b_equals_c() {
        // XX coupling: b = c = 0 → both channels degenerate; gates with
        // y = z = 0 (CNOT family) are free.
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::cnot();
        let tau = w.x / cp.a;
        let p = solve_nd(&cp, &w, tau);
        assert!(p.penalty() < 1e-12);
        assert!(residual(&cp, &p, tau, &w) < 1e-9);
    }

    #[test]
    fn seed_selection_guarantees_edge_family_quota() {
        // The starvation scenario: 30 coarse-grid seeds all rank ahead of
        // every sliver seed. Pure residual ranking would refine 16 grid
        // seeds and zero sliver seeds.
        let mut seeds: Vec<Seed> = Vec::new();
        for k in 0..30 {
            seeds.push((1e-3 + k as f64 * 1e-5, 0.5, 1.0, 0.08, SEED_FAMILY_GRID));
        }
        for k in 0..8 {
            seeds.push((0.5 + k as f64 * 0.01, 0.3, 1e-3, 0.004, SEED_FAMILY_TINY_BETA));
        }
        for k in 0..8 {
            seeds.push((0.6 + k as f64 * 0.01, 0.999, 2.0, 0.004, SEED_FAMILY_ALPHA_EDGE));
        }
        let (primary, reserve) = select_seed_indices(&seeds);
        // The primary wave is exactly the historical ranking — all grid.
        assert_eq!(primary.len(), TOP_SEEDS);
        for k in 0..TOP_SEEDS {
            assert!(primary.contains(&k), "top-ranked grid seed {k} displaced");
        }
        // Both starved edge families hold their full reserve quota.
        let count = |fam: u8| reserve.iter().filter(|&&i| seeds[i].4 == fam).count();
        assert_eq!(count(SEED_FAMILY_TINY_BETA), EDGE_SEED_QUOTA, "tiny-β row starved");
        assert_eq!(count(SEED_FAMILY_ALPHA_EDGE), EDGE_SEED_QUOTA, "α-edge row starved");
        assert_eq!(reserve.len(), 2 * EDGE_SEED_QUOTA);
        let mut all: Vec<usize> = primary.iter().chain(&reserve).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), TOP_SEEDS + 2 * EDGE_SEED_QUOTA, "overlap between waves");
        // Within each family the *best* members are taken.
        assert!(reserve.contains(&30) && reserve.contains(&38));
    }

    #[test]
    fn seed_selection_counts_edge_seeds_already_in_top() {
        // Edge seeds that rank inside the global top count toward their
        // family's quota — no redundant appends, no duplicates.
        let mut seeds: Vec<Seed> = Vec::new();
        for k in 0..6 {
            seeds.push((1e-4 * (k + 1) as f64, 0.3, 1e-3, 0.004, SEED_FAMILY_TINY_BETA));
        }
        for k in 0..20 {
            seeds.push((1e-2 + k as f64 * 1e-4, 0.5, 1.0, 0.08, SEED_FAMILY_GRID));
        }
        let (primary, reserve) = select_seed_indices(&seeds);
        // All 6 tiny-β seeds rank in the top 16 already: quota satisfied,
        // no reserve for that family; no α-edge seeds exist at all.
        assert_eq!(primary.len(), TOP_SEEDS);
        assert!(reserve.is_empty(), "reserve should be empty: {reserve:?}");
    }

    #[test]
    fn seed_selection_degrades_gracefully_without_edge_seeds() {
        // Later tiers re-seed only parts of the edge rows; absent families
        // simply cede their slots to the global ranking.
        let seeds: Vec<Seed> =
            (0..5).map(|k| (k as f64, 0.5, 1.0, 0.08, SEED_FAMILY_GRID)).collect();
        let (primary, reserve) = select_seed_indices(&seeds);
        assert_eq!(primary, vec![0, 1, 2, 3, 4]);
        assert!(reserve.is_empty());
    }

    #[test]
    fn ea_solves_swap_under_xx() {
        // The paper's Fig. 4 case: SWAP under XX coupling uses EA+ and has
        // several roots; the selected one has minimal |Ω|+|δ|.
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::swap();
        // Binding time: τ₊ = (x+y−z)/(a+b−c) = (π/4)/1? No: x+y−z = π/4;
        // but τ must also dominate τ0 = π/4 and τ₋ = 3π/4 → τ = 3π/4,
        // binding constraint is τ₋... under XX, a+b+c = 1:
        // τ₋ = 3π/4 > τ0 = π/4 → EA− binds.
        let tau = 3.0 * FRAC_PI_4;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8);
        assert!(!sols.is_empty(), "no EA- solution found for SWAP under XX");
        let best = &sols[0];
        assert!(best.residual < 1e-8);
        // Verify the evolution realizes SWAP-class exactly.
        assert!(residual(&cp, &best.params, tau, &w) < 1e-8);
    }

    #[test]
    fn ea_finds_multiple_roots() {
        let cp = Coupling::xx(1.0);
        let w = WeylCoord::swap();
        let tau = 3.0 * FRAC_PI_4;
        let sols = solve_ea(&cp, EaSign::Minus, &w, tau, 1e-7);
        // Fig. 4 shows several valid intersections.
        assert!(!sols.is_empty());
        // Sorted by penalty.
        for pair in sols.windows(2) {
            assert!(pair[0].params.penalty() <= pair[1].params.penalty() + 1e-12);
        }
    }

    #[test]
    fn drive_hamiltonians_shape() {
        let p = PulseParams { omega1: 0.3, omega2: 0.1, delta: -0.2 };
        let (h1, h2) = p.drive_hamiltonians();
        assert!(h1.is_hermitian(1e-14));
        assert!(h2.is_hermitian(1e-14));
        // h1 acts trivially on qubit 2.
        assert!((h1[(0, 1)].abs() - 0.0).abs() < 1e-14);
    }
}
