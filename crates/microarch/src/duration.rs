//! Optimal two-qubit gate durations (paper §4, Appendix A.1.3).
//!
//! Given canonical coupling coefficients `(a, b, c)` and a target Weyl
//! coordinate `(x, y, z)`, the theoretically minimal evolution time under
//! arbitrary local drives is `τ_opt = min(τ₁, τ₂)` where the two candidates
//! correspond to realizing `(x, y, z)` directly or its mirror image
//! `(π/2−x, y, −z)` (Hammerer–Vidal–Cirac bound, Theorem 1).

use crate::coupling::Coupling;
use reqisc_qmath::weyl::WeylCoord;
use std::f64::consts::FRAC_PI_2;

/// Which of the two Weyl-chamber images attains the optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Image {
    /// Realize `(x, y, z)` directly.
    Direct,
    /// Realize the locally-equivalent `(π/2−x, y, −z)`.
    Mirrored,
}

/// The three frontier times of one image; the *maximum* is the binding
/// constraint and identifies the subscheme (paper Algorithm 1, lines 3–6).
#[derive(Debug, Clone, Copy)]
pub struct FrontierTimes {
    /// `τ₀ = x/a` — binding in the no-detuning (ND) region.
    pub t0: f64,
    /// `τ₊ = (x+y−z)/(a+b−c)` — binding in the EA+ region.
    pub tp: f64,
    /// `τ₋ = (x+y+z)/(a+b+c)` — binding in the EA− region.
    pub tm: f64,
}

impl FrontierTimes {
    /// Frontier times for coordinates `w` under coupling `cp`.
    pub fn of(w: &WeylCoord, cp: &Coupling) -> Self {
        Self {
            t0: w.x / cp.a,
            tp: (w.x + w.y - w.z) / (cp.a + cp.b - cp.c),
            tm: (w.x + w.y + w.z) / (cp.a + cp.b + cp.c),
        }
    }

    /// The binding (maximum) time.
    pub fn max(&self) -> f64 {
        self.t0.max(self.tp).max(self.tm)
    }
}

/// The full duration decision: optimal time, chosen image, and the
/// coordinates actually steered to (post-mirror if applicable).
#[derive(Debug, Clone, Copy)]
pub struct Duration {
    /// Optimal gate time in the same units as `1/coupling coefficients`.
    pub tau: f64,
    /// Whether the mirror image was cheaper.
    pub image: Image,
    /// Coordinates to steer to (equals input for `Direct`).
    pub effective: WeylCoord,
    /// Frontier times of the chosen image.
    pub frontier: FrontierTimes,
}

/// Computes the optimal gate duration for Weyl coordinates `w` under
/// coupling `cp` (Algorithm 1 lines 3–11).
///
/// # Panics
///
/// Panics if `w` is not inside the canonical Weyl chamber.
pub fn optimal_duration(w: &WeylCoord, cp: &Coupling) -> Duration {
    assert!(w.in_chamber(), "coordinates {w} not canonical");
    let direct = FrontierTimes::of(w, cp);
    let mirrored_coords = WeylCoord::new(FRAC_PI_2 - w.x, w.y, -w.z);
    let mirrored = FrontierTimes::of(&mirrored_coords, cp);
    let t1 = direct.max();
    let t2 = mirrored.max();
    if t2 < t1 {
        Duration { tau: t2, image: Image::Mirrored, effective: mirrored_coords, frontier: mirrored }
    } else {
        Duration { tau: t1, image: Image::Direct, effective: *w, frontier: direct }
    }
}

/// Duration of a gate locally equivalent to `w`, in units of `g⁻¹`
/// (normalized by the coupling strength).
pub fn duration_in_g(w: &WeylCoord, cp: &Coupling) -> f64 {
    optimal_duration(w, cp).tau * cp.strength()
}

/// Baseline CNOT pulse duration on conventional XY-coupled transmons:
/// `π/√2·g⁻¹` (paper §4.4 / Krantz et al.).
pub fn conventional_cnot_duration() -> f64 {
    std::f64::consts::FRAC_PI_2 * std::f64::consts::SQRT_2
}

/// Conventional optimized pulse durations of named basis gates under XY
/// coupling, in `g⁻¹` (paper Table 3 baselines).
///
/// Returns `None` for gates without a published conventional scheme.
pub fn conventional_duration_xy(gate: &str) -> Option<f64> {
    use std::f64::consts::PI;
    match gate {
        // CNOT via standard cross-resonance-style scheme: π/√2.
        "cnot" | "cx" | "cz" => Some(PI / 2.0 * std::f64::consts::SQRT_2),
        // iSWAP native on XY coupling: coordinates (π/4, π/4, 0) with both
        // terms active: τ = (π/4+π/4)/(g/2+g/2) = π/2.
        "iswap" => Some(PI / 2.0),
        // SQiSW = half an iSWAP.
        "sqisw" => Some(PI / 4.0),
        "b" => Some(PI / 2.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, PI};

    fn d_xy(w: WeylCoord) -> f64 {
        duration_in_g(&w, &Coupling::xy(1.0))
    }

    /// Paper Fig. 6(a) table: durations in units of g⁻¹·π for XY coupling.
    #[test]
    fn fig6a_gate_durations_xy() {
        let pi = PI;
        let cases = [
            (WeylCoord::sqisw(), 0.25 * pi),
            (WeylCoord::iswap(), 0.50 * pi),
            (WeylCoord::new(FRAC_PI_8 / 2.0, FRAC_PI_8 / 2.0, FRAC_PI_8 / 2.0), 0.1875 * pi), // QTSW
            (WeylCoord::new(FRAC_PI_8, FRAC_PI_8, FRAC_PI_8), 0.375 * pi),                    // SQSW
            (WeylCoord::swap(), 0.75 * pi),
            (WeylCoord::new(FRAC_PI_8, 0.0, 0.0), 0.25 * pi), // CV
            (WeylCoord::cnot(), 0.50 * pi),
            (WeylCoord::b_gate(), 0.50 * pi),
            (WeylCoord::ecp(), 0.50 * pi),
            (WeylCoord::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_8), 0.625 * pi), // QFT2
        ];
        for (w, want) in cases {
            let got = d_xy(w);
            assert!(
                (got - want).abs() < 1e-9,
                "duration of {w}: got {got:.6}, want {want:.6}"
            );
        }
    }

    #[test]
    fn cnot_speedup_over_conventional() {
        // Our scheme: π/2·g⁻¹ vs conventional π/√2·g⁻¹ → 1.41x faster (§4.4).
        let ours = d_xy(WeylCoord::cnot());
        let conv = conventional_cnot_duration();
        assert!((conv / ours - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn identity_has_zero_duration() {
        let d = optimal_duration(&WeylCoord::identity(), &Coupling::xy(1.0));
        assert_eq!(d.tau, 0.0);
        assert_eq!(d.image, Image::Direct);
    }

    #[test]
    fn near_swap_prefers_mirror() {
        // SWAP-like coords are cheaper via the mirrored image under XX
        // coupling? SWAP = (π/4,π/4,π/4): direct t1 under XX (a=1,b=c=0):
        // max(π/4, π/4+π/4-π/4, π/4+π/4+π/4) = 3π/4.
        // mirror (π/4, π/4, -π/4): max(π/4, 3π/4, π/4) = 3π/4. Equal — use
        // a skewed point instead.
        let w = WeylCoord::new(0.1, 0.05, 0.02);
        let cp = Coupling::xx(1.0);
        let d = optimal_duration(&w, &cp);
        assert_eq!(d.image, Image::Direct);
        // SWAP under a strongly anisotropic coupling with c < 0: the direct
        // image pays (x+y+z)/(a+b+c) with a tiny denominator, while the
        // mirror (π/4, π/4, -π/4) moves the big numerator onto the big
        // denominator — strictly cheaper.
        let cp2 = Coupling::new(1.0, 1.0, -0.9);
        let w2 = WeylCoord::swap();
        let d2 = optimal_duration(&w2, &cp2);
        assert_eq!(d2.image, Image::Mirrored);
        assert!(d2.tau < FrontierTimes::of(&w2, &cp2).max());
    }

    #[test]
    fn swap_duration_xx() {
        // Under XX coupling SWAP costs 3π/4·g⁻¹ either way.
        let d = duration_in_g(&WeylCoord::swap(), &Coupling::xx(1.0));
        assert!((d - 0.75 * PI).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_with_coupling() {
        let w = WeylCoord::cnot();
        let d1 = optimal_duration(&w, &Coupling::xy(1.0)).tau;
        let d2 = optimal_duration(&w, &Coupling::xy(2.0)).tau;
        assert!((d1 / d2 - 2.0).abs() < 1e-12);
        // Normalized duration is coupling-strength invariant.
        assert!((duration_in_g(&w, &Coupling::xy(1.0)) - duration_in_g(&w, &Coupling::xy(2.0))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not canonical")]
    fn rejects_non_canonical() {
        optimal_duration(&WeylCoord::new(1.0, 0.9, 0.8), &Coupling::xy(1.0));
    }
}
