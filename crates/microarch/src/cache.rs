//! The solver-side half of the compilation service layer: a sharded,
//! read-mostly concurrent map primitive with hit/miss/eviction counters,
//! and a [`PulseCache`] that memoizes genAshN pulse solutions per
//! (coupling, SU(4) class) — the expensive EA grid-search + Nelder–Mead
//! work from [`crate::solver::solve_ea`] runs once per instruction class
//! instead of once per gate.
//!
//! Concurrency model: entries are immutable once inserted (`Arc`ed), so
//! lookups take only a shard's `RwLock` *read* lock — many readers
//! proceed in parallel and the hot warm-cache path never serializes.
//! Writes (misses) take one shard's write lock; with
//! [`DEFAULT_SHARDS`]-way sharding, concurrent misses on different
//! classes rarely contend.

use crate::coupling::Coupling;
use crate::duration::Image;
use crate::scheme::{solve_pulse_profiled, PulseSolution, SolveError, Subscheme};
use crate::solver::{evolve, EaSolveProfile, PulseParams};
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{kak_decompose, CMat, Kak, WeylClassKey, SU4_CLASS_TOL};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count of [`ShardedMap`]: enough to make write contention
/// negligible at typical worker counts without bloating empty maps.
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard entry capacity (so a default map holds up to
/// `16 × 1024` entries before evicting).
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// A point-in-time snapshot of one cache pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a recompute.
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Component-wise sum — for aggregating pools.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            inserts: self.inserts + other.inserts,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Internal consistency: inserts can't exceed misses (every insert is
    /// preceded by a missed lookup) and evictions can't exceed inserts.
    pub fn is_consistent(&self) -> bool {
        self.inserts <= self.misses && self.evictions <= self.inserts
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate), {} inserts, {} evictions",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.inserts,
            self.evictions
        )
    }
}

/// Atomic counters backing [`CacheStats`]. `SeqCst` everywhere: the
/// counters are touched once per map operation (which already pays for a
/// lock), and the total order lets `snapshot` guarantee the
/// [`CacheStats::is_consistent`] inequalities — each counter's causal
/// predecessor is loaded *after* it (an eviction's ≥ capacity inserts
/// precede it, an insert's miss precedes it), so a concurrent snapshot
/// can only under-count the left side of each ≤, never over-count it.
/// (With `Relaxed` the loads could be satisfied out of order on
/// weak-memory targets and the argument would not hold.)
// lint:allow-file(atomic-ordering, SeqCst is load-bearing in this file — the total-order argument above is what makes CacheStats::is_consistent hold under concurrent snapshots; see the Counters doc)
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CacheStats {
        let evictions = self.evictions.load(Ordering::SeqCst);
        let inserts = self.inserts.load(Ordering::SeqCst);
        let misses = self.misses.load(Ordering::SeqCst);
        let hits = self.hits.load(Ordering::SeqCst);
        CacheStats { hits, misses, inserts, evictions }
    }
}

/// Aggregated cold-path solver counters of one [`PulseCache`] — every
/// class miss runs the boundary-curve EA solver, and its deterministic
/// [`EaSolveProfile`] is accumulated here. This is what the compile
/// pipeline surfaces alongside the pool hit/miss counters, so "where do
/// cold compiles spend their time" is answerable from `stats` output
/// without a profiler (and assertable in CI without wall clocks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Cold class solves attempted (cache misses reaching the solver).
    pub solves: u64,
    /// Solves whose pulse could not be found (propagated as errors).
    pub failures: u64,
    /// Cheap invariant-trace evaluations (the grid solver's "seeds").
    pub evals: u64,
    /// Full Weyl-residual verifications (one KAK each).
    pub verifies: u64,
    /// Matched-eigenphase curve points located.
    pub curve_points: u64,
    /// Local polish starts (Newton or Nelder–Mead).
    pub newton_starts: u64,
    /// Local polish iterations.
    pub newton_iters: u64,
    /// Boundary-family roots (pure-detuning + pure-amplitude).
    pub boundary_roots: u64,
    /// Interior curve-walk roots.
    pub interior_roots: u64,
    /// Subscheme attempts rejected for free by the conserved-eigenphase
    /// precheck.
    pub early_rejects: u64,
    /// Attempts that took the degenerate (tangential-root) path.
    pub degenerate_targets: u64,
}

impl SolverStats {
    /// Component-wise sum — for aggregating caches.
    pub fn merged(&self, other: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves + other.solves,
            failures: self.failures + other.failures,
            evals: self.evals + other.evals,
            verifies: self.verifies + other.verifies,
            curve_points: self.curve_points + other.curve_points,
            newton_starts: self.newton_starts + other.newton_starts,
            newton_iters: self.newton_iters + other.newton_iters,
            boundary_roots: self.boundary_roots + other.boundary_roots,
            interior_roots: self.interior_roots + other.interior_roots,
            early_rejects: self.early_rejects + other.early_rejects,
            degenerate_targets: self.degenerate_targets + other.degenerate_targets,
        }
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} solves ({} failed), {} evals, {} verifies, {} newton starts / {} iters, \
             {} boundary + {} interior roots, {} early rejects",
            self.solves,
            self.failures,
            self.evals,
            self.verifies,
            self.newton_starts,
            self.newton_iters,
            self.boundary_roots,
            self.interior_roots,
            self.early_rejects
        )
    }
}

/// Atomic accumulator behind [`SolverStats`] (relaxed ordering is fine:
/// the counters are statistics, not synchronization).
#[derive(Debug, Default)]
struct SolverCounters {
    solves: AtomicU64,
    failures: AtomicU64,
    evals: AtomicU64,
    verifies: AtomicU64,
    curve_points: AtomicU64,
    newton_starts: AtomicU64,
    newton_iters: AtomicU64,
    boundary_roots: AtomicU64,
    interior_roots: AtomicU64,
    early_rejects: AtomicU64,
    degenerate_targets: AtomicU64,
}

impl SolverCounters {
    fn record(&self, profile: &EaSolveProfile, failed: bool) {
        use Ordering::Relaxed;
        self.solves.fetch_add(1, Relaxed);
        if failed {
            self.failures.fetch_add(1, Relaxed);
        }
        self.evals.fetch_add(profile.evals, Relaxed);
        self.verifies.fetch_add(profile.verifies, Relaxed);
        self.curve_points.fetch_add(profile.curve_points, Relaxed);
        self.newton_starts.fetch_add(profile.newton_starts, Relaxed);
        self.newton_iters.fetch_add(profile.newton_iters, Relaxed);
        self.boundary_roots
            .fetch_add(profile.delta_family_roots + profile.omega_family_roots, Relaxed);
        self.interior_roots.fetch_add(profile.interior_roots, Relaxed);
        self.early_rejects.fetch_add(profile.early_rejects, Relaxed);
        self.degenerate_targets.fetch_add(profile.degenerate_targets, Relaxed);
    }

    fn snapshot(&self) -> SolverStats {
        use Ordering::Relaxed;
        SolverStats {
            solves: self.solves.load(Relaxed),
            failures: self.failures.load(Relaxed),
            evals: self.evals.load(Relaxed),
            verifies: self.verifies.load(Relaxed),
            curve_points: self.curve_points.load(Relaxed),
            newton_starts: self.newton_starts.load(Relaxed),
            newton_iters: self.newton_iters.load(Relaxed),
            boundary_roots: self.boundary_roots.load(Relaxed),
            interior_roots: self.interior_roots.load(Relaxed),
            early_rejects: self.early_rejects.load(Relaxed),
            degenerate_targets: self.degenerate_targets.load(Relaxed),
        }
    }
}

/// One resident entry: the value plus its last-use tick. The tick is
/// atomic so the read-lock-only lookup path can bump it — recency
/// tracking must not turn every hit into a write-lock acquisition.
/// `0` is reserved for "never used since seeding": bulk-loaded entries
/// stay distinguishable from live ones, which is what both the LRU
/// victim choice (coldest first) and the store's GC liveness test key on.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: AtomicU64,
}

/// A fixed-shard concurrent hash map with counters, a per-shard
/// capacity bound, and least-recently-used eviction. The service layer's
/// shared memo-table primitive: reads take only a shard read lock, writes
/// a shard write lock.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, Slot<V>>>>,
    shard_capacity: usize,
    counters: Counters,
    /// Global recency clock; see [`Slot`].
    tick: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// A map with [`DEFAULT_SHARDS`] shards of [`DEFAULT_SHARD_CAPACITY`].
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }

    /// A map with explicit shard count and per-shard capacity.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `shard_capacity` is zero.
    pub fn with_shape(shards: usize, shard_capacity: usize) -> Self {
        assert!(shards > 0 && shard_capacity > 0, "degenerate cache shape");
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity,
            counters: Counters::default(),
            tick: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &RwLock<HashMap<K, Slot<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The next recency stamp (strictly positive; `0` means unused).
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Looks up `key`, recording a hit or miss (and, on a hit, marking
    /// the entry most-recently-used).
    pub fn get(&self, key: &K) -> Option<V> {
        let found = {
            let shard = self.shard_of(key).read().expect("cache shard poisoned");
            shard.get(key).map(|slot| {
                slot.last_used.store(self.next_tick(), Ordering::SeqCst);
                slot.value.clone()
            })
        };
        match found {
            Some(v) => {
                self.counters.hits.fetch_add(1, Ordering::SeqCst);
                Some(v)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Hit-only-counted lookup: on a hit it behaves exactly like
    /// [`ShardedMap::get`] (counts the hit, marks the entry
    /// most-recently-used); on absence it counts **nothing** and returns
    /// `None`. The service's pipeline lookup stage probes the program
    /// pool with this so a miss routed to the solve stage — whose
    /// `compile()` performs the real, counted `get` — still accounts for
    /// exactly one miss per cold job, and [`CacheStats::is_consistent`]
    /// (`inserts ≤ misses`) stays true.
    pub fn probe(&self, key: &K) -> Option<V> {
        let found = {
            let shard = self.shard_of(key).read().expect("cache shard poisoned");
            shard.get(key).map(|slot| {
                slot.last_used.store(self.next_tick(), Ordering::SeqCst);
                slot.value.clone()
            })
        };
        if found.is_some() {
            self.counters.hits.fetch_add(1, Ordering::SeqCst);
        }
        found
    }

    /// Inserts `key → value`, evicting the least-recently-used resident
    /// entry first when the shard is at capacity. Never-used (seeded)
    /// entries carry tick `0`, so bulk-loaded entries are evicted before
    /// anything a live lookup has touched.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard_of(&key).write().expect("cache shard poisoned");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            let victim = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::SeqCst))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.counters.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        shard.insert(key, Slot { value, last_used: AtomicU64::new(self.next_tick()) });
        self.counters.inserts.fetch_add(1, Ordering::SeqCst);
    }

    /// Seeds `key → value` without touching the hit/miss/insert counters —
    /// the warm-start path used when a persistent store is loaded into a
    /// fresh cache. Counter-free seeding keeps [`CacheStats::is_consistent`]
    /// (`inserts ≤ misses`) true, and keeps hit rates meaningful: a
    /// disk-warmed entry served later still counts as a *hit* against zero
    /// misses. Respects the capacity bound by skipping (never evicting):
    /// live inserts outrank bulk-loaded entries. Seeded entries start with
    /// the "never used" recency stamp, so they are also the first LRU
    /// victims and report `used = false` to
    /// [`ShardedMap::for_each_with_used`] until a lookup touches them.
    pub fn seed(&self, key: K, value: V) {
        let mut shard = self.shard_of(&key).write().expect("cache shard poisoned");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            return;
        }
        shard.insert(key, Slot { value, last_used: AtomicU64::new(0) });
    }

    /// Removes `key` if resident, returning whether it was. No counter is
    /// touched: removal is a lifecycle operation (store GC), not a lookup,
    /// and not a capacity eviction.
    pub fn remove(&self, key: &K) -> bool {
        self.shard_of(key).write().expect("cache shard poisoned").remove(key).is_some()
    }

    /// Visits every resident entry (per-shard read locks; entries seeded
    /// or inserted concurrently may or may not be visited). The export
    /// path of the persistent store.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        self.for_each_with_used(|k, v, _| f(k, v));
    }

    /// [`ShardedMap::for_each`] plus each entry's *used* flag: `true` when
    /// a live lookup or insert has touched the entry, `false` for entries
    /// that were only bulk-seeded (e.g. loaded from the persistent store)
    /// and never served. The store's GC uses this to age out entries no
    /// process references anymore.
    pub fn for_each_with_used(&self, mut f: impl FnMut(&K, &V, bool)) {
        for s in &self.shards {
            for (k, slot) in s.read().expect("cache shard poisoned").iter() {
                f(k, &slot.value, slot.last_used.load(Ordering::SeqCst) > 0);
            }
        }
    }

    /// Memoizing lookup: on a miss, computes the value *outside* any lock
    /// (concurrent first-misses may compute redundantly — the results are
    /// deterministic, so last-write-wins is safe) and inserts it.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key.clone(), v.clone());
        v
    }

    /// Number of resident entries (sums shard sizes; advisory under
    /// concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("cache shard poisoned").len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Drops every resident entry (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().expect("cache shard poisoned").clear();
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// One memoized instruction class: the pulse program plus the KAK
/// decomposition of its verified evolution (the per-class half of
/// Algorithm 1's 1Q-correction step — per-gate corrections are then two
/// cheap 2×2 products away).
#[derive(Debug, Clone)]
pub struct SolvedClass {
    /// The pulse program realizing the class.
    pub pulse: PulseSolution,
    /// KAK decomposition of `e^{-iτ(H+H₁+H₂)}`.
    pub evo_kak: Kak,
}

/// Cache key: quantized coupling coefficients plus quantized Weyl class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PulseKey {
    coupling: [i64; 3],
    class: WeylClassKey,
}

/// Memoizes [`solve_pulse`] per (coupling, SU(4) class at the
/// [`SU4_CLASS_TOL`] grouping tolerance).
///
/// Two gates whose Weyl coordinates agree within the tolerance are *the
/// same instruction* under the paper's calibration model (§5.3.1), so
/// sharing one pulse program between them is semantically exact: the
/// cached solution's own `target` coordinates are returned with it, and
/// per-gate 1Q corrections absorb the (≤ tol ≈ 1e-5, i.e. ≤ ~1e-10
/// process infidelity) class difference.
#[derive(Debug, Default)]
pub struct PulseCache {
    map: ShardedMap<PulseKey, Arc<SolvedClass>>,
    solver: SolverCounters,
}

impl PulseCache {
    /// An empty cache with the default shape.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with an explicit shard count and per-shard capacity
    /// (the LRU knob — see [`ShardedMap::with_shape`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `shard_capacity` is zero.
    pub fn with_shape(shards: usize, shard_capacity: usize) -> Self {
        Self {
            map: ShardedMap::with_shape(shards, shard_capacity),
            solver: SolverCounters::default(),
        }
    }

    fn key(cp: &Coupling, w: &WeylCoord) -> PulseKey {
        PulseKey { coupling: cp.class_key(), class: w.class_key(SU4_CLASS_TOL) }
    }

    /// Memoized [`solve_pulse`]: returns the cached class solution when
    /// one exists, else solves, verifies, and caches. Solver *failures*
    /// are not cached (they are rare and retrying costs what the first
    /// attempt did).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying solver on a miss.
    pub fn solve(&self, cp: &Coupling, w: &WeylCoord) -> Result<Arc<SolvedClass>, SolveError> {
        let key = Self::key(cp, w);
        if let Some(entry) = self.map.get(&key) {
            return Ok(entry);
        }
        let (solved, profile) = solve_pulse_profiled(cp, w);
        self.solver.record(&profile, solved.is_err());
        let pulse = solved?;
        let evo = evolve(cp, &pulse.params, pulse.tau);
        let evo_kak =
            kak_decompose(&evo).map_err(|e| SolveError { message: e.to_string() })?;
        let entry = Arc::new(SolvedClass { pulse, evo_kak });
        self.map.insert(key, entry.clone());
        Ok(entry)
    }

    /// Memoized counterpart of [`crate::scheme::solve_with_mirroring`]:
    /// near-identity classes (`‖w‖₁ ≤ r`) are replaced by their mirror
    /// before the cached solve; the returned flag says whether the
    /// compiler must track a logical SWAP.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying solver.
    pub fn solve_with_mirroring(
        &self,
        cp: &Coupling,
        w: &WeylCoord,
        r: f64,
    ) -> Result<(Arc<SolvedClass>, bool), SolveError> {
        /// Coordinates with an ℓ₁ norm at or below this are *exactly*
        /// the identity class; mirroring them would manufacture a SWAP
        /// for a no-op.
        const MIRROR_MIN_L1: f64 = 1e-12;
        if w.is_near_identity(r) && w.l1_norm() > MIRROR_MIN_L1 {
            let mc = crate::scheme::canonicalize_coords(&w.mirror())?;
            Ok((self.solve(cp, &mc)?, true))
        } else {
            Ok((self.solve(cp, w)?, false))
        }
    }

    /// Memoized [`crate::scheme::realize_gate`]: the per-class pulse and
    /// evolution KAK come from the cache; only the target's own KAK and
    /// four 2×2 products run per gate.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if `u` is not a 4×4 unitary or the class
    /// solve fails.
    pub fn realize(
        &self,
        cp: &Coupling,
        u: &CMat,
    ) -> Result<crate::scheme::GateRealization, SolveError> {
        let kt = kak_decompose(u).map_err(|e| SolveError { message: e.to_string() })?;
        let entry = self.solve(cp, &kt.coords)?;
        let kr = &entry.evo_kak;
        // Same-bucket class members can differ by up to the grouping
        // tolerance *per component* (both round to the same multiple of
        // tol), so the sanity bound must be component-wise — a Euclidean
        // bound of tol would spuriously reject opposite bucket corners.
        if !kt.coords.approx_eq(&kr.coords, SU4_CLASS_TOL) {
            return Err(SolveError {
                message: format!(
                    "cached class {} too far from target {}",
                    kr.coords, kt.coords
                ),
            });
        }
        let a1 = kt.a1.mul_mat(&kr.a1.adjoint());
        let a2 = kt.a2.mul_mat(&kr.a2.adjoint());
        let b1 = kr.b1.adjoint().mul_mat(&kt.b1);
        let b2 = kr.b2.adjoint().mul_mat(&kt.b2);
        let phase = kt.phase * kr.phase.recip();
        Ok(crate::scheme::GateRealization {
            pulse: entry.pulse.clone(),
            a1,
            a2,
            b1,
            b2,
            phase,
        })
    }

    /// Exports every memoized class as `((coupling class key, Weyl class
    /// key), solution, used)` — the pulse pool's half of a
    /// persistent-store save. The trailing flag is `true` for entries a
    /// live solve touched (see [`ShardedMap::for_each_with_used`]).
    pub fn export_classes(&self) -> Vec<(([i64; 3], WeylClassKey), Arc<SolvedClass>, bool)> {
        let mut out = Vec::with_capacity(self.map.len());
        self.map.for_each_with_used(|k, v, used| out.push(((k.coupling, k.class), v.clone(), used)));
        out
    }

    /// Removes one class solution by explicit key parts, returning whether
    /// it was resident. The store GC's in-memory purge hook.
    pub fn remove_class(&self, coupling: [i64; 3], class: WeylClassKey) -> bool {
        self.map.remove(&PulseKey { coupling, class })
    }

    /// Seeds one class solution under explicit key parts (counter-free —
    /// see [`ShardedMap::seed`]). The store's load path; keys must have
    /// been produced by [`Coupling::class_key`] / [`WeylCoord::class_key`]
    /// at [`SU4_CLASS_TOL`], which the save path guarantees.
    pub fn seed_class(&self, coupling: [i64; 3], class: WeylClassKey, entry: Arc<SolvedClass>) {
        self.map.seed(PulseKey { coupling, class }, entry);
    }

    /// Counter snapshot of the class memo table.
    pub fn stats(&self) -> CacheStats {
        self.map.stats()
    }

    /// Aggregated cold-path solver counters (every miss-triggered solve's
    /// deterministic [`EaSolveProfile`], summed).
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.snapshot()
    }

    /// Drops every memoized class (counters survive).
    pub fn clear(&self) {
        self.map.clear();
    }

    /// Number of memoized classes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Encodes a [`SolvedClass`] for the persistent compile store: the pulse
/// program fields in declaration order, then the evolution KAK. Field
/// order and tag values are frozen (see `reqisc_qmath::bytes`); changes
/// require a store format-version bump — the region below is
/// fingerprinted into `crates/lint/store_surface.lock` by the
/// `reqisc-lint` store-format rule, which denies edits made without the
/// bump.
// lint:store-surface-begin
pub fn write_solved_class(w: &mut reqisc_qmath::ByteWriter, s: &SolvedClass) {
    let p = &s.pulse;
    w.put_f64(p.tau);
    w.put_f64(p.params.omega1);
    w.put_f64(p.params.omega2);
    w.put_f64(p.params.delta);
    w.put_u8(match p.subscheme {
        Subscheme::Nd => 0,
        Subscheme::EaPlus => 1,
        Subscheme::EaMinus => 2,
    });
    w.put_u8(match p.image {
        Image::Direct => 0,
        Image::Mirrored => 1,
    });
    reqisc_qmath::bytes::write_weyl(w, &p.target);
    w.put_f64(p.residual);
    reqisc_qmath::bytes::write_kak(w, &s.evo_kak);
}

/// Decodes a [`SolvedClass`].
///
/// # Errors
///
/// [`reqisc_qmath::CodecError`] on truncation or invalid enum tags.
pub fn read_solved_class(
    r: &mut reqisc_qmath::ByteReader<'_>,
) -> Result<SolvedClass, reqisc_qmath::CodecError> {
    let tau = r.get_f64()?;
    let params = PulseParams {
        omega1: r.get_f64()?,
        omega2: r.get_f64()?,
        delta: r.get_f64()?,
    };
    let subscheme = match r.get_u8()? {
        0 => Subscheme::Nd,
        1 => Subscheme::EaPlus,
        2 => Subscheme::EaMinus,
        t => return Err(reqisc_qmath::CodecError::new(format!("unknown subscheme tag {t}"))),
    };
    let image = match r.get_u8()? {
        0 => Image::Direct,
        1 => Image::Mirrored,
        t => return Err(reqisc_qmath::CodecError::new(format!("unknown image tag {t}"))),
    };
    let target = reqisc_qmath::bytes::read_weyl(r)?;
    let residual = r.get_f64()?;
    let evo_kak = reqisc_qmath::bytes::read_kak(r)?;
    Ok(SolvedClass {
        pulse: PulseSolution { tau, params, subscheme, image, target, residual },
        evo_kak,
    })
}
// lint:store-surface-end

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;

    #[test]
    fn sharded_map_counts_hits_misses_inserts() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(m.get(&1), None);
        m.insert(1, 10);
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), None);
        let s = m.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 2, 1, 0));
        assert_eq!(s.lookups(), 3);
        assert!(s.is_consistent());
    }

    #[test]
    fn sharded_map_evicts_at_capacity() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shape(1, 4);
        for k in 0..10 {
            // Memo discipline: a miss precedes every insert.
            assert_eq!(m.get(&k), None);
            m.insert(k, k);
        }
        assert!(m.len() <= 4);
        let s = m.stats();
        assert_eq!(s.inserts, 10);
        assert_eq!(s.evictions, 6);
        assert!(s.is_consistent());
    }

    #[test]
    fn sharded_map_evicts_least_recently_used() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shape(1, 2);
        // Memo discipline throughout: a missed get precedes every insert.
        assert_eq!(m.get(&1), None);
        m.insert(1, 10);
        assert_eq!(m.get(&2), None);
        m.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&3), None);
        m.insert(3, 30);
        assert_eq!(m.get(&2), None, "LRU entry must have been evicted");
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&3), Some(30));
        // Accounting stays exact under eviction: the evicted key's lookup
        // is an honest miss, everything else honest hits.
        let s = m.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (3, 4, 3, 1));
        assert!(s.is_consistent());
    }

    #[test]
    fn seeded_entries_are_coldest_victims_and_report_unused() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shape(1, 3);
        m.seed(1, 10);
        m.seed(2, 20);
        assert_eq!(m.get(&2), Some(20), "seeded entry serves as a hit");
        m.insert(3, 30);
        // At capacity: the never-used seed (key 1) is the victim, not the
        // seed a lookup touched and not the live insert.
        m.insert(4, 40);
        assert_eq!(m.get(&1), None, "unused seed must be evicted first");
        assert_eq!(m.get(&2), Some(20));
        assert_eq!(m.get(&4), Some(40));
        let mut used = std::collections::BTreeMap::new();
        m.for_each_with_used(|k, _, u| {
            used.insert(*k, u);
        });
        assert_eq!(used.get(&2), Some(&true), "hit seed reports used");
        assert_eq!(used.get(&3), Some(&true), "live insert reports used");
        // Removal is counter-free.
        let before = m.stats();
        assert!(m.remove(&3));
        assert!(!m.remove(&3));
        assert_eq!(m.stats(), before);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn get_or_insert_with_memoizes() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        let mut calls = 0;
        let v = m.get_or_insert_with(&7, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        let v2 = m.get_or_insert_with(&7, || {
            calls += 1;
            99
        });
        assert_eq!(v2, 42, "second lookup must come from the cache");
        assert_eq!(calls, 1);
    }

    #[test]
    fn pulse_cache_hits_on_repeat_class() {
        let cache = PulseCache::new();
        let cp = Coupling::xy(1.0);
        let w = WeylCoord::cnot();
        let a = cache.solve(&cp, &w).expect("solve");
        let b = cache.solve(&cp, &w).expect("solve");
        assert!(Arc::ptr_eq(&a, &b), "second solve must be the cached Arc");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // A coupling change is a different key.
        cache.solve(&Coupling::xx(1.0), &w).expect("solve");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn solved_class_codec_roundtrips_and_reseeds() {
        let cache = PulseCache::new();
        let cp = Coupling::xy(1.0);
        cache.solve(&cp, &WeylCoord::cnot()).expect("solve");
        // iSWAP is drive-free under XY — a cheap second class with a
        // different subscheme/KAK shape for the codec to exercise.
        cache.solve(&cp, &WeylCoord::iswap()).expect("solve");
        let exported = cache.export_classes();
        assert_eq!(exported.len(), 2);
        assert!(exported.iter().all(|(_, _, used)| *used), "live solves must mark entries used");
        // Round-trip every class through the codec into a fresh cache.
        let warm = PulseCache::new();
        for (key, entry, _) in &exported {
            let mut w = reqisc_qmath::ByteWriter::new();
            write_solved_class(&mut w, entry);
            let bytes = w.into_bytes();
            let mut r = reqisc_qmath::ByteReader::new(&bytes);
            let back = read_solved_class(&mut r).expect("roundtrip");
            assert!(r.is_exhausted());
            assert_eq!(back.pulse.tau.to_bits(), entry.pulse.tau.to_bits());
            assert_eq!(back.pulse.subscheme, entry.pulse.subscheme);
            assert!(back.evo_kak.reconstruct().approx_eq(&entry.evo_kak.reconstruct(), 0.0));
            warm.seed_class(key.0, key.1, Arc::new(back));
            // Truncations fail cleanly.
            for cut in (0..bytes.len()).step_by(17) {
                assert!(read_solved_class(&mut reqisc_qmath::ByteReader::new(&bytes[..cut]))
                    .is_err());
            }
        }
        // Seeding is counter-free and the seeded entries serve as hits.
        let s = warm.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (0, 0, 0));
        assert_eq!(warm.len(), 2);
        let a = warm.solve(&cp, &WeylCoord::cnot()).expect("warm solve");
        assert_eq!(warm.stats().hits, 1, "seeded entry must hit");
        // The reloaded realization is still exact.
        let r = warm.realize(&cp, &qg::cnot()).expect("realize");
        assert!(r.reconstruct(&cp).approx_eq(&qg::cnot(), 1e-6));
        assert!(a.pulse.residual < 1e-7);
    }

    #[test]
    fn cached_realization_is_exact() {
        let cache = PulseCache::new();
        for cp in [Coupling::xy(1.0), Coupling::xx(1.0)] {
            for u in [qg::cnot(), qg::cz(), qg::iswap(), qg::swap()] {
                let r = cache.realize(&cp, &u).expect("realize");
                let rec = r.reconstruct(&cp);
                assert!(
                    rec.approx_eq(&u, 1e-6),
                    "cached realization residual {:.2e}",
                    rec.max_dist(&u)
                );
            }
        }
        // CNOT and CZ share a class: 8 realize calls, but CZ/CNOT under
        // each coupling share one solve.
        let s = cache.stats();
        assert!(s.hits >= 2, "locally-equivalent gates must share entries: {s}");
    }
}
