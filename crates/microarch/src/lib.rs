#![warn(missing_docs)]
//! # reqisc-microarch
//!
//! The **genAshN** microarchitecture (paper §4, Algorithm 1): time-optimal
//! native realization of arbitrary SU(4) gates under *any* two-qubit
//! coupling Hamiltonian, with simple pulse controls (two drive amplitudes
//! and one detuning), near-identity gate mirroring, and exact 1Q
//! corrections.
//!
//! ## Quick start
//!
//! ```
//! use reqisc_microarch::{solve_pulse, Coupling};
//! use reqisc_qmath::WeylCoord;
//!
//! // CNOT on an XY-coupled (flux-tunable transmon) device:
//! let s = solve_pulse(&Coupling::xy(1.0), &WeylCoord::cnot()).unwrap();
//! // τ = π/2·g⁻¹ — 1.41× faster than the conventional π/√2 scheme.
//! assert!((s.tau - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
//! ```

pub mod cache;
pub mod calibration;
pub mod coupling;
pub mod duration;
pub mod scheme;
pub mod solver;

pub use cache::{CacheStats, PulseCache, ShardedMap, SolvedClass};
pub use calibration::{
    calibrate_gate, characterize_coupling, characterize_drive_gain, CalibratedGate,
    DeviceModel, SimulatedDevice,
};
pub use coupling::{normal_form, Coupling, NormalForm, NormalFormError};
pub use duration::{
    conventional_cnot_duration, conventional_duration_xy, duration_in_g, optimal_duration,
    Duration, FrontierTimes, Image,
};
pub use cache::SolverStats;
pub use scheme::{
    realize_gate, solve_pulse, solve_pulse_profiled, solve_with_mirroring, GateRealization,
    MirroredSolution, PulseSolution, SolveError, Subscheme, DEFAULT_MIRROR_THRESHOLD,
};
pub use solver::{
    ea_params, ea_params_checked, evolve, residual, sinc, sinc_inverse, solve_ea,
    solve_ea_profiled, solve_nd, EaSign, EaSolution, EaSolveProfile, PulseParams,
};
