//! Property tests for the genAshN scheme: the scaled-down version of the
//! paper's field test over random coupling Hamiltonians and random targets
//! (§4.2: "millions of random coupling Hamiltonians and target unitaries").

use proptest::prelude::*;
use reqisc_microarch::{
    optimal_duration, realize_gate, solve_pulse, solve_with_mirroring, Coupling,
    DEFAULT_MIRROR_THRESHOLD,
};
use reqisc_qmath::gates::canonical_gate;
use reqisc_qmath::{haar_su4, weyl_coords, WeylCoord};
use std::f64::consts::FRAC_PI_4;

fn arb_coupling() -> impl Strategy<Value = Coupling> {
    (0.2f64..1.0, 0.0f64..1.0, -1.0f64..1.0).prop_map(|(a, bf, cf)| {
        let b = bf * a;
        let c = cf * b;
        Coupling::new(a, b, c)
    })
}

fn arb_coords() -> impl Strategy<Value = WeylCoord> {
    // Interior chamber points, canonicalized through an actual gate so edge
    // conventions match the decomposition's.
    (0.05f64..0.95, 0.05f64..0.95, -0.9f64..0.9).prop_map(|(xf, yf, zf)| {
        let x = xf * FRAC_PI_4;
        let y = yf * x;
        let z = zf * y;
        weyl_coords(&canonical_gate(x, y, z)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The solved pulse realizes the right local-equivalence class for
    /// random couplings and random targets, at the optimal duration.
    #[test]
    fn pulse_realizes_class(cp in arb_coupling(), w in arb_coords()) {
        // Skip deep near-identity targets (control singularity — mirrored
        // in production; covered by `mirroring_bounds_amplitude`).
        prop_assume!(w.l1_norm() > 0.08);
        let s = solve_pulse(&cp, &w).unwrap();
        prop_assert!(s.residual < 1e-7, "residual {}", s.residual);
        let d = optimal_duration(&w, &cp);
        prop_assert!((s.tau - d.tau).abs() < 1e-12, "τ not optimal");
    }

    /// Near-identity targets are mirrored and stay amplitude-bounded.
    #[test]
    fn mirroring_bounds_amplitude(cp in arb_coupling(), s in 0.005f64..0.04) {
        let w = weyl_coords(&canonical_gate(s, s * 0.6, s * 0.3)).unwrap();
        let m = solve_with_mirroring(&cp, &w, DEFAULT_MIRROR_THRESHOLD).unwrap();
        prop_assert!(m.swapped);
        prop_assert!(m.pulse.residual < 1e-7);
        // Mirrored gates sit near the SWAP corner: bounded drives.
        prop_assert!(m.pulse.params.penalty() < 40.0 * cp.strength());
    }

    /// Full realization (with 1Q corrections) reproduces Haar-random
    /// targets exactly.
    #[test]
    fn realize_haar_targets(seed in 0u64..10_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = haar_su4(&mut rng);
        let cp = Coupling::xy(1.0);
        let r = realize_gate(&cp, &u).unwrap();
        let rec = r.reconstruct(&cp);
        prop_assert!(rec.approx_eq(&u, 1e-6), "residual {:.3e}", rec.max_dist(&u));
    }

    /// Rescaling the coupling rescales the optimal time inversely (the
    /// Hamiltonian-canonicalization identity of Appendix A.1.1), and the
    /// normalized duration never exceeds the SWAP-corner worst case.
    #[test]
    fn duration_scale_invariance(cp in arb_coupling(), w in arb_coords(), k in 0.5f64..4.0) {
        let scaled = Coupling::new(cp.a * k, cp.b * k, cp.c * k);
        let d1 = optimal_duration(&w, &cp).tau;
        let d2 = optimal_duration(&w, &scaled).tau;
        prop_assert!((d1 - d2 * k).abs() < 1e-9 * (1.0 + d1));
    }
}
