#![warn(missing_docs)]
//! # reqisc-bench
//!
//! The benchmark harness: every table and figure of the paper's evaluation
//! (§6) has one binary here that regenerates its rows/series (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//!
//! Binaries: `table1`, `table2`, `table3`, `fig4`, `fig6`, `fig12`,
//! `fig13`, `fig14`, `fig15`, `fig16`. All print CSV-ish text to stdout.
//! Set `REQISC_SCALE=paper` for Table-1-sized inputs (slow).

use reqisc_benchsuite::{Benchmark, Category};
use reqisc_compiler::{metrics, CacheStore, Compiler, LoadOutcome, Metrics, Pipeline};
use reqisc_microarch::Coupling;
use reqisc_qcircuit::Circuit;
use std::collections::BTreeMap;

/// The `REQISC_*` environment knobs shared by every bench binary. Each
/// knob is declared exactly once in the [`reqisc_env`] registry (with its
/// doc line — enforced by the `reqisc-lint` `env-registry` rule); this
/// module re-exports the ones the bench binaries read plus the cache-dir
/// convenience that delegates to the service's exact semantics.
pub mod env {
    pub use reqisc_env::{
        BENCH_GIT_REV, BENCH_JSON, BENCH_N, CACHE_DIR, HAAR_SAMPLES, REQUIRE_DEGENERATE_BUDGET,
        REQUIRE_DISK_WARM_X, REQUIRE_GENERIC_BUDGET, REQUIRE_PROGRAM_HIT_PCT,
        REQUIRE_SLIVER_BUDGET, REQUIRE_ZERO_REJECT_EVALS, REQUIRE_ZERO_WARM_SOLVES, SCALE,
        SERVE_LOOKUP_WORKERS, SERVE_WORKERS, SHM_CAPACITY_BYTES, SHM_PATH, SKIP_SERIAL, THREADS,
        TRIALS,
    };

    /// Reads the cache-dir knob with the service's exact semantics
    /// (unset or empty = no persistent store).
    pub fn env_cache_dir() -> Option<std::path::PathBuf> {
        reqisc_service::cache_dir_from_env()
    }
}

pub use env::env_cache_dir;

/// Opens the persistent compile store named by `REQISC_CACHE_DIR` (if
/// set) and warm-starts `compiler` from it. Every bench binary calls this
/// right after building its compiler: with the env var set, a rerun —
/// or a different figure sharing the directory — skips everything an
/// earlier process already compiled. Returns the store handle so the
/// binary can [`env_cache_save`] its own results back at exit; `None`
/// when the env var is unset (purely in-memory run, the default).
pub fn env_cache_store(compiler: &Compiler) -> Option<CacheStore> {
    let store = CacheStore::new(env_cache_dir()?);
    match store.load_into(compiler.cache()) {
        LoadOutcome::Missing => eprintln!("# cache store: {} (empty, cold start)", store.path().display()),
        LoadOutcome::Loaded { programs, synthesis, pulses } => eprintln!(
            "# cache store: {} ({programs} programs, {synthesis} synthesis, {pulses} pulses loaded)",
            store.path().display()
        ),
        LoadOutcome::Rejected { reason } => {
            eprintln!("# cache store: {} REJECTED ({reason}), cold start", store.path().display())
        }
    }
    Some(store)
}

/// Persists `compiler`'s pools back to the store opened by
/// [`env_cache_store`] (no-op when the env var was unset). Save failures
/// are reported, not fatal — a read-only cache dir must never fail a
/// figure run.
pub fn env_cache_save(store: Option<&CacheStore>, compiler: &Compiler) {
    if let Some(store) = store {
        match store.save(compiler.cache()) {
            Ok(n) => eprintln!("# cache store: saved {n} entries to {}", store.path().display()),
            Err(e) => eprintln!("# cache store: save failed ({e})"),
        }
    }
}

/// Percentage reduction of `new` relative to `base` (positive = better).
pub fn reduction_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (1.0 - new / base) * 100.0
    }
}

/// Geometric mean of positive values.
pub fn geo_mean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Per-benchmark compilation record.
pub struct Record {
    /// Program name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Metrics of the original CNOT-level circuit.
    pub original: Metrics,
    /// Metrics per pipeline.
    pub compiled: BTreeMap<&'static str, Metrics>,
}

/// Compiles one benchmark through the given pipelines and collects the
/// §6.1.1 metrics (durations under XY coupling, CNOT baseline π/√2·g⁻¹).
pub fn run_benchmark(compiler: &Compiler, b: &Benchmark, pipelines: &[Pipeline]) -> Record {
    let cp = Coupling::xy(1.0);
    let original = metrics(&b.circuit.lowered_to_cx(), &cp);
    let mut compiled = BTreeMap::new();
    for &p in pipelines {
        let out = compiler.compile(&b.circuit, p);
        compiled.insert(p.name(), metrics(&out, &cp));
    }
    Record { name: b.name.clone(), category: b.category, original, compiled }
}

/// Batch counterpart of [`run_benchmark`]: fans every `benchmark ×
/// pipeline` job out over [`Compiler::compile_batch`] workers sharing the
/// compiler's cache, then collects the same per-benchmark [`Record`]s.
/// `threads = 0` uses the available hardware parallelism. Metrics are
/// identical to the serial path (pipelines are deterministic).
pub fn run_benchmarks_batch(
    compiler: &Compiler,
    benchmarks: &[Benchmark],
    pipelines: &[Pipeline],
    threads: usize,
) -> Vec<Record> {
    let cp = Coupling::xy(1.0);
    let jobs: Vec<(&Circuit, Pipeline)> = benchmarks
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    let outs = compiler.compile_batch(&jobs, threads);
    benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let original = metrics(&b.circuit.lowered_to_cx(), &cp);
            let mut compiled = BTreeMap::new();
            for (j, &p) in pipelines.iter().enumerate() {
                compiled.insert(p.name(), metrics(&outs[i * pipelines.len() + j], &cp));
            }
            Record { name: b.name.clone(), category: b.category, original, compiled }
        })
        .collect()
}

/// Averages reduction rates per category for one metric.
pub fn category_reductions(
    records: &[Record],
    pipeline: &'static str,
    metric: fn(&Metrics) -> f64,
) -> BTreeMap<Category, f64> {
    let mut acc: BTreeMap<Category, (f64, usize)> = BTreeMap::new();
    for r in records {
        if let Some(m) = r.compiled.get(pipeline) {
            let red = reduction_pct(metric(&r.original), metric(m));
            let e = acc.entry(r.category).or_insert((0.0, 0));
            e.0 += red;
            e.1 += 1;
        }
    }
    acc.into_iter().map(|(c, (s, n))| (c, s / n as f64)).collect()
}

/// Overall (all-program) average reduction for one metric.
pub fn overall_reduction(
    records: &[Record],
    pipeline: &'static str,
    metric: fn(&Metrics) -> f64,
) -> f64 {
    let vals: Vec<f64> = records
        .iter()
        .filter_map(|r| {
            r.compiled
                .get(pipeline)
                .map(|m| reduction_pct(metric(&r.original), metric(m)))
        })
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Metric accessors for [`category_reductions`].
pub mod metric {
    use reqisc_compiler::Metrics;

    /// #2Q as f64.
    pub fn count_2q(m: &Metrics) -> f64 {
        m.count_2q as f64
    }

    /// Depth2Q as f64.
    pub fn depth_2q(m: &Metrics) -> f64 {
        m.depth_2q as f64
    }

    /// Pulse duration.
    pub fn duration(m: &Metrics) -> f64 {
        m.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
        assert!((reduction_pct(10.0, 12.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn batch_records_match_serial() {
        let compiler = Compiler::new();
        let bs: Vec<Benchmark> = reqisc_benchsuite::mini_suite().into_iter().take(2).collect();
        let ps = [Pipeline::Qiskit, Pipeline::ReqiscEff];
        let batch = run_benchmarks_batch(&compiler, &bs, &ps, 0);
        assert_eq!(batch.len(), bs.len());
        for (r, b) in batch.iter().zip(&bs) {
            let serial = run_benchmark(&compiler, b, &ps);
            assert_eq!(r.name, serial.name);
            assert_eq!(r.compiled, serial.compiled, "{}: batch metrics diverged", r.name);
        }
    }

    #[test]
    fn run_one_benchmark_end_to_end() {
        let compiler = Compiler::new();
        let b = reqisc_benchsuite::mini_suite().remove(0);
        let r = run_benchmark(&compiler, &b, &[Pipeline::Qiskit, Pipeline::ReqiscEff]);
        assert!(r.original.count_2q > 0);
        let eff = r.compiled["reqisc-eff"];
        let qk = r.compiled["qiskit"];
        assert!(eff.count_2q <= r.original.count_2q);
        assert!(qk.count_2q <= r.original.count_2q);
    }
}
