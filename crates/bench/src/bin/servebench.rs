//! Measures the compile *service* end to end: per-request latency
//! (submit → response) and throughput through the full staged pipeline
//! (submission ring → lookup → solve ring → workers → completion ring),
//! cold versus warm.
//!
//! Four passes over `programs × {ReqiscEff, ReqiscFull}`:
//!
//! * **cold** — fresh service, every request pays its compile (or joins
//!   an in-flight duplicate);
//! * **warm serial** — the same requests again, one at a time: the
//!   interactive-caller view of a resident warm cache (p50/p99 are the
//!   protocol + lookup overhead, microseconds not seconds);
//! * **warm pipelined** — all requests submitted before any is awaited:
//!   the throughput ceiling (req/s). Per-request latency here is
//!   submit → completion-observed, so it *includes* time queued behind
//!   the batch — expect p50/p99 well above the serial tier's;
//! * **mixed** — a batch of never-seen cold variants is submitted first
//!   and NOT awaited, then every warm request rides through the
//!   congested service serially. The staged-pipeline proof is the stage
//!   counters, not wall time: the warm requests must all short-circuit
//!   in the lookup stage (`lookup_hits` delta == warm count) and never
//!   be claimed by a solve worker (`solve_claimed` delta == cold count);
//! * **shared_warm** (only when `REQISC_SHM_PATH` is set) — a *second*
//!   service instance with no store and cold local pools attaches the
//!   shared-memory segment the first instance's solve workers published
//!   into, and replays every request serially. Hard counter assertions:
//!   every request is a lookup hit answered by the shared tier
//!   (`shared.hits == lookup_hits == requests`) and `solve_claimed`
//!   stays 0 — the peer's work reused bit-for-bit (fingerprint-checked)
//!   with zero duplicate solves.
//!
//! Environment knobs (shared semantics — see `reqisc_bench::env`):
//!
//! * `REQISC_SCALE=paper` — Table-1-sized programs;
//! * `REQISC_BENCH_N=<k>` — cap the program count (default 24);
//! * `REQISC_SERVE_WORKERS=<n>` — solve worker pool size (default
//!   hardware);
//! * `REQISC_SERVE_LOOKUP_WORKERS=<n>` — lookup-stage workers (default 1);
//! * `REQISC_CACHE_DIR=<dir>` — persist/load the store in `<dir>` (the
//!   service loads it at startup, so a second run starts disk-warm);
//! * `REQISC_SHM_PATH=<file>` / `REQISC_SHM_CAPACITY_BYTES=<n>` — attach
//!   the crash-safe shared-memory cache segment and run the
//!   `shared_warm` tier against it;
//! * `REQISC_BENCH_JSON=<path>` — write the machine-readable results
//!   (tier rows + mixed-tier counter deltas + the final stats snapshot);
//! * `REQISC_BENCH_GIT_REV=<rev>` — revision stamp for the JSON artifact
//!   (the driver passes `git rev-parse`; unset = `unknown`);
//! * `REQISC_REQUIRE_ZERO_WARM_SOLVES=1` — CI assertion: fail unless the
//!   mixed tier's counter deltas prove zero warm jobs entered the solve
//!   stage.
//!
//! Note the single-core container caveat (ROADMAP): wall-clocks here are
//! indicative; the counters (hits, coalesced, stage deltas) are the
//! portable signal.

use reqisc_bench::{env, env_cache_dir};
use reqisc_benchsuite::{scale_from_env, suite, Benchmark};
use reqisc_compiler::Pipeline;
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_service::{Json, Service, ServiceConfig, Ticket};
use std::sync::Arc;
use std::time::Instant;

/// Latencies are recorded as integer nanoseconds (no float rounding in
/// the hot loop, sub-millisecond warm hits stay distinguishable) and
/// only converted to fractional milliseconds at report time.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn row(pass: &str, latencies_ns: &mut [u64], total_s: f64) -> Json {
    latencies_ns.sort_unstable();
    let req_per_s = latencies_ns.len() as f64 / total_s.max(1e-9);
    let p50 = percentile_ms(latencies_ns, 50.0);
    let p99 = percentile_ms(latencies_ns, 99.0);
    println!(
        "{pass},{},{total_s:.3},{req_per_s:.1},{p50:.3},{p99:.3}",
        latencies_ns.len(),
    );
    Json::obj(vec![
        ("pass", Json::str(pass)),
        ("requests", Json::num_u64(latencies_ns.len() as u64)),
        ("total_s", Json::Num(total_s)),
        ("req_per_s", Json::Num(req_per_s)),
        ("p50_ms", Json::Num(p50)),
        ("p99_ms", Json::Num(p99)),
    ])
}

fn main() {
    let cap = env::BENCH_N.usize_or(24);
    let workers = env::SERVE_WORKERS.usize_or(0);
    let programs: Vec<Benchmark> = suite(scale_from_env())
        .into_iter()
        .filter(|b| b.circuit.lowered_to_cx().count_2q() <= 5000)
        .take(cap)
        .collect();
    let pipelines = [Pipeline::ReqiscEff, Pipeline::ReqiscFull];
    let jobs: Vec<(Arc<Circuit>, Pipeline)> = programs
        .iter()
        .flat_map(|b| {
            let c = Arc::new(b.circuit.clone());
            pipelines.iter().map(move |&p| (c.clone(), p))
        })
        .collect();
    eprintln!("{} programs × {} pipelines = {} requests", programs.len(), pipelines.len(), jobs.len());

    let shm_path = env::SHM_PATH.path();
    let shm_capacity_bytes = env::SHM_CAPACITY_BYTES.u64_or(reqisc_service::DEFAULT_SHM_CAPACITY_BYTES);
    let service = Service::start(ServiceConfig {
        workers,
        lookup_workers: env::SERVE_LOOKUP_WORKERS.usize_or(1),
        cache_dir: env_cache_dir(),
        shm_path: shm_path.clone(),
        shm_capacity_bytes,
        // Pass 3 submits the whole batch before awaiting anything, and
        // pass 4 keeps a full cold batch in flight while warm traffic
        // rides through; admission must cover both or the bench would
        // measure rejections.
        queue_capacity: (2 * jobs.len()).max(256),
        ..ServiceConfig::default()
    });
    if let Some(outcome) = service.startup_load() {
        eprintln!("# store load: {outcome:?}");
    }

    println!("pass,requests,total_s,req_per_s,p50_ms,p99_ms");
    let mut tiers: Vec<Json> = Vec::new();

    // Pass 1: cold, serial (per-request latency as an interactive caller
    // sees it the first time).
    let mut lat = Vec::with_capacity(jobs.len());
    let t0 = Instant::now();
    let mut fingerprints = Vec::with_capacity(jobs.len());
    for (c, p) in &jobs {
        let t = Instant::now();
        let done = service
            .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
            .expect("submit")
            .wait()
            .expect("compile");
        lat.push(t.elapsed().as_nanos() as u64);
        fingerprints.push(done.circuit.expect("circuit").content_hash());
    }
    tiers.push(row("cold", &mut lat, t0.elapsed().as_secs_f64()));

    // Pass 2: warm, serial.
    let mut lat = Vec::with_capacity(jobs.len());
    let t0 = Instant::now();
    for (i, (c, p)) in jobs.iter().enumerate() {
        let t = Instant::now();
        let done = service
            .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
            .expect("submit")
            .wait()
            .expect("compile");
        lat.push(t.elapsed().as_nanos() as u64);
        assert_eq!(
            done.circuit.expect("circuit").content_hash(),
            fingerprints[i],
            "warm result diverged from cold"
        );
    }
    tiers.push(row("warm_serial", &mut lat, t0.elapsed().as_secs_f64()));

    // Pass 3: warm, fully pipelined (throughput ceiling; duplicates of
    // in-flight work coalesce). Per-request latency is submit →
    // completion-observed: each ticket records its own submit instant,
    // so the distribution includes queueing behind the batch — that is
    // the latency a caller of a saturated service actually sees.
    let t0 = Instant::now();
    let tickets: Vec<(usize, Instant, Ticket)> = jobs
        .iter()
        .enumerate()
        .map(|(i, (c, p))| {
            let submitted_at = Instant::now();
            let t = service
                .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
                .expect("submit");
            (i, submitted_at, t)
        })
        .collect();
    let mut lat = Vec::with_capacity(jobs.len());
    for (i, submitted_at, t) in tickets {
        let done = t.wait().expect("compile");
        assert_eq!(done.circuit.expect("circuit").content_hash(), fingerprints[i]);
        lat.push(submitted_at.elapsed().as_nanos() as u64);
    }
    tiers.push(row("warm_pipelined", &mut lat, t0.elapsed().as_secs_f64()));

    // Pass 4: mixed cold/warm — the staged-pipeline proof. A full batch
    // of never-seen cold variants (each program plus one extra uniquely
    // parameterised gate, so every content hash is a true miss) is
    // submitted and NOT awaited; the warm requests then ride through the
    // congested service serially. Counters, not wall time, carry the
    // claim: every warm request must short-circuit in the lookup stage,
    // and only the cold variants may be claimed by solve workers.
    let s0 = service.stats_snapshot();
    let cold_variants: Vec<(Arc<Circuit>, Pipeline)> = jobs
        .iter()
        .enumerate()
        .map(|(i, (c, p))| {
            let mut v = (**c).clone();
            v.push(Gate::Rz(0, 0.1015625 + i as f64 * 1e-3));
            (Arc::new(v), *p)
        })
        .collect();
    let t0 = Instant::now();
    let cold_tickets: Vec<Ticket> = cold_variants
        .iter()
        .map(|(c, p)| {
            service
                .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
                .expect("submit mixed cold")
        })
        .collect();
    let mut lat = Vec::with_capacity(jobs.len());
    let mut warm_seqs = Vec::with_capacity(jobs.len());
    for (i, (c, p)) in jobs.iter().enumerate() {
        let t = Instant::now();
        let done = service
            .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
            .expect("submit mixed warm")
            .wait()
            .expect("compile mixed warm");
        lat.push(t.elapsed().as_nanos() as u64);
        assert_eq!(
            done.circuit.expect("circuit").content_hash(),
            fingerprints[i],
            "mixed warm result diverged"
        );
        warm_seqs.push(done.done_seq);
    }
    let warm_total_s = t0.elapsed().as_secs_f64();
    let mut cold_seqs = Vec::with_capacity(cold_tickets.len());
    for t in cold_tickets {
        let done = t.wait().expect("compile mixed cold");
        assert!(done.circuit.is_some(), "mixed cold produced no circuit");
        cold_seqs.push(done.done_seq);
    }
    tiers.push(row("mixed_warm", &mut lat, warm_total_s));

    let s1 = service.stats_snapshot();
    let warm_n = warm_seqs.len() as u64;
    let cold_n = cold_seqs.len() as u64;
    let d_hits = s1.stages.lookup_hits - s0.stages.lookup_hits;
    let d_misses = s1.stages.lookup_misses - s0.stages.lookup_misses;
    let d_claimed = s1.stages.solve_claimed - s0.stages.solve_claimed;
    let d_prog_misses = s1.cache.programs.misses - s0.cache.programs.misses;
    // Delivery order: all colds were submitted before any warm, so every
    // warm delivered before the last cold "overtook" cold traffic — the
    // fast path visibly not queueing behind the solve stage.
    let last_cold = cold_seqs.iter().copied().max().unwrap_or(0);
    let warm_overtakes = warm_seqs.iter().filter(|&&w| w < last_cold).count() as u64;
    let zero_warm_solves = d_hits == warm_n && d_misses == cold_n && d_claimed == cold_n;
    println!(
        "# mixed: {warm_n} warm + {cold_n} cold | lookup_hits +{d_hits} lookup_misses \
         +{d_misses} solve_claimed +{d_claimed} program_misses +{d_prog_misses} | \
         {warm_overtakes} warm completions overtook the cold batch"
    );
    if env::REQUIRE_ZERO_WARM_SOLVES.flag() {
        if !zero_warm_solves {
            eprintln!(
                "ASSERTION FAILED: warm traffic traversed the solve stage \
                 (lookup_hits +{d_hits} want +{warm_n}, lookup_misses +{d_misses} want \
                 +{cold_n}, solve_claimed +{d_claimed} want +{cold_n})"
            );
            std::process::exit(1);
        }
        eprintln!("# assertion passed: zero warm jobs entered the solve stage");
    }

    // Pass 5: shared_warm — the cross-process reuse proof. The first
    // instance's solve workers published every finished program into the
    // shared segment; a second instance with no store and cold local
    // pools must now answer the whole workload from that segment alone.
    // Hard assertions (counters, never wall time): all requests are
    // lookup hits, every one answered by the shared tier, and not one
    // solve claim — a duplicated solve anywhere fails the run.
    let mut shared_warm: Option<Json> = None;
    if let Some(shm) = shm_path {
        let peer = Service::start(ServiceConfig {
            workers,
            lookup_workers: env::SERVE_LOOKUP_WORKERS.usize_or(1),
            shm_path: Some(shm),
            shm_capacity_bytes,
            queue_capacity: (2 * jobs.len()).max(256),
            ..ServiceConfig::default()
        });
        let mut lat = Vec::with_capacity(jobs.len());
        let t0 = Instant::now();
        for (i, (c, p)) in jobs.iter().enumerate() {
            let t = Instant::now();
            let done = peer
                .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
                .expect("submit shared warm")
                .wait()
                .expect("compile shared warm");
            lat.push(t.elapsed().as_nanos() as u64);
            assert_eq!(
                done.circuit.expect("circuit").content_hash(),
                fingerprints[i],
                "shared-warm result diverged from the publishing peer's"
            );
        }
        tiers.push(row("shared_warm", &mut lat, t0.elapsed().as_secs_f64()));
        let ps = peer.stats_snapshot();
        let sh = ps.shared.expect("peer attached the shared segment");
        let n = jobs.len() as u64;
        println!(
            "# shared_warm: {n} requests | shared hits {} (seeded {} subprogram entries, \
             segment holds {}) | lookup_hits {} solve_claimed {}",
            sh.hits, sh.seeded, sh.entries, ps.stages.lookup_hits, ps.stages.solve_claimed
        );
        assert_eq!(
            ps.stages.lookup_hits, n,
            "every shared-warm request must short-circuit in the lookup stage"
        );
        assert_eq!(
            sh.hits, n,
            "every shared-warm hit must come from the shared segment, not local pools"
        );
        assert_eq!(
            ps.stages.solve_claimed, 0,
            "a shared-warm request duplicated a solve the peer already published"
        );
        shared_warm = Some(Json::obj(vec![
            ("requests", Json::num_u64(n)),
            ("lookup_hits", Json::num_u64(ps.stages.lookup_hits)),
            ("solve_claimed", Json::num_u64(ps.stages.solve_claimed)),
            ("shared_hits", Json::num_u64(sh.hits)),
            ("shared_seeded", Json::num_u64(sh.seeded)),
            ("segment_entries", Json::num_u64(sh.entries)),
            ("zero_duplicate_solves", Json::Bool(ps.stages.solve_claimed == 0)),
        ]));
        peer.shutdown();
    }

    let s = service.stats_snapshot();
    println!("# service: submitted {} completed {} coalesced {} rejected {}",
        s.service.submitted, s.service.completed, s.service.coalesced,
        s.service.rejected_queue_full);
    println!("# programs pool: {}", s.cache.programs);
    println!("# synthesis pool: {}", s.cache.synthesis);
    if let Some(st) = &s.store {
        println!("# store: {st}");
    }

    if let Some(path) = env::BENCH_JSON.path() {
        let mixed = Json::obj(vec![
            ("warm_requests", Json::num_u64(warm_n)),
            ("cold_requests", Json::num_u64(cold_n)),
            ("lookup_hits_delta", Json::num_u64(d_hits)),
            ("lookup_misses_delta", Json::num_u64(d_misses)),
            ("solve_claimed_delta", Json::num_u64(d_claimed)),
            ("program_misses_delta", Json::num_u64(d_prog_misses)),
            ("warm_overtakes", Json::num_u64(warm_overtakes)),
            ("zero_warm_solves", Json::Bool(zero_warm_solves)),
        ]);
        // Schema 1 was the unstamped original (pipelined latencies hard-
        // coded to 0). Schema 2 records real submit→completion latencies
        // (ns-sourced, emitted as fractional ms) and carries this stamp.
        let git_rev = env::BENCH_GIT_REV.var().unwrap_or_else(|| "unknown".into());
        let mut fields = vec![
            ("bench", Json::str("servebench")),
            ("schema_version", Json::num_u64(2)),
            ("git_rev", Json::str(&git_rev)),
            ("programs", Json::num_u64(programs.len() as u64)),
            ("requests", Json::num_u64(jobs.len() as u64)),
            ("tiers", Json::Arr(tiers)),
            ("mixed", mixed),
        ];
        if let Some(sw) = shared_warm {
            fields.push(("shared_warm", sw));
        }
        fields.push(("stats", s.to_json()));
        let doc = Json::obj(fields);
        match std::fs::write(&path, doc.emit() + "\n") {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    service.shutdown();
}
