//! Measures the compile *service* end to end: per-request latency
//! (submit → response) and throughput through the full queue → coalesce
//! → worker → cache path, cold versus warm.
//!
//! Three passes over `programs × {ReqiscEff, ReqiscFull}`:
//!
//! * **cold** — fresh service, every request pays its compile (or joins
//!   an in-flight duplicate);
//! * **warm serial** — the same requests again, one at a time: the
//!   interactive-caller view of a resident warm cache (p50/p99 are the
//!   protocol + lookup overhead, microseconds not seconds);
//! * **warm pipelined** — all requests submitted before any is awaited:
//!   the throughput ceiling (req/s).
//!
//! Environment knobs (shared semantics — see `reqisc_bench::env`):
//!
//! * `REQISC_SCALE=paper` — Table-1-sized programs;
//! * `REQISC_BENCH_N=<k>` — cap the program count (default 24);
//! * `REQISC_SERVE_WORKERS=<n>` — worker pool size (default hardware);
//! * `REQISC_CACHE_DIR=<dir>` — persist/load the store in `<dir>` (the
//!   service loads it at startup, so a second run starts disk-warm).
//!
//! Note the single-core container caveat (ROADMAP): wall-clocks here are
//! indicative; the counters (hits, coalesced) are the portable signal.

use reqisc_bench::{env, env_cache_dir};
use reqisc_benchsuite::{scale_from_env, suite, Benchmark};
use reqisc_compiler::Pipeline;
use reqisc_qcircuit::Circuit;
use reqisc_service::{Service, ServiceConfig, Ticket};
use std::sync::Arc;
use std::time::Instant;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted_ms[idx]
}

fn row(pass: &str, latencies_ms: &mut [f64], total_s: f64) {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{pass},{},{:.3},{:.1},{:.3},{:.3}",
        latencies_ms.len(),
        total_s,
        latencies_ms.len() as f64 / total_s.max(1e-9),
        percentile(latencies_ms, 50.0),
        percentile(latencies_ms, 99.0),
    );
}

fn main() {
    let cap = env::BENCH_N.usize_or(24);
    let workers = env::SERVE_WORKERS.usize_or(0);
    let programs: Vec<Benchmark> = suite(scale_from_env())
        .into_iter()
        .filter(|b| b.circuit.lowered_to_cx().count_2q() <= 5000)
        .take(cap)
        .collect();
    let pipelines = [Pipeline::ReqiscEff, Pipeline::ReqiscFull];
    let jobs: Vec<(Arc<Circuit>, Pipeline)> = programs
        .iter()
        .flat_map(|b| {
            let c = Arc::new(b.circuit.clone());
            pipelines.iter().map(move |&p| (c.clone(), p))
        })
        .collect();
    eprintln!("{} programs × {} pipelines = {} requests", programs.len(), pipelines.len(), jobs.len());

    let service = Service::start(ServiceConfig {
        workers,
        cache_dir: env_cache_dir(),
        // Pass 3 submits the whole batch before awaiting anything; the
        // queue must admit it all or the bench would measure rejections.
        queue_capacity: jobs.len().max(256),
        ..ServiceConfig::default()
    });
    if let Some(outcome) = service.startup_load() {
        eprintln!("# store load: {outcome:?}");
    }

    println!("pass,requests,total_s,req_per_s,p50_ms,p99_ms");

    // Pass 1: cold, serial (per-request latency as an interactive caller
    // sees it the first time).
    let mut lat = Vec::with_capacity(jobs.len());
    let t0 = Instant::now();
    let mut fingerprints = Vec::with_capacity(jobs.len());
    for (c, p) in &jobs {
        let t = Instant::now();
        let done = service
            .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
            .expect("submit")
            .wait()
            .expect("compile");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        fingerprints.push(done.circuit.expect("circuit").content_hash());
    }
    row("cold", &mut lat, t0.elapsed().as_secs_f64());

    // Pass 2: warm, serial.
    let mut lat = Vec::with_capacity(jobs.len());
    let t0 = Instant::now();
    for (i, (c, p)) in jobs.iter().enumerate() {
        let t = Instant::now();
        let done = service
            .submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY)
            .expect("submit")
            .wait()
            .expect("compile");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            done.circuit.expect("circuit").content_hash(),
            fingerprints[i],
            "warm result diverged from cold"
        );
    }
    row("warm_serial", &mut lat, t0.elapsed().as_secs_f64());

    // Pass 3: warm, fully pipelined (throughput ceiling; duplicates of
    // in-flight work coalesce).
    let t0 = Instant::now();
    let tickets: Vec<(usize, Ticket)> = jobs
        .iter()
        .enumerate()
        .map(|(i, (c, p))| {
            (i, service.submit_compile(c.clone(), *p, reqisc_service::DEFAULT_PRIORITY).expect("submit"))
        })
        .collect();
    let mut lat = Vec::with_capacity(jobs.len());
    for (i, t) in tickets {
        let done = t.wait().expect("compile");
        assert_eq!(done.circuit.expect("circuit").content_hash(), fingerprints[i]);
        lat.push(0.0); // per-request latency is not meaningful pipelined
    }
    row("warm_pipelined", &mut lat, t0.elapsed().as_secs_f64());

    let s = service.stats_snapshot();
    println!("# service: submitted {} completed {} coalesced {} rejected {}",
        s.service.submitted, s.service.completed, s.service.coalesced,
        s.service.rejected_queue_full);
    println!("# programs pool: {}", s.cache.programs);
    println!("# synthesis pool: {}", s.cache.synthesis);
    if let Some(st) = s.store {
        println!("# store: {st}");
    }
    service.shutdown();
}
