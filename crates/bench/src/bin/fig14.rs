//! Regenerates **Figure 14**: the ablation study — ReQISC-Full versus the
//! baseline "-SU(4)" variants (Qiskit-SU(4), TKet-SU(4), BQSKit-SU(4)) and
//! versus ReQISC-NC (no DAG compacting).
//!
//! Expected shape: ReQISC-Full ≥ every baseline variant on #2Q reduction;
//! BQSKit-SU(4) competitive on count but with exploding distinct-SU(4)
//! numbers; NC loses part of Full's reduction.

use reqisc_bench::{metric, overall_reduction, run_benchmark, Record};
use reqisc_benchsuite::mini_suite;
use reqisc_compiler::{distinct_su4_count, Compiler, Pipeline};

fn main() {
    let compiler = Compiler::new();
    let pipelines = [
        Pipeline::QiskitSu4,
        Pipeline::TketSu4,
        Pipeline::BqskitSu4,
        Pipeline::ReqiscNc,
        Pipeline::ReqiscFull,
    ];
    let mut records: Vec<Record> = Vec::new();
    println!("program,n2q_orig,qiskit_su4,tket_su4,bqskit_su4,reqisc_nc,reqisc_full,distinct_bqskit,distinct_full");
    for b in mini_suite() {
        let r = run_benchmark(&compiler, &b, &pipelines);
        let bq = compiler.compile(&b.circuit, Pipeline::BqskitSu4);
        let full = compiler.compile(&b.circuit, Pipeline::ReqiscFull);
        println!(
            "{},{},{},{},{},{},{},{},{}",
            r.name,
            r.original.count_2q,
            r.compiled["qiskit-su4"].count_2q,
            r.compiled["tket-su4"].count_2q,
            r.compiled["bqskit-su4"].count_2q,
            r.compiled["reqisc-nc"].count_2q,
            r.compiled["reqisc-full"].count_2q,
            // 1e-5 grouping: see distinct_su4_count consumers note in
            // ROADMAP (synthesis noise is ~1e-6 in the coordinates).
            distinct_su4_count(&bq, 1e-5),
            distinct_su4_count(&full, 1e-5),
        );
        eprintln!("done {}", b.name);
        records.push(r);
    }
    println!("# average #2Q reduction vs original (%):");
    for p in ["qiskit-su4", "tket-su4", "bqskit-su4", "reqisc-nc", "reqisc-full"] {
        println!("#   {p}: {:.2}", overall_reduction(&records, p, metric::count_2q));
    }
}
