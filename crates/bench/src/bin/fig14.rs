//! Regenerates **Figure 14**: the ablation study — ReQISC-Full versus the
//! baseline "-SU(4)" variants (Qiskit-SU(4), TKet-SU(4), BQSKit-SU(4)) and
//! versus ReQISC-NC (no DAG compacting).
//!
//! Expected shape: ReQISC-Full ≥ every baseline variant on #2Q reduction;
//! BQSKit-SU(4) competitive on count but with exploding distinct-SU(4)
//! numbers; NC loses part of Full's reduction.

use reqisc_bench::{env_cache_save, env_cache_store, metric, overall_reduction, run_benchmarks_batch, Record};
use reqisc_benchsuite::mini_suite;
use reqisc_compiler::{distinct_su4_count, Compiler, Pipeline};

fn main() {
    let compiler = Compiler::new();
    let store = env_cache_store(&compiler);
    let pipelines = [
        Pipeline::QiskitSu4,
        Pipeline::TketSu4,
        Pipeline::BqskitSu4,
        Pipeline::ReqiscNc,
        Pipeline::ReqiscFull,
    ];
    println!("program,n2q_orig,qiskit_su4,tket_su4,bqskit_su4,reqisc_nc,reqisc_full,distinct_bqskit,distinct_full");
    let programs = mini_suite();
    // One shared-cache batch; the per-program distinct-SU(4) recompiles
    // below then hit the program pool instead of recompiling.
    let records: Vec<Record> = run_benchmarks_batch(&compiler, &programs, &pipelines, 0);
    for (b, r) in programs.iter().zip(&records) {
        let bq = compiler.compile(&b.circuit, Pipeline::BqskitSu4);
        let full = compiler.compile(&b.circuit, Pipeline::ReqiscFull);
        println!(
            "{},{},{},{},{},{},{},{},{}",
            r.name,
            r.original.count_2q,
            r.compiled["qiskit-su4"].count_2q,
            r.compiled["tket-su4"].count_2q,
            r.compiled["bqskit-su4"].count_2q,
            r.compiled["reqisc-nc"].count_2q,
            r.compiled["reqisc-full"].count_2q,
            // Default grouping (SU4_CLASS_TOL = 1e-5): synthesis noise is
            // ~1e-6 in the coordinates — see the ROADMAP consumers note.
            distinct_su4_count(&bq),
            distinct_su4_count(&full),
        );
    }
    println!("# average #2Q reduction vs original (%):");
    for p in ["qiskit-su4", "tket-su4", "bqskit-su4", "reqisc-nc", "reqisc-full"] {
        println!("#   {p}: {:.2}", overall_reduction(&records, p, metric::count_2q));
    }
    env_cache_save(store.as_ref(), &compiler);
}
