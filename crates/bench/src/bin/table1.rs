//! Regenerates **Table 1**: benchmark suite characteristics — per category
//! the qubit-count range, #2Q range, Depth2Q range, and original circuit
//! duration range (CNOT-level, τ_CNOT = π/√2·g⁻¹).

use reqisc_benchsuite::{category_programs, scale_from_env, ALL_CATEGORIES};
use reqisc_compiler::metrics;
use reqisc_microarch::Coupling;

fn main() {
    let scale = scale_from_env();
    let cp = Coupling::xy(1.0);
    println!("category,count,qubits_min,qubits_max,n2q_min,n2q_max,depth2q_min,depth2q_max,duration_min,duration_max");
    let mut total = 0usize;
    for cat in ALL_CATEGORIES {
        let progs = category_programs(cat, scale);
        total += progs.len();
        let mut q = (usize::MAX, 0usize);
        let mut n2 = (usize::MAX, 0usize);
        let mut dp = (usize::MAX, 0usize);
        let mut du = (f64::INFINITY, 0f64);
        for b in &progs {
            let lowered = b.circuit.lowered_to_cx();
            let m = metrics(&lowered, &cp);
            q = (q.0.min(b.circuit.num_qubits()), q.1.max(b.circuit.num_qubits()));
            n2 = (n2.0.min(m.count_2q), n2.1.max(m.count_2q));
            dp = (dp.0.min(m.depth_2q), dp.1.max(m.depth_2q));
            du = (du.0.min(m.duration), du.1.max(m.duration));
        }
        println!(
            "{},{},{},{},{},{},{},{},{:.1},{:.1}",
            cat.name(),
            progs.len(),
            q.0,
            q.1,
            n2.0,
            n2.1,
            dp.0,
            dp.1,
            du.0,
            du.1
        );
    }
    println!("# total programs: {total}");
}
