//! `solverbench` — cold-path profile of the boundary-curve EA solver.
//!
//! Runs `solve_ea` cold on four representative tiers and prints the
//! solver's *deterministic* counters (trace evaluations, full-KAK
//! verifications, polish starts/iterations, roots per family), so the
//! cold-compile cost is assertable on a single-core CI container without
//! wall clocks. Wall time is printed for context only.
//!
//! Tiers:
//!
//! * **sliver** — the frontier-marginal full-edge-row family
//!   `(0.7, ε, 0)` under XX coupling, ε down to 1e-6: roots live in
//!   O(10⁻³)-and-thinner boundary slivers. Historical grid-solver cost:
//!   25709 full-KAK evaluations over the four ε cases (437 grid seeds +
//!   NM refinement each).
//! * **generic** — anisotropic couplings with transversal interior roots
//!   (historical cost: 8209 over two cases).
//! * **degenerate** — SWAP under XX and the near-SWAP corner (target
//!   eigenphases coincide; tangential roots; historical cost: ~8874 for
//!   the pair). The counter count here is *comparable* to the legacy
//!   solver's, but every counted evaluation is a ~4× cheaper trace
//!   evaluation instead of a full KAK decomposition, so wall time still
//!   drops ~2×.
//! * **reject** — wrong-subscheme attempts, which the conserved-phase
//!   precheck must reject with **zero** evaluations (historically ~35000
//!   wasted evaluations each).
//!
//! Assertion env knobs (all optional; the CI `solver-profile` job sets
//! them to the pinned budgets, ≤ the historical cost / 5):
//!
//! * `REQISC_REQUIRE_SLIVER_BUDGET`   — max Σ(evals+verifies), sliver tier
//! * `REQISC_REQUIRE_GENERIC_BUDGET`  — max Σ(evals+verifies), generic tier
//! * `REQISC_REQUIRE_DEGENERATE_BUDGET` — max Σ(evals+verifies), degenerate
//! * `REQISC_REQUIRE_ZERO_REJECT_EVALS` — set: reject tier must cost 0
//!
//! The sliver tier additionally always asserts *zero unconverged rows*
//! (every ε finds its root) — that is the regression the boundary-curve
//! rewrite exists to prevent.

use reqisc_bench::env;
use reqisc_microarch::{
    optimal_duration, solve_ea_profiled, Coupling, EaSign, EaSolveProfile,
};
use reqisc_qmath::WeylCoord;
use std::time::Instant;

struct Case {
    label: String,
    cp: Coupling,
    sign: EaSign,
    w: WeylCoord,
    /// Frontier time of the *other* EA sign when exercising the reject
    /// path (`None` = solve at the binding time).
    wrong_tau: bool,
}

fn case(label: &str, cp: Coupling, sign: EaSign, w: WeylCoord) -> Case {
    Case { label: label.to_string(), cp, sign, w, wrong_tau: false }
}

struct TierResult {
    total: u64,
    unconverged: usize,
    profiles: Vec<(String, usize, EaSolveProfile)>,
}

fn run_tier(name: &str, cases: &[Case]) -> TierResult {
    let mut result = TierResult { total: 0, unconverged: 0, profiles: Vec::new() };
    let t0 = Instant::now();
    for c in cases {
        let dur = optimal_duration(&c.w, &c.cp);
        let tau = if c.wrong_tau {
            // The non-binding EA frontier: no root can exist there.
            match c.sign {
                EaSign::Plus => (c.w.x + c.w.y + c.w.z) / (c.cp.a + c.cp.b + c.cp.c),
                EaSign::Minus => (c.w.x + c.w.y - c.w.z) / (c.cp.a + c.cp.b - c.cp.c),
            }
        } else {
            dur.tau
        };
        let (sols, profile) = solve_ea_profiled(&c.cp, c.sign, &c.w, tau, 1e-8);
        if sols.is_empty() && !c.wrong_tau {
            result.unconverged += 1;
        }
        result.total += profile.evals + profile.verifies;
        result.profiles.push((c.label.clone(), sols.len(), profile));
    }
    let elapsed = t0.elapsed();
    println!("== tier {name} ({} cases, {:.1} ms wall)", cases.len(), elapsed.as_secs_f64() * 1e3);
    println!(
        "{:<22} {:>5} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "case", "roots", "evals", "verifies", "starts", "iters", "bnd", "int", "rej"
    );
    for (label, roots, p) in &result.profiles {
        println!(
            "{:<22} {:>5} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6} {:>6}",
            label,
            roots,
            p.evals,
            p.verifies,
            p.newton_starts,
            p.newton_iters,
            p.delta_family_roots + p.omega_family_roots,
            p.interior_roots,
            p.early_rejects,
        );
    }
    println!("tier {name}: total evals+verifies = {}", result.total);
    result
}

fn main() {
    let xx = Coupling::xx(1.0);
    let aniso = Coupling::new(1.0, 0.6, 0.2);

    let sliver: Vec<Case> = [1e-3, 1e-4, 1e-5, 1e-6]
        .iter()
        .map(|&eps| {
            case(&format!("sliver eps={eps:.0e}"), xx, EaSign::Minus, WeylCoord::new(0.7, eps, 0.0))
        })
        .collect();
    let generic = vec![
        case("generic ea+", aniso, EaSign::Plus, WeylCoord::new(0.5, 0.3, -0.2)),
        case("generic ea-", aniso, EaSign::Minus, WeylCoord::new(0.5, 0.3, 0.2)),
    ];
    let degenerate = vec![
        case("swap corner", xx, EaSign::Minus, WeylCoord::swap()),
        case(
            "near-swap corner",
            xx,
            EaSign::Minus,
            WeylCoord::new(
                std::f64::consts::FRAC_PI_4,
                std::f64::consts::FRAC_PI_4,
                std::f64::consts::FRAC_PI_4 - 1e-3,
            ),
        ),
    ];
    let reject = vec![
        Case {
            label: "wrong-sign ea-".into(),
            cp: Coupling::new(1.0, 0.95, 0.9),
            sign: EaSign::Minus,
            w: WeylCoord::new(0.7, 0.6, 0.5),
            wrong_tau: false, // tau binds EA+ for this target; EA- must reject
        },
        Case {
            label: "off-frontier ea+".into(),
            cp: aniso,
            sign: EaSign::Plus,
            w: WeylCoord::new(0.5, 0.3, 0.2),
            wrong_tau: true,
        },
    ];

    let s = run_tier("sliver", &sliver);
    let g = run_tier("generic", &generic);
    let d = run_tier("degenerate", &degenerate);
    let r = run_tier("reject", &reject);

    // Historical grid-solver baselines (full-KAK evaluations, measured
    // with the instrumented legacy solver before its removal in PR 5).
    println!();
    println!("baseline (legacy grid solver): sliver 25709, generic 8209, degenerate 8874, reject ~35000/case");
    let ratio = |old: u64, new: u64| old as f64 / new.max(1) as f64;
    println!(
        "speedup (counter ratio): sliver {:.1}x, generic {:.1}x, degenerate {:.1}x",
        ratio(25709, s.total),
        ratio(8209, g.total),
        ratio(8874, d.total)
    );

    // Hard assertion: the sliver family must never lose a root again.
    assert_eq!(s.unconverged, 0, "unconverged sliver rows — the PR-5 regression guard");
    assert_eq!(g.unconverged + d.unconverged, 0, "unconverged non-sliver case");

    let mut failed = false;
    let mut require = |name: &str, total: u64, budget: usize| {
        if budget > 0 && total > budget as u64 {
            eprintln!("FAIL: {name} counters {total} exceed budget {budget}");
            failed = true;
        } else if budget > 0 {
            println!("OK: {name} counters {total} <= budget {budget}");
        }
    };
    require("sliver", s.total, env::REQUIRE_SLIVER_BUDGET.usize_or(0));
    require("generic", g.total, env::REQUIRE_GENERIC_BUDGET.usize_or(0));
    require("degenerate", d.total, env::REQUIRE_DEGENERATE_BUDGET.usize_or(0));
    if env::REQUIRE_ZERO_REJECT_EVALS.is_set() {
        let evals: u64 = r.profiles.iter().map(|(_, _, p)| p.evals + p.verifies).sum();
        if evals != 0 {
            eprintln!("FAIL: reject tier cost {evals} evaluations (must be 0)");
            failed = true;
        } else {
            println!("OK: reject tier cost 0 evaluations");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
