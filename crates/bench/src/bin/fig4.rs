//! Regenerates **Figure 4**: the (α, β) solution landscape of the EA
//! transcendental system for the SWAP gate under XX coupling, plus the
//! roots found by the solver and the one selected (minimal |Ω|+|δ|).
//!
//! Output: a grid of the Weyl-coordinate residual over (α, β), then the
//! converged roots. The paper's intersection curves (Re/Im of lhs−rhs)
//! correspond to the zero set of this residual.

use reqisc_microarch::{ea_params, residual, solve_ea, Coupling, EaSign};
use reqisc_qmath::WeylCoord;
use std::f64::consts::FRAC_PI_4;

fn main() {
    let cp = Coupling::xx(1.0);
    let w = WeylCoord::swap();
    // SWAP under XX: τ = (x+y+z)/(a+b+c) = 3π/4 binds (EA− in the main
    // text's naming; the appendix calls this sector EA+ — see
    // `reqisc_microarch::scheme` docs).
    let tau = 3.0 * FRAC_PI_4;
    let sign = EaSign::Minus;
    let grid = 40usize;
    let beta_max = 2.0;
    println!("# residual grid: alpha,beta,weyl_residual");
    for i in 0..=grid {
        for j in 0..=grid {
            let alpha = i as f64 / grid as f64;
            let beta = beta_max * j as f64 / grid as f64;
            let p = ea_params(&cp, sign, alpha, beta);
            let r = residual(&cp, &p, tau, &w);
            println!("{alpha:.4},{beta:.4},{r:.6e}");
        }
    }
    println!("# converged roots (sorted by implementation penalty):");
    println!("alpha,beta,omega1,omega2,delta,penalty,residual");
    let sols = solve_ea(&cp, sign, &w, tau, 1e-8);
    for s in &sols {
        println!(
            "{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3e}",
            s.alpha,
            s.beta,
            s.params.omega1,
            s.params.omega2,
            s.params.delta,
            s.params.penalty(),
            s.residual
        );
    }
    if let Some(best) = sols.first() {
        println!(
            "# selected: alpha={:.6} beta={:.6} (minimal pulse amplitudes)",
            best.alpha, best.beta
        );
    } else {
        println!("# WARNING: no root converged");
    }
}
