//! Regenerates **Figure 16**: compilation reliability and scalability.
//!
//! (a) Compilation error — the process infidelity between each compiled
//!     circuit and its source program (computable up to ~10 qubits).
//! (b) Compilation latency versus program size, per pipeline.
//!
//! Expected shape: every pipeline's error sits at numerical-precision
//! scale; latency is polynomial with ReQISC-Eff fastest among the SU(4)
//! flows and ReQISC-Full competitive with BQSKit-like synthesis.

use reqisc_benchsuite::{scale_from_env, suite};
use reqisc_compiler::{Compiler, Pipeline};
use reqisc_qsim::{circuit_unitary, process_infidelity};
use std::time::Instant;

fn main() {
    let compiler = Compiler::new();
    let pipelines = [
        Pipeline::Qiskit,
        Pipeline::Tket,
        Pipeline::BqskitSu4,
        Pipeline::ReqiscEff,
        Pipeline::ReqiscFull,
    ];
    println!("program,n_qubits,n2q_orig,pipeline,compile_ms,infidelity");
    for b in suite(scale_from_env()) {
        let n = b.circuit.num_qubits();
        let orig2q = b.circuit.lowered_to_cx().count_2q();
        if orig2q > 600 {
            continue; // latency scan cap for the demo scale
        }
        let verify = n <= 9;
        let orig_u = if verify { Some(circuit_unitary(&b.circuit.lowered_to_cx())) } else { None };
        for &p in &pipelines {
            let t0 = Instant::now();
            let out = compiler.compile(&b.circuit, p);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let inf = match &orig_u {
                Some(u) => {
                    let v = circuit_unitary(&out);
                    format!("{:.3e}", process_infidelity(u, &v))
                }
                None => "-".to_string(),
            };
            println!("{},{},{},{},{:.2},{}", b.name, n, orig2q, p.name(), ms, inf);
        }
        eprintln!("done {}", b.name);
    }
}
