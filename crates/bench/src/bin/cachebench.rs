//! Measures the compilation service layer's speedup: the serial,
//! cache-bypassing path versus [`Compiler::compile_batch`] with a cold
//! shared cache, versus a warm rerun of the same batch.
//!
//! Prints wall-clocks, ratios, and the final [`CompileCache`] counters.
//! Environment knobs: `REQISC_SCALE=paper` for Table-1-sized programs,
//! `REQISC_BENCH_N=<k>` to cap the program count (default: the whole
//! suite, as in fig13), `REQISC_THREADS=<t>` to pin the worker count.

use reqisc_benchsuite::{scale_from_env, suite, Benchmark};
use reqisc_compiler::{Compiler, Pipeline};
use reqisc_qcircuit::Circuit;
use std::time::Instant;

fn main() {
    let cap: usize = std::env::var("REQISC_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let threads: usize = std::env::var("REQISC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let programs: Vec<Benchmark> = suite(scale_from_env())
        .into_iter()
        .filter(|b| b.circuit.lowered_to_cx().count_2q() <= 5000)
        .take(cap)
        .collect();
    let pipelines = [Pipeline::ReqiscEff, Pipeline::ReqiscFull];
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    eprintln!("{} programs × {} pipelines = {} jobs", programs.len(), pipelines.len(), jobs.len());

    // 1. Serial cold reference: no memoization at any level.
    let serial = Compiler::new();
    let t0 = Instant::now();
    let serial_out: Vec<Circuit> =
        jobs.iter().map(|&(c, p)| serial.compile_uncached(c, p)).collect();
    let t_serial = t0.elapsed().as_secs_f64();

    // 2. Parallel batch, cold shared cache.
    let batch = Compiler::new();
    let t1 = Instant::now();
    let cold_out = batch.compile_batch(&jobs, threads);
    let t_cold = t1.elapsed().as_secs_f64();

    // 3. Same batch again, warm cache.
    let t2 = Instant::now();
    let warm_out = batch.compile_batch(&jobs, threads);
    let t_warm = t2.elapsed().as_secs_f64();

    assert_eq!(serial_out, cold_out, "batch diverged from the serial reference");
    assert_eq!(cold_out, warm_out, "warm rerun diverged");

    println!("serial_cold_s,batch_cold_s,batch_warm_s,cold_speedup_x,warm_speedup_x");
    println!(
        "{t_serial:.2},{t_cold:.2},{t_warm:.3},{:.2},{:.1}",
        t_serial / t_cold,
        t_serial / t_warm.max(1e-9)
    );
    let s = batch.cache_stats();
    println!("# programs: {}", s.programs);
    println!("# synthesis: {}", s.synthesis);
    println!("# total: {}", s.total());
}
