//! Measures the compilation service layer's speedups along all three
//! temperature tiers:
//!
//! * **serial cold** — the cache-bypassing reference path;
//! * **batch cold** — [`Compiler::compile_batch`] with a cold shared
//!   in-memory cache;
//! * **disk warm** — a *fresh* compiler warm-started from the persistent
//!   [`CacheStore`] (what a new process / CI job pays);
//! * **memory warm** — a rerun of the same batch in the same process.
//!
//! Prints one CSV row of wall-clocks and ratios plus the cache and store
//! counters.
//!
//! Environment knobs:
//!
//! * `REQISC_SCALE=paper` — Table-1-sized programs;
//! * `REQISC_BENCH_N=<k>` — cap the program count (default: whole suite);
//! * `REQISC_THREADS=<t>` — pin the worker count (default: hardware);
//! * `REQISC_CACHE_DIR=<dir>` — share the persistent store in `<dir>`
//!   across processes (default: a private temp dir, deleted at exit);
//! * `REQISC_SKIP_SERIAL=1` — skip the (slow) serial reference column;
//! * `REQISC_REQUIRE_DISK_WARM_X=<f>` — **assert** the store existed,
//!   loaded, and the disk-warm batch beat the cold batch by ≥ `f`×;
//! * `REQISC_REQUIRE_PROGRAM_HIT_PCT=<p>` — **assert** the disk-warm
//!   batch's program-pool hit rate is ≥ `p`% (CI runs the bench twice
//!   against one `REQISC_CACHE_DIR` with both assertions on the second
//!   run, so a persistence regression fails loudly).

use reqisc_bench::{env, env_cache_dir};
use reqisc_benchsuite::{scale_from_env, suite, Benchmark};
use reqisc_compiler::{CacheStore, Compiler, LoadOutcome, Pipeline};
use reqisc_qcircuit::Circuit;
use std::time::Instant;

fn main() {
    let cap = env::BENCH_N.usize_or(usize::MAX);
    let threads = env::THREADS.usize_or(0);
    let skip_serial = env::SKIP_SERIAL.flag();
    let require_disk_warm_x = env::REQUIRE_DISK_WARM_X.f64();
    let require_hit_pct = env::REQUIRE_PROGRAM_HIT_PCT.f64();
    let shared_dir = env_cache_dir();
    let programs: Vec<Benchmark> = suite(scale_from_env())
        .into_iter()
        .filter(|b| b.circuit.lowered_to_cx().count_2q() <= 5000)
        .take(cap)
        .collect();
    let pipelines = [Pipeline::ReqiscEff, Pipeline::ReqiscFull];
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    eprintln!("{} programs × {} pipelines = {} jobs", programs.len(), pipelines.len(), jobs.len());

    // 1. Serial cold reference: no memoization at any level.
    let t_serial = if skip_serial {
        None
    } else {
        let serial = Compiler::new();
        let t0 = Instant::now();
        let serial_out: Vec<Circuit> =
            jobs.iter().map(|&(c, p)| serial.compile_uncached(c, p)).collect();
        let t = t0.elapsed().as_secs_f64();
        Some((t, serial_out))
    };

    // 2. Parallel batch, cold shared in-memory cache.
    let batch = Compiler::new();
    let t1 = Instant::now();
    let cold_out = batch.compile_batch(&jobs, threads);
    let t_cold = t1.elapsed().as_secs_f64();
    if let Some((_, serial_out)) = &t_serial {
        assert_eq!(serial_out, &cold_out, "batch diverged from the serial reference");
    }

    // 3. Persist, then disk-warm a *fresh* compiler from the store (what
    // the next process pays). With REQISC_CACHE_DIR the store is loaded
    // before this process's results are merged back, so a second run
    // measures true cross-process warmth.
    let tmp_dir = shared_dir.is_none().then(|| {
        std::env::temp_dir().join(format!("reqisc-cachebench-{}", std::process::id()))
    });
    let dir = shared_dir.clone().or_else(|| tmp_dir.clone()).expect("some dir");
    let store = CacheStore::new(&dir);
    let warm = Compiler::new();
    // Cross-process mode: warm from whatever earlier runs left. The
    // *pre-existing* outcome is what the CI assertion checks — it proves
    // a previous process's file really warmed this one.
    let preexisting = if shared_dir.is_some() {
        store.load_into(warm.cache())
    } else {
        LoadOutcome::Missing
    };
    match &preexisting {
        LoadOutcome::Missing if shared_dir.is_some() => {
            eprintln!("# store: {} missing (cold first run)", store.path().display())
        }
        LoadOutcome::Missing => {}
        LoadOutcome::Loaded { programs, synthesis, pulses } => eprintln!(
            "# store: loaded {programs} programs, {synthesis} synthesis, {pulses} pulses"
        ),
        LoadOutcome::Rejected { reason } => eprintln!("# store: REJECTED ({reason})"),
    }
    if !matches!(preexisting, LoadOutcome::Loaded { .. }) {
        // Nothing usable on disk yet (first run, or a rejected file that
        // the save below supersedes): persist this process's cold results
        // and reload them, so the next phase measures genuine disk-warmth
        // instead of silently redoing a full cold batch.
        store.save(batch.cache()).expect("store save");
        let reloaded = store.load_into(warm.cache());
        assert!(
            matches!(reloaded, LoadOutcome::Loaded { .. }),
            "self-saved store failed to load: {reloaded:?}"
        );
    }
    let t2 = Instant::now();
    let disk_out = warm.compile_batch(&jobs, threads);
    let t_disk = t2.elapsed().as_secs_f64();
    assert_eq!(cold_out, disk_out, "disk-warm batch diverged");
    let disk_programs = warm.cache_stats().programs;

    // 4. Memory-warm rerun in the same process.
    let t3 = Instant::now();
    let warm_out = warm.compile_batch(&jobs, threads);
    let t_warm = t3.elapsed().as_secs_f64();
    assert_eq!(cold_out, warm_out, "memory-warm rerun diverged");

    // 5. Merge this run's results back into the shared store (pointless
    // for the private temp dir, which is deleted right after).
    if shared_dir.is_some() {
        store.save(warm.cache()).expect("store save");
    }
    if let Some(tmp) = &tmp_dir {
        let _ = std::fs::remove_dir_all(tmp);
    }

    let fmt_opt = |v: Option<f64>| v.map(|t| format!("{t:.2}")).unwrap_or_else(|| "-".into());
    println!(
        "serial_cold_s,batch_cold_s,disk_warm_s,mem_warm_s,cold_speedup_x,disk_warm_speedup_x,mem_warm_speedup_x"
    );
    println!(
        "{},{t_cold:.2},{t_disk:.3},{t_warm:.3},{},{:.2},{:.1}",
        fmt_opt(t_serial.as_ref().map(|(t, _)| *t)),
        fmt_opt(t_serial.as_ref().map(|(t, _)| *t / t_cold)),
        t_cold / t_disk.max(1e-9),
        t_cold / t_warm.max(1e-9),
    );
    let s = warm.cache_stats();
    println!("# disk-warm programs: {}", s.programs);
    println!("# disk-warm synthesis: {}", s.synthesis);
    println!("# disk-warm total: {}", s.total());
    println!("# store: {}", store.stats());
    println!("# cold-batch programs: {}", batch.cache_stats().programs);

    if let Some(factor) = require_disk_warm_x {
        assert!(
            matches!(preexisting, LoadOutcome::Loaded { .. }),
            "REQISC_REQUIRE_DISK_WARM_X set but no pre-existing store loaded: {preexisting:?}"
        );
        let speedup = t_cold / t_disk.max(1e-9);
        assert!(
            speedup >= factor,
            "disk-warm speedup {speedup:.2}x below required {factor}x (cold {t_cold:.2}s, disk-warm {t_disk:.3}s)"
        );
        eprintln!("# assertion passed: disk-warm speedup {speedup:.2}x >= {factor}x");
    }
    if let Some(pct) = require_hit_pct {
        let rate = 100.0 * disk_programs.hit_rate();
        assert!(
            disk_programs.lookups() > 0 && rate >= pct,
            "disk-warm program-pool hit rate {rate:.1}% below required {pct}% ({disk_programs})"
        );
        eprintln!("# assertion passed: program-pool hit rate {rate:.1}% >= {pct}%");
    }
}
