//! Regenerates **Figure 13**: calibration efficiency — the number of
//! *distinct* SU(4) instructions in ReQISC-Eff vs ReQISC-Full circuits,
//! with the #2Q-reduction trade-off each pays for.
//!
//! Expected shape: Eff stays below ~10 distinct SU(4)s; Full stays bounded
//! (≲ 200) with most programs below ~20.
//!
//! The whole suite is compiled in one [`Compiler::compile_batch`] fan-out
//! sharing the compilation cache; repeated Toffoli/adder blocks across
//! programs synthesize once. Final cache counters print as comments.

use reqisc_bench::{env_cache_save, env_cache_store};
use reqisc_benchsuite::{scale_from_env, suite, Benchmark};
use reqisc_compiler::{distinct_su4_count, Compiler, Pipeline};
use reqisc_qcircuit::Circuit;
use std::time::Instant;

fn main() {
    let compiler = Compiler::new();
    let store = env_cache_store(&compiler);
    println!("program,n2q_original,distinct_eff,n2q_eff,distinct_full,n2q_full");
    // The paper caps this figure at #2Q ≤ 5000.
    let programs: Vec<Benchmark> = suite(scale_from_env())
        .into_iter()
        .filter(|b| b.circuit.lowered_to_cx().count_2q() <= 5000)
        .collect();
    let pipelines = [Pipeline::ReqiscEff, Pipeline::ReqiscFull];
    let jobs: Vec<(&Circuit, Pipeline)> = programs
        .iter()
        .flat_map(|b| pipelines.iter().map(move |&p| (&b.circuit, p)))
        .collect();
    let t0 = Instant::now();
    let outs = compiler.compile_batch(&jobs, 0);
    let wall = t0.elapsed();
    let mut eff_counts = Vec::new();
    let mut full_counts = Vec::new();
    for (i, b) in programs.iter().enumerate() {
        let orig = b.circuit.lowered_to_cx().count_2q();
        let eff = &outs[pipelines.len() * i];
        let full = &outs[pipelines.len() * i + 1];
        // The default grouping is SU4_CLASS_TOL = 1e-5: the synthesis
        // sweep leaves ~1e-6 coordinate noise, so a tighter tolerance
        // over-splits identical instructions.
        let de = distinct_su4_count(eff);
        let df = distinct_su4_count(full);
        eff_counts.push(de);
        full_counts.push(df);
        println!(
            "{},{},{},{},{},{}",
            b.name,
            orig,
            de,
            eff.count_2q(),
            df,
            full.count_2q()
        );
    }
    let dist = |v: &[usize]| -> (usize, usize, f64) {
        let max = v.iter().copied().max().unwrap_or(0);
        let under20 = v.iter().filter(|&&x| x < 20).count();
        (max, under20, under20 as f64 / v.len().max(1) as f64)
    };
    let (emax, _eu, efrac) = dist(&eff_counts);
    let (fmax, _fu, ffrac) = dist(&full_counts);
    println!("# eff: max distinct {emax}, fraction under 20 = {efrac:.2}");
    println!("# full: max distinct {fmax}, fraction under 20 = {ffrac:.2}");
    println!("# batch wall-clock: {:.2}s over {} jobs", wall.as_secs_f64(), jobs.len());
    let s = compiler.cache_stats();
    println!("# cache programs: {}", s.programs);
    println!("# cache synthesis: {}", s.synthesis);
    env_cache_save(store.as_ref(), &compiler);
}
