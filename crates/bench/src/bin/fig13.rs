//! Regenerates **Figure 13**: calibration efficiency — the number of
//! *distinct* SU(4) instructions in ReQISC-Eff vs ReQISC-Full circuits,
//! with the #2Q-reduction trade-off each pays for.
//!
//! Expected shape: Eff stays below ~10 distinct SU(4)s; Full stays bounded
//! (≲ 200) with most programs below ~20.

use reqisc_benchsuite::{scale_from_env, suite};
use reqisc_compiler::{distinct_su4_count, Compiler, Pipeline};

fn main() {
    let compiler = Compiler::new();
    println!("program,n2q_original,distinct_eff,n2q_eff,distinct_full,n2q_full");
    let mut eff_counts = Vec::new();
    let mut full_counts = Vec::new();
    for b in suite(scale_from_env()) {
        let orig = b.circuit.lowered_to_cx().count_2q();
        if orig > 5000 {
            continue; // paper caps this figure at #2Q ≤ 5000
        }
        let eff = compiler.compile(&b.circuit, Pipeline::ReqiscEff);
        let full = compiler.compile(&b.circuit, Pipeline::ReqiscFull);
        // Group at 1e-5: the synthesis sweep leaves ~1e-6 coordinate
        // noise, so a tighter tolerance over-splits identical instructions.
        let de = distinct_su4_count(&eff, 1e-5);
        let df = distinct_su4_count(&full, 1e-5);
        eff_counts.push(de);
        full_counts.push(df);
        println!(
            "{},{},{},{},{},{}",
            b.name,
            orig,
            de,
            eff.count_2q(),
            df,
            full.count_2q()
        );
        eprintln!("done {}", b.name);
    }
    let dist = |v: &[usize]| -> (usize, usize, f64) {
        let max = v.iter().copied().max().unwrap_or(0);
        let under20 = v.iter().filter(|&&x| x < 20).count();
        (max, under20, under20 as f64 / v.len().max(1) as f64)
    };
    let (emax, _eu, efrac) = dist(&eff_counts);
    let (fmax, _fu, ffrac) = dist(&full_counts);
    println!("# eff: max distinct {emax}, fraction under 20 = {efrac:.2}");
    println!("# full: max distinct {fmax}, fraction under 20 = {ffrac:.2}");
}
