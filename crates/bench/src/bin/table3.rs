//! Regenerates **Table 3**: synthesis cost in gate duration τ (units g⁻¹)
//! under XY, XX and random couplings.
//!
//! * `SU(4)` rows: the average genAshN duration over Haar-random SU(4)
//!   targets (the paper uses 10⁵ samples; set `REQISC_HAAR_SAMPLES`).
//! * Fixed-gate rows: single-gate duration τ(Sgl.) via our scheme and the
//!   Haar-average cost τ(Avg.) = (Haar-random basis-gate count) × τ(Sgl.),
//!   with the published counts 3 / 3 / 2.21 / 2 for CNOT/iSWAP/SQiSW/B.
//! * The conventional-CNOT reference: 3 × π/√2 ≈ 6.664 g⁻¹.
//!
//! Expected shape: SU(4) average ≈ 1.34 (XY), ≈ 1.18 (XX), ≈ 1.3 (random)
//! — a ≈ 4.97× reduction vs the conventional CNOT scheme on XY.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reqisc_microarch::{conventional_cnot_duration, duration_in_g, Coupling};
use reqisc_qmath::{haar_su4, weyl_coords, WeylCoord};

fn haar_avg_duration(cp: &Coupling, samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..samples {
        let u = haar_su4(&mut rng);
        let w = weyl_coords(&u).expect("kak");
        acc += duration_in_g(&w, cp);
    }
    acc / samples as f64
}

fn random_coupling(rng: &mut StdRng) -> Coupling {
    let a: f64 = rng.gen_range(0.2..1.0);
    let b: f64 = rng.gen_range(0.0..a);
    let c: f64 = rng.gen_range(-b..b.max(1e-9));
    Coupling::new(a, b, c)
}

fn main() {
    let samples = reqisc_bench::env::HAAR_SAMPLES.usize_or(2000);
    let gates: [(&str, WeylCoord, f64); 4] = [
        ("cnot", WeylCoord::cnot(), 3.0),
        ("iswap", WeylCoord::iswap(), 3.0),
        ("sqisw", WeylCoord::sqisw(), 2.21),
        ("b", WeylCoord::b_gate(), 2.0),
    ];
    println!("coupling,basis,tau_single,tau_avg");
    println!(
        "xy,cnot-conventional,{:.3},{:.3}",
        conventional_cnot_duration(),
        3.0 * conventional_cnot_duration()
    );
    for (cname, cp) in [("xy", Coupling::xy(1.0)), ("xx", Coupling::xx(1.0))] {
        for (g, w, haar_count) in gates {
            let single = duration_in_g(&w, &cp);
            println!("{cname},{g},{single:.3},{:.3}", haar_count * single);
        }
        let avg = haar_avg_duration(&cp, samples, 7);
        println!("{cname},su4,-,{avg:.3}");
    }
    // Random couplings: average over coupling draws as well.
    let mut rng = StdRng::seed_from_u64(11);
    let draws = 24;
    let mut gate_acc = [0.0f64; 4];
    let mut su4_acc = 0.0;
    for d in 0..draws {
        let cp = random_coupling(&mut rng);
        for (i, (_, w, _)) in gates.iter().enumerate() {
            gate_acc[i] += duration_in_g(w, &cp);
        }
        su4_acc += haar_avg_duration(&cp, samples / 8, 100 + d);
    }
    for (i, (g, _, haar_count)) in gates.iter().enumerate() {
        let single = gate_acc[i] / draws as f64;
        println!("random,{g},{single:.3},{:.3}", haar_count * single);
    }
    println!("random,su4,-,{:.3}", su4_acc / draws as f64);
    println!(
        "# speedup of SU(4) avg vs conventional CNOT synthesis (xy): {:.2}x",
        3.0 * conventional_cnot_duration() / haar_avg_duration(&Coupling::xy(1.0), samples, 7)
    );
}
