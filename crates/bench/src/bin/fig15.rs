//! Regenerates **Figure 15**: program fidelity (Hellinger) and pulse
//! duration through noisy simulation, comparing ReQISC against the SOTA
//! CNOT-based workflow (TKet + SABRE), at the logical level and mapped to
//! a 2D grid and a 1D chain.
//!
//! Noise model (§6.7): two-qubit depolarizing channel with rate scaled by
//! pulse duration, p = p0·τ/τ0, τ0 = π/√2·g⁻¹, p0 = 0.001.
//!
//! Expected shape: ReQISC higher fidelity and shorter duration everywhere,
//! with the gap widening under topology constraints.

use reqisc_benchsuite::{mini_suite, Benchmark};
use reqisc_compiler::{
    expand_swaps_to_cx, gate_duration, metrics, route, Compiler, Pipeline, RouteOptions, Router,
    Topology,
};
use reqisc_microarch::Coupling;
use reqisc_qcircuit::Circuit;
use reqisc_qsim::{hellinger_fidelity, ideal_distribution, noisy_distribution, NoiseModel};

fn fidelity_of(c: &Circuit, cp: &Coupling, trials: usize) -> f64 {
    let noise = NoiseModel::duration_scaled(|g| gate_duration(g, cp));
    let noisy = noisy_distribution(c, &noise, trials, 42);
    let ideal = ideal_distribution(c);
    hellinger_fidelity(&noisy, &ideal)
}

fn main() {
    let compiler = Compiler::new();
    let cp = Coupling::xy(1.0);
    let trials = reqisc_bench::env::TRIALS.usize_or(120);
    // Representative programs small enough for dense noisy simulation.
    let programs: Vec<Benchmark> = mini_suite()
        .into_iter()
        .filter(|b| b.circuit.num_qubits() <= 7 && b.circuit.lowered_to_cx().count_2q() <= 220)
        .collect();
    println!("program,level,f_baseline,f_reqisc,t_baseline,t_reqisc");
    for b in &programs {
        let base_logical = compiler.compile(&b.circuit, Pipeline::Tket);
        let req_logical = compiler.compile(&b.circuit, Pipeline::ReqiscEff);
        for level in ["logical", "grid", "chain"] {
            let (bc, rc) = match level {
                "logical" => (base_logical.clone(), req_logical.clone()),
                _ => {
                    let n = b.circuit.num_qubits();
                    let topo = if level == "chain" {
                        Topology::chain(n)
                    } else {
                        Topology::grid_for(n)
                    };
                    let mut so = RouteOptions::default();
                    so.router = Router::Sabre;
                    let rb = route(&base_logical, &topo, &so);
                    let mut mo = RouteOptions::default();
                    mo.router = Router::MirroringSabre;
                    let rr = route(&req_logical, &topo, &mo);
                    (expand_swaps_to_cx(&rb.circuit), rr.circuit)
                }
            };
            if bc.num_qubits() > 10 {
                continue;
            }
            let fb = fidelity_of(&bc, &cp, trials);
            let fr = fidelity_of(&rc, &cp, trials);
            let tb = metrics(&bc, &cp).duration;
            let tr = metrics(&rc, &cp).duration;
            println!("{},{level},{fb:.4},{fr:.4},{tb:.1},{tr:.1}", b.name);
        }
        eprintln!("done {}", b.name);
    }
}
