//! Regenerates **Table 2**: logical-level compilation comparison — average
//! per-category reduction of #2Q, Depth2Q and pulse duration versus the
//! original CNOT-level program, for the Qiskit/TKet baselines and
//! ReQISC-Eff / ReQISC-Full. Durations use the XY-coupled Hamiltonian with
//! baseline CNOT duration π/√2·g⁻¹.
//!
//! The paper's BQSKit baseline corresponds to our `bqskit-su4` variant and
//! appears in the `fig14` ablation; here we print the four headline
//! columns. Expected shape: ReQISC-Eff/Full dominate everywhere, Full ≥
//! Eff, overall duration reduction ≈ 60–75%.

use reqisc_bench::{
    category_reductions, env_cache_save, env_cache_store, metric, overall_reduction,
    run_benchmarks_batch, Record,
};
use reqisc_benchsuite::{scale_from_env, suite, ALL_CATEGORIES};
use reqisc_compiler::{Compiler, Pipeline};

fn main() {
    let scale = scale_from_env();
    let compiler = Compiler::new();
    let store = env_cache_store(&compiler);
    let pipelines = [
        Pipeline::Qiskit,
        Pipeline::Tket,
        Pipeline::ReqiscEff,
        Pipeline::ReqiscFull,
    ];
    // One shared-cache batch over the whole suite × pipeline product.
    let programs = suite(scale);
    let records: Vec<Record> = run_benchmarks_batch(&compiler, &programs, &pipelines, 0);
    eprintln!("compiled {} programs; cache:\n{}", records.len(), compiler.cache_stats());
    let cols: [(&str, &'static str); 4] = [
        ("qiskit", "qiskit"),
        ("tket", "tket"),
        ("eff", "reqisc-eff"),
        ("full", "reqisc-full"),
    ];
    for (title, m) in [
        ("reduction_2q_pct", metric::count_2q as fn(&reqisc_compiler::Metrics) -> f64),
        ("reduction_depth2q_pct", metric::depth_2q),
        ("reduction_duration_pct", metric::duration),
    ] {
        println!("## {title}");
        print!("category");
        for (label, _) in cols {
            print!(",{label}");
        }
        println!();
        for cat in ALL_CATEGORIES {
            print!("{}", cat.name());
            for (_, p) in cols {
                let red = category_reductions(&records, p, m);
                print!(",{:.2}", red.get(&cat).copied().unwrap_or(0.0));
            }
            println!();
        }
        print!("overall");
        for (_, p) in cols {
            print!(",{:.2}", overall_reduction(&records, p, m));
        }
        println!();
        println!();
    }
    env_cache_save(store.as_ref(), &compiler);
}
