//! Regenerates **Figure 6**: hardware implementation of the genAshN
//! microarchitecture.
//!
//! (a) Durations of typical gates under XY coupling (the caption table).
//! (b,c) Subscheme (ND/EA+/EA−) selection across a Weyl-chamber sweep for
//!       XY and XX couplings.
//! (d) Required drive amplitudes (A₁, A₂, δ)/g for the CNOT/B/SWAP gate
//!     families versus the fraction s (iSWAP family needs no drives).

use reqisc_microarch::{duration_in_g, solve_pulse, Coupling, Subscheme};
use reqisc_qmath::weyl_coords;
use reqisc_qmath::WeylCoord;
use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, PI};

fn sub_name(s: Subscheme) -> &'static str {
    match s {
        Subscheme::Nd => "ND",
        Subscheme::EaPlus => "EA+",
        Subscheme::EaMinus => "EA-",
    }
}

fn main() {
    // (a) Gate-duration table, in multiples of π·g⁻¹ (paper caption).
    println!("## fig6a: gate durations under XY coupling (tau in pi*g^-1)");
    println!("gate,x,y,z,tau_over_pi");
    let gates: Vec<(&str, WeylCoord)> = vec![
        ("SQiSW", WeylCoord::sqisw()),
        ("iSWAP", WeylCoord::iswap()),
        ("QTSW", WeylCoord::new(FRAC_PI_8 / 2.0, FRAC_PI_8 / 2.0, FRAC_PI_8 / 2.0)),
        ("SQSW", WeylCoord::new(FRAC_PI_8, FRAC_PI_8, FRAC_PI_8)),
        ("SWAP", WeylCoord::swap()),
        ("CV", WeylCoord::new(FRAC_PI_8, 0.0, 0.0)),
        ("CNOT", WeylCoord::cnot()),
        ("B", WeylCoord::b_gate()),
        ("ECP", WeylCoord::ecp()),
        ("QFT", WeylCoord::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_8)),
    ];
    let xy = Coupling::xy(1.0);
    for (name, w) in &gates {
        println!(
            "{name},{:.6},{:.6},{:.6},{:.4}",
            w.x,
            w.y,
            w.z,
            duration_in_g(w, &xy) / PI
        );
    }

    // (b, c) Subscheme selection sweep.
    for (label, cp) in [("fig6b: XY", Coupling::xy(1.0)), ("fig6c: XX", Coupling::xx(1.0))] {
        println!();
        println!("## {label} coupling: subscheme over the Weyl chamber");
        println!("x,y,z,subscheme,tau_g");
        let steps = 6usize;
        for i in 1..=steps {
            let x = FRAC_PI_4 * i as f64 / steps as f64;
            for j in 0..=i {
                let y = x * j as f64 / i.max(1) as f64;
                for k in [-1.0f64, -0.5, 0.0, 0.5, 1.0] {
                    let z = y * k;
                    let w = match weyl_coords(&reqisc_qmath::gates::canonical_gate(x, y, z)) {
                        Ok(w) => w,
                        Err(_) => continue,
                    };
                    if w.l1_norm() < 0.05 {
                        continue; // near-identity: mirrored in production
                    }
                    match solve_pulse(&cp, &w) {
                        Ok(s) => println!(
                            "{:.4},{:.4},{:.4},{},{:.4}",
                            w.x,
                            w.y,
                            w.z,
                            sub_name(s.subscheme),
                            s.tau * cp.strength()
                        ),
                        Err(_) => println!("{:.4},{:.4},{:.4},UNSOLVED,-", w.x, w.y, w.z),
                    }
                }
            }
        }
    }

    // (d) Drive amplitudes for gate families under XY coupling.
    println!();
    println!("## fig6d: drive amplitudes (normalized by g) for gate families, XY coupling");
    println!("family,s,a1_over_g,a2_over_g,delta_over_g");
    let families: Vec<(&str, fn(f64) -> WeylCoord)> = vec![
        ("cnot", |s| WeylCoord::new(FRAC_PI_4 * s, 0.0, 0.0)),
        ("b", |s| WeylCoord::new(FRAC_PI_4 * s, FRAC_PI_8 * s, 0.0)),
        ("swap", |s| WeylCoord::new(FRAC_PI_4 * s, FRAC_PI_4 * s, FRAC_PI_4 * s)),
        ("iswap", |s| WeylCoord::new(FRAC_PI_4 * s, FRAC_PI_4 * s, 0.0)),
    ];
    let g = xy.strength();
    for (name, f) in families {
        for step in 2..=10 {
            let s = step as f64 / 10.0;
            let w = f(s);
            match solve_pulse(&xy, &w) {
                Ok(sol) => {
                    // A_i from Ω: Ω₁,₂ = −(A₁ ± A₂)/4 → A₁ = −2(Ω₁+Ω₂),
                    // A₂ = −2(Ω₁−Ω₂).
                    let a1 = -2.0 * (sol.params.omega1 + sol.params.omega2);
                    let a2 = -2.0 * (sol.params.omega1 - sol.params.omega2);
                    println!(
                        "{name},{s:.1},{:.4},{:.4},{:.4}",
                        a1.abs() / g,
                        a2.abs() / g,
                        sol.params.delta / g
                    );
                }
                Err(_) => println!("{name},{s:.1},unsolved,-,-"),
            }
        }
    }
}
