//! Regenerates **Figure 12**: topology-aware benchmarking on a 1D chain
//! and a 2D grid.
//!
//! For each medium benchmark: the CNOT baseline (TKet-like logical, then
//! SABRE with SWAP = 3 CX) versus the ReQISC flow (ReQISC-Full logical,
//! then SABRE or mirroring-SABRE where a SWAP fuses into a preceding
//! SU(4)). Prints #2Q per stage and the routing-overhead multiples; the
//! geometric means reproduce the dashed lines of the figure.

use reqisc_bench::{env_cache_save, env_cache_store, geo_mean};
use reqisc_benchsuite::{mini_suite, Benchmark};
use reqisc_compiler::{
    expand_swaps_to_cx, route, Compiler, Pipeline, RouteOptions, Router, Topology,
};

fn topo_for(kind: &str, n: usize) -> Topology {
    match kind {
        "chain" => Topology::chain(n),
        _ => Topology::grid_for(n),
    }
}

fn main() {
    let compiler = Compiler::new();
    let store = env_cache_store(&compiler);
    let programs: Vec<Benchmark> = mini_suite();
    // Warm the program pool for both logical pipelines in one parallel
    // batch; the per-topology loops below then compile from cache.
    let jobs: Vec<_> = programs
        .iter()
        .flat_map(|b| [(&b.circuit, Pipeline::Tket), (&b.circuit, Pipeline::ReqiscFull)])
        .collect();
    compiler.compile_batch(&jobs, 0);
    for kind in ["chain", "grid"] {
        println!("## topology: {kind}");
        println!(
            "program,cnot_logical,cnot_sabre,su4_logical,su4_sabre,su4_mirroring,\
             cnot_overhead_x,su4_overhead_x,mirroring_gain_pct"
        );
        let mut cnot_over = Vec::new();
        let mut su4_over = Vec::new();
        for b in &programs {
            let n = b.circuit.num_qubits();
            let topo = topo_for(kind, n);
            // CNOT baseline: TKet-like logical then SABRE (SWAP = 3 CX).
            let cnot_logical = compiler.compile(&b.circuit, Pipeline::Tket);
            let mut so = RouteOptions::default();
            so.router = Router::Sabre;
            let routed_cnot = route(&cnot_logical, &topo, &so);
            let cnot_routed = expand_swaps_to_cx(&routed_cnot.circuit).count_2q();
            // ReQISC flow.
            let su4_logical = compiler.compile(&b.circuit, Pipeline::ReqiscFull);
            let routed_sabre = route(&su4_logical, &topo, &so);
            let su4_sabre = routed_sabre.circuit.count_2q();
            let mut mo = RouteOptions::default();
            mo.router = Router::MirroringSabre;
            let routed_mirror = route(&su4_logical, &topo, &mo);
            let su4_mirror = routed_mirror.circuit.count_2q();
            let lc = cnot_logical.count_2q().max(1) as f64;
            let ls = su4_logical.count_2q().max(1) as f64;
            let co = cnot_routed as f64 / lc;
            let so_ = su4_mirror as f64 / ls;
            cnot_over.push(co);
            su4_over.push(so_);
            let gain = if su4_sabre > 0 {
                100.0 * (su4_sabre as f64 - su4_mirror as f64) / su4_sabre as f64
            } else {
                0.0
            };
            println!(
                "{},{},{},{},{},{},{:.2},{:.2},{:.1}",
                b.name,
                cnot_logical.count_2q(),
                cnot_routed,
                su4_logical.count_2q(),
                su4_sabre,
                su4_mirror,
                co,
                so_,
                gain
            );
        }
        println!(
            "# geomean routing overhead: cnot {:.2}x, su4 {:.2}x",
            geo_mean(&cnot_over),
            geo_mean(&su4_over)
        );
        println!();
    }
    env_cache_save(store.as_ref(), &compiler);
}
