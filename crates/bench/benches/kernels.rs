//! Criterion micro-benchmarks for the hot kernels behind every exhibit:
//! KAK decomposition, Hamiltonian evolution, genAshN pulse solving,
//! approximate-synthesis sweeps, and SABRE routing.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reqisc_compiler::{route, RouteOptions, Router, Topology};
use reqisc_microarch::{optimal_duration, solve_ea, solve_pulse, Coupling, EaSign};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::{expm_i_hermitian, haar_su4, kak_decompose, local_invariant_trace, weyl_coords, WeylCoord};
use reqisc_synthesis::{instantiate, SweepOptions};
use std::hint::black_box;

fn bench_kak(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let us: Vec<_> = (0..32).map(|_| haar_su4(&mut rng)).collect();
    let mut i = 0;
    c.bench_function("kak_decompose_haar", |b| {
        b.iter(|| {
            i = (i + 1) % us.len();
            black_box(kak_decompose(&us[i]).unwrap())
        })
    });
}

fn bench_expm(c: &mut Criterion) {
    let h = Coupling::xy(1.0).hamiltonian();
    c.bench_function("expm_4x4_hermitian", |b| {
        b.iter(|| black_box(expm_i_hermitian(&h, 0.7)))
    });
}

fn bench_duration(c: &mut Criterion) {
    let cp = Coupling::xy(1.0);
    let mut rng = StdRng::seed_from_u64(2);
    let ws: Vec<WeylCoord> = (0..64)
        .map(|_| weyl_coords(&haar_su4(&mut rng)).unwrap())
        .collect();
    let mut i = 0;
    c.bench_function("optimal_duration", |b| {
        b.iter(|| {
            i = (i + 1) % ws.len();
            black_box(optimal_duration(&ws[i], &cp))
        })
    });
}

fn bench_pulse_solve(c: &mut Criterion) {
    let cp = Coupling::xy(1.0);
    c.bench_function("genashn_solve_cnot_nd", |b| {
        b.iter(|| black_box(solve_pulse(&cp, &WeylCoord::cnot()).unwrap()))
    });
    let xx = Coupling::xx(1.0);
    let mut g = c.benchmark_group("genashn_solve_ea");
    g.sample_size(10);
    g.bench_function("swap_under_xx", |b| {
        b.iter(|| black_box(solve_pulse(&xx, &WeylCoord::swap()).unwrap()))
    });
    // The frontier-marginal sliver row: the cold path the boundary-curve
    // solver exists for (one 1-D boundary scan instead of grid tiers).
    g.bench_function("sliver_row_eps_1e5", |b| {
        let w = WeylCoord::new(0.7, 1e-5, 0.0);
        let tau = optimal_duration(&w, &xx).tau;
        b.iter(|| black_box(solve_ea(&xx, EaSign::Minus, &w, tau, 1e-8).len()))
    });
    // A generic transversal interior root under an anisotropic coupling.
    g.bench_function("interior_root_aniso", |b| {
        let cp = Coupling::new(1.0, 0.6, 0.2);
        let w = WeylCoord::new(0.5, 0.3, 0.2);
        let tau = optimal_duration(&w, &cp).tau;
        b.iter(|| black_box(solve_ea(&cp, EaSign::Minus, &w, tau, 1e-8).len()))
    });
    g.finish();
}

fn bench_invariant_trace(c: &mut Criterion) {
    // The boundary-curve solver's inner kernel: one trace evaluation per
    // probe point (vs a full KAK decomposition in the grid solver).
    let mut rng = StdRng::seed_from_u64(7);
    let us: Vec<_> = (0..32).map(|_| haar_su4(&mut rng)).collect();
    let mut i = 0;
    c.bench_function("local_invariant_trace", |b| {
        b.iter(|| {
            i = (i + 1) % us.len();
            black_box(local_invariant_trace(&us[i]))
        })
    });
}

fn bench_synthesis_sweep(c: &mut Criterion) {
    let mut ccx = Circuit::new(3);
    ccx.push(Gate::Ccx(0, 1, 2));
    let target = ccx.unitary();
    let structure = vec![(1usize, 2usize), (0, 2), (1, 2), (0, 2), (0, 1)];
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    g.bench_function("instantiate_ccx_5blocks", |b| {
        b.iter(|| {
            black_box(instantiate(&target, &structure, 3, &SweepOptions::default()).infidelity)
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut circ = Circuit::new(8);
    use rand::Rng;
    for _ in 0..60 {
        let a = rng.gen_range(0..8);
        let mut b = rng.gen_range(0..8);
        while b == a {
            b = rng.gen_range(0..8);
        }
        circ.push(Gate::Cx(a, b));
    }
    let topo = Topology::chain(8);
    let mut g = c.benchmark_group("routing");
    g.sample_size(20);
    for router in [Router::Sabre, Router::MirroringSabre] {
        let name = match router {
            Router::Sabre => "sabre",
            Router::MirroringSabre => "mirroring_sabre",
        };
        g.bench_function(name, |b| {
            let mut o = RouteOptions::default();
            o.router = router;
            b.iter(|| black_box(route(&circ, &topo, &o).circuit.count_2q()))
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_kak,
    bench_expm,
    bench_duration,
    bench_pulse_solve,
    bench_invariant_trace,
    bench_synthesis_sweep,
    bench_routing
);
criterion_main!(kernels);
