//! Criterion benches for end-to-end compilation throughput (the latency
//! dimension of Fig. 16) and for the design-choice ablations DESIGN.md
//! calls out: synthesis threshold `m_th` and the near-identity mirroring
//! threshold `r`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reqisc_benchsuite::generators::{qaoa, ripple_add};
use reqisc_compiler::{hierarchical_synthesis, Compiler, HsOptions, Pipeline};
use reqisc_microarch::{solve_with_mirroring, Coupling};
use reqisc_qmath::WeylCoord;
use std::hint::black_box;
use std::sync::OnceLock;

fn compiler() -> &'static Compiler {
    static C: OnceLock<Compiler> = OnceLock::new();
    C.get_or_init(Compiler::new)
}

fn bench_pipelines(c: &mut Criterion) {
    let program = ripple_add(3);
    let mut g = c.benchmark_group("compile_ripple_add_3");
    g.sample_size(10);
    for p in [Pipeline::Qiskit, Pipeline::Tket, Pipeline::ReqiscEff, Pipeline::ReqiscFull] {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| black_box(compiler().compile(&program, p).count_2q()))
        });
    }
    g.finish();
}

fn bench_mth_ablation(c: &mut Criterion) {
    let program = qaoa(6, 2, 1);
    let mut g = c.benchmark_group("ablation_m_th");
    g.sample_size(10);
    for m_th in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(m_th), &m_th, |b, &m_th| {
            let mut o = HsOptions::default();
            o.m_th = m_th;
            o.search.sweep.restarts = 2;
            b.iter(|| black_box(hierarchical_synthesis(&program, &o).count_2q()))
        });
    }
    g.finish();
}

fn bench_mirror_threshold(c: &mut Criterion) {
    let cp = Coupling::xy(1.0);
    let w = WeylCoord::new(0.06, 0.03, 0.01);
    let mut g = c.benchmark_group("ablation_mirror_threshold");
    g.sample_size(10);
    for r in [0.0f64, 0.15, 0.5] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(solve_with_mirroring(&cp, &w, r).unwrap().pulse.tau))
        });
    }
    g.finish();
}

criterion_group!(pipeline, bench_pipelines, bench_mth_ablation, bench_mirror_threshold);
criterion_main!(pipeline);
