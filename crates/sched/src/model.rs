//! The cooperative scheduler and DFS interleaving explorer.
//!
//! One *execution* runs the model closure with every shim operation
//! funnelled through [`Execution`]: exactly one model thread is
//! runnable at a time, and at every visible operation (lock, unlock,
//! wait, notify, atomic op, spawn, join, exit) the scheduler picks
//! which thread runs next. Each pick is a *decision* recorded on a
//! choice stack; [`explore`] backtracks over that stack
//! depth-first, re-running the closure with a replay prefix until
//! every schedule reachable within the preemption bound has been
//! visited or a failure is found.
//!
//! Failures — assertion panics inside model threads, deadlocks
//! (which is how a lost `notify_one` manifests), replay divergence,
//! step-limit blowout — abort the execution, unwind every model
//! thread, and surface as a [`Failure`] carrying the full step trace
//! and the decision schedule that reproduces it via [`replay`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Global id source for shim objects (mutexes, condvars). Ids are only
/// compared within one execution, where allocation order — and hence
/// relative order — is deterministic.
static NEXT_OBJ_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_obj_id() -> u64 {
    NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed)
}

/// Panic payload used to unwind model threads when an execution
/// aborts (failure found, or teardown). Never escapes the harness.
struct AbortToken;

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution context of the calling thread, if it is a model
/// thread of a live exploration. Shim types consult this to decide
/// between scheduled and passthrough behaviour.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Bounds for one [`explore`] run.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Maximum number of *preemptions* per execution: schedule points
    /// where a runnable thread is switched away from even though it
    /// could have continued. Voluntary switches (blocking on a held
    /// mutex, waiting on a condvar, exiting) are free. 2 catches the
    /// overwhelming majority of real races; 3 is near-exhaustive for
    /// small models.
    pub max_preemptions: usize,
    /// Hard cap on the number of executions explored. If reached, the
    /// report is marked incomplete and [`check`] fails.
    pub max_executions: usize,
    /// Per-execution decision cap — a livelock backstop.
    pub max_steps: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self { max_preemptions: 2, max_executions: 200_000, max_steps: 20_000 }
    }
}

/// One scheduler step: which thread performed which operation.
#[derive(Clone, Debug)]
pub struct Step {
    /// Model thread index (0 is the closure's root thread).
    pub thread: usize,
    /// Operation label, e.g. `m1.lock`, `cv1.notify_one`, `spawn t2`.
    pub op: String,
}

/// A failing execution: what went wrong, the exact step trace, and
/// the decision schedule that [`replay`] can re-run.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (panic message, deadlock summary).
    pub message: String,
    /// Every scheduler step of the failing execution, in order.
    pub trace: Vec<Step>,
    /// The decision stack (exploration-order index per choice point);
    /// feed to [`replay`] to reproduce this execution exactly.
    pub schedule: Vec<usize>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model failure: {}", self.message)?;
        writeln!(f, "schedule trace ({} steps):", self.trace.len())?;
        for (i, s) in self.trace.iter().enumerate() {
            writeln!(f, "  step {:>3}: t{} {}", i, s.thread, s.op)?;
        }
        write!(f, "replay schedule: {:?}", self.schedule)
    }
}

/// Outcome of an [`explore`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of executions (distinct schedules) actually run.
    pub executions: usize,
    /// True iff the bounded schedule space was exhausted (no failure,
    /// and `max_executions` was not hit).
    pub complete: bool,
    /// The first failing execution found, if any. DFS order is
    /// deterministic, so the same model yields the same failure.
    pub failure: Option<Failure>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(u64),
    BlockedCv(u64),
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    status: Status,
    /// Set when a timed condvar wait was woken by the global-stall
    /// timeout rule rather than a notify.
    timed_out: bool,
}

#[derive(Default)]
struct MutexInfo {
    held_by: Option<usize>,
    waiters: VecDeque<usize>,
}

struct CvWaiter {
    tid: usize,
    mutex: u64,
    timed: bool,
}

/// One recorded scheduler decision. `ord_len` is the number of
/// alternatives (enabled threads) at that point, `pos` the
/// exploration-order index taken (0 = run-to-completion default).
struct Decision {
    ord_len: usize,
    pos: usize,
    caller_enabled: bool,
    preemptions_before: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ObjKind {
    Mutex,
    Condvar,
    Atomic,
}

impl ObjKind {
    fn prefix(self) -> &'static str {
        match self {
            ObjKind::Mutex => "m",
            ObjKind::Condvar => "cv",
            ObjKind::Atomic => "a",
        }
    }
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    active: Option<usize>,
    live: usize,
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    trace: Vec<Step>,
    preemptions: usize,
    failure: Option<String>,
    abort: bool,
    done: bool,
    mutexes: BTreeMap<u64, MutexInfo>,
    cvs: BTreeMap<u64, VecDeque<CvWaiter>>,
    /// First-touch display names for shim objects (`m1`, `cv2`, `a3`),
    /// assigned in deterministic registration order.
    names: HashMap<(ObjKind, u64), String>,
    name_counters: [usize; 3],
    max_steps: usize,
}

impl ExecState {
    fn name_of(&mut self, kind: ObjKind, id: u64) -> String {
        if let Some(n) = self.names.get(&(kind, id)) {
            return n.clone();
        }
        let idx = match kind {
            ObjKind::Mutex => 0,
            ObjKind::Condvar => 1,
            ObjKind::Atomic => 2,
        };
        self.name_counters[idx] += 1;
        let n = format!("{}{}", kind.prefix(), self.name_counters[idx]);
        self.names.insert((kind, id), n.clone());
        n
    }

    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn blocked_summary(&self) -> String {
        let mut parts = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let d = match t.status {
                Status::Runnable => continue,
                Status::Finished => continue,
                Status::BlockedMutex(m) => format!("t{i} blocked on mutex #{m}"),
                Status::BlockedCv(c) => format!("t{i} waiting on condvar #{c}"),
                Status::BlockedJoin(j) => format!("t{i} joining t{j}"),
            };
            parts.push(d);
        }
        parts.join(", ")
    }
}

pub(crate) struct Execution {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    fn new(prefix: Vec<usize>, cfg: &ModelConfig) -> Self {
        Execution {
            st: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: None,
                live: 0,
                prefix,
                decisions: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                failure: None,
                abort: false,
                done: false,
                mutexes: BTreeMap::new(),
                cvs: BTreeMap::new(),
                names: HashMap::new(),
                name_counters: [0; 3],
                max_steps: cfg.max_steps,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        // The harness never panics while holding `st`, but model
        // threads unwinding through AbortToken may poison it anyway
        // if a panic hook ever touches it; recover defensively.
        self.st.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        st.active = None;
        self.cv.notify_all();
    }

    /// Panic out of a model thread when the execution is aborting.
    fn bail(&self, st: StdMutexGuard<'_, ExecState>) -> ! {
        drop(st);
        std::panic::panic_any(AbortToken);
    }

    /// Record a decision and pick the next active thread. The caller's
    /// own status must already reflect the operation (Runnable if it
    /// merely yields, Blocked*/Finished otherwise).
    fn reschedule(&self, st: &mut ExecState, caller: usize) {
        if st.abort || st.done {
            return;
        }
        let mut enabled = st.enabled();
        // Nothing can run: let "time pass" by firing the first timed
        // condvar wait, repeatedly if needed; only if no timed waiter
        // remains is this a genuine deadlock.
        while enabled.is_empty() {
            if st.live == 0 {
                st.done = true;
                st.active = None;
                self.cv.notify_all();
                return;
            }
            let timed = st.cvs.iter().find_map(|(cvid, ws)| {
                ws.iter().position(|w| w.timed).map(|i| (*cvid, i))
            });
            match timed {
                Some((cvid, i)) => {
                    let w = st.cvs.get_mut(&cvid).map(|ws| ws.remove(i));
                    if let Some(Some(w)) = w {
                        let name = st.name_of(ObjKind::Condvar, cvid);
                        st.trace.push(Step {
                            thread: w.tid,
                            op: format!("{name}.wait timed out (global stall)"),
                        });
                        self.wake_waiter(st, w, true);
                    }
                    enabled = st.enabled();
                }
                None => {
                    let msg = format!(
                        "deadlock: no runnable threads ({})",
                        st.blocked_summary()
                    );
                    self.fail_locked(st, msg);
                    return;
                }
            }
        }
        if st.decisions.len() >= st.max_steps {
            let msg = format!("step limit {} exceeded (livelock?)", st.max_steps);
            self.fail_locked(st, msg);
            return;
        }
        // Exploration order: continue the caller if it can (the
        // run-to-completion default), then the other enabled threads
        // in index order.
        let caller_enabled = enabled.contains(&caller);
        let mut ord = Vec::with_capacity(enabled.len());
        if caller_enabled {
            ord.push(caller);
        }
        ord.extend(enabled.iter().copied().filter(|&t| t != caller));
        let step = st.decisions.len();
        let pos = if step < st.prefix.len() {
            let p = st.prefix[step];
            if p >= ord.len() {
                let msg = format!(
                    "replay divergence at decision {step}: schedule wants \
                     alternative {p} but only {} are enabled (model closure \
                     must be deterministic)",
                    ord.len()
                );
                self.fail_locked(st, msg);
                return;
            }
            p
        } else {
            0
        };
        let chosen = ord[pos];
        let preemptions_before = st.preemptions;
        if caller_enabled && chosen != caller {
            st.preemptions += 1;
        }
        st.decisions.push(Decision {
            ord_len: ord.len(),
            pos,
            caller_enabled,
            preemptions_before,
        });
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Park the calling model thread until it is scheduled again (or
    /// unwind if the execution aborted).
    fn park<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecState>,
        tid: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if st.abort {
                self.bail(st);
            }
            if st.active == Some(tid) && st.threads[tid].status == Status::Runnable {
                return st;
            }
            st = self
                .cv
                // lint:allow(blocking-in-critical-section, the model scheduler parks threads by design — every shim op routes here under sched-model, and production builds delegate to std primitives)
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A visible, non-blocking operation: trace it, let the scheduler
    /// decide who runs next, park until re-chosen.
    fn op_point(&self, tid: usize, op: String) {
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        st.trace.push(Step { thread: tid, op });
        self.reschedule(&mut st, tid);
        if st.abort {
            self.bail(st);
        }
        let st = self.park(st, tid);
        drop(st);
    }

    pub(crate) fn atomic_op(&self, tid: usize, key: u64, op: &str) {
        let label = {
            let mut st = self.lock_state();
            if st.abort {
                self.bail(st);
            }
            st.name_of(ObjKind::Atomic, key)
        };
        self.op_point(tid, format!("{label}.{op}"));
    }

    pub(crate) fn mutex_lock(&self, tid: usize, mid: u64) {
        let label = {
            let mut st = self.lock_state();
            if st.abort {
                self.bail(st);
            }
            st.name_of(ObjKind::Mutex, mid)
        };
        self.op_point(tid, format!("{label}.lock"));
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        let m = st.mutexes.entry(mid).or_default();
        if m.held_by.is_none() {
            m.held_by = Some(tid);
            return;
        }
        m.waiters.push_back(tid);
        st.threads[tid].status = Status::BlockedMutex(mid);
        st.trace.push(Step { thread: tid, op: format!("{label}.blocked") });
        self.reschedule(&mut st, tid);
        if st.abort {
            self.bail(st);
        }
        let st = self.park(st, tid);
        // The grant path moved ownership to us before marking us
        // runnable; nothing further to do.
        debug_assert_eq!(st.mutexes.get(&mid).and_then(|m| m.held_by), Some(tid));
        drop(st);
    }

    /// Release `mid`, granting it to the next FIFO waiter if any.
    /// During unwind (abort teardown) the release still happens but no
    /// schedule point is taken.
    pub(crate) fn mutex_unlock(&self, tid: usize, mid: u64) {
        let mut st = self.lock_state();
        let label = st.name_of(ObjKind::Mutex, mid);
        st.trace.push(Step { thread: tid, op: format!("{label}.unlock") });
        Self::release_mutex_locked(&mut st, mid);
        if st.abort || std::thread::panicking() {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut st, tid);
        if st.abort {
            self.bail(st);
        }
        let st = self.park(st, tid);
        drop(st);
    }

    fn release_mutex_locked(st: &mut ExecState, mid: u64) {
        let m = st.mutexes.entry(mid).or_default();
        m.held_by = None;
        if let Some(next) = m.waiters.pop_front() {
            m.held_by = Some(next);
            st.threads[next].status = Status::Runnable;
        }
    }

    /// Move a condvar waiter towards running again: re-acquire its
    /// mutex if free, else queue on the mutex.
    fn wake_waiter(&self, st: &mut ExecState, w: CvWaiter, timed_out: bool) {
        st.threads[w.tid].timed_out = timed_out;
        let m = st.mutexes.entry(w.mutex).or_default();
        if m.held_by.is_none() {
            m.held_by = Some(w.tid);
            st.threads[w.tid].status = Status::Runnable;
        } else {
            m.waiters.push_back(w.tid);
            st.threads[w.tid].status = Status::BlockedMutex(w.mutex);
        }
    }

    /// Atomically release `mid`, register on `cvid`, and block.
    /// Returns true if the wait was ended by the timeout rule.
    pub(crate) fn cv_wait(&self, tid: usize, cvid: u64, mid: u64, timed: bool) -> bool {
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        let name = st.name_of(ObjKind::Condvar, cvid);
        let mname = st.name_of(ObjKind::Mutex, mid);
        let kind = if timed { "wait_timeout" } else { "wait" };
        st.trace.push(Step { thread: tid, op: format!("{name}.{kind} (releases {mname})") });
        Self::release_mutex_locked(&mut st, mid);
        st.threads[tid].status = Status::BlockedCv(cvid);
        st.threads[tid].timed_out = false;
        st.cvs.entry(cvid).or_default().push_back(CvWaiter { tid, mutex: mid, timed });
        self.reschedule(&mut st, tid);
        if st.abort {
            self.bail(st);
        }
        let st = self.park(st, tid);
        let out = st.threads[tid].timed_out;
        debug_assert_eq!(st.mutexes.get(&mid).and_then(|m| m.held_by), Some(tid));
        drop(st);
        out
    }

    pub(crate) fn cv_notify(&self, tid: usize, cvid: u64, all: bool) {
        let label = {
            let mut st = self.lock_state();
            if st.abort {
                self.bail(st);
            }
            st.name_of(ObjKind::Condvar, cvid)
        };
        let op = if all { "notify_all" } else { "notify_one" };
        self.op_point(tid, format!("{label}.{op}"));
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        loop {
            let w = st.cvs.get_mut(&cvid).and_then(|ws| ws.pop_front());
            match w {
                Some(w) => self.wake_waiter(&mut st, w, false),
                None => break,
            }
            if !all {
                break;
            }
        }
        self.cv.notify_all();
    }

    /// Register a new model thread as runnable. No schedule point is
    /// taken here: the caller must first create the backing OS thread
    /// and only then call [`Execution::spawn_point`], otherwise the
    /// scheduler could hand control to a thread that does not exist
    /// yet while the parent is parked creating it.
    pub(crate) fn register_spawn(&self, _parent: usize) -> usize {
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        let tid = st.threads.len();
        st.threads.push(ThreadInfo { status: Status::Runnable, timed_out: false });
        st.live += 1;
        tid
    }

    /// The spawn's schedule point: the child is registered and its OS
    /// thread exists, so the scheduler may now run either side.
    pub(crate) fn spawn_point(&self, parent: usize, tid: usize) {
        self.op_point(parent, format!("spawn t{tid}"));
    }

    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        self.op_point(tid, format!("join(t{target})"));
        let mut st = self.lock_state();
        if st.abort {
            self.bail(st);
        }
        if st.threads[target].status == Status::Finished {
            return;
        }
        st.threads[tid].status = Status::BlockedJoin(target);
        self.reschedule(&mut st, tid);
        if st.abort {
            self.bail(st);
        }
        let st = self.park(st, tid);
        drop(st);
    }

    pub(crate) fn fail_from_thread(&self, _tid: usize, msg: String) {
        let mut st = self.lock_state();
        self.fail_locked(&mut st, msg);
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        st.live -= 1;
        for i in 0..st.threads.len() {
            if st.threads[i].status == Status::BlockedJoin(tid) {
                st.threads[i].status = Status::Runnable;
            }
        }
        st.trace.push(Step { thread: tid, op: "exit".into() });
        if st.live == 0 {
            st.done = true;
            st.active = None;
        } else if !st.abort {
            self.reschedule(&mut st, tid);
        }
        self.cv.notify_all();
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(h);
    }

    /// Wait until this thread is scheduled for the first time. False
    /// means the execution aborted before we ever ran.
    fn wait_first_schedule(&self, tid: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.abort {
                return false;
            }
            if st.active == Some(tid) && st.threads[tid].status == Status::Runnable {
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `body` as model thread `tid` of `exec`: install the context,
/// wait to be scheduled, catch panics (assertion failures become the
/// execution's failure; AbortToken unwinds are teardown), and sign off.
pub(crate) fn run_thread_body(exec: Arc<Execution>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    if exec.wait_first_schedule(tid) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(body)) {
            if p.downcast_ref::<AbortToken>().is_none() {
                let msg = format!("t{tid} panicked: {}", payload_msg(p.as_ref()));
                exec.fail_from_thread(tid, msg);
            }
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
    exec.finish_thread(tid);
}

pub(crate) fn spawn_model_thread(exec: &Arc<Execution>, tid: usize, body: impl FnOnce() + Send + 'static) {
    let e2 = exec.clone();
    let h = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || run_thread_body(e2, tid, body))
        .expect("spawn model OS thread");
    exec.push_handle(h);
}

struct ExecOutcome {
    decisions: Vec<Decision>,
    trace: Vec<Step>,
    failure: Option<String>,
}

fn run_one<F>(cfg: &ModelConfig, prefix: &[usize], f: &Arc<F>) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new(prefix.to_vec(), cfg));
    {
        let mut st = exec.lock_state();
        st.threads.push(ThreadInfo { status: Status::Runnable, timed_out: false });
        st.live = 1;
        st.active = Some(0);
    }
    let f2 = f.clone();
    spawn_model_thread(&exec, 0, move || f2());
    {
        let mut st = exec.lock_state();
        while !(st.done || (st.abort && st.live == 0)) {
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    loop {
        let hs: Vec<_> = {
            let mut g = exec
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.drain(..).collect()
        };
        if hs.is_empty() {
            break;
        }
        for h in hs {
            let _ = h.join();
        }
    }
    let mut st = exec.lock_state();
    ExecOutcome {
        decisions: std::mem::take(&mut st.decisions),
        trace: std::mem::take(&mut st.trace),
        failure: st.failure.take(),
    }
}

/// Exhaustively explore the bounded interleaving space of `f`.
///
/// `f` is run once per schedule; it must build all shared state
/// internally, use only shim primitives for blocking, and be
/// deterministic. Returns after the first failure (DFS order is
/// deterministic, so the failure is reproducible) or when the space
/// within `cfg` is exhausted.
pub fn explore<F>(cfg: ModelConfig, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        let out = run_one(&cfg, &prefix, &f);
        executions += 1;
        if let Some(message) = out.failure {
            return Report {
                executions,
                complete: false,
                failure: Some(Failure {
                    message,
                    trace: out.trace,
                    schedule: out.decisions.iter().map(|d| d.pos).collect(),
                }),
            };
        }
        // Deepest decision with an untried sibling inside the
        // preemption budget wins (depth-first backtracking).
        let mut next: Option<Vec<usize>> = None;
        for i in (0..out.decisions.len()).rev() {
            let d = &out.decisions[i];
            let alt_cost = usize::from(d.caller_enabled);
            if d.pos + 1 < d.ord_len
                && d.preemptions_before + alt_cost <= cfg.max_preemptions
            {
                let mut p: Vec<usize> =
                    out.decisions[..i].iter().map(|x| x.pos).collect();
                p.push(d.pos + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) if executions < cfg.max_executions => prefix = p,
            Some(_) => {
                return Report { executions, complete: false, failure: None };
            }
            None => return Report { executions, complete: true, failure: None },
        }
    }
}

/// Re-run one exact execution from a recorded failure schedule.
pub fn replay<F>(cfg: ModelConfig, schedule: &[usize], f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let out = run_one(&cfg, schedule, &f);
    Report {
        executions: 1,
        complete: false,
        failure: out.failure.map(|message| Failure {
            message,
            trace: out.trace,
            schedule: out.decisions.iter().map(|d| d.pos).collect(),
        }),
    }
}

/// [`explore`] and panic with the printed schedule trace on failure —
/// the assertion form model tests use. Also fails if the bounded
/// space could not be exhausted within `cfg.max_executions`.
pub fn check<F>(name: &str, cfg: ModelConfig, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(cfg, f);
    if let Some(fail) = report.failure {
        panic!(
            "model `{name}` failed after {} execution(s)\n{fail}",
            report.executions
        );
    }
    assert!(
        report.complete,
        "model `{name}`: exploration truncated at {} executions; raise \
         max_executions or tighten the model",
        report.executions
    );
}
