//! Model-aware shim types, compiled only under `--features
//! sched-model`.
//!
//! Each type carries a real `std::sync` primitive for the data (so the
//! compiler's aliasing guarantees are never hand-rolled) plus a model
//! id. On a model thread of a live exploration every operation is
//! routed through the [`crate::model::Execution`] scheduler first;
//! off-model (ordinary tests, the daemon itself even when the feature
//! happens to be on) every operation falls straight through to `std`,
//! so behaviour is identical either way.

use crate::model::{current, fresh_obj_id, run_thread_body};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError, TryLockError,
};
use std::time::Duration;

/// Shim [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(t: T) -> Self {
        Mutex { id: fresh_obj_id(), inner: StdMutex::new(t) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex; a schedule point under the model.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            Some((exec, tid)) => {
                exec.mutex_lock(tid, self.id);
                match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard { owner: self, inner: Some(g), model: Some(tid) }),
                    Err(TryLockError::Poisoned(e)) => Err(PoisonError::new(MutexGuard {
                        owner: self,
                        inner: Some(e.into_inner()),
                        model: Some(tid),
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model granted the mutex but the std mutex is held")
                    }
                }
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { owner: self, inner: Some(g), model: None }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    owner: self,
                    inner: Some(e.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Whether a holder panicked; delegates to the inner std mutex.
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// Shim [`std::sync::MutexGuard`]. `model` records the owning model
/// thread when the guard was taken under the scheduler, so drops and
/// condvar waits release at the model level too.
pub struct MutexGuard<'a, T: ?Sized> {
    owner: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<usize>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Disassemble the guard without running its Drop (which would do
    /// a model-level release — condvar waits must instead release
    /// atomically with waiter registration inside `cv_wait`). The std
    /// guard is returned still held.
    fn into_std(mut self) -> (&'a Mutex<T>, StdMutexGuard<'a, T>, Option<usize>) {
        let g = self.inner.take().expect("guard active");
        let model = self.model.take();
        let owner = self.owner;
        std::mem::forget(self);
        (owner, g, model)
    }

    fn reacquired(owner: &'a Mutex<T>, model: Option<usize>) -> LockResult<Self> {
        match owner.inner.try_lock() {
            Ok(g) => Ok(MutexGuard { owner, inner: Some(g), model }),
            Err(TryLockError::Poisoned(e)) => Err(PoisonError::new(MutexGuard {
                owner,
                inner: Some(e.into_inner()),
                model,
            })),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model granted the mutex but the std mutex is held")
            }
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard before the model-level release so the
        // next holder's `try_lock` cannot race a still-held guard.
        self.inner = None;
        if let Some(tid) = self.model.take() {
            if let Some((exec, _)) = current() {
                exec.mutex_unlock(tid, self.owner.id);
            }
        }
    }
}

/// Result of a timed wait; mirrors [`std::sync::WaitTimeoutResult`]
/// (which has no public constructor, hence the local type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Shim [`std::sync::Condvar`].
pub struct Condvar {
    id: u64,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar { id: fresh_obj_id(), inner: StdCondvar::new() }
    }

    /// Blocks until notified; a schedule point under the model.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (current(), guard.model) {
            (Some((exec, tid)), Some(_)) => {
                let (owner, g, model) = guard.into_std();
                drop(g);
                exec.cv_wait(tid, self.id, owner.id, false);
                MutexGuard::reacquired(owner, model)
            }
            _ => {
                // Off-model: hand the still-held std guard straight to
                // the real condvar — semantics identical to std.
                let (owner, g, _) = guard.into_std();
                match self.inner.wait(g) {
                    Ok(g) => Ok(MutexGuard { owner, inner: Some(g), model: None }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        owner,
                        inner: Some(e.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    /// Blocks until notified or the timeout elapses. Under the model
    /// the duration is not consulted: the wait "times out" exactly
    /// when no other thread can run (the model's notion of time
    /// passing), keeping exploration finite.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match (current(), guard.model) {
            (Some((exec, tid)), Some(_)) => {
                let (owner, g, model) = guard.into_std();
                drop(g);
                let timed_out = exec.cv_wait(tid, self.id, owner.id, true);
                match MutexGuard::reacquired(owner, model) {
                    Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                    Err(e) => Err(PoisonError::new((
                        e.into_inner(),
                        WaitTimeoutResult(timed_out),
                    ))),
                }
            }
            _ => {
                let (owner, g, _) = guard.into_std();
                let waited = self.inner.wait_timeout(g, dur);
                match waited {
                    Ok((g, r)) => Ok((
                        MutexGuard { owner, inner: Some(g), model: None },
                        WaitTimeoutResult(r.timed_out()),
                    )),
                    Err(e) => {
                        let (g, r) = e.into_inner();
                        Err(PoisonError::new((
                            MutexGuard { owner, inner: Some(g), model: None },
                            WaitTimeoutResult(r.timed_out()),
                        )))
                    }
                }
            }
        }
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        match current() {
            Some((exec, tid)) => exec.cv_notify(tid, self.id, false),
            None => self.inner.notify_one(),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match current() {
            Some((exec, tid)) => exec.cv_notify(tid, self.id, true),
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

fn atomic_point(this: *const (), op: &str) {
    if let Some((exec, tid)) = current() {
        exec.atomic_op(tid, this as u64, op);
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $Name:ident, $Std:ident, $T:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $Name {
            inner: std::sync::atomic::$Std,
        }

        impl $Name {
            /// Creates a new atomic.
            pub const fn new(v: $T) -> Self {
                Self { inner: std::sync::atomic::$Std::new(v) }
            }

            /// Atomic load; a schedule point under the model.
            pub fn load(&self, order: Ordering) -> $T {
                atomic_point(self as *const _ as *const (), "load");
                self.inner.load(order)
            }

            /// Atomic store; a schedule point under the model.
            pub fn store(&self, v: $T, order: Ordering) {
                atomic_point(self as *const _ as *const (), "store");
                self.inner.store(v, order)
            }

            /// Atomic swap; a schedule point under the model.
            pub fn swap(&self, v: $T, order: Ordering) -> $T {
                atomic_point(self as *const _ as *const (), "swap");
                self.inner.swap(v, order)
            }

            /// Atomic add; a schedule point under the model.
            pub fn fetch_add(&self, v: $T, order: Ordering) -> $T {
                atomic_point(self as *const _ as *const (), "fetch_add");
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract; a schedule point under the model.
            pub fn fetch_sub(&self, v: $T, order: Ordering) -> $T {
                atomic_point(self as *const _ as *const (), "fetch_sub");
                self.inner.fetch_sub(v, order)
            }

            /// Atomic max; a schedule point under the model.
            pub fn fetch_max(&self, v: $T, order: Ordering) -> $T {
                atomic_point(self as *const _ as *const (), "fetch_max");
                self.inner.fetch_max(v, order)
            }

            /// Atomic read-modify-write; one schedule point under the
            /// model (the RMW itself is indivisible, as on hardware).
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$T, $T>
            where
                F: FnMut($T) -> Option<$T>,
            {
                atomic_point(self as *const _ as *const (), "fetch_update");
                self.inner.fetch_update(set_order, fetch_order, f)
            }

            /// Atomic compare-exchange; a schedule point under the model.
            pub fn compare_exchange(
                &self,
                currentv: $T,
                new: $T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$T, $T> {
                atomic_point(self as *const _ as *const (), "compare_exchange");
                self.inner.compare_exchange(currentv, new, success, failure)
            }
        }

        impl fmt::Debug for $Name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner, f)
            }
        }
    };
}

int_atomic!(
    /// Shim [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);
int_atomic!(
    /// Shim [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);

/// Shim [`std::sync::atomic::AtomicBool`].
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag.
    pub const fn new(v: bool) -> Self {
        Self { inner: std::sync::atomic::AtomicBool::new(v) }
    }

    /// Atomic load; a schedule point under the model.
    pub fn load(&self, order: Ordering) -> bool {
        atomic_point(self as *const _ as *const (), "load");
        self.inner.load(order)
    }

    /// Atomic store; a schedule point under the model.
    pub fn store(&self, v: bool, order: Ordering) {
        atomic_point(self as *const _ as *const (), "store");
        self.inner.store(v, order)
    }

    /// Atomic swap; a schedule point under the model.
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        atomic_point(self as *const _ as *const (), "swap");
        self.inner.swap(v, order)
    }

    /// Atomic OR; a schedule point under the model.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        atomic_point(self as *const _ as *const (), "fetch_or");
        self.inner.fetch_or(v, order)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Shim `std::thread` surface.
pub mod thread {
    use super::*;
    use std::sync::Arc;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<crate::model::Execution>,
            tid: usize,
            result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Shim [`std::thread::JoinHandle`].
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish; a schedule point under the
        /// model.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, tid, result } => {
                    let me = current()
                        .expect("model JoinHandle joined from outside the model")
                        .1;
                    exec.join_thread(me, tid);
                    let r = result
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                    match r {
                        Some(r) => r,
                        // The child unwound during abort teardown and
                        // never produced a value; the exploration is
                        // already failing, so any payload works.
                        None => Err(Box::new("model thread aborted")),
                    }
                }
            }
        }
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    /// Shim [`std::thread::spawn`]: a model thread when called from a
    /// model thread, a real OS thread otherwise.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            None => JoinHandle(Inner::Std(std::thread::spawn(f))),
            Some((exec, parent)) => {
                let tid = exec.register_spawn(parent);
                let result = Arc::new(StdMutex::new(None));
                let r2 = result.clone();
                let e2 = exec.clone();
                let h = std::thread::Builder::new()
                    .name(format!("model-t{tid}"))
                    .spawn(move || {
                        run_thread_body(e2, tid, move || {
                            // `run_thread_body` catches AbortToken and
                            // reports genuine panics; storing the
                            // result here only happens on success.
                            let v = f();
                            *r2.lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(Ok(v));
                        });
                    })
                    .expect("spawn model OS thread");
                exec.push_handle(h);
                exec.spawn_point(parent, tid);
                JoinHandle(Inner::Model { exec, tid, result })
            }
        }
    }
}
