//! `reqisc-sched`: sync shims + a deterministic interleaving explorer.
//!
//! The service pipeline's hardest invariants (cross-ring cancellation,
//! last-waiter-out, coalescing, shutdown drain) are concurrency
//! invariants, and on a single-core container the OS scheduler only
//! ever exercises a handful of interleavings. This crate closes that
//! gap with a vendored, dependency-free loom-style model checker:
//!
//! * In **normal builds** the [`sync`] and [`thread`] modules are plain
//!   re-exports of `std::sync` / `std::thread` — zero cost, identical
//!   semantics.
//! * Under **`--features sched-model`** the same names resolve to shim
//!   types that route every mutex acquire/release, condvar
//!   wait/notify, atomic op and thread spawn through a cooperative
//!   scheduler. [`explore`] then runs a closure repeatedly, one thread
//!   at a time, DFS-enumerating every interleaving reachable within a
//!   configurable preemption bound. Assertion failures and deadlocks
//!   (including lost wakeups) are reported with the exact schedule
//!   that produced them, and [`replay`] re-runs that schedule
//!   deterministically.
//!
//! Model closures must create all shared state *inside* the closure
//! (each execution starts fresh), use only the shim primitives for
//! cross-thread blocking (a raw `mpsc::recv` or `std` mutex would
//! block the scheduler itself), and be deterministic: no randomness,
//! no control flow decided by wall-clock time.
//!
//! The shim intentionally mirrors the subset of `std::sync` the
//! service stack uses: `Mutex`, `Condvar`, `AtomicU64/Usize/Bool`,
//! `thread::spawn`/`JoinHandle`. The `reqisc-lint` `sync-shim` rule
//! keeps the service stack on this surface so every future sync site
//! stays model-checkable by construction.

#[cfg(feature = "sched-model")]
pub mod model;
#[cfg(feature = "sched-model")]
mod shim;

#[cfg(feature = "sched-model")]
pub use model::{check, explore, replay, Failure, ModelConfig, Report, Step};

/// Shimmed `std::sync` subset: `Mutex`, `Condvar`, atomics, plus the
/// poisoning-tolerant helpers the service request path relies on.
///
/// A panicking compile job is already isolated by `catch_unwind` in
/// the worker loop, but any *other* panic while a service lock is held
/// poisons the mutex — and with plain `.expect("poisoned")` every
/// later request touching that lock panics too, silently killing
/// worker and connection threads until the daemon is a zombie.
/// `lock_recover` / `wait_recover` / `wait_timeout_recover` treat
/// poisoning as recoverable instead; this is sound wherever the
/// guarded structure stays structurally valid at any panic point
/// (plain collections, flags), which the service audits per lock.
pub mod sync {
    #[cfg(feature = "sched-model")]
    pub use crate::shim::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    #[cfg(not(feature = "sched-model"))]
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    pub use std::sync::{LockResult, PoisonError};

    /// Shimmed `std::sync::atomic` subset.
    pub mod atomic {
        #[cfg(feature = "sched-model")]
        pub use crate::shim::{AtomicBool, AtomicU64, AtomicUsize};
        #[cfg(not(feature = "sched-model"))]
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

        pub use std::sync::atomic::Ordering;
    }

    /// Extension trait: acquire a [`Mutex`], recovering the guard from
    /// a poisoned lock instead of panicking.
    pub trait LockRecover<T> {
        /// Locks, treating poisoning as recoverable.
        fn lock_recover(&self) -> MutexGuard<'_, T>;
    }

    impl<T> LockRecover<T> for Mutex<T> {
        fn lock_recover(&self) -> MutexGuard<'_, T> {
            self.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// [`Condvar::wait`] with the same poisoning tolerance.
    pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// [`Condvar::wait_timeout`] with the same poisoning tolerance.
    ///
    /// Under the model scheduler the duration is not consulted: a
    /// timed wait "times out" exactly when no other thread can run
    /// (the model's notion of time passing), which keeps exploration
    /// finite while still letting shutdown paths that lean on
    /// timeouts make progress.
    pub fn wait_timeout_recover<'a, T>(
        cv: &Condvar,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        cv.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shimmed `std::thread` subset (`spawn` + `JoinHandle`).
pub mod thread {
    #[cfg(feature = "sched-model")]
    pub use crate::shim::thread::{spawn, JoinHandle};
    #[cfg(not(feature = "sched-model"))]
    pub use std::thread::{spawn, JoinHandle};
}

#[cfg(test)]
mod tests {
    use super::sync::{wait_timeout_recover, Condvar, LockRecover, Mutex};
    use std::time::Duration;

    // These run in BOTH modes: in passthrough builds they pin the
    // re-export surface, under `sched-model` (outside any exploration)
    // they pin the shim's fallback-to-real-sync behaviour.
    #[test]
    fn lock_recover_roundtrip() {
        let m = Mutex::new(3u32);
        *m.lock_recover() += 1;
        assert_eq!(*m.lock_recover(), 4);
    }

    #[test]
    fn wait_timeout_recover_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock_recover();
        let (_g, res) = wait_timeout_recover(&cv, g, Duration::from_millis(1));
        assert!(res.timed_out(), "nobody notified; the wait must time out");
    }
}
