//! Explorer self-tests: the checker must pass correct models across
//! all bounded interleavings AND find the classic races in broken
//! ones, with replayable schedules. Run with `--features sched-model`;
//! without the feature this file compiles to nothing.
#![cfg(feature = "sched-model")]

use reqisc_sched::sync::{wait_recover, Condvar, LockRecover, Mutex};
use reqisc_sched::sync::atomic::{AtomicU64, Ordering};
use reqisc_sched::{check, explore, replay, thread, ModelConfig};
use std::sync::Arc;

fn cfg() -> ModelConfig {
    ModelConfig::default()
}

#[test]
fn mutex_counter_is_conserved() {
    check("mutex-counter", cfg(), || {
        let n = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || *n.lock_recover() += 1)
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*n.lock_recover(), 2);
    });
}

#[test]
fn atomic_rmw_is_conserved() {
    check("atomic-rmw", cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// The textbook load/store race: two threads read-modify-write a
/// shared counter WITHOUT an indivisible RMW. Some interleaving loses
/// an increment, and the explorer must find it.
#[test]
fn explorer_finds_load_store_race() {
    let report = explore(cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost increment");
    });
    let failure = report.failure.expect("the lost increment must be found");
    assert!(failure.message.contains("lost increment"), "got: {}", failure.message);
    assert!(!failure.trace.is_empty(), "failure must carry a schedule trace");
    assert!(!failure.schedule.is_empty(), "failure must carry a replay schedule");
}

/// Replaying a recorded failure schedule reproduces the same failure
/// deterministically.
#[test]
fn failure_schedules_replay_deterministically() {
    let model = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let h = thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost increment");
    };
    let found = explore(cfg(), model).failure.expect("race must be found");
    let again = replay(cfg(), &found.schedule, model)
        .failure
        .expect("replay of the failing schedule must fail again");
    assert_eq!(found.message, again.message);
    assert_eq!(found.trace.len(), again.trace.len());
    for (a, b) in found.trace.iter().zip(again.trace.iter()) {
        assert_eq!(a.thread, b.thread);
        assert_eq!(a.op, b.op);
    }
}

/// Correct condvar handshake: predicate under the mutex, notify after
/// the flag flip. Must hold in every interleaving — no lost wakeup.
#[test]
fn condvar_handshake_never_loses_wakeup() {
    check("condvar-handshake", cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock_recover();
            while !*ready {
                ready = wait_recover(cv, ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock_recover() = true;
        cv.notify_one();
        waiter.join().unwrap();
    });
}

/// The seeded bug the ISSUE demands: a deliberately dropped
/// `notify_one`. The waiter can check the flag before the setter
/// flips it, then wait forever — a deadlock the explorer must report
/// with a non-empty schedule trace.
#[test]
fn dropped_notify_is_detected_as_lost_wakeup() {
    let report = explore(cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock_recover();
            while !*ready {
                ready = wait_recover(cv, ready);
            }
        });
        let (m, _cv) = &*pair;
        *m.lock_recover() = true;
        // BUG (deliberate): no notify_one() here.
        waiter.join().unwrap();
    });
    let failure = report.failure.expect("lost wakeup must be detected");
    assert!(
        failure.message.contains("deadlock"),
        "lost wakeup should surface as a deadlock, got: {}",
        failure.message
    );
    assert!(failure.message.contains("waiting on condvar"), "got: {}", failure.message);
    assert!(!failure.trace.is_empty());
    // The printed trace names the exact schedule; replaying it
    // reproduces the deadlock.
    let again = replay(cfg(), &failure.schedule, || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock_recover();
            while !*ready {
                ready = wait_recover(cv, ready);
            }
        });
        let (m, _cv) = &*pair;
        *m.lock_recover() = true;
        waiter.join().unwrap();
    });
    assert!(again.failure.expect("replay fails").message.contains("deadlock"));
}

/// Timed waits end when the model globally stalls ("time passes"), so
/// timer-style loops cannot deadlock an exploration.
#[test]
fn wait_timeout_fires_on_global_stall() {
    check("wait-timeout-stall", cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let timer = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut stopped = m.lock_recover();
            let mut fired = 0u32;
            while !*stopped {
                let (g, _res) = reqisc_sched::sync::wait_timeout_recover(
                    cv,
                    stopped,
                    std::time::Duration::from_millis(50),
                );
                stopped = g;
                fired += 1;
                assert!(fired < 100, "timer loop must terminate");
            }
        });
        let (m, cv) = &*pair;
        *m.lock_recover() = true;
        cv.notify_all();
        timer.join().unwrap();
    });
}

/// The preemption bound is a real lever: bound 0 explores only
/// run-to-completion schedules (one per yield structure), larger
/// bounds strictly widen the space.
#[test]
fn preemption_bound_scales_exploration() {
    let model = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        h.join().unwrap();
    };
    let r0 = explore(ModelConfig { max_preemptions: 0, ..ModelConfig::default() }, model);
    let r2 = explore(ModelConfig { max_preemptions: 2, ..ModelConfig::default() }, model);
    assert!(r0.failure.is_none() && r2.failure.is_none());
    assert!(r0.complete && r2.complete);
    assert!(
        r0.executions < r2.executions,
        "bound 0 ({} execs) must explore fewer schedules than bound 2 ({})",
        r0.executions,
        r2.executions
    );
}
