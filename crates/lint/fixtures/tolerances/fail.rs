pub fn converged(residual: f64) -> bool {
    residual.abs() < 1e-9
}
