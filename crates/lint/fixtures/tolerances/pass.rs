/// Named threshold: `const` definitions are where tolerances belong.
pub const EPS: f64 = 1e-9;

pub fn converged(residual: f64) -> bool {
    residual.abs() < EPS
}

pub fn prototype(x: f64) -> bool {
    // lint:allow(tolerance-literal, prototype threshold pending calibration)
    x > 1e-6
}
