// lint:protocol-begin(publish)
pub fn forgot() {}

// lint:protocol-begin(gc)
pub fn wrong_kind() {}
// lint:protocol-end(gc)
