//! Declared a protocol-file but the region markers were deleted: both
//! kinds are reported missing (the rule cannot be disabled by accident).
pub fn nothing() {}
