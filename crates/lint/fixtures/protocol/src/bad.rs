//! Broken publish/probe paths: every per-event deny the rule can emit.
use std::sync::atomic::{AtomicU64, Ordering};

// lint:protocol-begin(publish)
pub fn publish_broken(buf: &mut [u8], commit: &AtomicU64, index: &AtomicU64) {
    let _ = index.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    commit.store(1, Ordering::Release);
    write_bytes_in(buf, 0);
    commit.store(2, Ordering::Relaxed);
}
// lint:protocol-end(publish)

// lint:protocol-begin(probe)
pub fn probe_broken(buf: &[u8], commit: &AtomicU64) -> u8 {
    let early = copy_out(buf, 0);
    if commit.load(Ordering::Relaxed) == 0 {
        return early;
    }
    copy_out(buf, 1)
}
// lint:protocol-end(probe)

fn write_bytes_in(_buf: &mut [u8], _at: usize) {}
fn copy_out(_buf: &[u8], _at: usize) -> u8 {
    0
}
