//! A correct publish/probe pair (the shmem segment's shape in miniature).
use std::sync::atomic::{AtomicU64, Ordering};

pub fn write_bytes_in(_buf: &mut [u8], _at: usize) {}
pub fn copy_out(_buf: &[u8], _at: usize) -> u8 {
    0
}

// lint:protocol-begin(publish)
pub fn publish(buf: &mut [u8], commit: &AtomicU64, index: &AtomicU64) {
    write_bytes_in(buf, 0);
    commit.store(1, Ordering::Release);
    let _ = index.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
}
// lint:protocol-end(publish)

// lint:protocol-begin(probe)
pub fn probe(buf: &[u8], commit: &AtomicU64, index: &AtomicU64) -> u8 {
    let _slot = index.load(Ordering::Acquire);
    if commit.load(Ordering::Acquire) == 0 {
        return 0;
    }
    copy_out(buf, 0)
}
// lint:protocol-end(probe)
