pub struct Knob {
    pub name: &'static str,
    pub doc: &'static str,
}

pub const GOOD: Knob = Knob { name: "REQISC_GOOD", doc: "a documented knob" };
pub const NAKED: Knob = Knob { name: "REQISC_NAKED", doc: "" };
pub const DUP: Knob = Knob { name: "REQISC_GOOD", doc: "duplicate declaration" };
