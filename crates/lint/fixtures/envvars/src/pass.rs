pub fn mentions() -> &'static str {
    // Prose *mentioning* a knob inside a longer string is not a declaration.
    "set REQISC_GOOD=1 to enable"
}
