pub fn rogue() -> Option<String> {
    std::env::var("REQISC_ROGUE").ok()
}
