pub fn encode(value: u32) -> [u8; 4] {
    value.to_le_bytes()
}

pub fn decode(bytes: [u8; 4]) -> u32 {
    u32::from_le_bytes(bytes)
}
