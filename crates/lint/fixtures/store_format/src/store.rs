pub const STORE_FORMAT_VERSION: u32 = 1;
pub const SNAP_TOL: f64 = 1e-8;
