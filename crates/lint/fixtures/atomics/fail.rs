use std::sync::atomic::{AtomicUsize, Ordering};

pub static HITS: AtomicUsize = AtomicUsize::new(0);
pub static READY: AtomicUsize = AtomicUsize::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::SeqCst); // counter spelled with a full fence
}

pub fn publish() {
    READY.store(1, Ordering::Release); // no Acquire side anywhere
}
