use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub static DONE: AtomicBool = AtomicBool::new(false);
pub static TICKS: AtomicUsize = AtomicUsize::new(0);

pub fn set_done() {
    DONE.store(true, Ordering::Release);
}

pub fn is_done() -> bool {
    DONE.load(Ordering::Acquire)
}

pub fn tick() {
    TICKS.fetch_add(1, Ordering::Relaxed);
}
