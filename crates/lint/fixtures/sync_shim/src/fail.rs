use std::sync::Mutex;
use std::sync::{Arc, Condvar};
use std::sync::atomic::AtomicU64;

pub fn spawn_worker(m: Arc<Mutex<u32>>, cv: Condvar, n: AtomicU64) {
    std::thread::spawn(move || drop((m, cv, n)));
}
