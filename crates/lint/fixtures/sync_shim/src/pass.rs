// Arc / mpsc / OnceLock carry no blocking the model scheduler must
// interpose on; scoped helper threads and sleeps are likewise allowed.
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

pub fn scoped(tx: mpsc::Sender<u32>, cell: Arc<OnceLock<u32>>) {
    std::thread::scope(|_s| {
        let _ = tx.send(*cell.get_or_init(|| 1));
    });
    std::thread::sleep(std::time::Duration::from_millis(1));
}

// lint:allow(sync-shim, exercising the escape hatch)
pub fn raw_handle() -> *const std::sync::Mutex<u32> { std::ptr::null() }

#[cfg(test)]
mod tests {
    use std::sync::Mutex; // test code never runs under the model

    #[test]
    fn raw_primitives_are_fine_in_tests() {
        let m = Mutex::new(1);
        let h = std::thread::spawn(move || *m.lock().unwrap());
        assert_eq!(h.join().unwrap(), 1);
    }
}
