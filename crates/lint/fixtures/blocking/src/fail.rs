//! Blocking work under the inflight lock: one case per category.
use std::sync::{Condvar, Mutex};

fn fetch_config() -> std::io::Result<Vec<u8>> {
    std::fs::read("config.bin")
}

pub fn direct_io(m: &Mutex<u32>) {
    let _g = m.lock().unwrap();
    let _ = std::fs::read("state.bin");
}

pub fn via_helper(m: &Mutex<u32>) {
    let _g = m.lock().unwrap();
    let _ = fetch_config();
}

pub fn wrong_condvar(m: &Mutex<u32>, qcv: &Condvar) {
    let g = m.lock().unwrap();
    let _g = qcv.wait(g).unwrap();
}

pub fn solver_under_lock(m: &Mutex<u32>) {
    let _g = m.lock().unwrap();
    solve_all();
}

fn solve_all() {}
