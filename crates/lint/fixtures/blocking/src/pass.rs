//! The same shapes, held correctly: no findings.
use std::sync::{Condvar, Mutex};

pub fn io_after_release(m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    drop(g);
    let _ = std::fs::read("state.bin");
}

pub fn own_condvar(m: &Mutex<u32>, icv: &Condvar) {
    let g = m.lock().unwrap();
    let _g = icv.wait(g).unwrap();
}

pub fn not_a_lock(other: &Mutex<u32>) {
    let _g = other.lock().unwrap();
    let _ = std::fs::read("state.bin");
}

pub fn ordinary_lock(q: &Mutex<u32>) {
    let _g = q.lock().unwrap();
    let _ = std::fs::read("state.bin");
}
