use std::sync::Mutex;

pub fn ordered(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let held_a = a.lock().unwrap();
    let held_b = b.lock().unwrap(); // lock_b under lock_a: declared order
    *held_a + *held_b
}

pub fn released_early(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = {
        let held_a = a.lock().unwrap();
        let v = *held_a;
        drop(held_a); // lock_a released before lock_b is taken
        v
    };
    x + *b.lock().unwrap()
}
