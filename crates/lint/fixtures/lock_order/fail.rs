use std::sync::Mutex;

pub fn inverted(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let held_b = b.lock().unwrap();
    let held_a = a.lock().unwrap(); // inversion of `lock_a < lock_b`
    *held_a + *held_b
}

pub fn twice(a: &Mutex<u32>) -> u32 {
    let first = a.lock().unwrap();
    let second = a.lock().unwrap(); // self-deadlock on `lock_a`
    *first + *second
}
