pub fn handle(values: &[u32]) -> u32 {
    deep(values)
}

fn deep(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    let labeled = values.last().expect("nonempty");
    first + labeled + values[0]
}
