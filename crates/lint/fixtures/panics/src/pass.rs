pub fn unreached(values: &[u32]) -> u32 {
    values[0] // not reachable from `handle`: out of the rule's scope
}

pub fn graceful(values: &[u32]) -> Option<u32> {
    values.first().copied()
}
