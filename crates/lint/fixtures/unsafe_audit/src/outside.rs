pub fn sneaky(p: *const u8) -> u8 {
    // SAFETY: irrelevant — this file is outside every unsafe-scope.
    unsafe { *p }
}
