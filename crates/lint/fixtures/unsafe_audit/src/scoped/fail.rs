pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

// SAFETY: a justification with code between it and the site is detached.
pub fn detached(p: *const u8) -> u8 {
    let q = p;
    unsafe { *q }
}
