pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

pub fn read_justified_far(p: *const u8) -> u8 {
    // SAFETY: a two-line justification still attaches — only comment
    // lines sit between it and the unsafe block below.
    unsafe { *p }
}
