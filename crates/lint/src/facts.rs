//! Per-file fact extraction: the bridge between the raw token stream and
//! the cross-file rules. Each [`SourceFile`] carries its tokens plus
//! pre-digested facts — function spans and call sites, lock-acquisition
//! events with approximate guard scopes, atomic-ordering sites, panic
//! sites (`unwrap`/`expect`/indexing), comparison-adjacent float
//! literals, `REQISC_*` string literals, `unsafe` sites, condvar waits,
//! and built-in blocking-I/O sites — and the comment-borne annotations
//! (`lint:allow`, `lint:allow-file`, store-surface markers, `// SAFETY:`
//! justifications, and `lint:protocol-begin/end` regions).

use crate::lexer::{lex, Comment, TokKind, Token};
use std::collections::HashMap;

/// How a file participates in the analysis (decided from its path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Production source (`src/`).
    Src,
    /// Integration tests (`tests/` directory).
    Test,
    /// Examples.
    Example,
    /// Criterion benches.
    Bench,
}

/// One extracted function: name, body token range, line.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`.
    pub body_start: usize,
    /// Token index of the body's matching `}` (exclusive range end).
    pub body_end: usize,
}

/// Style of a lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStyle {
    /// Bound to a `let` guard: held to end of enclosing function, or to
    /// an explicit `drop(guard)` call.
    Guard,
    /// A temporary: held to the end of the statement (or through the
    /// block, when the statement opens one — `for`/`if let` headers).
    Temp,
}

/// One lock acquisition event inside a function.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Lock class (after config mapping) — `None` when the receiver name
    /// is mapped to "ignore".
    pub class: String,
    /// Receiver name as written (pre-mapping), for diagnostics.
    pub receiver: String,
    /// Line of the `.lock()`/`.read()`/`.write()` call.
    pub line: u32,
    /// Token index of the method name.
    pub pos: usize,
    /// Guard or temporary.
    pub style: LockStyle,
    /// Token index where the hold ends (exclusive).
    pub held_until: usize,
}

/// One call site inside a function.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Callee name (bare; method and free calls alike).
    pub name: String,
    /// Line.
    pub line: u32,
    /// Token index of the callee name.
    pub pos: usize,
}

/// One atomic-ordering site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Receiver field name (best effort).
    pub field: String,
    /// Atomic method (`load`, `store`, `fetch_add`, `swap`, …).
    pub method: String,
    /// Ordering idents found among the call's arguments
    /// (`SeqCst`/`Acquire`/`Release`/`AcqRel`/`Relaxed`).
    pub orderings: Vec<String>,
    /// Line.
    pub line: u32,
    /// Token index of the method name (orders sites within a file).
    pub pos: usize,
}

/// What the `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe impl …`.
    Impl,
    /// `unsafe fn …`.
    Fn,
    /// `unsafe extern …`.
    Extern,
    /// Anything else (trait bounds, pointers-to-unsafe-fn, …).
    Other,
}

/// One `unsafe` keyword site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Kind.
    pub kind: UnsafeKind,
    /// Line of the `unsafe` keyword.
    pub line: u32,
}

/// One condvar-wait site inside a function: `.wait()`/`.wait_while(…)`/
/// `.wait_timeout(…)` method calls, plus the sched shim's free-function
/// `wait_recover(cv, guard)` / `wait_timeout_recover(cv, guard, dur)`
/// forms (the condvar is the first argument there).
#[derive(Debug, Clone)]
pub struct WaitEvent {
    /// Condvar receiver/argument name as written.
    pub condvar: String,
    /// Line.
    pub line: u32,
    /// Token index of the wait method/function name.
    pub pos: usize,
}

/// One built-in blocking-I/O site: a `std::fs`/`std::net`/
/// `std::os::unix::net` path, or a `File::open(…)`-style call on a known
/// I/O type.
#[derive(Debug, Clone)]
pub struct BlockIoEvent {
    /// What was matched (`std::fs`, `File::open`, …), for diagnostics.
    pub what: String,
    /// Line.
    pub line: u32,
    /// Token index.
    pub pos: usize,
}

/// Kind of panic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect("…")` with a string-literal message (the byte-arg
    /// `expect` method of the JSON parser is not a panic site).
    Expect,
    /// Direct `x[…]` indexing.
    Index,
}

/// One panic site with the function it lives in.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Kind.
    pub kind: PanicKind,
    /// Line.
    pub line: u32,
    /// Index of the function (into [`SourceFile::fns`]) containing it.
    pub fn_idx: usize,
}

/// One comparison-adjacent `1e-N`-style float literal.
#[derive(Debug, Clone)]
pub struct TolSite {
    /// Literal text.
    pub literal: String,
    /// Line.
    pub line: u32,
    /// True when the literal is the value of a `const`/`static` item.
    pub in_const_def: bool,
}

/// One `REQISC_*` string literal.
#[derive(Debug, Clone)]
pub struct EnvLit {
    /// The literal's full text.
    pub text: String,
    /// Line.
    pub line: u32,
    /// Token index.
    pub pos: usize,
}

/// A fully fact-extracted source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Path-derived kind.
    pub kind: FileKind,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Functions in token order.
    pub fns: Vec<FnFact>,
    /// Lock events per function index.
    pub locks: Vec<(usize, LockEvent)>,
    /// Call events per function index.
    pub calls: Vec<(usize, CallEvent)>,
    /// Atomic sites.
    pub atomics: Vec<AtomicSite>,
    /// `unsafe` sites.
    pub unsafes: Vec<UnsafeSite>,
    /// Condvar-wait events per function index.
    pub waits: Vec<(usize, WaitEvent)>,
    /// Built-in blocking-I/O events per function index.
    pub blocking_ops: Vec<(usize, BlockIoEvent)>,
    /// Panic sites.
    pub panics: Vec<PanicSite>,
    /// Tolerance-literal sites.
    pub tols: Vec<TolSite>,
    /// `REQISC_*` string literals.
    pub env_lits: Vec<EnvLit>,
    /// Line-level suppressions: line → [(rule, reason)]. A suppression on
    /// line L covers diagnostics on L and L+1 (comment-above style).
    pub allows: HashMap<u32, Vec<(String, String)>>,
    /// File-level suppressions: [(rule, reason)].
    pub file_allows: Vec<(String, String)>,
    /// `lint:store-surface-begin/end` line ranges (inclusive).
    pub surface_regions: Vec<(u32, u32)>,
    /// `lint:protocol-begin(kind)/end(kind)` regions as
    /// `(kind, begin-line, end-line)`. An unmatched begin records
    /// `u32::MAX` as its end so the rule can flag it instead of the
    /// region silently vanishing.
    pub protocol_regions: Vec<(String, u32, u32)>,
    /// Lines of comments carrying a `SAFETY:` justification.
    pub safety_lines: Vec<u32>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Extracts every fact from one file.
    pub fn extract(rel: String, src: &str) -> SourceFile {
        let kind = classify(&rel);
        let lexed = lex(src);
        let scan = scan_comments(&lexed.comments);
        let tokens = lexed.tokens;
        let fns = extract_fns(&tokens);
        let test_regions = extract_test_regions(&tokens);
        let mut f = SourceFile {
            rel,
            kind,
            fns,
            locks: Vec::new(),
            calls: Vec::new(),
            atomics: Vec::new(),
            unsafes: Vec::new(),
            waits: Vec::new(),
            blocking_ops: Vec::new(),
            panics: Vec::new(),
            tols: Vec::new(),
            env_lits: Vec::new(),
            allows: scan.allows,
            file_allows: scan.file_allows,
            surface_regions: scan.surface_regions,
            protocol_regions: scan.protocol_regions,
            safety_lines: scan.safety_lines,
            test_regions,
            tokens,
        };
        extract_events(&mut f);
        f
    }

    /// True when `line` falls inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// True when a `lint:allow(rule, …)` covers `line` — on the line
    /// itself or the line above (comment-above style) — or a file-level
    /// `lint:allow-file` names the rule. Interprocedural rules also use
    /// this at *fact* sites: an allow on a blocking operation clears it
    /// from every transitive summary, not just from diagnostics reported
    /// at that line.
    pub fn allows_rule_at(&self, rule: &str, line: u32) -> bool {
        if self.file_allows.iter().any(|(r, _)| r == rule) {
            return true;
        }
        for probe in [line, line.saturating_sub(1)] {
            if let Some(list) = self.allows.get(&probe) {
                if list.iter().any(|(r, _)| r == rule) {
                    return true;
                }
            }
        }
        false
    }

    /// The function index containing token position `pos` (functions are
    /// non-overlapping at the granularity the rules care about; nested
    /// items resolve to the innermost).
    pub fn fn_at(&self, pos: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if pos > f.body_start && pos < f.body_end {
                best = Some(match best {
                    Some(j) if self.fns[j].body_start >= f.body_start => j,
                    _ => i,
                });
            }
        }
        best
    }
}

fn classify(rel: &str) -> FileKind {
    if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileKind::Test
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.contains("/benches/") || rel.starts_with("benches/") {
        FileKind::Bench
    } else {
        FileKind::Src
    }
}

/// Everything the comment stream yields.
struct CommentScan {
    allows: HashMap<u32, Vec<(String, String)>>,
    file_allows: Vec<(String, String)>,
    surface_regions: Vec<(u32, u32)>,
    protocol_regions: Vec<(String, u32, u32)>,
    safety_lines: Vec<u32>,
}

/// Parses `lint:allow(rule, reason)`, `lint:allow-file(rule, reason)`,
/// `lint:store-surface-begin/end`, `lint:protocol-begin(kind)/end(kind)`,
/// and `SAFETY:` justifications out of the comment stream.
fn scan_comments(comments: &[Comment]) -> CommentScan {
    let mut allows: HashMap<u32, Vec<(String, String)>> = HashMap::new();
    let mut file_allows = Vec::new();
    let mut regions = Vec::new();
    let mut protocol_regions = Vec::new();
    let mut safety_lines = Vec::new();
    let mut open: Option<u32> = None;
    let mut open_protocol: HashMap<String, u32> = HashMap::new();
    for c in comments {
        let t = c.text.trim();
        if let Some(rest) = t.strip_prefix("lint:allow-file(") {
            if let Some((rule, reason)) = split_allow(rest) {
                file_allows.push((rule, reason));
            }
        } else if let Some(rest) = t.strip_prefix("lint:allow(") {
            if let Some((rule, reason)) = split_allow(rest) {
                allows.entry(c.line).or_default().push((rule, reason));
            }
        } else if let Some(rest) = t.strip_prefix("lint:protocol-begin(") {
            let kind = rest.trim_end_matches(')').trim().to_string();
            // A second begin of the same kind leaves the first unmatched.
            if let Some(prev) = open_protocol.insert(kind.clone(), c.line) {
                protocol_regions.push((kind, prev, u32::MAX));
            }
        } else if let Some(rest) = t.strip_prefix("lint:protocol-end(") {
            let kind = rest.trim_end_matches(')').trim();
            if let Some(a) = open_protocol.remove(kind) {
                protocol_regions.push((kind.to_string(), a, c.line));
            }
        } else if t.starts_with("lint:store-surface-begin") {
            open = Some(c.line);
        } else if t.starts_with("lint:store-surface-end") {
            if let Some(a) = open.take() {
                regions.push((a, c.line));
            }
        }
        if t.contains("SAFETY:") {
            safety_lines.push(c.line);
        }
    }
    for (kind, a) in open_protocol {
        protocol_regions.push((kind, a, u32::MAX));
    }
    protocol_regions.sort();
    CommentScan {
        allows,
        file_allows,
        surface_regions: regions,
        protocol_regions,
        safety_lines,
    }
}

fn split_allow(rest: &str) -> Option<(String, String)> {
    let inner = rest.strip_suffix(')').unwrap_or(rest);
    let (rule, reason) = inner.split_once(',')?;
    let reason = reason.trim();
    if reason.is_empty() {
        return None; // a justification is mandatory
    }
    Some((rule.trim().to_string(), reason.to_string()))
}

/// Finds `fn name … { body }` items by scanning for the `fn` keyword and
/// brace-matching the body. Trait-method declarations (ending in `;`)
/// yield no body and are skipped.
fn extract_fns(toks: &[Token]) -> Vec<FnFact> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && i + 1 < toks.len() {
            let name_tok = &toks[i + 1];
            if name_tok.kind == TokKind::Ident {
                // Scan to the body `{`, or a `;` (no body). Track
                // parens/brackets so `;` inside default-arg types and
                // where-clause bounds can't fool us.
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].text == "{" {
                    let end = match_brace(toks, j);
                    out.push(FnFact {
                        name: name_tok.text.clone(),
                        line: toks[i].line,
                        body_start: j,
                        body_end: end,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Given the index of a `{`, returns the index just past its matching
/// `}` (or the end of input).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

/// `#[cfg(test)]` item spans, as line ranges.
fn extract_test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 < toks.len() {
        if toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
        {
            // Find the attribute's `]`, then the item's `{`, then match.
            let mut j = i + 5;
            while j < toks.len() && toks[j].text != "]" {
                j += 1;
            }
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = match_brace(toks, j);
                let last = toks.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(toks[j].line);
                out.push((toks[i].line, last));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

const ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "else", "in", "as",
    "impl", "where", "unsafe", "dyn", "ref", "mut", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "break", "continue", "crate", "self", "Self", "super",
];

/// Known I/O types: a `Type::method(` call on one of these is a
/// blocking-I/O event even when the type was `use`-imported (no `std::`
/// path at the call site).
const IO_TYPES: &[&str] =
    &["File", "OpenOptions", "TcpStream", "TcpListener", "UnixStream", "UnixListener"];

/// One pass over the token stream filling locks/calls/atomics/unsafes/
/// waits/blocking-I/O/panics/tolerances/env-literals.
fn extract_events(f: &mut SourceFile) {
    let toks = &f.tokens;
    let mut locks = Vec::new();
    let mut calls = Vec::new();
    let mut atomics = Vec::new();
    let mut unsafes = Vec::new();
    let mut waits = Vec::new();
    let mut blocking_ops = Vec::new();
    let mut panics = Vec::new();
    let mut tols = Vec::new();
    let mut env_lits = Vec::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let is_call = toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
                    && !KEYWORDS.contains(&t.text.as_str());
                let is_method = i > 0 && toks[i - 1].text == ".";
                let is_macro = toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false);
                if is_call && !is_macro {
                    if let Some(fi) = f.fn_at(i) {
                        calls.push((
                            fi,
                            CallEvent { name: t.text.clone(), line: t.line, pos: i },
                        ));
                    }
                }
                // Lock acquisition: zero-arg `.lock()` / `.read()` /
                // `.write()`, plus the service crate's poisoning-tolerant
                // `.lock_recover()`.
                if is_method
                    && is_call
                    && matches!(t.text.as_str(), "lock" | "read" | "write" | "lock_recover")
                    && toks.get(i + 2).map(|n| n.text == ")").unwrap_or(false)
                {
                    if let Some(fi) = f.fn_at(i) {
                        let receiver = receiver_name(toks, i - 1);
                        let (style, held_until, guard) = lock_scope(toks, i, fi, &f.fns);
                        let _ = guard;
                        locks.push((
                            fi,
                            LockEvent {
                                class: receiver.clone(),
                                receiver,
                                line: t.line,
                                pos: i,
                                style,
                                held_until,
                            },
                        ));
                    }
                }
                // Atomic site: `.method(… Ordering ident …)`.
                if is_method && is_call && ATOMIC_METHODS.contains(&t.text.as_str()) {
                    let end = match_paren(toks, i + 1);
                    let mut ords = Vec::new();
                    for a in toks.iter().take(end).skip(i + 2) {
                        if a.kind == TokKind::Ident && ORDERINGS.contains(&a.text.as_str()) {
                            ords.push(a.text.clone());
                        }
                    }
                    if !ords.is_empty() {
                        atomics.push(AtomicSite {
                            field: receiver_name(toks, i - 1),
                            method: t.text.clone(),
                            orderings: ords,
                            line: t.line,
                            pos: i,
                        });
                    }
                }
                // `unsafe` sites, classified by the following token.
                if t.text == "unsafe" {
                    let kind = match toks.get(i + 1).map(|n| n.text.as_str()) {
                        Some("{") => UnsafeKind::Block,
                        Some("impl") => UnsafeKind::Impl,
                        Some("fn") => UnsafeKind::Fn,
                        Some("extern") => UnsafeKind::Extern,
                        _ => UnsafeKind::Other,
                    };
                    unsafes.push(UnsafeSite { kind, line: t.line });
                }
                // Condvar waits: method form on the condvar…
                if is_method
                    && is_call
                    && matches!(t.text.as_str(), "wait" | "wait_while" | "wait_timeout")
                {
                    if let Some(fi) = f.fn_at(i) {
                        waits.push((
                            fi,
                            WaitEvent {
                                condvar: receiver_name(toks, i - 1),
                                line: t.line,
                                pos: i,
                            },
                        ));
                    }
                }
                // …and the sched shim's free-function form (condvar is
                // the first argument).
                if is_call
                    && !is_method
                    && matches!(t.text.as_str(), "wait_recover" | "wait_timeout_recover")
                {
                    if let Some(fi) = f.fn_at(i) {
                        waits.push((
                            fi,
                            WaitEvent {
                                condvar: first_arg_ident(toks, i + 1),
                                line: t.line,
                                pos: i,
                            },
                        ));
                    }
                }
                // Blocking I/O: `std::fs` / `std::net` / `std::os::unix::net`
                // paths, and `File::open(…)`-style calls on known I/O types.
                let path_head = i == 0 || toks[i - 1].text != "::";
                let then_colons = toks.get(i + 1).map(|n| n.text == "::").unwrap_or(false);
                if t.text == "std" && path_head && then_colons {
                    let what = match toks.get(i + 2).map(|n| n.text.as_str()) {
                        Some("fs") => Some("std::fs"),
                        Some("net") => Some("std::net"),
                        Some("os")
                            if toks.get(i + 4).map(|n| n.text == "unix").unwrap_or(false)
                                && toks.get(i + 6).map(|n| n.text == "net").unwrap_or(false) =>
                        {
                            Some("std::os::unix::net")
                        }
                        _ => None,
                    };
                    if let (Some(w), Some(fi)) = (what, f.fn_at(i)) {
                        blocking_ops
                            .push((fi, BlockIoEvent { what: w.into(), line: t.line, pos: i }));
                    }
                }
                if IO_TYPES.contains(&t.text.as_str())
                    && path_head
                    && then_colons
                    && toks.get(i + 2).map(|n| n.kind == TokKind::Ident).unwrap_or(false)
                    && toks.get(i + 3).map(|n| n.text == "(").unwrap_or(false)
                {
                    if let Some(fi) = f.fn_at(i) {
                        let what = format!("{}::{}", t.text, toks[i + 2].text);
                        blocking_ops.push((fi, BlockIoEvent { what, line: t.line, pos: i }));
                    }
                }
                // Panic sites.
                if is_method && is_call && t.text == "unwrap" {
                    if let Some(fi) = f.fn_at(i) {
                        panics.push(PanicSite { kind: PanicKind::Unwrap, line: t.line, fn_idx: fi });
                    }
                }
                if is_method
                    && is_call
                    && t.text == "expect"
                    && toks.get(i + 2).map(|n| n.kind == TokKind::Str).unwrap_or(false)
                {
                    if let Some(fi) = f.fn_at(i) {
                        panics.push(PanicSite { kind: PanicKind::Expect, line: t.line, fn_idx: fi });
                    }
                }
            }
            // Indexing: `[` directly after an ident / `)` / `]`.
            TokKind::Punct
                if t.text == "["
                    && i > 0
                    && (toks[i - 1].kind == TokKind::Ident
                        && !KEYWORDS.contains(&toks[i - 1].text.as_str())
                        || toks[i - 1].text == ")"
                        || toks[i - 1].text == "]") =>
            {
                if let Some(fi) = f.fn_at(i) {
                    panics.push(PanicSite { kind: PanicKind::Index, line: t.line, fn_idx: fi });
                }
            }
            TokKind::Num if is_tolerance_literal(&t.text) && comparison_adjacent(toks, i) => {
                tols.push(TolSite {
                    literal: t.text.clone(),
                    line: t.line,
                    in_const_def: in_const_def(toks, i),
                });
            }
            TokKind::Str => {
                if let Some(name) = exact_env_name(&t.text) {
                    env_lits.push(EnvLit { text: name.to_string(), line: t.line, pos: i });
                }
            }
            _ => {}
        }
    }

    f.locks = locks;
    f.calls = calls;
    f.atomics = atomics;
    f.unsafes = unsafes;
    f.waits = waits;
    f.blocking_ops = blocking_ops;
    f.panics = panics;
    f.tols = tols;
    f.env_lits = env_lits;
}

/// Last identifier of a call's first argument, skipping `self`/`mut` and
/// reference/deref sigils: `(&self.available, st)` → `available`,
/// `(&*cv, guard)` → `cv`. `open` is the index of the call's `(`.
fn first_arg_ident(toks: &[Token], open: usize) -> String {
    let mut depth = 0i32;
    let mut last = String::new();
    for t in toks.iter().skip(open) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => break,
            _ => {
                if t.kind == TokKind::Ident && t.text != "self" && t.text != "mut" {
                    last = t.text.clone();
                }
            }
        }
    }
    last
}

/// Given the index of a `(`-opening token's predecessor… actually: given
/// the index of the `(` token, returns the index just past the matching
/// `)`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Receiver name for a method call: the last field/method identifier of
/// the receiver chain. `dot` is the index of the `.` before the method.
/// `a.b.c.lock()` → `c`; `self.shard_of(&k).read()` → `shard_of`.
fn receiver_name(toks: &[Token], dot: usize) -> String {
    if dot == 0 {
        return String::new();
    }
    let prev = &toks[dot - 1];
    if prev.kind == TokKind::Ident {
        return prev.text.clone();
    }
    if prev.text == ")" {
        // Walk back to the matching `(`, then the ident before it.
        let mut depth = 0i32;
        let mut k = dot - 1;
        loop {
            match toks[k].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return String::new();
            }
            k -= 1;
        }
        if k > 0 && toks[k - 1].kind == TokKind::Ident {
            return toks[k - 1].text.clone();
        }
    }
    String::new()
}

/// Decides guard-vs-temp for a lock acquisition at method index `mi`, and
/// computes the hold extent (token index, exclusive).
fn lock_scope(
    toks: &[Token],
    mi: usize,
    fi: usize,
    fns: &[FnFact],
) -> (LockStyle, usize, Option<String>) {
    let body_end = fns[fi].body_end;
    // Walk back from the receiver chain to see whether this statement is
    // `let [mut] name = …`. Cross field chains, paren groups, `&`, `*`.
    let mut k = mi;
    let mut depth = 0i32;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => break,
            "=" if depth == 0 => {
                // `let name =` or `let mut name =` ?
                let mut j = k;
                let name = loop {
                    if j == 0 {
                        break None;
                    }
                    j -= 1;
                    if toks[j].kind == TokKind::Ident && toks[j].text != "mut" {
                        break Some(toks[j].text.clone());
                    }
                    if toks[j].text != "mut" {
                        break None;
                    }
                };
                let is_let = name.is_some()
                    && (0..k).rev().take(4).any(|p| toks[p].text == "let");
                // A `let` binding only holds the *guard* when the call
                // chain is purely `.unwrap()` / `.expect(…)` up to the
                // `;` — `let x = m.lock().unwrap().remove(k);` binds the
                // removed value, and the temporary guard dies at the `;`.
                let binds_guard = is_let && chain_is_guard_only(toks, mi);
                if let (Some(n), true) = (name, binds_guard) {
                    // Guard: held until `drop(n)` or end of function.
                    let mut end = body_end;
                    let mut p = mi;
                    while p + 2 < body_end {
                        if toks[p].text == "drop"
                            && toks[p + 1].text == "("
                            && toks[p + 2].text == n
                        {
                            end = p;
                            break;
                        }
                        p += 1;
                    }
                    return (LockStyle::Guard, end, Some(n));
                }
                break;
            }
            _ => {}
        }
    }
    // Temporary: held to end of statement; if the statement opens a block
    // before its `;` (for/if-let headers), hold through the block.
    let mut p = mi;
    let mut depth = 0i32;
    while p < body_end {
        match toks[p].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => return (LockStyle::Temp, p, None),
            "{" if depth <= 0 => return (LockStyle::Temp, match_brace(toks, p), None),
            "}" if depth <= 0 => return (LockStyle::Temp, p, None),
            _ => {}
        }
        p += 1;
    }
    (LockStyle::Temp, body_end, None)
}

/// True when the call chain starting at the lock method `mi` is
/// `(…)` followed only by `.unwrap()` / `.expect(…)` links and then the
/// statement's `;` — i.e. the `let` binding really binds the guard.
fn chain_is_guard_only(toks: &[Token], mi: usize) -> bool {
    let mut p = match_paren(toks, mi + 1);
    loop {
        if toks.get(p).map(|t| t.text == ";").unwrap_or(false) {
            return true;
        }
        let is_link = toks.get(p).map(|t| t.text == ".").unwrap_or(false)
            && toks
                .get(p + 1)
                .map(|t| t.text == "unwrap" || t.text == "expect")
                .unwrap_or(false)
            && toks.get(p + 2).map(|t| t.text == "(").unwrap_or(false);
        if !is_link {
            return false;
        }
        p = match_paren(toks, p + 2);
    }
}

/// A "tolerance-shaped" literal: scientific notation with a negative
/// exponent (`1e-8`, `2.5e-12`, with or without a type suffix).
fn is_tolerance_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    let Some(epos) = lower.find('e') else { return false };
    let (mantissa, exp) = lower.split_at(epos);
    let exp = &exp[1..];
    let Some(exp_digits) = exp.strip_prefix('-') else { return false };
    let exp_digits = exp_digits.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    !mantissa.is_empty()
        && mantissa.chars().all(|c| c.is_ascii_digit() || c == '.' || c == '_')
        && !exp_digits.is_empty()
        && exp_digits.chars().all(|c| c.is_ascii_digit())
}

const CMP_OPS: &[&str] = &["<", ">", "<=", ">="];

/// True when the literal at `i` is an operand of a comparison: the
/// previous non-minus token or the next token is a comparison operator.
fn comparison_adjacent(toks: &[Token], i: usize) -> bool {
    let mut p = i;
    if p > 0 && toks[p - 1].text == "-" {
        p -= 1; // negated literal: look left of the minus
    }
    let prev_cmp = p > 0 && CMP_OPS.contains(&toks[p - 1].text.as_str());
    let next_cmp = toks.get(i + 1).map(|t| CMP_OPS.contains(&t.text.as_str())).unwrap_or(false);
    prev_cmp || next_cmp
}

/// True when the literal is the RHS of a `const`/`static` item definition
/// (scan back to the statement head).
fn in_const_def(toks: &[Token], i: usize) -> bool {
    let mut k = i;
    let mut steps = 0;
    while k > 0 && steps < 16 {
        k -= 1;
        steps += 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => return false,
            "const" | "static" => return true,
            _ => {}
        }
    }
    false
}

/// Returns `Some(name)` when a string literal is exactly one `REQISC_*`
/// variable name (messages merely *mentioning* a variable pass).
fn exact_env_name(text: &str) -> Option<&str> {
    if !text.starts_with("REQISC_") {
        return None;
    }
    let rest = &text["REQISC_".len()..];
    if !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        Some(text)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::extract("crates/x/src/lib.rs".into(), src)
    }

    #[test]
    fn fn_and_call_extraction() {
        let f = file("fn a() { b(); c.d(1); }\nfn b() {}\n");
        assert_eq!(f.fns.len(), 2);
        let names: Vec<&str> = f.calls.iter().map(|(_, c)| c.name.as_str()).collect();
        assert_eq!(names, vec!["b", "d"]);
        assert_eq!(f.calls[0].0, 0, "call attributed to fn a");
    }

    #[test]
    fn lock_guard_vs_temp() {
        let f = file(
            "fn a(&self) {\n let g = self.inflight.lock().unwrap();\n self.queue.try_push();\n}\n\
             fn b(&self) {\n self.conns.lock().unwrap().push(1);\n let x = 2;\n}\n",
        );
        assert_eq!(f.locks.len(), 2);
        let (fi0, l0) = &f.locks[0];
        assert_eq!((*fi0, l0.class.as_str(), l0.style), (0, "inflight", LockStyle::Guard));
        assert_eq!(f.fns[0].body_end, l0.held_until, "guard held to end of fn");
        let (_, l1) = &f.locks[1];
        assert_eq!((l1.class.as_str(), l1.style), ("conns", LockStyle::Temp));
        // Temp ends at the statement's `;`, before `let x`.
        assert!(f.tokens[l1.held_until].text == ";");
    }

    #[test]
    fn let_bound_value_is_not_a_guard() {
        // The binding takes the *removed value*; the guard is a
        // temporary that dies at the `;`.
        let f = file(
            "fn a(&self) { let w = self.inflight.lock().expect(\"p\").remove(&k); use_it(w); }",
        );
        let (_, l) = &f.locks[0];
        assert_eq!(l.style, LockStyle::Temp);
        assert_eq!(f.tokens[l.held_until].text, ";");
    }

    #[test]
    fn guard_released_by_drop() {
        let f = file("fn a(&self) { let g = self.m.lock().unwrap(); use_it(); drop(g); after(); }");
        let (_, l) = &f.locks[0];
        let call_after: Vec<&str> = f
            .calls
            .iter()
            .filter(|(_, c)| c.pos < l.held_until)
            .map(|(_, c)| c.name.as_str())
            .collect();
        assert!(call_after.contains(&"use_it"));
        assert!(!call_after.contains(&"after"), "drop(g) must end the hold");
    }

    #[test]
    fn method_result_receiver() {
        let f = file("fn a(&self) { let s = self.shard_of(&k).read(); }");
        assert_eq!(f.locks[0].1.receiver, "shard_of");
    }

    #[test]
    fn atomic_sites() {
        let f = file(
            "fn a(&self) { self.hits.fetch_add(1, Ordering::SeqCst); \
             self.flag.store(true, Release); self.x.compare_exchange(0, 1, AcqRel, Acquire); }",
        );
        assert_eq!(f.atomics.len(), 3);
        assert_eq!(f.atomics[0].field, "hits");
        assert_eq!(f.atomics[0].orderings, vec!["SeqCst"]);
        assert_eq!(f.atomics[1].method, "store");
        assert_eq!(f.atomics[2].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn panic_sites_and_expect_discrimination() {
        let f = file(
            "fn a(v: &[u8]) { v.first().unwrap(); m.lock().expect(\"poisoned\"); \
             self.expect(b'{'); let x = v[0]; }",
        );
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert_eq!(kinds, vec![PanicKind::Unwrap, PanicKind::Expect, PanicKind::Index]);
    }

    #[test]
    fn tolerance_literals() {
        let f = file(
            "const T: f64 = 1e-8;\nfn a(x: f64) -> bool { x < 1e-9 && x.abs() > -1e-12 && x.max(1e-4) > 0.0 }",
        );
        let lits: Vec<(&str, bool)> =
            f.tols.iter().map(|t| (t.literal.as_str(), t.in_const_def)).collect();
        // 1e-8 is not comparison-adjacent (const def); 1e-4 inside max() is
        // not comparison-adjacent either (`>` follows the `)`), leaving the
        // two real comparisons.
        assert_eq!(lits, vec![("1e-9", false), ("1e-12", false)]);
    }

    #[test]
    fn env_literals_exact_only() {
        let f = file(
            "fn a() { std::env::var(\"REQISC_CACHE_DIR\"); let m = \"REQISC_X set but ignored\"; }",
        );
        assert_eq!(f.env_lits.len(), 1);
        assert_eq!(f.env_lits[0].text, "REQISC_CACHE_DIR");
    }

    #[test]
    fn unsafe_sites_and_safety_comments() {
        let f = file(
            "// SAFETY: the mmap outlives the slice.\n\
             unsafe impl Send for X {}\n\
             fn a(p: *const u8) { let v = unsafe { *p }; }\n\
             unsafe fn raw() {}\n\
             fn msg() { assert!(true, \"unsafe reorder\"); }\n",
        );
        let kinds: Vec<(UnsafeKind, u32)> = f.unsafes.iter().map(|u| (u.kind, u.line)).collect();
        assert_eq!(
            kinds,
            vec![(UnsafeKind::Impl, 2), (UnsafeKind::Block, 3), (UnsafeKind::Fn, 4)],
            "the word `unsafe` inside a string literal is not a site"
        );
        assert_eq!(f.safety_lines, vec![1]);
    }

    #[test]
    fn wait_events_method_and_free_forms() {
        let f = file(
            "fn a(&self) {\n let mut st = self.state.lock_recover();\n \
             st = crate::sync::wait_recover(&self.available, st);\n \
             let g = cv.wait(g).unwrap();\n \
             let (s, t) = crate::sync::wait_timeout_recover(&*cv2, s, dur);\n}\n",
        );
        let names: Vec<&str> = f.waits.iter().map(|(_, w)| w.condvar.as_str()).collect();
        assert_eq!(names, vec!["available", "cv", "cv2"]);
        assert_eq!(f.waits[0].1.line, 3);
    }

    #[test]
    fn blocking_io_events() {
        let f = file(
            "use std::fs::File;\n\
             fn a() { let _ = std::fs::read_to_string(\"x\"); }\n\
             fn b() { let _ = File::open(\"x\"); }\n\
             fn c() { let _ = std::net::TcpStream::connect(\"y\"); }\n\
             fn d() { let _ = std::os::unix::net::UnixStream::connect(\"z\"); }\n\
             fn e(fs: u32) { let x = fs + 1; }\n",
        );
        let whats: Vec<&str> = f.blocking_ops.iter().map(|(_, b)| b.what.as_str()).collect();
        assert_eq!(whats, vec!["std::fs", "File::open", "std::net", "std::os::unix::net"]);
        // The `use` line sits outside any fn and records nothing.
        assert!(f.blocking_ops.iter().all(|(_, b)| b.line >= 2));
    }

    #[test]
    fn protocol_regions_and_unmatched_begin() {
        let f = file(
            "// lint:protocol-begin(publish)\nfn p() {}\n// lint:protocol-end(publish)\n\
             // lint:protocol-begin(probe)\nfn q() {}\n",
        );
        assert_eq!(
            f.protocol_regions,
            vec![("probe".into(), 4, u32::MAX), ("publish".into(), 1, 3)],
            "unmatched begin must survive as an open region, not vanish"
        );
    }

    #[test]
    fn annotations_and_regions() {
        let f = file(
            "// lint:allow-file(tolerance-literal, numeric kernel)\n\
             fn a() {} // lint:allow(panic-path, checked above)\n\
             // lint:store-surface-begin\nconst V: u32 = 2;\n// lint:store-surface-end\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n",
        );
        assert_eq!(f.file_allows, vec![("tolerance-literal".into(), "numeric kernel".into())]);
        assert!(f.allows.contains_key(&2));
        assert_eq!(f.surface_regions, vec![(3, 5)]);
        assert!(f.is_test_line(7));
        assert!(!f.is_test_line(2));
    }
}
