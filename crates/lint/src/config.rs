//! `lint.conf` parser. The config is a line-oriented directive file
//! committed next to the crate; it declares the workspace-specific
//! knowledge the rules need (lock classes and their partial order, the
//! store-format surface, panic-path entry points, …) so the engine
//! itself stays generic and the fixtures can supply miniature configs.
//!
//! Grammar: one directive per line, `#` comments, whitespace-separated
//! fields. Unknown directives are an error (typos must not silently
//! disable a rule).

use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Parsed configuration for one lint run.
#[derive(Debug, Default)]
pub struct Config {
    /// Directory prefixes (workspace-relative) excluded from the scan.
    pub skip_dirs: Vec<String>,
    /// Path of the committed store-surface registry, workspace-relative.
    pub registry_file: Option<String>,
    /// `(file, const-name)` of the store format version constant.
    pub version_const: Option<(String, String)>,
    /// Whole files whose normalized token stream is part of the surface.
    pub surface_files: Vec<String>,
    /// Files whose `lint:store-surface-begin/end` regions are the surface.
    pub surface_region_files: Vec<String>,
    /// `(file, const-name)` constants whose literal value is registered.
    pub surface_consts: Vec<(String, String)>,
    /// Receiver-name → lock-class mapping (`-` means ignore).
    pub lock_classes: HashMap<String, String>,
    /// Declared partial order: `(inner may be taken while outer held)`.
    pub lock_order: Vec<(String, String)>,
    /// Callee names never followed during call-graph propagation.
    pub call_ignore: HashSet<String>,
    /// Directory prefixes in scope for the panic-path rule.
    pub panic_scopes: Vec<String>,
    /// Request-path entry function names.
    pub panic_entries: HashSet<String>,
    /// The env-registry module file, workspace-relative.
    pub env_registry: Option<String>,
    /// Directory prefixes in scope for the sync-shim rule.
    pub sync_shim_scopes: Vec<String>,
    /// Directory prefixes where `unsafe` is permitted (unsafe-audit).
    pub unsafe_scopes: Vec<String>,
    /// Files that must carry `lint:protocol-begin/end(publish|probe)`
    /// regions (publish-protocol).
    pub protocol_files: Vec<String>,
    /// Call names that write entry bytes into the mapping without
    /// ordering (publish-protocol).
    pub protocol_plain_writes: HashSet<String>,
    /// Call names that read entry bytes out of the mapping without
    /// ordering (publish-protocol).
    pub protocol_plain_reads: HashSet<String>,
    /// Lock classes under which blocking operations are denied
    /// (blocking-in-critical-section).
    pub non_blocking_locks: HashSet<String>,
    /// Condvar receiver name → the lock class its guard belongs to
    /// (blocking-in-critical-section).
    pub condvar_classes: HashMap<String, String>,
    /// Function names that are blocking entry points (solvers, store
    /// snapshots) wherever they are called (blocking-in-critical-section).
    pub blocking_calls: HashSet<String>,
}

impl Config {
    /// Parses a config from text. Returns a descriptive error on any
    /// malformed or unknown directive.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut c = Config::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap();
            let args: Vec<&str> = parts.collect();
            let want = |n: usize| -> Result<(), String> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(format!(
                        "lint.conf:{}: `{}` takes {} argument(s), got {}",
                        lineno + 1,
                        directive,
                        n,
                        args.len()
                    ))
                }
            };
            match directive {
                "skip-dir" => {
                    want(1)?;
                    c.skip_dirs.push(args[0].to_string());
                }
                "registry-file" => {
                    want(1)?;
                    c.registry_file = Some(args[0].to_string());
                }
                "version-const" => {
                    want(2)?;
                    c.version_const = Some((args[0].to_string(), args[1].to_string()));
                }
                "surface-file" => {
                    want(1)?;
                    c.surface_files.push(args[0].to_string());
                }
                "surface-region" => {
                    want(1)?;
                    c.surface_region_files.push(args[0].to_string());
                }
                "surface-const" => {
                    want(2)?;
                    c.surface_consts.push((args[0].to_string(), args[1].to_string()));
                }
                "lock-class" => {
                    want(2)?;
                    c.lock_classes.insert(args[0].to_string(), args[1].to_string());
                }
                "lock-order" => {
                    want(2)?;
                    c.lock_order.push((args[0].to_string(), args[1].to_string()));
                }
                "call-ignore" => {
                    if args.is_empty() {
                        return Err(format!(
                            "lint.conf:{}: `call-ignore` needs at least one name",
                            lineno + 1
                        ));
                    }
                    c.call_ignore.extend(args.iter().map(|s| s.to_string()));
                }
                "panic-scope" => {
                    want(1)?;
                    c.panic_scopes.push(args[0].to_string());
                }
                "panic-entry" => {
                    if args.is_empty() {
                        return Err(format!(
                            "lint.conf:{}: `panic-entry` needs at least one name",
                            lineno + 1
                        ));
                    }
                    c.panic_entries.extend(args.iter().map(|s| s.to_string()));
                }
                "env-registry" => {
                    want(1)?;
                    c.env_registry = Some(args[0].to_string());
                }
                "sync-shim-scope" => {
                    want(1)?;
                    c.sync_shim_scopes.push(args[0].to_string());
                }
                "unsafe-scope" => {
                    want(1)?;
                    c.unsafe_scopes.push(args[0].to_string());
                }
                "protocol-file" => {
                    want(1)?;
                    c.protocol_files.push(args[0].to_string());
                }
                "protocol-plain-write" | "protocol-plain-read" | "non-blocking-lock"
                | "blocking-call" => {
                    if args.is_empty() {
                        return Err(format!(
                            "lint.conf:{}: `{}` needs at least one name",
                            lineno + 1,
                            directive
                        ));
                    }
                    let set = match directive {
                        "protocol-plain-write" => &mut c.protocol_plain_writes,
                        "protocol-plain-read" => &mut c.protocol_plain_reads,
                        "non-blocking-lock" => &mut c.non_blocking_locks,
                        _ => &mut c.blocking_calls,
                    };
                    set.extend(args.iter().map(|s| s.to_string()));
                }
                "condvar-class" => {
                    want(2)?;
                    c.condvar_classes.insert(args[0].to_string(), args[1].to_string());
                }
                other => {
                    return Err(format!("lint.conf:{}: unknown directive `{}`", lineno + 1, other));
                }
            }
        }
        Ok(c)
    }

    /// Loads and parses a config file from disk.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text)
    }

    /// Maps a receiver name to its lock class: `Some(class)`, or `None`
    /// when the receiver is explicitly ignored (`-`) or unknown.
    pub fn lock_class_of(&self, receiver: &str) -> Option<String> {
        match self.lock_classes.get(receiver) {
            Some(c) if c == "-" => None,
            Some(c) => Some(c.clone()),
            None => None,
        }
    }

    /// True when `inner` is declared safe to take while `outer` is held
    /// (transitively).
    pub fn order_allows(&self, outer: &str, inner: &str) -> bool {
        // BFS over declared edges.
        let mut seen: HashSet<&str> = HashSet::new();
        let mut stack = vec![outer];
        while let Some(o) = stack.pop() {
            if !seen.insert(o) {
                continue;
            }
            for (a, b) in &self.lock_order {
                if a == o {
                    if b == inner {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }

    /// True when a workspace-relative path is under a skipped directory.
    pub fn is_skipped(&self, rel: &str) -> bool {
        self.skip_dirs.iter().any(|d| rel == d || rel.starts_with(&format!("{d}/")))
    }

    /// True when a workspace-relative path is in panic-path scope.
    pub fn in_panic_scope(&self, rel: &str) -> bool {
        self.panic_scopes.iter().any(|d| rel == d || rel.starts_with(&format!("{d}/")))
    }

    /// True when a workspace-relative path is in sync-shim scope.
    pub fn in_sync_shim_scope(&self, rel: &str) -> bool {
        self.sync_shim_scopes.iter().any(|d| rel == d || rel.starts_with(&format!("{d}/")))
    }

    /// True when a workspace-relative path may contain `unsafe`.
    pub fn in_unsafe_scope(&self, rel: &str) -> bool {
        self.unsafe_scopes.iter().any(|d| rel == d || rel.starts_with(&format!("{d}/")))
    }

    /// Maps a condvar receiver name to the lock class its guard belongs
    /// to: `Some(class)`, or `None` when unmapped (the
    /// blocking-in-critical-section rule treats an unmapped condvar as
    /// blocking under every non-blocking class).
    pub fn condvar_class_of(&self, receiver: &str) -> Option<String> {
        match self.condvar_classes.get(receiver) {
            Some(c) if c == "-" => None,
            Some(c) => Some(c.clone()),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let c = Config::parse(
            "# comment\n\
             skip-dir crates/vendor\n\
             registry-file crates/lint/store_surface.lock\n\
             version-const crates/compiler/src/store.rs STORE_FORMAT_VERSION\n\
             surface-file crates/qmath/src/bytes.rs\n\
             surface-region crates/compiler/src/store.rs\n\
             surface-const crates/qmath/src/kak.rs KAK_FACE_SNAP_TOL\n\
             lock-class inflight inflight\n\
             lock-class stdout -\n\
             lock-order inflight queue\n\
             lock-order queue store_lock\n\
             call-ignore get insert len\n\
             panic-scope crates/service/src\n\
             panic-entry serve_lines handle_line\n\
             env-registry crates/envreg/src/lib.rs\n\
             sync-shim-scope crates/service/src\n\
             unsafe-scope crates/shmem\n\
             protocol-file crates/shmem/src/lib.rs\n\
             protocol-plain-write write_bytes_in\n\
             protocol-plain-read copy_out read_bytes_in\n\
             non-blocking-lock inflight completion_ring\n\
             condvar-class available queue\n\
             blocking-call solve_ea solve_pulse\n",
        )
        .unwrap();
        assert!(c.is_skipped("crates/vendor/rand/src/lib.rs"));
        assert!(!c.is_skipped("crates/vendored/x.rs"));
        assert_eq!(c.lock_class_of("inflight").as_deref(), Some("inflight"));
        assert_eq!(c.lock_class_of("stdout"), None);
        assert_eq!(c.lock_class_of("mystery"), None);
        assert!(c.order_allows("inflight", "queue"));
        assert!(c.order_allows("inflight", "store_lock"), "order is transitive");
        assert!(!c.order_allows("queue", "inflight"));
        assert!(c.call_ignore.contains("len"));
        assert!(c.in_panic_scope("crates/service/src/server.rs"));
        assert!(!c.in_panic_scope("crates/compiler/src/store.rs"));
        assert!(c.panic_entries.contains("serve_lines"));
        assert_eq!(c.env_registry.as_deref(), Some("crates/envreg/src/lib.rs"));
        assert!(c.in_sync_shim_scope("crates/service/src/queue.rs"));
        assert!(!c.in_sync_shim_scope("crates/sched/src/shim.rs"));
        assert!(c.in_unsafe_scope("crates/shmem/src/sys.rs"));
        assert!(!c.in_unsafe_scope("crates/shmem2/src/lib.rs"));
        assert_eq!(c.protocol_files, vec!["crates/shmem/src/lib.rs".to_string()]);
        assert!(c.protocol_plain_writes.contains("write_bytes_in"));
        assert!(c.protocol_plain_reads.contains("read_bytes_in"));
        assert!(c.non_blocking_locks.contains("completion_ring"));
        assert_eq!(c.condvar_class_of("available").as_deref(), Some("queue"));
        assert_eq!(c.condvar_class_of("mystery"), None);
        assert!(c.blocking_calls.contains("solve_pulse"));
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = Config::parse("frobnicate yes\n").unwrap_err();
        assert!(err.contains("unknown directive"), "{err}");
    }

    #[test]
    fn rejects_bad_arity() {
        let err = Config::parse("version-const onlyone\n").unwrap_err();
        assert!(err.contains("takes 2"), "{err}");
    }
}
