//! **panic-path**: no `unwrap()`, `expect("…")`, or direct indexing in
//! functions reachable from the service request path.
//!
//! A panic in a worker or accept loop doesn't crash the daemon — it
//! silently kills one thread, and the service limps on with fewer
//! workers (or stops accepting) until someone notices latencies. So the
//! request path must degrade via error responses, not panics.
//!
//! Scope: files under the config's `panic-scope` directories. Entries:
//! the `panic-entry` function names (accept loops, request handlers,
//! worker loops). Reachability: the shared call graph
//! ([`crate::callgraph::CallGraph`]) built over only the in-scope files,
//! closed conservatively (every definition of a called name) — std/
//! collection method names don't resolve and thus don't leak the closure
//! out of the subsystem. `expect` only counts with a string-literal
//! argument (the JSON parser's byte-arg `expect(b'{')` method is not a
//! panic).

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::facts::PanicKind;
use crate::{Diagnostic, Workspace};

/// Rule id.
pub const RULE: &str = "panic-path";

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.panic_entries.is_empty() || cfg.panic_scopes.is_empty() {
        return;
    }

    let in_scope: Vec<usize> = (0..ws.files.len())
        .filter(|&fi| cfg.in_panic_scope(&ws.files[fi].rel))
        .collect();
    let cg = CallGraph::build_filtered(ws, |fi| cfg.in_panic_scope(&ws.files[fi].rel));
    let reachable = cg.reachable_from(ws, &cfg.panic_entries);

    for &fi in &in_scope {
        let f = &ws.files[fi];
        for site in &f.panics {
            if !reachable.contains(&(fi, site.fn_idx)) || f.is_test_line(site.line) {
                continue;
            }
            let fname = &f.fns[site.fn_idx].name;
            let what = match site.kind {
                PanicKind::Unwrap => "`unwrap()`",
                PanicKind::Expect => "`expect(\"…\")`",
                PanicKind::Index => "direct indexing",
            };
            out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                site.line,
                format!(
                    "{what} in `{fname}`, which is reachable from a service request-path \
                     entry point: a panic here kills a worker/accept thread silently; \
                     return an error response (or use a poisoning-tolerant lock helper)"
                ),
            ));
        }
    }
}
