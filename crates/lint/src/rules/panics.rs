//! **panic-path**: no `unwrap()`, `expect("…")`, or direct indexing in
//! functions reachable from the service request path.
//!
//! A panic in a worker or accept loop doesn't crash the daemon — it
//! silently kills one thread, and the service limps on with fewer
//! workers (or stops accepting) until someone notices latencies. So the
//! request path must degrade via error responses, not panics.
//!
//! Scope: files under the config's `panic-scope` directories. Entries:
//! the `panic-entry` function names (accept loops, request handlers,
//! worker loops). Reachability: name-based closure over calls resolving
//! to functions *defined inside the scope* — std/collection method names
//! don't resolve and thus don't leak the closure out of the subsystem.
//! `expect` only counts with a string-literal argument (the JSON
//! parser's byte-arg `expect(b'{')` method is not a panic).

use crate::config::Config;
use crate::facts::PanicKind;
use crate::{Diagnostic, Workspace};
use std::collections::{HashMap, HashSet};

/// Rule id.
pub const RULE: &str = "panic-path";

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.panic_entries.is_empty() || cfg.panic_scopes.is_empty() {
        return;
    }

    // Functions defined in scope, by name (all definitions — the closure
    // is conservative: an ambiguous name reaches every definition).
    let mut defs: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    let mut in_scope: Vec<usize> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if !cfg.in_panic_scope(&f.rel) {
            continue;
        }
        in_scope.push(fi);
        for (fj, func) in f.fns.iter().enumerate() {
            defs.entry(func.name.as_str()).or_default().push((fi, fj));
        }
    }

    // Closure from the entries.
    let mut reachable: HashSet<(usize, usize)> = HashSet::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &fi in &in_scope {
        for (fj, func) in ws.files[fi].fns.iter().enumerate() {
            if cfg.panic_entries.contains(&func.name) {
                stack.push((fi, fj));
            }
        }
    }
    while let Some(node) = stack.pop() {
        if !reachable.insert(node) {
            continue;
        }
        let (fi, fj) = node;
        for (cj, call) in &ws.files[fi].calls {
            if *cj != fj {
                continue;
            }
            if let Some(targets) = defs.get(call.name.as_str()) {
                for &t in targets {
                    stack.push(t);
                }
            }
        }
    }

    for &fi in &in_scope {
        let f = &ws.files[fi];
        for site in &f.panics {
            if !reachable.contains(&(fi, site.fn_idx)) || f.is_test_line(site.line) {
                continue;
            }
            let fname = &f.fns[site.fn_idx].name;
            let what = match site.kind {
                PanicKind::Unwrap => "`unwrap()`",
                PanicKind::Expect => "`expect(\"…\")`",
                PanicKind::Index => "direct indexing",
            };
            out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                site.line,
                format!(
                    "{what} in `{fname}`, which is reachable from a service request-path \
                     entry point: a panic here kills a worker/accept thread silently; \
                     return an error response (or use a poisoning-tolerant lock helper)"
                ),
            ));
        }
    }
}
