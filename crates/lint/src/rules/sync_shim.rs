//! **sync-shim**: the service stack takes its sync primitives from the
//! `reqisc-sched` shim, never raw `std`.
//!
//! The shim (re-exported as `crate::sync` in the service crate) is a
//! zero-cost alias of `std::sync` in normal builds, but under
//! `--features sched-model` every acquire / wait / notify / atomic op
//! and every spawned thread routes through the cooperative model
//! scheduler — which is what lets `tests/sched_model.rs` exhaustively
//! explore the pipeline's interleavings. A raw `std::sync::Mutex`,
//! `std::sync::Condvar`, `std::sync::atomic` type, or bare
//! `std::thread::spawn` inside the configured `sync-shim-scope`
//! directories is invisible to the model checker: the site compiles,
//! the model tests pass, and the interleavings that touch it are
//! silently never explored. So such sites are denied in production
//! source (`#[cfg(test)]` regions, `tests/`, examples and benches are
//! exempt — they never run under the model).
//!
//! Deliberately *not* denied: `std::sync::{Arc, mpsc, OnceLock}` (no
//! blocking the scheduler must interpose on), `std::thread::{scope,
//! sleep, yield_now, available_parallelism}` (scoped helper threads
//! and timing, not model-relevant spawns). Genuine exceptions take
//! `// lint:allow(sync-shim, reason)`.

use crate::config::Config;
use crate::facts::{FileKind, SourceFile};
use crate::lexer::TokKind;
use crate::{Diagnostic, Workspace};

/// Rule id.
pub const RULE: &str = "sync-shim";

/// `std::sync::` members that must come from the shim instead.
const DENIED_SYNC: &[&str] = &["Mutex", "Condvar", "atomic"];

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.sync_shim_scopes.is_empty() {
        return;
    }
    for f in &ws.files {
        if f.kind != FileKind::Src || !cfg.in_sync_shim_scope(&f.rel) {
            continue;
        }
        scan_file(f, out);
    }
}

fn scan_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "std" || toks[i].kind != TokKind::Ident {
            continue;
        }
        // Only path *heads*: `reqisc_sched::…` never re-exports a
        // module literally named `std`, but be precise anyway.
        if i > 0 && toks[i - 1].text == "::" {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text != "::").unwrap_or(true) {
            continue;
        }
        match toks.get(i + 2).map(|t| t.text.as_str()) {
            Some("sync") => scan_sync_path(f, i, out),
            Some("thread") => scan_thread_path(f, i, out),
            _ => {}
        }
    }
}

/// `std::sync::<member>` or `use std::sync::{…}` — flag the denied
/// members, wherever in the path or brace group they appear.
fn scan_sync_path(f: &SourceFile, std_pos: usize, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let Some(sep) = toks.get(std_pos + 3) else { return };
    if sep.text != "::" {
        return;
    }
    let Some(next) = toks.get(std_pos + 4) else { return };
    if next.kind == TokKind::Ident {
        if DENIED_SYNC.contains(&next.text.as_str()) && !f.is_test_line(next.line) {
            out.push(denied_sync_diag(f, next.line, &next.text));
        }
    } else if next.text == "{" {
        // `use std::sync::{Arc, Mutex, atomic::{…}}` — walk the group.
        let mut depth = 0i32;
        for t in toks.iter().skip(std_pos + 4) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                name if t.kind == TokKind::Ident
                    && DENIED_SYNC.contains(&name)
                    && !f.is_test_line(t.line) =>
                {
                    out.push(denied_sync_diag(f, t.line, name));
                }
                _ => {}
            }
        }
    }
}

fn denied_sync_diag(f: &SourceFile, line: u32, member: &str) -> Diagnostic {
    Diagnostic::deny(
        RULE,
        &f.rel,
        line,
        format!(
            "raw `std::sync::{member}` in the service stack: import it from the \
             `crate::sync` shim (backed by `reqisc-sched`) so the site is driven by \
             the model scheduler under `--features sched-model` — a raw primitive \
             here is a sync site the interleaving explorer silently never sees"
        ),
    )
}

/// `std::thread::spawn` — the one `std::thread` member with a shim
/// replacement the model scheduler must own.
fn scan_thread_path(f: &SourceFile, std_pos: usize, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let is_spawn = toks.get(std_pos + 3).map(|t| t.text == "::").unwrap_or(false)
        && toks.get(std_pos + 4).map(|t| t.text == "spawn").unwrap_or(false);
    if !is_spawn {
        return;
    }
    let line = toks[std_pos + 4].line;
    if f.is_test_line(line) {
        return;
    }
    out.push(Diagnostic::deny(
        RULE,
        &f.rel,
        line,
        "bare `std::thread::spawn` in the service stack: use \
         `reqisc_sched::thread::spawn` so the thread registers with the model \
         scheduler under `--features sched-model` — an unregistered thread runs \
         unscheduled and its interleavings are never explored"
            .into(),
    ));
}
