//! **atomic-ordering**: every atomic site is either a stats *counter*
//! (wants `Relaxed`) or a *handoff* flag (wants a `Release` store paired
//! with an `Acquire` load). Two checks:
//!
//! * `SeqCst` anywhere is denied — on this stack it is always either an
//!   over-strong counter (pay a full fence per stats tick) or a handoff
//!   spelled without saying which side it is. The one legitimate user
//!   (`microarch/cache.rs`'s consistency-snapshot counters, whose
//!   `is_consistent` check needs a single total order) carries a
//!   file-level allow citing that argument.
//! * Release/Acquire sites must pair up: keyed by the atomic's field
//!   name across the whole workspace, a `Release`-side site with no
//!   `Acquire`-side counterpart (or vice versa) is a handoff that
//!   synchronizes with nobody. (`AcqRel` — swaps, RMW handoffs — counts
//!   as both sides.)

use crate::config::Config;
use crate::facts::FileKind;
use crate::{Diagnostic, Workspace};
use std::collections::BTreeSet;

/// Rule id.
pub const RULE: &str = "atomic-ordering";

/// Runs the rule.
pub fn check(ws: &Workspace, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    // Workspace-wide pairing sets, keyed by field name.
    let mut release_side: BTreeSet<&str> = BTreeSet::new();
    let mut acquire_side: BTreeSet<&str> = BTreeSet::new();
    for f in &ws.files {
        for site in &f.atomics {
            for o in &site.orderings {
                match o.as_str() {
                    "Release" => {
                        release_side.insert(&site.field);
                    }
                    "Acquire" => {
                        acquire_side.insert(&site.field);
                    }
                    "AcqRel" => {
                        release_side.insert(&site.field);
                        acquire_side.insert(&site.field);
                    }
                    _ => {}
                }
            }
        }
    }

    for f in &ws.files {
        if f.kind != FileKind::Src {
            continue;
        }
        for site in &f.atomics {
            if f.is_test_line(site.line) {
                continue;
            }
            if site.orderings.iter().any(|o| o == "SeqCst") {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    site.line,
                    format!(
                        "`{}.{}` uses SeqCst: classify the site — stats counter (use Relaxed) \
                         or flag handoff (Release store / Acquire load); SeqCst costs a full \
                         fence and hides which one was meant",
                        site.field, site.method
                    ),
                ));
                continue;
            }
            for o in &site.orderings {
                match o.as_str() {
                    "Release" if !acquire_side.contains(site.field.as_str()) => {
                        out.push(Diagnostic::deny(
                            RULE,
                            &f.rel,
                            site.line,
                            format!(
                                "Release on `{}.{}` has no Acquire-side counterpart anywhere \
                                 in the workspace: the handoff synchronizes with nobody \
                                 (either add the Acquire load or relax this to Relaxed)",
                                site.field, site.method
                            ),
                        ));
                    }
                    "Acquire" if !release_side.contains(site.field.as_str()) => {
                        out.push(Diagnostic::deny(
                            RULE,
                            &f.rel,
                            site.line,
                            format!(
                                "Acquire on `{}.{}` has no Release-side counterpart anywhere \
                                 in the workspace: nothing publishes the data this load \
                                 expects to observe",
                                site.field, site.method
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}
