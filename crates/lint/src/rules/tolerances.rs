//! **tolerance-literal**: no bare `1e-N` comparison literals in
//! production code.
//!
//! The workspace's numeric contracts (KAK face snapping, SU(4) class
//! keys, solver convergence) hinge on a handful of named tolerances
//! whose exact values are load-bearing — two of them are part of the
//! persistent-store format surface. A bare `x < 1e-9` scattered in a
//! kernel is either (a) secretly one of those contracts, in which case
//! drift between the literal and the named constant corrupts caches, or
//! (b) a local heuristic, in which case naming it documents that.
//!
//! Flagged: scientific-notation literals with a negative exponent
//! appearing directly as a comparison operand (`<`, `>`, `<=`, `>=`) in
//! non-test production code, outside `const`/`static` definitions.
//! Numeric kernels whose local epsilons are genuinely local carry
//! `lint:allow-file(tolerance-literal, …)` with the justification.

use crate::config::Config;
use crate::facts::FileKind;
use crate::{Diagnostic, Workspace};

/// Rule id.
pub const RULE: &str = "tolerance-literal";

/// Runs the rule.
pub fn check(ws: &Workspace, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if f.kind != FileKind::Src {
            continue;
        }
        for t in &f.tols {
            if t.in_const_def || f.is_test_line(t.line) {
                continue;
            }
            out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                t.line,
                format!(
                    "bare tolerance literal `{}` in a comparison: name it as a `const` (and \
                     check whether it must match an existing contract constant — drift \
                     between copies of a tolerance silently changes cache-key behaviour)",
                    t.literal
                ),
            ));
        }
    }
}
