//! **store-format**: the persistent-store codec surface must not change
//! without a `STORE_FORMAT_VERSION` bump.
//!
//! The surface is: whole-file normalized token streams (`surface-file`),
//! `lint:store-surface-begin/end` regions (`surface-region`), and the
//! literal values of registered constants (`surface-const` — the KAK
//! face-snap and SU(4) class tolerances, whose values decide which cache
//! keys collide on disk). All fingerprints live in a committed registry
//! keyed by the version. The rule compares live workspace against
//! registry:
//!
//! * live version ≠ registry version → the registry is stale: regenerate
//!   it (`--update-store-registry`) as part of the bump commit;
//! * versions equal but a fingerprint/constant differs → the codec
//!   surface changed **without** a version bump — exactly the silent
//!   corruption this rule exists to stop.

use crate::config::Config;
use crate::{compute_registry, Diagnostic, StoreRegistry, Workspace};

/// Rule id.
pub const RULE: &str = "store-format";

/// Runs the rule. Returns `Err` only for setup problems (missing
/// registry file, malformed config) that should abort the run loudly.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    let Some(reg_rel) = cfg.registry_file.as_ref() else {
        return Ok(()); // rule not configured (fixture workspaces)
    };
    let reg_path = ws.root.join(reg_rel);
    let text = std::fs::read_to_string(&reg_path).map_err(|e| {
        format!(
            "store-format: cannot read registry {}: {e} (run --update-store-registry once)",
            reg_path.display()
        )
    })?;
    let committed = StoreRegistry::parse(&text)?;
    let live = compute_registry(ws, cfg)?;

    let (vfile, vname) = cfg.version_const.as_ref().expect("compute_registry checked this");
    if live.version != committed.version {
        out.push(Diagnostic::deny(
            RULE,
            vfile,
            line_of_const(ws, vfile, vname),
            format!(
                "{vname} is {} but the committed registry ({reg_rel}) records {}; \
                 regenerate it with `cargo run -p reqisc-lint -- --update-store-registry` \
                 and commit both in the version-bump change",
                live.version, committed.version
            ),
        ));
        // Version mismatch explains every downstream fingerprint delta;
        // don't pile on.
        return Ok(());
    }

    for (path, fp) in &live.surfaces {
        match committed.surfaces.get(path) {
            Some(c) if c == fp => {}
            Some(_) => out.push(mismatch(ws, path, vname)),
            None => out.push(Diagnostic::deny(
                RULE,
                path,
                1,
                format!("file is a declared codec surface but {reg_rel} has no entry for it; \
                         bump {vname} and regenerate the registry"),
            )),
        }
    }
    for (path, fp) in &live.regions {
        match committed.regions.get(path) {
            Some(c) if c == fp => {}
            Some(_) => out.push(mismatch(ws, path, vname)),
            None => out.push(Diagnostic::deny(
                RULE,
                path,
                1,
                format!("marked store-surface region has no entry in {reg_rel}; \
                         bump {vname} and regenerate the registry"),
            )),
        }
    }
    for (key, val) in &live.consts {
        let (path, name) = key.split_once("::").unwrap_or((key.as_str(), ""));
        match committed.consts.get(key) {
            Some(c) if c == val => {}
            Some(c) => out.push(Diagnostic::deny(
                RULE,
                path,
                line_of_const(ws, path, name),
                format!(
                    "{name} changed from {c} to {val}: this constant decides which cache \
                     entries collide on disk, so existing stores silently return stale \
                     results; bump {vname} and regenerate the registry"
                ),
            )),
            None => out.push(Diagnostic::deny(
                RULE,
                path,
                line_of_const(ws, path, name),
                format!("{name} is a declared surface constant but has no registry entry; \
                         regenerate the registry"),
            )),
        }
    }
    Ok(())
}

fn mismatch(ws: &Workspace, path: &str, vname: &str) -> Diagnostic {
    let _ = ws;
    Diagnostic::deny(
        RULE,
        path,
        1,
        format!(
            "codec surface changed without a {vname} bump: on-disk stores written by \
             the previous build would be mis-decoded by this one; bump the version \
             (readers then reject old stores cleanly) and regenerate the registry"
        ),
    )
}

fn line_of_const(ws: &Workspace, path: &str, name: &str) -> u32 {
    ws.file(path)
        .and_then(|f| {
            f.tokens.windows(2).find_map(|w| {
                (w[0].text == "const" && w[1].text == name).then_some(w[0].line)
            })
        })
        .unwrap_or(1)
}
