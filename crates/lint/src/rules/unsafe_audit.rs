//! **unsafe-audit**: `unsafe` is quarantined and justified.
//!
//! Two checks, both driven by the `unsafe-scope` directives:
//!
//! * **Scope** — an `unsafe` block/impl/fn anywhere outside a declared
//!   `unsafe-scope` directory prefix is denied, in every file kind.
//!   Today only `crates/shmem` (the mmap segment) is in scope; unsafe
//!   cannot silently creep into the service or compiler crates.
//! * **Justification** — inside the scope, every production (`src/`,
//!   non-`#[cfg(test)]`) `unsafe` site needs an *attached* `// SAFETY:`
//!   comment: the nearest `SAFETY:` comment at or above the site, with
//!   no code tokens between it and the site (or at most two lines away,
//!   for multi-line statements whose `unsafe` sits below the statement
//!   head).
//!
//! The rule is inactive when no `unsafe-scope` is declared, so fixture
//! workspaces and the mutation tests opt in explicitly.

use crate::config::Config;
use crate::facts::{FileKind, SourceFile, UnsafeKind};
use crate::{Diagnostic, Workspace};

/// Rule id.
pub const RULE: &str = "unsafe-audit";

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.unsafe_scopes.is_empty() {
        return;
    }
    for f in &ws.files {
        let scoped = cfg.in_unsafe_scope(&f.rel);
        for site in &f.unsafes {
            let what = match site.kind {
                UnsafeKind::Block => "`unsafe` block",
                UnsafeKind::Impl => "`unsafe impl`",
                UnsafeKind::Fn => "`unsafe fn`",
                UnsafeKind::Extern => "`unsafe extern`",
                UnsafeKind::Other => "`unsafe`",
            };
            if !scoped {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    site.line,
                    format!(
                        "{what} outside every declared `unsafe-scope` (crates/lint/lint.conf): \
                         keep unsafe code quarantined in the scoped crates, or extend the scope \
                         deliberately in the same change that reviews the new crate's invariants"
                    ),
                ));
                continue;
            }
            if f.kind != FileKind::Src || f.is_test_line(site.line) {
                continue;
            }
            if !safety_attached(f, site.line) {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    site.line,
                    format!(
                        "{what} without an attached `// SAFETY:` comment: state the invariant \
                         that makes this sound (what guarantees the pointer/length/lifetime) \
                         directly above the site"
                    ),
                ));
            }
        }
    }
}

/// True when the nearest `SAFETY:` comment at or above `line` is attached
/// to it: no code tokens strictly between, or at most two lines away.
fn safety_attached(f: &SourceFile, line: u32) -> bool {
    let Some(&s) = f.safety_lines.iter().filter(|&&s| s <= line).max() else {
        return false;
    };
    line - s <= 2 || !f.tokens.iter().any(|t| t.line > s && t.line < line)
}
