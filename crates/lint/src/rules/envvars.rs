//! **env-registry**: every `REQISC_*` environment variable has exactly
//! one declaration, in the registry module, with a doc line.
//!
//! Before the registry existed, the same variable name was spelled as a
//! string literal in four crates, and a typo in one of them meant a
//! silently-ignored knob. Now: a string literal that *is exactly* a
//! `REQISC_*` name (messages merely mentioning one are fine) may only
//! appear in the configured `env-registry` file, where it must be the
//! `name:` field of a knob followed by a non-empty `doc:` string.
//! Everyone else references the registry's typed knob.

use crate::config::Config;
use crate::facts::SourceFile;
use crate::lexer::TokKind;
use crate::{Diagnostic, Workspace};
use std::collections::BTreeMap;

/// Rule id.
pub const RULE: &str = "env-registry";

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let Some(reg_rel) = cfg.env_registry.as_ref() else { return };

    for f in &ws.files {
        if &f.rel == reg_rel {
            check_registry(f, out);
        } else {
            for lit in &f.env_lits {
                if f.is_test_line(lit.line) {
                    continue;
                }
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    lit.line,
                    format!(
                        "`{}` spelled as a string literal outside the registry: declare the \
                         knob once in {reg_rel} (with its doc line) and reference it as \
                         `reqisc_env::<KNOB>` — stray literals are how typo'd env vars get \
                         silently ignored",
                        lit.text
                    ),
                ));
            }
        }
    }
}

/// Inside the registry: every `REQISC_*` literal must be a knob `name:`
/// immediately followed by `doc: "non-empty"`, and declared only once.
fn check_registry(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
    for lit in &f.env_lits {
        if f.is_test_line(lit.line) {
            continue;
        }
        if let Some(&first) = seen.get(lit.text.as_str()) {
            out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                lit.line,
                format!("`{}` declared twice in the registry (first at line {first})", lit.text),
            ));
            continue;
        }
        seen.insert(&lit.text, lit.line);
        // Expect: Str `,` doc `:` Str(non-empty)
        let t = &f.tokens;
        let i = lit.pos;
        let ok = t.get(i + 1).map(|x| x.text == ",").unwrap_or(false)
            && t.get(i + 2).map(|x| x.text == "doc").unwrap_or(false)
            && t.get(i + 3).map(|x| x.text == ":").unwrap_or(false)
            && t.get(i + 4)
                .map(|x| x.kind == TokKind::Str && !x.text.trim().is_empty())
                .unwrap_or(false);
        if !ok {
            out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                lit.line,
                format!(
                    "`{}` declared without a doc line: every knob in the registry carries \
                     `doc: \"…\"` so the README table and `--help` stay generatable",
                    lit.text
                ),
            ));
        }
    }
}
