//! **publish-protocol**: the shared-memory segment's lock-free
//! publish/probe ordering discipline, machine-checked.
//!
//! The segment publishes an entry by writing payload bytes with plain
//! stores, then storing the commit word with `Release`, then handing the
//! offset to probers through an index CAS; probers `Acquire` the commit
//! word before reading any entry byte. Delete the Release, reorder the
//! CAS before the commit, or slip a plain write in after the commit, and
//! the protocol is silently broken for exactly the interleavings the
//! sched-model tests don't enumerate. This rule pins the discipline to
//! `lint:protocol-begin(publish|probe)` / `lint:protocol-end(…)` marked
//! regions:
//!
//! * **publish** — at least one `Release` store (the first one is *the*
//!   commit store); no plain mapping write (`protocol-plain-write`
//!   names) and no sub-Release store after the commit store; at least
//!   one `compare_exchange[_weak]`, the last of which must come after
//!   the commit store with success ordering ≥ `Release`.
//! * **probe** — every atomic load is `Acquire` (justified `Relaxed`
//!   metadata loads take a `lint:allow`); at least one Acquire load
//!   exists; no plain mapping read (`protocol-plain-read` names) before
//!   the first Acquire load; no plain mapping write at all.
//!
//! Files declared `protocol-file` must carry at least one region of each
//! kind — deleting the markers is itself a violation, so the rule cannot
//! be disabled by accident. Unclosed `begin` markers are denied too.

use crate::config::Config;
use crate::facts::SourceFile;
use crate::{Diagnostic, Workspace};

/// Rule id.
pub const RULE: &str = "publish-protocol";

/// One ordered event inside a region.
enum Ev<'a> {
    /// `.store(…, Ordering::X)` — ordering, line.
    Store(&'a str, u32),
    /// `.load(Ordering::X)` — ordering, line.
    Load(&'a str, u32),
    /// `compare_exchange[_weak]` — success ordering, line.
    Cas(&'a str, u32),
    /// A `protocol-plain-write` call — name, line.
    PlainWrite(&'a str, u32),
    /// A `protocol-plain-read` call — name, line.
    PlainRead(&'a str, u32),
}

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for path in &cfg.protocol_files {
        let Some(f) = ws.file(path) else {
            out.push(Diagnostic::deny(
                RULE,
                path,
                1,
                "declared `protocol-file` is not in the scan".into(),
            ));
            continue;
        };
        for kind in ["publish", "probe"] {
            if !f.protocol_regions.iter().any(|(k, _, _)| k == kind) {
                out.push(Diagnostic::deny(
                    RULE,
                    path,
                    1,
                    format!(
                        "declared `protocol-file` has no `lint:protocol-begin({kind})` region; \
                         without the markers the publish-protocol rule silently checks nothing — \
                         restore them around the {kind} path"
                    ),
                ));
            }
        }
    }

    for f in &ws.files {
        for (kind, a, b) in &f.protocol_regions {
            if *b == u32::MAX {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    *a,
                    format!(
                        "`lint:protocol-begin({kind})` is never closed by a \
                         `lint:protocol-end({kind})` marker"
                    ),
                ));
                continue;
            }
            match kind.as_str() {
                "publish" => check_publish(f, cfg, *a, *b, out),
                "probe" => check_probe(f, cfg, *a, *b, out),
                other => out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    *a,
                    format!("unknown protocol region kind `{other}` (expected publish or probe)"),
                )),
            }
        }
    }
}

/// Region events in token order.
fn events<'a>(f: &'a SourceFile, cfg: &'a Config, a: u32, b: u32) -> Vec<(usize, Ev<'a>)> {
    let mut evs: Vec<(usize, Ev<'a>)> = Vec::new();
    for s in &f.atomics {
        if s.line < a || s.line > b {
            continue;
        }
        let ord = s.orderings.first().map(String::as_str).unwrap_or("");
        match s.method.as_str() {
            "store" => evs.push((s.pos, Ev::Store(ord, s.line))),
            "load" => evs.push((s.pos, Ev::Load(ord, s.line))),
            "compare_exchange" | "compare_exchange_weak" => {
                evs.push((s.pos, Ev::Cas(ord, s.line)))
            }
            _ => {}
        }
    }
    for (_, c) in &f.calls {
        if c.line < a || c.line > b {
            continue;
        }
        if cfg.protocol_plain_writes.contains(&c.name) {
            evs.push((c.pos, Ev::PlainWrite(&c.name, c.line)));
        } else if cfg.protocol_plain_reads.contains(&c.name) {
            evs.push((c.pos, Ev::PlainRead(&c.name, c.line)));
        }
    }
    evs.sort_by_key(|(pos, _)| *pos);
    evs
}

fn is_release(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel" | "SeqCst")
}

fn is_acquire(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel" | "SeqCst")
}

fn check_publish(f: &SourceFile, cfg: &Config, a: u32, b: u32, out: &mut Vec<Diagnostic>) {
    let evs = events(f, cfg, a, b);
    // The commit store is the first Release store in the region.
    let commit = evs.iter().position(|(_, e)| matches!(e, Ev::Store(ord, _) if is_release(ord)));
    let Some(commit) = commit else {
        out.push(Diagnostic::deny(
            RULE,
            &f.rel,
            a,
            format!(
                "publish region (lines {a}-{b}) has no Release commit-word store: without the \
                 Release fence the plain payload writes are not ordered before the commit word \
                 and probers can read torn entries"
            ),
        ));
        return;
    };

    for (_, e) in &evs[commit + 1..] {
        match e {
            Ev::PlainWrite(name, line) => out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                *line,
                format!(
                    "plain mapping write `{name}` after the Release commit store: bytes written \
                     here race with probers that already Acquired the commit word — move it \
                     before the commit"
                ),
            )),
            Ev::Store(ord, line) if !is_release(ord) => out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                *line,
                format!(
                    "`store(…, Ordering::{ord})` after the Release commit store: every mapping \
                     store past the commit must itself be Release (probers may already see the \
                     entry)"
                ),
            )),
            _ => {}
        }
    }

    let last_cas = evs.iter().rposition(|(_, e)| matches!(e, Ev::Cas(_, _)));
    match last_cas {
        None => out.push(Diagnostic::deny(
            RULE,
            &f.rel,
            a,
            format!(
                "publish region (lines {a}-{b}) has no index-handoff CAS \
                 (compare_exchange[_weak]): the slot must be claimed atomically or two \
                 publishers can hand out the same index entry"
            ),
        )),
        Some(ci) => {
            let Ev::Cas(success, line) = evs[ci].1 else { unreachable!() };
            if ci < commit {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    line,
                    "the index-handoff CAS precedes the Release commit-word store: a prober \
                     that wins the race through the index reads an uncommitted entry"
                        .into(),
                ));
            }
            if !is_release(success) {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    line,
                    format!(
                        "index-handoff CAS success ordering `{success}` is weaker than Release: \
                         the slot publication must carry at least Release so the committed entry \
                         is visible to probers that Acquire the slot"
                    ),
                ));
            }
        }
    }
}

fn check_probe(f: &SourceFile, cfg: &Config, a: u32, b: u32, out: &mut Vec<Diagnostic>) {
    let evs = events(f, cfg, a, b);
    let first_acq = evs.iter().position(|(_, e)| matches!(e, Ev::Load(ord, _) if is_acquire(ord)));
    if first_acq.is_none() {
        out.push(Diagnostic::deny(
            RULE,
            &f.rel,
            a,
            format!(
                "probe region (lines {a}-{b}) never performs an Acquire load: the commit word \
                 must be Acquired before any entry byte is trusted"
            ),
        ));
    }
    for (i, (_, e)) in evs.iter().enumerate() {
        match e {
            Ev::Load(ord, line) if !is_acquire(ord) => out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                *line,
                format!(
                    "probe-side `load(Ordering::{ord})`: probes must Acquire the commit word / \
                     index slot, or the entry bytes they read afterwards are unordered \
                     (justify intentionally-Relaxed metadata loads with a lint:allow)"
                ),
            )),
            Ev::PlainRead(name, line) if first_acq.map(|fa| i < fa).unwrap_or(true) => {
                out.push(Diagnostic::deny(
                    RULE,
                    &f.rel,
                    *line,
                    format!(
                        "entry bytes read (`{name}`) before any Acquire load in this probe \
                         region: the commit word must be Acquired first"
                    ),
                ))
            }
            Ev::PlainWrite(name, line) => out.push(Diagnostic::deny(
                RULE,
                &f.rel,
                *line,
                format!(
                    "plain mapping write `{name}` inside a probe region: probers never mutate \
                     entry bytes (stamp maintenance goes through Relaxed atomic stores)"
                ),
            )),
            _ => {}
        }
    }
}
