//! **blocking-in-critical-section**: no blocking work under the
//! latency-critical locks.
//!
//! The config marks lock classes `non-blocking-lock` (the inflight map
//! and the pipeline rings: every request thread contends for them, so a
//! holder that blocks stalls the whole service). The rule runs a
//! held-locks dataflow over the shared call graph: each function's
//! *blocking summary* — built-in blocking I/O sites (`std::fs`,
//! `std::net`, …), `blocking-call` entry points (solvers, store
//! snapshots), and condvar waits — is propagated bottom-up through
//! uniquely-resolved calls, then every classed lock-hold window is
//! checked against both its direct events and the summaries of the
//! functions it calls while holding the lock.
//!
//! Condvar waits are classified by the `condvar-class` mapping: waiting
//! on the held lock's own condvar *releases* it (that's what a wait is)
//! and is fine; waiting on any other class — or an unmapped condvar —
//! parks the thread with the lock still held and is denied.
//!
//! Summaries are seeded from production code only (`src/`, outside
//! `#[cfg(test)]`), matching the other interprocedural rules.

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::facts::FileKind;
use crate::{Diagnostic, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Rule id.
pub const RULE: &str = "blocking-in-critical-section";

/// One blocking fact in a function's transitive summary.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Op {
    /// Built-in blocking I/O: what was matched, "file:line" origin.
    Io(String, String),
    /// A `blocking-call` entry point: name, origin.
    Entry(String, String),
    /// A condvar wait: mapped class (None = unmapped), condvar name,
    /// origin.
    Wait(Option<String>, String, String),
}

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.non_blocking_locks.is_empty() {
        return;
    }
    let cg = CallGraph::build(ws);

    // Per-function direct blocking facts (production code only).
    let mut seeds: BTreeMap<FnId, BTreeSet<Op>> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.kind != FileKind::Src {
            continue;
        }
        let site = |line: u32| format!("{}:{}", f.rel, line);
        // An allow at the blocking site clears the fact everywhere: it
        // never enters the summaries, so call-site diagnostics derived
        // from it vanish too (the model scheduler's park loop relies on
        // this).
        let dead = |line: u32| f.is_test_line(line) || f.allows_rule_at(RULE, line);
        for (fj, io) in &f.blocking_ops {
            if !dead(io.line) {
                seeds
                    .entry((fi, *fj))
                    .or_default()
                    .insert(Op::Io(io.what.clone(), site(io.line)));
            }
        }
        for (fj, c) in &f.calls {
            if cfg.blocking_calls.contains(&c.name) && !dead(c.line) {
                seeds
                    .entry((fi, *fj))
                    .or_default()
                    .insert(Op::Entry(c.name.clone(), site(c.line)));
            }
        }
        for (fj, w) in &f.waits {
            if !dead(w.line) {
                seeds.entry((fi, *fj)).or_default().insert(Op::Wait(
                    cfg.condvar_class_of(&w.condvar),
                    w.condvar.clone(),
                    site(w.line),
                ));
            }
        }
    }
    let summaries = cg.propagate(ws, cfg, seeds);

    // Check every non-blocking-classed hold window.
    for f in ws.files.iter().filter(|f| f.kind == FileKind::Src) {
        for (fj, ev) in &f.locks {
            let Some(held) = cfg.lock_class_of(&ev.receiver) else { continue };
            if !cfg.non_blocking_locks.contains(&held) || f.is_test_line(ev.line) {
                continue;
            }
            let window = |pos: usize| pos > ev.pos && pos < ev.held_until;

            // Direct blocking I/O inside the window.
            for (ij, io) in &f.blocking_ops {
                if ij == fj && window(io.pos) {
                    out.push(Diagnostic::deny(
                        RULE,
                        &f.rel,
                        io.line,
                        format!(
                            "performs `{}` I/O while holding non-blocking lock class `{held}`: \
                             every thread contending for `{held}` stalls behind the syscall — \
                             move the I/O outside the critical section",
                            io.what
                        ),
                    ));
                }
            }
            // Direct waits on a different (or unmapped) condvar class.
            for (wj, w) in &f.waits {
                if wj != fj || !window(w.pos) {
                    continue;
                }
                match cfg.condvar_class_of(&w.condvar) {
                    Some(c) if c == held => {} // waiting releases this lock
                    other => out.push(Diagnostic::deny(
                        RULE,
                        &f.rel,
                        w.line,
                        format!(
                            "waits on condvar `{}` ({}) while holding non-blocking lock class \
                             `{held}`: the wait parks the thread with `{held}` still held",
                            w.condvar,
                            other
                                .map(|c| format!("lock class `{c}`"))
                                .unwrap_or_else(|| "unmapped — declare a `condvar-class`".into()),
                        ),
                    )),
                }
            }
            // Calls made while held: direct blocking entries, then the
            // callee summaries from the dataflow.
            for (cj, call) in &f.calls {
                if cj != fj || !window(call.pos) {
                    continue;
                }
                if cfg.blocking_calls.contains(&call.name) {
                    out.push(Diagnostic::deny(
                        RULE,
                        &f.rel,
                        call.line,
                        format!(
                            "calls blocking entry `{}` while holding non-blocking lock class \
                             `{held}`: solver/store work under this lock serializes the whole \
                             service",
                            call.name
                        ),
                    ));
                    continue;
                }
                let Some(callee) = cg.resolve_unique(cfg, &call.name) else { continue };
                let Some(sum) = summaries.get(&callee) else { continue };
                // One diagnostic per category per call site.
                let mut seen_block = false;
                let mut seen_wait = false;
                for op in sum {
                    match op {
                        Op::Io(what, origin) if !seen_block => {
                            seen_block = true;
                            out.push(Diagnostic::deny(
                                RULE,
                                &f.rel,
                                call.line,
                                format!(
                                    "calls `{}` while holding non-blocking lock class `{held}`: \
                                     it reaches `{what}` I/O at {origin}",
                                    call.name
                                ),
                            ));
                        }
                        Op::Entry(name, origin) if !seen_block => {
                            seen_block = true;
                            out.push(Diagnostic::deny(
                                RULE,
                                &f.rel,
                                call.line,
                                format!(
                                    "calls `{}` while holding non-blocking lock class `{held}`: \
                                     it reaches blocking entry `{name}` at {origin}",
                                    call.name
                                ),
                            ));
                        }
                        Op::Wait(class, condvar, origin)
                            if !seen_wait && class.as_deref() != Some(held.as_str()) =>
                        {
                            seen_wait = true;
                            out.push(Diagnostic::deny(
                                RULE,
                                &f.rel,
                                call.line,
                                format!(
                                    "calls `{}` while holding non-blocking lock class `{held}`: \
                                     it can wait on condvar `{condvar}` at {origin} with \
                                     `{held}` still held",
                                    call.name
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
