//! The ten repo-specific rules. Each module exposes
//! `check(ws, cfg, out)` appending [`crate::Diagnostic`]s; suppression
//! and sorting happen centrally in [`crate::run_scanned`].

pub mod atomics;
pub mod blocking;
pub mod envvars;
pub mod locks;
pub mod panics;
pub mod protocol;
pub mod store_format;
pub mod sync_shim;
pub mod tolerances;
pub mod unsafe_audit;
