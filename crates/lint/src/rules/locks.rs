//! **lock-order**: lock acquisitions must respect the declared partial
//! order, including through calls.
//!
//! Facts: every zero-arg `.lock()`/`.read()`/`.write()` whose receiver
//! name maps to a declared lock class (`lock-class` in the config;
//! unmapped receivers — stdout locks, file handles — do not
//! participate). A `let`-bound guard is held to the end of the function
//! (or an explicit `drop(guard)`); a temporary is held to the end of its
//! statement, or through the block a `for`/`if let` header opens.
//!
//! Propagation: the shared approximate call graph
//! ([`crate::callgraph::CallGraph`]). A call site resolves when its
//! callee name matches exactly one function definition in the workspace
//! and is not on the `call-ignore` blocklist (std-collection method
//! names); the callee's transitively-acquired lock classes are treated
//! as acquired at the call site.
//!
//! Violations: taking a class while holding one with no declared
//! `lock-order outer inner` path (inversions of a declared edge get a
//! sharper message), and re-acquiring a held class (self-deadlock for
//! the `Mutex`-backed classes).

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::facts::{LockEvent, SourceFile};
use crate::{Diagnostic, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Rule id.
pub const RULE: &str = "lock-order";

/// Runs the rule.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.lock_classes.is_empty() {
        return;
    }

    let cg = CallGraph::build(ws);

    // Classed lock events per function.
    let mut fn_locks: BTreeMap<FnId, Vec<(String, LockEvent)>> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (fj, ev) in &f.locks {
            if let Some(class) = cfg.lock_class_of(&ev.receiver) {
                fn_locks.entry((fi, *fj)).or_default().push((class, ev.clone()));
            }
        }
    }

    // Transitive acquires per function (fixpoint over the call graph).
    let mut seeds: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
    for (k, evs) in &fn_locks {
        seeds.insert(*k, evs.iter().map(|(c, _)| c.clone()).collect());
    }
    let acquires = cg.propagate(ws, cfg, seeds);

    // Check each lock event's hold window.
    for (fi, f) in ws.files.iter().enumerate() {
        for (fj, func) in f.fns.iter().enumerate() {
            let _ = func;
            let Some(evs) = fn_locks.get(&(fi, fj)) else { continue };
            for (outer_class, outer) in evs {
                // Direct nesting with another classed acquisition.
                for (inner_class, inner) in evs {
                    if inner.pos > outer.pos && inner.pos < outer.held_until {
                        report_pair(cfg, f, outer_class, inner_class, inner.line, None, out);
                    }
                }
                // Calls made while held.
                for (cj, call) in &f.calls {
                    if cj != &fj || call.pos <= outer.pos || call.pos >= outer.held_until {
                        continue;
                    }
                    let Some(callee) = cg.resolve_unique(cfg, &call.name) else { continue };
                    let Some(inner_set) = acquires.get(&callee) else { continue };
                    for inner_class in inner_set {
                        report_pair(
                            cfg,
                            f,
                            outer_class,
                            inner_class,
                            call.line,
                            Some(call.name.as_str()),
                            out,
                        );
                    }
                }
            }
        }
    }
}

fn report_pair(
    cfg: &Config,
    f: &SourceFile,
    outer: &str,
    inner: &str,
    line: u32,
    via: Option<&str>,
    out: &mut Vec<Diagnostic>,
) {
    let via_txt = via.map(|v| format!(" via call to `{v}`")).unwrap_or_default();
    if inner == outer {
        out.push(Diagnostic::deny(
            RULE,
            &f.rel,
            line,
            format!("re-acquires lock class `{outer}`{via_txt} while it is already held (self-deadlock)"),
        ));
    } else if !cfg.order_allows(outer, inner) {
        let msg = if cfg.order_allows(inner, outer) {
            format!(
                "acquires `{inner}`{via_txt} while holding `{outer}`, inverting the declared \
                 lock order `{inner} < {outer}` (deadlock with any thread taking them in order)"
            )
        } else {
            format!(
                "acquires `{inner}`{via_txt} while holding `{outer}` with no declared order \
                 between them; declare `lock-order {outer} {inner}` in crates/lint/lint.conf \
                 (after checking every other nesting of the pair) or release `{outer}` first"
            )
        };
        out.push(Diagnostic::deny(RULE, &f.rel, line, msg));
    }
}
