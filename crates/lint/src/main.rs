//! `reqisc-lint` CLI: runs the ten workspace invariant rules and exits
//! non-zero on any deny diagnostic.
//!
//! ```text
//! reqisc-lint [--root DIR] [--json] [--deny-all] [--update-store-registry]
//!             [--explain RULE]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

/// `(rule id, contract)` pairs for `--explain`, so CI failures are
/// self-describing without digging through rule sources.
const EXPLAIN: &[(&str, &str)] = &[
    (
        "store-format",
        "The persistent-store codec surface (surface-file token streams, \
         lint:store-surface-begin/end regions, registered constants) is fingerprinted into \
         crates/lint/store_surface.lock keyed by STORE_FORMAT_VERSION. Changing any of it \
         without bumping the version and regenerating the registry \
         (--update-store-registry) is denied: a silent surface change corrupts on-disk \
         caches for every deployed daemon.",
    ),
    (
        "lock-order",
        "Lock acquisitions (receiver names mapped to classes by `lock-class`) must respect \
         the declared `lock-order outer inner` partial order, including through calls \
         resolved over the approximate call graph. Re-acquiring a held class is a \
         self-deadlock; inverting a declared edge deadlocks against any thread taking them \
         in order.",
    ),
    (
        "atomic-ordering",
        "SeqCst is denied (this codebase's protocols are all pairwise Release/Acquire), and \
         every Release store must have a workspace-visible Acquire load of the same field \
         (and vice versa) — an unpaired half of a handoff is almost always a bug.",
    ),
    (
        "panic-path",
        "No unwrap()/expect(\"…\")/direct indexing in functions reachable from the \
         `panic-entry` service request-path entry points (closure over functions defined \
         under `panic-scope`). A panic there silently kills a worker or accept thread; \
         return an error response instead.",
    ),
    (
        "tolerance-literal",
        "No bare 1e-N comparison literals outside named-constant definitions: numeric \
         tolerances are contracts (some are part of the disk-format key space) and live in \
         one auditable place.",
    ),
    (
        "env-registry",
        "Every REQISC_* environment-variable literal must be declared exactly once, with a \
         doc line, in the registry module (`env-registry` directive) — no undocumented \
         knobs.",
    ),
    (
        "sync-shim",
        "Inside `sync-shim-scope`, mutexes/condvars/atomics/spawns come from the \
         crate::sync / reqisc_sched shim, never raw std::sync or bare std::thread::spawn, \
         so `--features sched-model` can drive every sync site through the interleaving \
         explorer.",
    ),
    (
        "unsafe-audit",
        "`unsafe` is only permitted under the `unsafe-scope` directory prefixes (today: the \
         shmem mmap crate), and every production unsafe block/impl/fn needs an attached \
         `// SAFETY:` comment stating the invariant that makes it sound. Unsafe cannot \
         silently creep into the service or compiler crates.",
    ),
    (
        "publish-protocol",
        "Inside lint:protocol-begin(publish)/(probe) regions (the shmem segment's lock-free \
         paths): the commit word is stored with Release, the index handoff is a \
         compare_exchange after the commit with success ordering >= Release, no plain \
         mapping write follows the commit store, and probes Acquire before reading any \
         entry byte. Files declared `protocol-file` must carry both region kinds, so \
         deleting the markers is itself a violation.",
    ),
    (
        "blocking-in-critical-section",
        "A held-locks dataflow over the call graph: while a lock class marked \
         `non-blocking-lock` (the inflight map, the pipeline rings) is held, file/socket \
         I/O, waits on a different (or unmapped) condvar class, and `blocking-call` entry \
         points (solvers, store snapshots) are denied — directly or through any chain of \
         uniquely-resolved calls.",
    ),
];

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_all = false;
    let mut update_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--update-store-registry" => update_registry = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    return usage("--explain needs a rule id (or `all`)");
                };
                return explain(&rule);
            }
            "--help" | "-h" => {
                println!(
                    "reqisc-lint: workspace invariant analyzer\n\n\
                     USAGE: reqisc-lint [--root DIR] [--json] [--deny-all] [--update-store-registry]\n\
                     \x20                 [--explain RULE]\n\n\
                     Rules: store-format, lock-order, atomic-ordering, panic-path,\n\
                     tolerance-literal, env-registry, sync-shim, unsafe-audit,\n\
                     publish-protocol, blocking-in-critical-section. All deny by default;\n\
                     --deny-all additionally promotes any warn-level diagnostics.\n\n\
                     --explain RULE prints the rule's contract (`--explain all` for every\n\
                     rule).\n\n\
                     Suppress a finding with `// lint:allow(rule, reason)` on (or above)\n\
                     its line, or `// lint:allow-file(rule, reason)` anywhere in the file.\n\n\
                     --update-store-registry recomputes crates/lint/store_surface.lock\n\
                     from the live workspace; run it in the same commit that bumps\n\
                     STORE_FORMAT_VERSION."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match reqisc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("reqisc-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = match reqisc_lint::load_workspace_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("reqisc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_registry {
        return match reqisc_lint::update_store_registry(&root, &cfg) {
            Ok(path) => {
                eprintln!("reqisc-lint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("reqisc-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let outcome = match reqisc_lint::run(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("reqisc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut diags = outcome.diagnostics;
    if deny_all {
        for d in &mut diags {
            d.severity = reqisc_lint::Severity::Deny;
        }
    }

    if json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            println!("  {}{comma}", d.render_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        eprintln!(
            "reqisc-lint: {} file(s), {} finding(s), {} suppressed",
            outcome.files_scanned,
            diags.len(),
            outcome.suppressed
        );
    }

    if diags.iter().any(|d| d.severity == reqisc_lint::Severity::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("reqisc-lint: {msg} (see --help)");
    ExitCode::from(2)
}

fn explain(rule: &str) -> ExitCode {
    if rule == "all" {
        for (id, text) in EXPLAIN {
            println!("{id}:\n  {}\n", rewrap(text));
        }
        return ExitCode::SUCCESS;
    }
    match EXPLAIN.iter().find(|(id, _)| *id == rule) {
        Some((id, text)) => {
            println!("{id}:\n  {}", rewrap(text));
            ExitCode::SUCCESS
        }
        None => {
            let ids: Vec<&str> = EXPLAIN.iter().map(|(id, _)| *id).collect();
            usage(&format!("unknown rule `{rule}`; known rules: {}", ids.join(", ")))
        }
    }
}

/// Rewraps a contract paragraph to ~76 columns under a two-space indent.
fn rewrap(text: &str) -> String {
    let mut out = String::new();
    let mut col = 0usize;
    for word in text.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 76 {
            out.push_str("\n  ");
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out
}
