//! `reqisc-lint` CLI: runs the seven workspace invariant rules and exits
//! non-zero on any deny diagnostic.
//!
//! ```text
//! reqisc-lint [--root DIR] [--json] [--deny-all] [--update-store-registry]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_all = false;
    let mut update_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--update-store-registry" => update_registry = true,
            "--help" | "-h" => {
                println!(
                    "reqisc-lint: workspace invariant analyzer\n\n\
                     USAGE: reqisc-lint [--root DIR] [--json] [--deny-all] [--update-store-registry]\n\n\
                     Rules: store-format, lock-order, atomic-ordering, panic-path,\n\
                     tolerance-literal, env-registry, sync-shim. All deny by default;\n\
                     --deny-all additionally promotes any warn-level diagnostics.\n\n\
                     Suppress a finding with `// lint:allow(rule, reason)` on (or above)\n\
                     its line, or `// lint:allow-file(rule, reason)` anywhere in the file.\n\n\
                     --update-store-registry recomputes crates/lint/store_surface.lock\n\
                     from the live workspace; run it in the same commit that bumps\n\
                     STORE_FORMAT_VERSION."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match reqisc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("reqisc-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = match reqisc_lint::load_workspace_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("reqisc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_registry {
        return match reqisc_lint::update_store_registry(&root, &cfg) {
            Ok(path) => {
                eprintln!("reqisc-lint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("reqisc-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let outcome = match reqisc_lint::run(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("reqisc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut diags = outcome.diagnostics;
    if deny_all {
        for d in &mut diags {
            d.severity = reqisc_lint::Severity::Deny;
        }
    }

    if json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            println!("  {}{comma}", d.render_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        eprintln!(
            "reqisc-lint: {} file(s), {} finding(s), {} suppressed",
            outcome.files_scanned,
            diags.len(),
            outcome.suppressed
        );
    }

    if diags.iter().any(|d| d.severity == reqisc_lint::Severity::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("reqisc-lint: {msg} (see --help)");
    ExitCode::from(2)
}
