//! The approximate workspace call graph shared by the interprocedural
//! rules (lock-order, panic-path, blocking-in-critical-section).
//!
//! Resolution is name-based: a call site resolves when its callee name
//! matches function definitions in the indexed file set. Two policies sit
//! on top of the index:
//!
//! * [`CallGraph::resolve_unique`] — exactly one definition and not on
//!   the config's `call-ignore` blocklist (std-collection method names
//!   that would otherwise collide with workspace functions). Used where
//!   a false edge would produce a false *positive* (lock-order,
//!   blocking-in-critical-section).
//! * [`CallGraph::reachable_from`] — every definition of a name is an
//!   edge target. Used where a missed edge would produce a false
//!   *negative* (panic-path's conservative closure).
//!
//! [`CallGraph::propagate`] runs the bottom-up fixpoint both lock-order
//! and blocking-in-critical-section need: per-function seed sets are
//! unioned into every (uniquely-resolved) caller until nothing changes —
//! the dataflow that lets a rule see what a function *transitively* does
//! (locks it acquires, I/O it reaches) from any call site.

use crate::config::Config;
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A function identity: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// Name → definitions index over (a subset of) the scanned workspace.
pub struct CallGraph {
    defs: HashMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Indexes every function definition in the workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        CallGraph::build_filtered(ws, |_| true)
    }

    /// Indexes only the files `keep` accepts (by file index) — the
    /// panic-path rule restricts edges to its scope directories so the
    /// closure cannot leak out of the subsystem.
    pub fn build_filtered(ws: &Workspace, keep: impl Fn(usize) -> bool) -> CallGraph {
        let mut defs: HashMap<String, Vec<FnId>> = HashMap::new();
        for (fi, f) in ws.files.iter().enumerate() {
            if !keep(fi) {
                continue;
            }
            for (fj, func) in f.fns.iter().enumerate() {
                defs.entry(func.name.clone()).or_default().push((fi, fj));
            }
        }
        CallGraph { defs }
    }

    /// All definitions of `name`.
    pub fn defs(&self, name: &str) -> &[FnId] {
        self.defs.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves `name` when it has exactly one definition and is not on
    /// the `call-ignore` blocklist.
    pub fn resolve_unique(&self, cfg: &Config, name: &str) -> Option<FnId> {
        if cfg.call_ignore.contains(name) {
            return None;
        }
        match self.defs.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// Conservative reachability closure from every indexed function
    /// whose name is in `entries`: follows **all** definitions of every
    /// called name.
    pub fn reachable_from(&self, ws: &Workspace, entries: &HashSet<String>) -> HashSet<FnId> {
        let mut reachable: HashSet<FnId> = HashSet::new();
        let mut stack: Vec<FnId> = Vec::new();
        for targets in self.defs.values() {
            for &(fi, fj) in targets {
                if entries.contains(&ws.files[fi].fns[fj].name) {
                    stack.push((fi, fj));
                }
            }
        }
        while let Some(node) = stack.pop() {
            if !reachable.insert(node) {
                continue;
            }
            let (fi, fj) = node;
            for (cj, call) in &ws.files[fi].calls {
                if *cj != fj {
                    continue;
                }
                stack.extend(self.defs(&call.name));
            }
        }
        reachable
    }

    /// Bottom-up fixpoint: unions each uniquely-resolved callee's set
    /// into its caller until stable. `seeds` holds each function's
    /// direct facts; the result adds everything transitively reachable.
    pub fn propagate<K: Ord + Clone>(
        &self,
        ws: &Workspace,
        cfg: &Config,
        seeds: BTreeMap<FnId, BTreeSet<K>>,
    ) -> BTreeMap<FnId, BTreeSet<K>> {
        let mut sets = seeds;
        loop {
            let mut changed = false;
            for (fi, f) in ws.files.iter().enumerate() {
                for (fj, call) in &f.calls {
                    let Some(callee) = self.resolve_unique(cfg, &call.name) else { continue };
                    let Some(inner) = sets.get(&callee).cloned() else { continue };
                    let entry = sets.entry((fi, *fj)).or_default();
                    for k in inner {
                        changed |= entry.insert(k);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::SourceFile;
    use std::path::PathBuf;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: srcs
                .iter()
                .map(|(rel, src)| SourceFile::extract(rel.to_string(), src))
                .collect(),
        }
    }

    #[test]
    fn unique_resolution_and_ignore_list() {
        let w = ws(&[
            ("a.rs", "fn top() { helper(); get(); }\nfn helper() {}\n"),
            ("b.rs", "fn get() {}\nfn helper2() {}\nfn get2() {}\nfn get2() {}\n"),
        ]);
        let cfg = Config::parse("call-ignore get\n").unwrap();
        let cg = CallGraph::build(&w);
        assert_eq!(cg.resolve_unique(&cfg, "helper"), Some((0, 1)));
        assert_eq!(cg.resolve_unique(&cfg, "get"), None, "ignored name");
        assert_eq!(cg.resolve_unique(&cfg, "get2"), None, "ambiguous name");
    }

    #[test]
    fn propagate_reaches_through_chains() {
        let w = ws(&[(
            "a.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let cfg = Config::parse("").unwrap();
        let cg = CallGraph::build(&w);
        let mut seeds: BTreeMap<FnId, BTreeSet<&str>> = BTreeMap::new();
        seeds.insert((0, 2), ["fact"].into_iter().collect());
        let sets = cg.propagate(&w, &cfg, seeds);
        assert!(sets[&(0, 0)].contains("fact"), "fact must flow leaf → mid → top");
        assert!(sets[&(0, 1)].contains("fact"));
    }

    #[test]
    fn reachability_follows_every_definition() {
        let w = ws(&[
            ("a.rs", "fn entry() { dual(); }\nfn dual() { a_only(); }\nfn a_only() {}\n"),
            ("b.rs", "fn dual() { b_only(); }\nfn b_only() {}\nfn island() {}\n"),
        ]);
        let cg = CallGraph::build(&w);
        let entries: HashSet<String> = ["entry".to_string()].into_iter().collect();
        let r = cg.reachable_from(&w, &entries);
        assert!(r.contains(&(0, 2)), "a_only via a.rs dual");
        assert!(r.contains(&(1, 1)), "b_only via b.rs dual (conservative)");
        assert!(!r.contains(&(1, 2)), "island untouched");
    }
}
