#![warn(missing_docs)]
//! # reqisc-lint
//!
//! A workspace invariant analyzer for the reqisc repo: a hand-rolled
//! static-analysis pass (no external parser crates) that tokenizes every
//! workspace `.rs` file, extracts per-file facts, and runs ten
//! repo-specific cross-file rules:
//!
//! * **store-format** — the persistent-store codec surface (byte codecs,
//!   record layout, class-snap tolerances) is fingerprinted into a
//!   committed registry keyed by `STORE_FORMAT_VERSION`; changing the
//!   surface without bumping the version fails.
//! * **lock-order** — lock acquisitions in the service/cache stack must
//!   respect the declared partial order (propagated through an
//!   approximate call graph).
//! * **atomic-ordering** — atomics are classified counter vs. handoff;
//!   `SeqCst` and unpaired `Release`/`Acquire` are flagged.
//! * **panic-path** — no `unwrap()`/`expect("…")`/direct indexing in
//!   functions reachable from service request-path entry points.
//! * **tolerance-literal** — no bare `1e-N` comparison literals outside
//!   named-constant definitions.
//! * **env-registry** — every `REQISC_*` env-var literal must be declared
//!   (with a doc line) in the single registry module.
//! * **sync-shim** — the service stack's mutexes, condvars, atomics and
//!   spawns come from the `reqisc-sched` shim (so `--features
//!   sched-model` can model-check them), never raw `std::sync` /
//!   `std::thread::spawn`.
//! * **unsafe-audit** — `unsafe` only in `unsafe-scope` crates, and
//!   every production site carries an attached `// SAFETY:` comment.
//! * **publish-protocol** — the shared-memory segment's lock-free
//!   publish/probe ordering (Release commit store, CAS index handoff,
//!   Acquire-before-read probes) inside `lint:protocol-begin/end`
//!   marked regions.
//! * **blocking-in-critical-section** — a held-locks dataflow over the
//!   call graph denies file/socket I/O, cross-class condvar waits, and
//!   solver entry points while a `non-blocking-lock` class is held.
//!
//! Diagnostics are deny-by-default and deterministic; suppress with
//! `// lint:allow(rule, reason)` (covers that line and the next) or
//! `// lint:allow-file(rule, reason)` at file granularity.

pub mod callgraph;
pub mod config;
pub mod facts;
pub mod lexer;
pub mod rules;

use config::Config;
use facts::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Diagnostic severity. Everything the ten rules emit is [`Severity::Deny`];
/// `Warn` exists for forward-compat with `--deny-all` promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory.
    Warn,
    /// Fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`store-format`, `lock-order`, …).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor for a deny diagnostic.
    pub fn deny(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic { rule, severity: Severity::Deny, file: file.to_string(), line, message }
    }

    /// Renders the canonical human form.
    pub fn render(&self) -> String {
        format!("{}[{}] {}:{}: {}", self.severity, self.rule, self.file, self.line, self.message)
    }

    /// Renders one JSON object (hand-rolled; no serde in this crate).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            self.severity,
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The scanned workspace: every fact-extracted `.rs` file, sorted by
/// path for determinism.
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Files in path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` for `.rs` files (skipping `target/`, hidden dirs, and
    /// the config's `skip-dir`s) and extracts facts from each.
    pub fn scan(root: &Path, cfg: &Config) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        walk(root, root, cfg, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let src = std::fs::read_to_string(root.join(&rel))
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            files.push(SourceFile::extract(rel, &src));
        }
        Ok(Workspace { root: root.to_path_buf(), files })
    }

    /// Looks up a scanned file by workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "walk escaped root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || cfg.is_skipped(&rel) {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && !cfg.is_skipped(&rel) {
            out.push(rel);
        }
    }
    Ok(())
}

/// FNV-1a 128-bit over a byte stream.
pub fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fingerprints a normalized token stream (comment- and
/// whitespace-insensitive: only token texts matter, joined with `\x1f`).
pub fn fingerprint_tokens(tokens: &[lexer::Token]) -> String {
    let mut buf = Vec::new();
    for t in tokens {
        buf.extend_from_slice(t.text.as_bytes());
        buf.push(0x1f);
    }
    format!("{:032x}", fnv128(&buf))
}

/// Fingerprints only the tokens inside the file's
/// `lint:store-surface-begin/end` regions.
pub fn fingerprint_regions(f: &SourceFile) -> String {
    let mut buf = Vec::new();
    for t in &f.tokens {
        if f.surface_regions.iter().any(|&(a, b)| t.line >= a && t.line <= b) {
            buf.extend_from_slice(t.text.as_bytes());
            buf.push(0x1f);
        }
    }
    format!("{:032x}", fnv128(&buf))
}

/// The committed store-surface registry (`store_surface.lock`).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct StoreRegistry {
    /// Registered `STORE_FORMAT_VERSION`.
    pub version: String,
    /// Whole-file fingerprints.
    pub surfaces: BTreeMap<String, String>,
    /// Marked-region fingerprints.
    pub regions: BTreeMap<String, String>,
    /// Registered constant literal values, keyed `file::NAME`.
    pub consts: BTreeMap<String, String>,
}

impl StoreRegistry {
    /// Parses the registry file format.
    pub fn parse(text: &str) -> Result<StoreRegistry, String> {
        let mut r = StoreRegistry::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["version", v] => r.version = v.to_string(),
                ["surface", path, fp] => {
                    r.surfaces.insert(path.to_string(), fp.to_string());
                }
                ["region", path, fp] => {
                    r.regions.insert(path.to_string(), fp.to_string());
                }
                ["const", path, name, value] => {
                    r.consts.insert(format!("{path}::{name}"), value.to_string());
                }
                _ => {
                    return Err(format!(
                        "store registry line {}: unrecognized entry `{line}`",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(r)
    }

    /// Serializes back to the committed file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# reqisc-lint store-format registry. Regenerate with:\n");
        out.push_str("#   cargo run -p reqisc-lint -- --update-store-registry\n");
        out.push_str("# after bumping STORE_FORMAT_VERSION in compiler/src/store.rs.\n");
        out.push_str(&format!("version {}\n", self.version));
        for (p, fp) in &self.surfaces {
            out.push_str(&format!("surface {p} {fp}\n"));
        }
        for (p, fp) in &self.regions {
            out.push_str(&format!("region {p} {fp}\n"));
        }
        for (k, v) in &self.consts {
            let (p, name) = k.split_once("::").unwrap_or((k.as_str(), ""));
            out.push_str(&format!("const {p} {name} {v}\n"));
        }
        out
    }
}

/// Computes the *current* surface registry from the scanned workspace.
pub fn compute_registry(ws: &Workspace, cfg: &Config) -> Result<StoreRegistry, String> {
    let mut r = StoreRegistry::default();
    let (vfile, vname) = cfg
        .version_const
        .as_ref()
        .ok_or("lint.conf: store-format rule needs a `version-const` directive")?;
    let f = ws.file(vfile).ok_or_else(|| format!("version-const file {vfile} not in scan"))?;
    r.version = const_literal(f, vname)
        .ok_or_else(|| format!("const {vname} not found in {vfile}"))?;
    for path in &cfg.surface_files {
        let f = ws.file(path).ok_or_else(|| format!("surface-file {path} not in scan"))?;
        r.surfaces.insert(path.clone(), fingerprint_tokens(&f.tokens));
    }
    for path in &cfg.surface_region_files {
        let f = ws.file(path).ok_or_else(|| format!("surface-region file {path} not in scan"))?;
        if f.surface_regions.is_empty() {
            return Err(format!(
                "{path}: declared `surface-region` but contains no lint:store-surface-begin/end markers"
            ));
        }
        r.regions.insert(path.clone(), fingerprint_regions(f));
    }
    for (path, name) in &cfg.surface_consts {
        let f = ws.file(path).ok_or_else(|| format!("surface-const file {path} not in scan"))?;
        let v = const_literal(f, name)
            .ok_or_else(|| format!("const {name} not found in {path}"))?;
        r.consts.insert(format!("{path}::{name}"), v);
    }
    Ok(r)
}

/// Extracts the literal initializer of `const NAME: T = <value>;` as its
/// token texts joined (so `1e-8` → `1e-8`, `-1.0` → `-1.0`).
pub fn const_literal(f: &SourceFile, name: &str) -> Option<String> {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if toks[i].text == "const"
            && toks.get(i + 1).map(|t| t.text == name).unwrap_or(false)
        {
            // Skip to `=`, collect until `;`.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            if j >= toks.len() || toks[j].text != "=" {
                return None;
            }
            let mut parts = Vec::new();
            j += 1;
            while j < toks.len() && toks[j].text != ";" {
                parts.push(toks[j].text.clone());
                j += 1;
            }
            if parts.is_empty() {
                return None;
            }
            return Some(parts.join(""));
        }
    }
    None
}

/// Result of a lint run.
pub struct LintOutcome {
    /// Post-suppression diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Count of diagnostics silenced by `lint:allow` annotations.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// True when no deny diagnostics remain.
    pub fn clean(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity == Severity::Deny)
    }
}

/// Runs every rule over the workspace at `root` with the given config.
pub fn run(root: &Path, cfg: &Config) -> Result<LintOutcome, String> {
    let ws = Workspace::scan(root, cfg)?;
    run_scanned(&ws, cfg)
}

/// Runs every rule over an already-scanned workspace.
pub fn run_scanned(ws: &Workspace, cfg: &Config) -> Result<LintOutcome, String> {
    let mut diags = Vec::new();
    rules::store_format::check(ws, cfg, &mut diags)?;
    rules::locks::check(ws, cfg, &mut diags);
    rules::atomics::check(ws, cfg, &mut diags);
    rules::panics::check(ws, cfg, &mut diags);
    rules::tolerances::check(ws, cfg, &mut diags);
    rules::envvars::check(ws, cfg, &mut diags);
    rules::sync_shim::check(ws, cfg, &mut diags);
    rules::unsafe_audit::check(ws, cfg, &mut diags);
    rules::protocol::check(ws, cfg, &mut diags);
    rules::blocking::check(ws, cfg, &mut diags);

    // Apply suppressions.
    let before = diags.len();
    let diags: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| !is_suppressed(ws, d))
        .collect();
    let suppressed = before - diags.len();

    let mut diags = diags;
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    diags.dedup();
    Ok(LintOutcome { diagnostics: diags, suppressed, files_scanned: ws.files.len() })
}

fn is_suppressed(ws: &Workspace, d: &Diagnostic) -> bool {
    let Some(f) = ws.file(&d.file) else { return false };
    f.allows_rule_at(d.rule, d.line)
}

/// Recomputes the store-surface registry from the live workspace and
/// writes it to the configured registry file. Returns the path written.
pub fn update_store_registry(root: &Path, cfg: &Config) -> Result<PathBuf, String> {
    let ws = Workspace::scan(root, cfg)?;
    let reg = compute_registry(&ws, cfg)?;
    let rel = cfg
        .registry_file
        .as_ref()
        .ok_or("lint.conf: no `registry-file` directive")?;
    let path = root.join(rel);
    std::fs::write(&path, reg.render())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Locates the workspace root (the directory containing `Cargo.toml` with
/// a `[workspace]` table) starting from `start` and walking up.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Loads the workspace's own `crates/lint/lint.conf` relative to `root`.
pub fn load_workspace_config(root: &Path) -> Result<Config, String> {
    Config::load(&root.join("crates/lint/lint.conf"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv128_vectors() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(fnv128(b""), 0x6c62272e07bb014262b821756295c58d);
        // Stability check (self-consistent, guards accidental edits).
        assert_eq!(format!("{:032x}", fnv128(b"a")), format!("{:032x}", fnv128(b"a")));
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn fingerprint_ignores_comments_and_whitespace() {
        let a = lexer::lex("fn f() { 1 + 2 }");
        let b = lexer::lex("// comment\nfn f()  {\n  1+2\n}");
        assert_eq!(fingerprint_tokens(&a.tokens), fingerprint_tokens(&b.tokens));
        let c = lexer::lex("fn f() { 1 + 3 }");
        assert_ne!(fingerprint_tokens(&a.tokens), fingerprint_tokens(&c.tokens));
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = StoreRegistry { version: "2".into(), ..Default::default() };
        r.surfaces.insert("a/b.rs".into(), "00ff".into());
        r.regions.insert("c/d.rs".into(), "11ee".into());
        r.consts.insert("e/f.rs::TOL".into(), "1e-8".into());
        let r2 = StoreRegistry::parse(&r.render()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn const_literal_extraction() {
        let f = SourceFile::extract(
            "x.rs".into(),
            "pub const STORE_FORMAT_VERSION: u32 = 2;\npub(crate) const TOL: f64 = 1e-8;\nconst NEG: f64 = -0.5;",
        );
        assert_eq!(const_literal(&f, "STORE_FORMAT_VERSION").as_deref(), Some("2"));
        assert_eq!(const_literal(&f, "TOL").as_deref(), Some("1e-8"));
        assert_eq!(const_literal(&f, "NEG").as_deref(), Some("-0.5"));
        assert_eq!(const_literal(&f, "MISSING"), None);
    }
}
