//! A small Rust tokenizer — just enough syntax awareness for the lint
//! rules: identifiers, punctuation, string/char/numeric literals, and
//! comments (captured separately, with line numbers, because the
//! suppression and region-marker syntax lives in comments).
//!
//! This is deliberately **not** a parser. The fact extractors
//! ([`crate::facts`]) work on the token stream with local pattern
//! matching and brace counting, which is the right fidelity/effort
//! trade-off for repo-specific rules in an offline build (no external
//! parser crates).

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// String literal (`"…"`, `r"…"`, `b"…"`, `r#"…"#`); `text` holds the
    /// raw inner bytes, escapes unprocessed.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Punctuation; multi-char operators that matter to the rules
    /// (`::`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `&&`, `||`, `..`) are
    /// single tokens, everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind.
    pub kind: TokKind,
    /// Token text (for [`TokKind::Str`], the inner bytes without quotes).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One comment with its 1-based source line (line of the opening `//` or
/// `/*`). Block comments are captured whole, newlines preserved.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the delimiters.
    pub text: String,
    /// 1-based line number where the comment starts.
    pub line: u32,
}

/// Tokenizer output: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

const MULTI_PUNCT: &[&str] = &["::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", ".."];

/// Tokenizes `src`. Unterminated literals are tolerated (consumed to end
/// of input) — the linter must never panic on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { text: src[start..i].to_string(), line });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = if depth == 0 { i - 2 } else { i };
                out.comments.push(Comment { text: src[start..end].to_string(), line: start_line });
            }
            b'"' => {
                let (tok, ni, nl) = lex_string(src, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (tok, ni, nl) = lex_prefixed_string(src, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni, nl) = lex_quote(src, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            c if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(src, i, line);
                out.tokens.push(tok);
                i = ni;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                if MULTI_PUNCT.contains(&two) {
                    out.tokens.push(Token { kind: TokKind::Punct, text: two.to_string(), line });
                    i += 2;
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, b"…", br"…", br#"…"#, rb is not a thing; also make
    // sure `r` / `b` here is not just the start of an identifier.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'r' {
            j += 1;
        }
    } else if b[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && j != i
}

fn lex_string(src: &str, i: usize, line: u32) -> (Token, usize, u32) {
    // Plain "…" with escapes.
    let b = src.as_bytes();
    let mut j = i + 1;
    let mut l = line;
    while j < b.len() {
        match b[j] {
            // An escape consumes the next byte — which, for a `\` line
            // continuation, is the newline itself and must still count.
            b'\\' => {
                if j + 1 < b.len() && b[j + 1] == b'\n' {
                    l += 1;
                }
                j = (j + 2).min(b.len());
            }
            b'\n' => {
                l += 1;
                j += 1;
            }
            b'"' => {
                let t = Token { kind: TokKind::Str, text: src[i + 1..j].to_string(), line };
                return (t, j + 1, l);
            }
            _ => j += 1,
        }
    }
    (Token { kind: TokKind::Str, text: src[i + 1..].to_string(), line }, b.len(), l)
}

fn lex_prefixed_string(src: &str, i: usize, line: u32) -> (Token, usize, u32) {
    // b"…" (escapes) or r#*"…"#* / br#*"…"#* (no escapes).
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    if !raw {
        let (mut t, ni, nl) = lex_string(src, j, line);
        t.line = line;
        return (t, ni, nl);
    }
    let start = j + 1;
    let mut l = line;
    let closer: String = format!("\"{}", "#".repeat(hashes));
    let rest = &src[start..];
    match rest.find(&closer) {
        Some(off) => {
            let inner = &rest[..off];
            l += inner.bytes().filter(|&c| c == b'\n').count() as u32;
            (
                Token { kind: TokKind::Str, text: inner.to_string(), line },
                start + off + closer.len(),
                l,
            )
        }
        None => {
            l += rest.bytes().filter(|&c| c == b'\n').count() as u32;
            (Token { kind: TokKind::Str, text: rest.to_string(), line }, src.len(), l)
        }
    }
}

fn lex_quote(src: &str, i: usize, line: u32) -> (Token, usize, u32) {
    // Either a char literal or a lifetime. `'a` / `'static` / `'_` have
    // no closing quote right after the identifier.
    let b = src.as_bytes();
    let j = i + 1;
    if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
        // Scan the identifier; if a `'` immediately follows it is a char
        // literal like 'x', otherwise a lifetime.
        let mut k = j;
        while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
            k += 1;
        }
        if !(k < b.len() && b[k] == b'\'' && k == j + 1) {
            return (
                Token { kind: TokKind::Lifetime, text: src[j..k].to_string(), line },
                k,
                line,
            );
        }
    }
    // Char literal (escapes allowed).
    let mut k = j;
    while k < b.len() {
        match b[k] {
            b'\\' => k = (k + 2).min(b.len()),
            b'\'' => {
                return (
                    Token { kind: TokKind::Char, text: src[j..k].to_string(), line },
                    k + 1,
                    line,
                )
            }
            b'\n' => break,
            _ => k += 1,
        }
    }
    (Token { kind: TokKind::Char, text: src[j..k].to_string(), line }, k, line)
}

fn lex_number(src: &str, i: usize, line: u32) -> (Token, usize) {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'0' && j + 1 < b.len() && matches!(b[j + 1], b'x' | b'b' | b'o') {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (Token { kind: TokKind::Num, text: src[i..j].to_string(), line }, j);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fraction: a '.' followed by a digit (not `..` and not a method call).
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent: e/E with optional sign.
    if j < b.len() && matches!(b[j], b'e' | b'E') {
        let mut k = j + 1;
        if k < b.len() && matches!(b[k], b'+' | b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize, …).
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (Token { kind: TokKind::Num, text: src[i..j].to_string(), line }, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_stream() {
        let got = kinds("fn f(x: u32) -> bool { x >= 1e-8 }");
        assert!(got.contains(&(TokKind::Ident, "fn".into())));
        assert!(got.contains(&(TokKind::Punct, "->".into())));
        assert!(got.contains(&(TokKind::Punct, ">=".into())));
        assert!(got.contains(&(TokKind::Num, "1e-8".into())), "{got:?}");
    }

    #[test]
    fn floats_and_ranges() {
        assert!(kinds("0..n").contains(&(TokKind::Punct, "..".into())));
        assert!(kinds("1.5e-12").contains(&(TokKind::Num, "1.5e-12".into())));
        assert!(kinds("x.max(1e-12)").contains(&(TokKind::Num, "1e-12".into())));
        assert!(kinds("2.0f64").contains(&(TokKind::Num, "2.0f64".into())));
        assert!(kinds("0x1f").contains(&(TokKind::Num, "0x1f".into())));
    }

    #[test]
    fn strings_chars_lifetimes() {
        assert!(kinds(r#"x("REQISC_FOO")"#).contains(&(TokKind::Str, "REQISC_FOO".into())));
        assert!(kinds(r##"r#"a"b"#"##).contains(&(TokKind::Str, "a\"b".into())));
        assert!(kinds("'\\n'").contains(&(TokKind::Char, "\\n".into())));
        assert!(kinds("&'static str").contains(&(TokKind::Lifetime, "static".into())));
        assert!(kinds("'a>").contains(&(TokKind::Lifetime, "a".into())));
        assert!(kinds("b\"RQCS\"").contains(&(TokKind::Str, "RQCS".into())));
    }

    #[test]
    fn string_line_continuations_count_lines() {
        let l = lex("let a = \"x \\\n y\";\nlet b = 2;");
        let b_tok = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3, "a `\\` continuation still crosses a line");
    }

    #[test]
    fn comments_captured_with_lines() {
        let l = lex("let a = 1; // lint:allow(x, y)\n/* block\nspan */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("lint:allow"));
        assert_eq!(l.comments[1].line, 2);
        let b_tok = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3, "line counting must survive block comments");
    }
}
