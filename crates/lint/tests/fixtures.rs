//! Fixture-based rule tests: each rule has a miniature workspace under
//! `fixtures/` with a failing and a passing snippet, and the test pins
//! the exact diagnostics (rule id + file + line) the engine must emit.
//! The store-format test additionally walks the whole edit → bump →
//! regenerate cycle on a temp copy, and the final test is the dogfood
//! self-check: the engine over this repository must come back clean.

use reqisc_lint::config::Config;
use reqisc_lint::{run, update_store_registry, LintOutcome};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn run_fixture(name: &str) -> LintOutcome {
    let root = fixture_root(name);
    let cfg = Config::load(&root.join("lint.conf")).expect("fixture config parses");
    run(&root, &cfg).expect("fixture run succeeds")
}

/// `(rule, file, line)` triples, in the engine's deterministic order.
fn triples(o: &LintOutcome) -> Vec<(String, String, u32)> {
    o.diagnostics.iter().map(|d| (d.rule.to_string(), d.file.clone(), d.line)).collect()
}

fn rendered(o: &LintOutcome) -> String {
    o.diagnostics.iter().map(|d| d.render() + "\n").collect()
}

#[test]
fn lock_order_fixture() {
    let o = run_fixture("lock_order");
    assert_eq!(
        triples(&o),
        vec![
            ("lock-order".into(), "fail.rs".into(), 5),
            ("lock-order".into(), "fail.rs".into(), 11),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(o.diagnostics[0].message.contains("inverting"), "{}", o.diagnostics[0].message);
    assert!(o.diagnostics[1].message.contains("self-deadlock"), "{}", o.diagnostics[1].message);
}

#[test]
fn atomic_ordering_fixture() {
    let o = run_fixture("atomics");
    assert_eq!(
        triples(&o),
        vec![
            ("atomic-ordering".into(), "fail.rs".into(), 7),
            ("atomic-ordering".into(), "fail.rs".into(), 11),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(o.diagnostics[0].message.contains("SeqCst"), "{}", o.diagnostics[0].message);
    assert!(
        o.diagnostics[1].message.contains("no Acquire-side"),
        "{}",
        o.diagnostics[1].message
    );
}

#[test]
fn panic_path_fixture() {
    let o = run_fixture("panics");
    assert_eq!(
        triples(&o),
        vec![
            ("panic-path".into(), "src/fail.rs".into(), 6),
            ("panic-path".into(), "src/fail.rs".into(), 7),
            ("panic-path".into(), "src/fail.rs".into(), 8),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    // The sites sit in `deep`, reached only through the `handle` entry.
    assert!(o.diagnostics[0].message.contains("`deep`"), "{}", o.diagnostics[0].message);
}

#[test]
fn tolerance_literal_fixture() {
    let o = run_fixture("tolerances");
    assert_eq!(
        triples(&o),
        vec![("tolerance-literal".into(), "fail.rs".into(), 2)],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    // pass.rs carries one violation under a justified lint:allow.
    assert_eq!(o.suppressed, 1, "the allow'd literal in pass.rs must count as suppressed");
}

#[test]
fn env_registry_fixture() {
    let o = run_fixture("envvars");
    assert_eq!(
        triples(&o),
        vec![
            ("env-registry".into(), "src/fail.rs".into(), 2),
            ("env-registry".into(), "src/registry.rs".into(), 7),
            ("env-registry".into(), "src/registry.rs".into(), 8),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(
        o.diagnostics[0].message.contains("outside the registry"),
        "{}",
        o.diagnostics[0].message
    );
    assert!(o.diagnostics[1].message.contains("doc line"), "{}", o.diagnostics[1].message);
    assert!(o.diagnostics[2].message.contains("declared twice"), "{}", o.diagnostics[2].message);
}

#[test]
fn sync_shim_fixture() {
    let o = run_fixture("sync_shim");
    assert_eq!(
        triples(&o),
        vec![
            ("sync-shim".into(), "src/fail.rs".into(), 1),
            ("sync-shim".into(), "src/fail.rs".into(), 2),
            ("sync-shim".into(), "src/fail.rs".into(), 3),
            ("sync-shim".into(), "src/fail.rs".into(), 6),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(
        o.diagnostics[0].message.contains("`crate::sync` shim"),
        "{}",
        o.diagnostics[0].message
    );
    assert!(
        o.diagnostics[3].message.contains("reqisc_sched::thread::spawn"),
        "{}",
        o.diagnostics[3].message
    );
    // pass.rs: scoped threads / mpsc / Arc draw no findings, the raw
    // mutex behind a justified lint:allow counts as suppressed, and
    // the #[cfg(test)] module's raw primitives are exempt.
    assert_eq!(o.suppressed, 1, "the allow'd raw mutex in pass.rs must count as suppressed");
}

#[test]
fn unsafe_audit_fixture() {
    let o = run_fixture("unsafe_audit");
    assert_eq!(
        triples(&o),
        vec![
            ("unsafe-audit".into(), "src/outside.rs".into(), 3),
            ("unsafe-audit".into(), "src/scoped/fail.rs".into(), 2),
            ("unsafe-audit".into(), "src/scoped/fail.rs".into(), 8),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(
        o.diagnostics[0].message.contains("outside every declared"),
        "{}",
        o.diagnostics[0].message
    );
    assert!(o.diagnostics[1].message.contains("SAFETY"), "{}", o.diagnostics[1].message);
}

#[test]
fn publish_protocol_fixture() {
    let o = run_fixture("protocol");
    assert_eq!(
        triples(&o),
        vec![
            ("publish-protocol".into(), "src/bad.rs".into(), 6),
            ("publish-protocol".into(), "src/bad.rs".into(), 6),
            ("publish-protocol".into(), "src/bad.rs".into(), 8),
            ("publish-protocol".into(), "src/bad.rs".into(), 9),
            ("publish-protocol".into(), "src/bad.rs".into(), 13),
            ("publish-protocol".into(), "src/bad.rs".into(), 15),
            ("publish-protocol".into(), "src/bad.rs".into(), 16),
            ("publish-protocol".into(), "src/bad.rs".into(), 19),
            ("publish-protocol".into(), "src/none.rs".into(), 1),
            ("publish-protocol".into(), "src/none.rs".into(), 1),
            ("publish-protocol".into(), "src/unclosed.rs".into(), 1),
            ("publish-protocol".into(), "src/unclosed.rs".into(), 4),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    let msgs = rendered(&o);
    for needle in [
        "precedes the Release commit-word store",
        "weaker than Release",
        "plain mapping write `write_bytes_in` after the Release commit store",
        "`store(…, Ordering::Relaxed)` after the Release commit store",
        "never performs an Acquire load",
        "before any Acquire load",
        "probe-side `load(Ordering::Relaxed)`",
        "silently checks nothing",
        "never closed",
        "unknown protocol region kind `gc`",
    ] {
        assert!(msgs.contains(needle), "missing `{needle}` in:\n{msgs}");
    }
}

#[test]
fn blocking_fixture() {
    let o = run_fixture("blocking");
    assert_eq!(
        triples(&o),
        vec![
            ("blocking-in-critical-section".into(), "src/fail.rs".into(), 10),
            ("blocking-in-critical-section".into(), "src/fail.rs".into(), 15),
            ("blocking-in-critical-section".into(), "src/fail.rs".into(), 20),
            ("blocking-in-critical-section".into(), "src/fail.rs".into(), 25),
        ],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(o.diagnostics[0].message.contains("std::fs"), "{}", o.diagnostics[0].message);
    // The helper's I/O is reported at the call site with its origin.
    assert!(
        o.diagnostics[1].message.contains("src/fail.rs:5"),
        "{}",
        o.diagnostics[1].message
    );
    assert!(
        o.diagnostics[2].message.contains("parks the thread"),
        "{}",
        o.diagnostics[2].message
    );
    assert!(
        o.diagnostics[3].message.contains("blocking entry"),
        "{}",
        o.diagnostics[3].message
    );
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

fn patch(path: &Path, from: &str, to: &str) {
    let text = std::fs::read_to_string(path).unwrap();
    assert!(text.contains(from), "{} does not contain `{from}`", path.display());
    std::fs::write(path, text.replacen(from, to, 1)).unwrap();
}

/// The full store-format life cycle on a temp copy of the fixture:
/// generate → clean; edit the codec without a bump → deny; bump the
/// version → a single "regenerate" deny; regenerate → clean; change a
/// registered tolerance constant → deny.
#[test]
fn store_format_bump_demo() {
    let tmp = std::env::temp_dir().join(format!("reqisc-lint-store-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_dir(&fixture_root("store_format"), &tmp);
    let cfg = Config::load(&tmp.join("lint.conf")).unwrap();

    // Before the registry exists the run aborts loudly (setup error).
    assert!(run(&tmp, &cfg).is_err(), "missing registry must be a hard error, not a pass");

    update_store_registry(&tmp, &cfg).unwrap();
    let o = run(&tmp, &cfg).unwrap();
    assert!(triples(&o).is_empty(), "fresh registry must be clean:\n{}", rendered(&o));

    // 1. Mutate the codec without bumping the version: denied.
    patch(&tmp.join("src/codec.rs"), "to_le_bytes", "to_be_bytes");
    let o = run(&tmp, &cfg).unwrap();
    assert_eq!(
        triples(&o),
        vec![("store-format".into(), "src/codec.rs".into(), 1)],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(
        o.diagnostics[0].message.contains("without a STORE_FORMAT_VERSION bump"),
        "{}",
        o.diagnostics[0].message
    );

    // 2. Bump the version: one diagnostic telling you to regenerate.
    patch(&tmp.join("src/store.rs"), "STORE_FORMAT_VERSION: u32 = 1", "STORE_FORMAT_VERSION: u32 = 2");
    let o = run(&tmp, &cfg).unwrap();
    assert_eq!(
        triples(&o),
        vec![("store-format".into(), "src/store.rs".into(), 1)],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(o.diagnostics[0].message.contains("regenerate"), "{}", o.diagnostics[0].message);

    // 3. Regenerate as part of the bump commit: clean again.
    update_store_registry(&tmp, &cfg).unwrap();
    let o = run(&tmp, &cfg).unwrap();
    assert!(triples(&o).is_empty(), "post-bump regenerate must be clean:\n{}", rendered(&o));

    // 4. Changing a registered tolerance constant is a format change too.
    patch(&tmp.join("src/store.rs"), "SNAP_TOL: f64 = 1e-8", "SNAP_TOL: f64 = 1e-6");
    let o = run(&tmp, &cfg).unwrap();
    assert_eq!(
        triples(&o),
        vec![("store-format".into(), "src/store.rs".into(), 2)],
        "diagnostics were:\n{}",
        rendered(&o)
    );
    assert!(o.diagnostics[0].message.contains("collide"), "{}", o.diagnostics[0].message);

    let _ = std::fs::remove_dir_all(&tmp);
}

/// Mutation test on the *real* shared-memory segment: copy
/// `crates/shmem/src` into a temp mini-workspace, confirm it is clean,
/// then strip the `Release` from the commit-word store. The
/// publish-protocol rule must catch the stripped fence — the index CAS
/// now precedes the first (and only remaining) Release store.
#[test]
fn shmem_release_strip_is_caught() {
    let tmp = std::env::temp_dir().join(format!("reqisc-lint-shmem-mut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let shmem_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("../shmem/src");
    copy_dir(&shmem_src, &tmp.join("src"));
    std::fs::write(
        tmp.join("lint.conf"),
        "unsafe-scope src\n\
         protocol-file src/lib.rs\n\
         protocol-plain-write write_bytes_in\n\
         protocol-plain-read copy_out read_bytes_in\n",
    )
    .unwrap();
    let cfg = Config::load(&tmp.join("lint.conf")).unwrap();

    let o = run(&tmp, &cfg).unwrap();
    assert!(
        o.diagnostics.is_empty(),
        "the unmodified segment must be clean:\n{}",
        rendered(&o)
    );

    patch(
        &tmp.join("src/lib.rs"),
        ".store(COMMIT_TAG | payload.len() as u64, Ordering::Release)",
        ".store(COMMIT_TAG | payload.len() as u64, Ordering::Relaxed)",
    );
    let o = run(&tmp, &cfg).unwrap();
    let protocol: Vec<_> =
        o.diagnostics.iter().filter(|d| d.rule == "publish-protocol").collect();
    assert!(
        !protocol.is_empty(),
        "stripping the commit-store Release must trip publish-protocol; got:\n{}",
        rendered(&o)
    );
    assert!(
        protocol.iter().any(|d| d.message.contains("precedes the Release commit-word store")),
        "diagnostics were:\n{}",
        rendered(&o)
    );

    let _ = std::fs::remove_dir_all(&tmp);
}

/// Dogfood: the analyzer over its own workspace must come back clean —
/// this is the same gate CI runs with `--deny-all`.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap();
    let cfg = reqisc_lint::load_workspace_config(&root).expect("workspace lint.conf parses");
    let o = run(&root, &cfg).expect("workspace run succeeds");
    assert!(
        o.diagnostics.is_empty(),
        "the workspace must lint clean; found:\n{}",
        rendered(&o)
    );
    assert!(o.files_scanned > 50, "self-check scanned suspiciously few files");
}
