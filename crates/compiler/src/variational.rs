//! Variational-program lowering (paper §5.3.1).
//!
//! Naïvely compiling a variational ansatz to parameter-dependent SU(4)s
//! would demand recalibration on every parameter update. This pass rewrites
//! an SU(4)-ISA circuit onto a *fixed* 2Q basis gate (SQiSW by default)
//! with parameterized 1Q gates — which the PMW phase-shift protocol
//! implements without explicit calibration — trading a bounded #2Q increase
//! for constant experimental overhead.

use crate::fuse::push_u3;
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::gates::sqisw;
use reqisc_qmath::CMat;
use reqisc_synthesis::synthesize_with_basis;

/// The fixed basis gates supported by the variational lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedBasis {
    /// √iSWAP (Huang et al.): Haar-average 2.21 applications.
    Sqisw,
    /// The B gate (Zhang et al.): any SU(4) in 2 applications.
    BGate,
}

impl FixedBasis {
    fn matrix(&self) -> CMat {
        match self {
            FixedBasis::Sqisw => sqisw(),
            FixedBasis::BGate => reqisc_qmath::gates::b_gate(),
        }
    }

    fn gate(&self, a: usize, b: usize) -> Gate {
        match self {
            FixedBasis::Sqisw => Gate::SqiSw(a, b),
            FixedBasis::BGate => Gate::BGate(a, b),
        }
    }
}

/// Rewrites every 2Q gate of `c` into `basis` applications plus 1Q gates.
///
/// 2Q gates that fail to decompose within 3 applications (not observed for
/// unitary inputs) are kept as-is. Gates of other arities pass through.
pub fn to_fixed_basis(c: &Circuit, basis: FixedBasis) -> Circuit {
    let bm = basis.matrix();
    let mut out = Circuit::new(c.num_qubits());
    for g in c.gates() {
        if !g.is_2q() {
            out.push(g.clone());
            continue;
        }
        let qs = g.qubits();
        match synthesize_with_basis(&g.matrix(), &bm, 3) {
            Some(d) => {
                for (slot_qs, m) in &d.slots {
                    match slot_qs.len() {
                        1 => push_u3(qs[slot_qs[0]], m, &mut out),
                        _ => out.push(basis.gate(qs[slot_qs[0]], qs[slot_qs[1]])),
                    }
                }
            }
            None => out.push(g.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse_2q;
    use reqisc_qmath::weyl::WeylCoord;
    use reqisc_qsim::process_infidelity;

    #[test]
    fn qaoa_layer_to_sqisw() {
        let mut c = Circuit::new(3);
        c.push(Gate::Rzz(0, 1, 0.37));
        c.push(Gate::Rzz(1, 2, 0.91));
        c.push(Gate::Rx(0, 0.4));
        let v = to_fixed_basis(&c, FixedBasis::Sqisw);
        // Every 2Q gate is now the fixed basis gate.
        assert!(v
            .gates()
            .iter()
            .filter(|g| g.is_2q())
            .all(|g| matches!(g, Gate::SqiSw(..))));
        // Rzz is in the 2-SQiSW polytope: 2 applications each.
        assert_eq!(v.count_2q(), 4);
        let inf = process_infidelity(&c.unitary(), &v.unitary());
        assert!(inf < 1e-7, "infidelity {inf}");
    }

    #[test]
    fn su4_blocks_decompose_to_b_basis() {
        let mut c = Circuit::new(2);
        c.push(Gate::Can(0, 1, WeylCoord::new(0.5, 0.3, 0.1)));
        let v = to_fixed_basis(&c, FixedBasis::BGate);
        assert!(v
            .gates()
            .iter()
            .filter(|g| g.is_2q())
            .all(|g| matches!(g, Gate::BGate(..))));
        assert!(v.count_2q() <= 2);
        let inf = process_infidelity(&c.unitary(), &v.unitary());
        assert!(inf < 1e-7, "infidelity {inf}");
    }

    #[test]
    fn parameter_update_changes_only_1q_gates() {
        // The §5.3.1 point: when the variational parameter moves, the 2Q
        // layer structure is unchanged — only U3 parameters differ.
        let mk = |theta: f64| {
            let mut c = Circuit::new(2);
            c.push(Gate::Rzz(0, 1, theta));
            to_fixed_basis(&fuse_2q(&c), FixedBasis::Sqisw)
        };
        let a = mk(0.3);
        let b = mk(0.8);
        let shape = |c: &Circuit| -> Vec<(&'static str, Vec<usize>)> {
            c.gates().iter().map(|g| (g.name(), g.qubits())).collect()
        };
        assert_eq!(shape(&a), shape(&b), "2Q skeleton must be parameter-independent");
    }

    #[test]
    fn non_2q_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Ccx(0, 1, 2));
        let v = to_fixed_basis(&c, FixedBasis::Sqisw);
        assert_eq!(v.len(), 2);
    }
}
