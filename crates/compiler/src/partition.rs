//! Second-tier partitioning: group a fused SU(4) circuit into `w`-qubit
//! blocks for approximate synthesis (paper §5.1.2, default `w = 3`).
//!
//! A greedy scan partitioner: at each step, candidate 3-qubit windows are
//! proposed from the frontier gate's qubits plus nearby partners, each
//! window absorbs the maximal dependency-closed prefix of remaining gates,
//! and the best-scoring window is emitted as a block.

use reqisc_qcircuit::{Circuit, Gate};

/// One partitioned block: up to `w` qubits and the gates (in order) that
/// fall inside it.
#[derive(Debug, Clone)]
pub struct Block {
    /// Global qubit indices of the block (sorted).
    pub qubits: Vec<usize>,
    /// Gates in execution order (global indices).
    pub gates: Vec<Gate>,
}

impl Block {
    /// Number of 2Q gates inside.
    pub fn count_2q(&self) -> usize {
        self.gates.iter().filter(|g| g.is_2q()).count()
    }

    /// The block's unitary on its local qubit space.
    ///
    /// # Panics
    ///
    /// Panics if the block has more than 5 qubits.
    pub fn unitary(&self) -> reqisc_qmath::CMat {
        self.local_circuit().unitary()
    }

    /// The block's gates re-indexed to local qubits `0..k`.
    pub fn local_circuit(&self) -> Circuit {
        let map = |q: usize| self.qubits.iter().position(|&x| x == q).expect("qubit in block");
        let gates = self.gates.iter().map(|g| g.remap(&map)).collect();
        Circuit::from_gates(self.qubits.len(), gates)
    }
}

/// Options for [`partition_3q`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Block width `w` (paper default 3).
    pub width: usize,
    /// Scan window: how many remaining gates each candidate inspects.
    pub scan_window: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        Self { width: 3, scan_window: 200 }
    }
}

/// Partitions a circuit (1Q/2Q gates only) into ≤`w`-qubit blocks.
///
/// # Panics
///
/// Panics if the circuit contains gates of arity > `w`.
pub fn partition_3q(c: &Circuit, opts: &PartitionOptions) -> Vec<Block> {
    let gates = c.gates();
    for g in gates {
        assert!(g.arity() <= opts.width, "gate {} too wide for partition", g.name());
    }
    let n = gates.len();
    let mut done = vec![false; n];
    let mut next_start = 0usize;
    let mut blocks = Vec::new();
    while next_start < n {
        while next_start < n && done[next_start] {
            next_start += 1;
        }
        if next_start >= n {
            break;
        }
        let seed = &gates[next_start];
        let candidates = candidate_windows(gates, &done, next_start, opts);
        let mut best: Option<(usize, Vec<usize>, Vec<usize>)> = None; // (score, qubits, absorbed)
        for cand in candidates {
            let absorbed = absorb(gates, &done, next_start, &cand, opts.scan_window);
            let score = absorbed
                .iter()
                .filter(|&&i| gates[i].is_2q())
                .count();
            let better = match &best {
                None => true,
                Some((s, _, a)) => score > *s || (score == *s && absorbed.len() > a.len()),
            };
            if better {
                best = Some((score, cand, absorbed));
            }
        }
        let (_, qubits, absorbed) = best.unwrap_or_else(|| {
            (0, seed.qubits(), vec![next_start])
        });
        let mut qs = qubits;
        qs.sort_unstable();
        qs.dedup();
        let mut blk_gates = Vec::with_capacity(absorbed.len());
        for &i in &absorbed {
            done[i] = true;
            blk_gates.push(gates[i].clone());
        }
        blocks.push(Block { qubits: qs, gates: blk_gates });
    }
    blocks
}

/// Candidate ≤w-qubit windows around the frontier gate.
fn candidate_windows(
    gates: &[Gate],
    done: &[bool],
    start: usize,
    opts: &PartitionOptions,
) -> Vec<Vec<usize>> {
    let seed_qs = gates[start].qubits();
    let mut partners: Vec<usize> = Vec::new();
    let mut inspected = 0;
    for (i, g) in gates.iter().enumerate().skip(start) {
        if done[i] {
            continue;
        }
        inspected += 1;
        if inspected > 40 {
            break;
        }
        if g.qubits().iter().any(|q| seed_qs.contains(q)) {
            for q in g.qubits() {
                if !seed_qs.contains(&q) && !partners.contains(&q) {
                    partners.push(q);
                }
            }
        }
    }
    let mut cands: Vec<Vec<usize>> = Vec::new();
    if seed_qs.len() >= opts.width {
        cands.push(seed_qs.clone());
    } else {
        for &p in partners.iter().take(8) {
            let mut s = seed_qs.clone();
            s.push(p);
            cands.push(s);
        }
        if cands.is_empty() {
            cands.push(seed_qs.clone());
        }
    }
    cands
}

/// Absorbs the maximal dependency-closed prefix of not-done gates whose
/// qubits lie inside `window`.
fn absorb(
    gates: &[Gate],
    done: &[bool],
    start: usize,
    window: &[usize],
    scan: usize,
) -> Vec<usize> {
    let mut blocked: Vec<bool> = Vec::new();
    let nq = gates.iter().flat_map(|g| g.qubits()).max().unwrap_or(0) + 1;
    blocked.resize(nq, false);
    let mut absorbed = Vec::new();
    for (i, g) in gates.iter().enumerate().skip(start).take(scan) {
        if done[i] {
            continue;
        }
        let qs = g.qubits();
        let inside = qs.iter().all(|q| window.contains(q));
        let free = qs.iter().all(|&q| !blocked[q]);
        if inside && free {
            absorbed.push(i);
        } else {
            for q in qs {
                blocked[q] = true;
            }
            // Early exit when the whole window is blocked.
            if window.iter().all(|&q| blocked[q]) {
                break;
            }
        }
    }
    absorbed
}

/// The partition-compactness metric (paper §5.1.3): the fraction of 2Q
/// gates concentrated *above* the synthesis threshold `m_th`. An ideal
/// partition is unbalanced — a few dense blocks ripe for synthesis, the
/// rest sparse.
pub fn compactness(blocks: &[Block], m_th: usize) -> f64 {
    let total: usize = blocks.iter().map(Block::count_2q).sum();
    if total == 0 {
        return 0.0;
    }
    let dense: usize = blocks
        .iter()
        .map(|b| {
            let c = b.count_2q();
            if c > m_th {
                c
            } else {
                0
            }
        })
        .sum();
    dense as f64 / total as f64
}

/// Reassembles blocks into a flat circuit (inverse of partitioning).
pub fn reassemble(num_qubits: usize, blocks: &[Block]) -> Circuit {
    let mut out = Circuit::new(num_qubits);
    for b in blocks {
        for g in &b.gates {
            out.push(g.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;

    fn ladder(n: usize, reps: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..reps {
            for i in 0..n - 1 {
                c.push(Gate::Cx(i, i + 1));
            }
        }
        c
    }

    #[test]
    fn partition_covers_all_gates() {
        let c = ladder(5, 3);
        let blocks = partition_3q(&c, &PartitionOptions::default());
        let total: usize = blocks.iter().map(|b| b.gates.len()).sum();
        assert_eq!(total, c.len());
        for b in &blocks {
            assert!(b.qubits.len() <= 3);
        }
    }

    #[test]
    fn reassembly_is_equivalent() {
        let c = ladder(4, 2);
        let blocks = partition_3q(&c, &PartitionOptions::default());
        let r = reassemble(4, &blocks);
        let inf = process_infidelity(&c.unitary(), &r.unitary());
        assert!(inf < 1e-9, "reassembly changed the circuit: {inf}");
    }

    #[test]
    fn dense_triple_lands_in_one_block() {
        // 8 gates confined to qubits {0,1,2} must land in a single block.
        let mut c = Circuit::new(4);
        for _ in 0..4 {
            c.push(Gate::Cx(0, 1));
            c.push(Gate::Cx(1, 2));
        }
        c.push(Gate::Cx(2, 3));
        let blocks = partition_3q(&c, &PartitionOptions::default());
        assert_eq!(blocks[0].count_2q(), 8, "blocks: {:?}", blocks.iter().map(Block::count_2q).collect::<Vec<_>>());
    }

    #[test]
    fn block_local_circuit_reindexes() {
        let mut c = Circuit::new(5);
        c.push(Gate::Cx(2, 4));
        c.push(Gate::Cx(4, 2));
        let blocks = partition_3q(&c, &PartitionOptions::default());
        let local = blocks[0].local_circuit();
        assert!(local.num_qubits() <= 3);
        assert!(local.gates().iter().all(|g| g.qubits().iter().all(|&q| q < 2)));
    }

    #[test]
    fn compactness_metric_behaviour() {
        let mk = |counts: &[usize]| -> Vec<Block> {
            counts
                .iter()
                .map(|&k| Block {
                    qubits: vec![0, 1, 2],
                    gates: (0..k).map(|_| Gate::Cx(0, 1)).collect(),
                })
                .collect()
        };
        // Unbalanced beats balanced at m_th = 4.
        let unbalanced = compactness(&mk(&[10, 1, 1]), 4);
        let balanced = compactness(&mk(&[4, 4, 4]), 4);
        assert!(unbalanced > balanced);
        assert_eq!(compactness(&mk(&[]), 4), 0.0);
    }

    #[test]
    fn parallel_strands_partition_independently() {
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.push(Gate::Cx(0, 1));
            c.push(Gate::Cx(4, 5));
        }
        let blocks = partition_3q(&c, &PartitionOptions::default());
        // Strand (0,1) and strand (4,5) cannot share a 3Q block... they
        // could if the window were {0,1,4}, but absorb only counts inside
        // gates; verify coverage and equivalence instead.
        let total: usize = blocks.iter().map(|b| b.gates.len()).sum();
        assert_eq!(total, c.len());
    }
}
