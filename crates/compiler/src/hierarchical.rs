//! Hierarchical synthesis (paper §5.1.2, Fig. 7): 2Q fusion → DAG
//! compacting → 3Q partitioning → conditional approximate synthesis of
//! dense blocks.

use crate::cache::CompileCache;
use crate::compact::{compact, CompactOptions};
use crate::fuse::fuse_2q;
use crate::partition::{partition_3q, Block, PartitionOptions};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_synthesis::{synthesize_if_shorter, SearchOptions};

/// Options for [`hierarchical_synthesis`].
#[derive(Debug, Clone)]
pub struct HsOptions {
    /// Synthesis threshold `m_th`: blocks with more 2Q gates than this are
    /// re-synthesized (paper default 4).
    pub m_th: usize,
    /// Partitioning options (width `w = 3` by default).
    pub partition: PartitionOptions,
    /// Structure-search options for the approximate synthesis.
    pub search: SearchOptions,
    /// Whether the DAG-compacting pass runs (ablated as "ReQISC-NC").
    pub compacting: bool,
    /// DAG-compacting options.
    pub compact: CompactOptions,
}

impl Default for HsOptions {
    fn default() -> Self {
        Self {
            m_th: 4,
            partition: PartitionOptions::default(),
            search: SearchOptions::default(),
            compacting: true,
            compact: CompactOptions::default(),
        }
    }
}

/// Runs the full hierarchical-synthesis pass.
///
/// Input: any circuit of 1Q/2Q/CCX-ish gates (≥3Q gates are lowered to CX
/// first). Output: an SU(4)-ISA circuit (`U3` + `Su4`) with reduced #SU(4).
pub fn hierarchical_synthesis(c: &Circuit, opts: &HsOptions) -> Circuit {
    hierarchical_synthesis_cached(c, opts, None)
}

/// [`hierarchical_synthesis`] with an optional shared [`CompileCache`]:
/// dense-block synthesis attempts are memoized by target content, so
/// repeated subprograms (Toffoli/adder blocks across a benchsuite)
/// synthesize once per cache lifetime instead of once per occurrence.
pub fn hierarchical_synthesis_cached(
    c: &Circuit,
    opts: &HsOptions,
    cache: Option<&CompileCache>,
) -> Circuit {
    hierarchical_synthesis_batched(c, opts, cache, 1)
}

/// [`hierarchical_synthesis_cached`] with block-level batching: the
/// *distinct* dense SU(4)/SU(8) blocks of one program are fanned out over
/// up to `block_threads` scoped workers that fill the shared
/// block-synthesis pool, before the (cheap, order-sensitive) serial
/// reassembly emits from it. One large program thereby parallelizes as
/// well as a suite of small ones — the per-block synthesis sweeps are the
/// whole cost of the pass, and they are independent.
///
/// `block_threads ≤ 1` (or no cache) is exactly the serial path. Results
/// are bit-identical either way: each block synthesis is deterministic in
/// its (target, options) key, workers only *fill* the memo pool, and
/// emission order never changes.
pub fn hierarchical_synthesis_batched(
    c: &Circuit,
    opts: &HsOptions,
    cache: Option<&CompileCache>,
    block_threads: usize,
) -> Circuit {
    // Tier 0: make everything ≤ 2Q and fuse into SU(4) blocks.
    let lowered = c.lowered_to_cx();
    let mut fused = fuse_2q(&lowered);
    if opts.compacting {
        fused = compact(&fused, &opts.compact);
        // Compacting can produce adjacent same-pair blocks; re-fuse.
        fused = fuse_2q(&fused);
    }
    // Tier 1: 3Q partitioning + conditional approximate synthesis.
    let blocks = partition_3q(&fused, &opts.partition);
    if let Some(cache) = cache {
        if block_threads > 1 {
            prewarm_distinct_blocks(&blocks, opts, cache, block_threads);
        }
    }
    let mut out = Circuit::new(c.num_qubits());
    for b in &blocks {
        emit_block(&mut out, b, opts, cache);
    }
    // Boundary fusion: blocks may abut on the same pair.
    fuse_2q(&out)
}

/// Synthesizes the distinct dense blocks of `blocks` into `cache` in
/// parallel. Deduplication mirrors the synthesis pool's key — (target
/// fingerprint, width, clamped budget) — so two occurrences of the same
/// subprogram cost one worker slot, and a later cache hit serves both.
fn prewarm_distinct_blocks(
    blocks: &[Block],
    opts: &HsOptions,
    cache: &CompileCache,
    block_threads: usize,
) {
    let mut seen = std::collections::HashSet::new();
    let mut work: Vec<(reqisc_qmath::CMat, usize, usize)> = Vec::new();
    for b in blocks {
        let count = b.count_2q();
        if count > opts.m_th && b.qubits.len() >= 2 && b.qubits.len() <= 3 {
            let budget = opts.search.max_blocks.min(count.saturating_sub(1));
            if budget == 0 {
                continue; // degenerate budgets bypass the cache entirely
            }
            let target = b.unitary();
            if seen.insert((target.fingerprint(), b.qubits.len(), budget)) {
                work.push((target, b.qubits.len(), count));
            }
        }
    }
    if work.len() < 2 {
        return; // nothing to overlap
    }
    let threads = block_threads.min(work.len());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((target, nq, count)) = work.get(i) else { break };
                cache.synthesize_if_shorter_cached(target, *nq, *count, &opts.search);
            });
        }
    });
}

fn emit_block(out: &mut Circuit, b: &Block, opts: &HsOptions, cache: Option<&CompileCache>) {
    let count = b.count_2q();
    if count > opts.m_th && b.qubits.len() >= 2 && b.qubits.len() <= 3 {
        let target = b.unitary();
        // Both arms yield a borrow so a cache hit clones each block
        // matrix exactly once (into the emitted gate), not twice.
        let cached;
        let local;
        let syn = match cache {
            Some(cache) => {
                cached = cache.synthesize_if_shorter_cached(&target, b.qubits.len(), count, &opts.search);
                cached.as_ref()
            }
            None => {
                local = synthesize_if_shorter(&target, b.qubits.len(), count, &opts.search);
                &local
            }
        };
        if let Some(syn) = syn {
            // Map the synthesized blocks back to global qubits.
            for ((la, lb), m) in &syn.blocks {
                out.push(Gate::Su4(b.qubits[*la], b.qubits[*lb], Box::new(m.clone())));
            }
            // Note: synthesis is exact up to a global phase only; the
            // phase is physically irrelevant and ignored throughout.
            return;
        }
    }
    for g in &b.gates {
        out.push(g.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-7, "not equivalent: infidelity {inf}");
    }

    fn quick_opts() -> HsOptions {
        let mut o = HsOptions::default();
        o.search.sweep.restarts = 3;
        o.search.sweep.max_sweeps = 200;
        o.search.max_blocks = 6;
        o
    }

    #[test]
    fn reduces_dense_3q_blocks() {
        // 8 CNOTs on 3 qubits in a dense pattern: HS must find ≤ 6 SU(4)s.
        let mut c = Circuit::new(3);
        for k in 0..4 {
            c.push(Gate::Cx(0, 1));
            c.push(Gate::H(1));
            c.push(Gate::Cx(1, 2));
            c.push(Gate::T(2));
            if k % 2 == 0 {
                c.push(Gate::Cx(0, 2));
            }
        }
        let before_fused = fuse_2q(&c).count_2q();
        let h = hierarchical_synthesis(&c, &quick_opts());
        assert!(
            h.count_2q() < before_fused,
            "HS did not reduce: {} vs {}",
            h.count_2q(),
            before_fused
        );
        assert!(h.count_2q() <= 6);
        check_equiv(&c, &h);
    }

    #[test]
    fn ccx_input_is_lowered_and_synthesized() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Ccx(1, 0, 2));
        let h = hierarchical_synthesis(&c, &quick_opts());
        // CCX·CCX (commuted controls) = identity-ish? No: CCX(0,1,2) and
        // CCX(1,0,2) are the same permutation, so the pair is the identity.
        assert_eq!(h.count_2q(), 0, "double Toffoli should vanish");
    }

    #[test]
    fn sparse_blocks_left_alone() {
        let mut c = Circuit::new(5);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Cx(3, 4));
        let h = hierarchical_synthesis(&c, &quick_opts());
        assert_eq!(h.count_2q(), 3);
        check_equiv(&c, &h);
    }

    #[test]
    fn alu_like_example_matches_paper_shape() {
        // Fig. 7: a Toffoli-heavy circuit drops well below its CNOT count.
        let mut c = Circuit::new(4);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::H(3));
        c.push(Gate::Ccx(1, 2, 3));
        let cx_count = c.lowered_to_cx().count_2q();
        let h = hierarchical_synthesis(&c, &quick_opts());
        assert!(
            h.count_2q() * 2 < cx_count * 2, // strictly fewer SU(4)s than CNOTs
        );
        assert!(h.count_2q() < cx_count);
        check_equiv(&c, &h);
    }

    #[test]
    fn block_batching_is_bit_identical_to_serial() {
        // One large program with several distinct dense 3Q regions — the
        // shape block-level batching exists for. Fanning its distinct
        // blocks over workers must change wall-clock only, never a bit of
        // the output.
        let mut c = Circuit::new(6);
        for base in [0usize, 3] {
            for k in 0..4 {
                c.push(Gate::Cx(base, base + 1));
                c.push(Gate::H(base + 1));
                c.push(Gate::Cx(base + 1, base + 2));
                c.push(Gate::T(base + 2));
                if k % 2 == 0 {
                    c.push(Gate::Cx(base, base + 2));
                }
            }
        }
        c.push(Gate::Ccx(1, 2, 3));
        c.push(Gate::Ccx(2, 3, 4));
        let opts = quick_opts();
        let serial = hierarchical_synthesis(&c, &opts);
        let cache = CompileCache::new();
        let batched = hierarchical_synthesis_batched(&c, &opts, Some(&cache), 4);
        assert_eq!(batched, serial, "block batching changed the result");
        assert!(cache.stats().synthesis.inserts >= 2, "distinct blocks should prewarm the pool");
        // A rerun is pure hits (the prewarm populated the shared pool).
        let rerun = hierarchical_synthesis_batched(&c, &opts, Some(&cache), 4);
        assert_eq!(rerun, serial);
        check_equiv(&c, &batched);
    }

    #[test]
    fn nc_variant_never_better() {
        // Without compacting the result can only be worse or equal.
        let mut c = Circuit::new(3);
        c.push(Gate::Rzz(0, 1, 0.3));
        c.push(Gate::Rzz(1, 2, 0.5));
        c.push(Gate::Rzz(0, 1, 0.7));
        c.push(Gate::Rzz(1, 2, 0.2));
        let full = hierarchical_synthesis(&c, &quick_opts());
        let mut nc_opts = quick_opts();
        nc_opts.compacting = false;
        let nc = hierarchical_synthesis(&c, &nc_opts);
        assert!(full.count_2q() <= nc.count_2q());
        check_equiv(&c, &full);
        check_equiv(&c, &nc);
    }
}
