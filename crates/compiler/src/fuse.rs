//! Two-qubit block consolidation: the first tier of hierarchical synthesis
//! (paper §5.1.2) and the "-SU(4)" appendix pass of the baselines.
//!
//! Scans a circuit and greedily fuses maximal runs of gates confined to one
//! qubit pair (including interleaved 1Q gates) into single [`Gate::Su4`]
//! blocks. Blocks that turn out to be local products are re-emitted as `U3`
//! gates, and identity blocks vanish.

// lint:allow-file(tolerance-literal, local gate-fusion angle thresholds; not serialized contracts)
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::gates::{swap, zyz_decompose};
use reqisc_qmath::{kron_factor, CMat};

/// One open fusion block on an (ordered) qubit pair.
struct OpenBlock {
    qubits: (usize, usize),
    mat: CMat, // 4×4, qubits.0 as the most significant gate index
}

/// Fuses runs of 1Q/2Q gates on common pairs into `Su4` blocks.
///
/// Gates of arity ≥ 3 act as barriers (lower them first if undesired).
/// The output contains only `U3`, `Su4` and the untouched ≥3Q gates, and is
/// unitarily equivalent to the input.
pub fn fuse_2q(c: &Circuit) -> Circuit {
    let n = c.num_qubits();
    let mut out = Circuit::new(n);
    let mut pending: Vec<Option<CMat>> = vec![None; n]; // accumulated 1Q
    let mut blocks: Vec<OpenBlock> = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; n]; // qubit -> block idx

    for g in c.gates() {
        match g.arity() {
            1 => {
                let q = g.qubits()[0];
                let m = g.matrix();
                if let Some(bi) = owner[q] {
                    let blk = &mut blocks[bi];
                    let side = blk.qubits.0 == q;
                    blk.mat = reqisc_qmath::gates::embed_1q(&m, side).mul_mat(&blk.mat);
                } else {
                    pending[q] = Some(match pending[q].take() {
                        Some(p) => m.mul_mat(&p),
                        None => m,
                    });
                }
            }
            2 => {
                let qs = g.qubits();
                let (a, b) = (qs[0], qs[1]);
                let same = owner[a].is_some() && owner[a] == owner[b];
                if same {
                    let bi = owner[a].unwrap();
                    let blk = &mut blocks[bi];
                    blk.mat = oriented(&g.matrix(), (a, b), blk.qubits).mul_mat(&blk.mat);
                } else {
                    close_qubits(&[a, b], &mut blocks, &mut owner, &mut out);
                    // Open a new block seeded with any pending 1Q gates.
                    let mut mat = g.matrix();
                    if let Some(p) = pending[a].take() {
                        mat = mat.mul_mat(&reqisc_qmath::gates::embed_1q(&p, true));
                    }
                    if let Some(p) = pending[b].take() {
                        mat = mat.mul_mat(&reqisc_qmath::gates::embed_1q(&p, false));
                    }
                    let bi = free_slot(&mut blocks, OpenBlock { qubits: (a, b), mat });
                    owner[a] = Some(bi);
                    owner[b] = Some(bi);
                }
            }
            _ => {
                let qs = g.qubits();
                close_qubits(&qs, &mut blocks, &mut owner, &mut out);
                for &q in &qs {
                    flush_pending(q, &mut pending, &mut out);
                }
                out.push(g.clone());
            }
        }
    }
    let all: Vec<usize> = (0..n).collect();
    close_qubits(&all, &mut blocks, &mut owner, &mut out);
    for q in 0..n {
        flush_pending(q, &mut pending, &mut out);
    }
    out
}

fn free_slot(blocks: &mut Vec<OpenBlock>, blk: OpenBlock) -> usize {
    blocks.push(blk);
    blocks.len() - 1
}

fn oriented(m: &CMat, gate_pair: (usize, usize), block_pair: (usize, usize)) -> CMat {
    if gate_pair == block_pair {
        m.clone()
    } else {
        debug_assert_eq!((gate_pair.1, gate_pair.0), block_pair, "pair mismatch");
        let s = swap();
        s.mul_mat(m).mul_mat(&s)
    }
}

fn close_qubits(
    qs: &[usize],
    blocks: &mut [OpenBlock],
    owner: &mut [Option<usize>],
    out: &mut Circuit,
) {
    let mut to_close: Vec<usize> = qs.iter().filter_map(|&q| owner[q]).collect();
    to_close.sort_unstable();
    to_close.dedup();
    for bi in to_close {
        let blk = &blocks[bi];
        emit_block(blk.qubits, &blk.mat, out);
        owner[blk.qubits.0] = None;
        owner[blk.qubits.1] = None;
    }
}

fn flush_pending(q: usize, pending: &mut [Option<CMat>], out: &mut Circuit) {
    if let Some(m) = pending[q].take() {
        push_u3(q, &m, out);
    }
}

/// Emits a fused 4×4 block: nothing for identity, two `U3`s for local
/// products, an `Su4` otherwise.
fn emit_block(pair: (usize, usize), mat: &CMat, out: &mut Circuit) {
    let tr = mat.trace();
    if (1.0 - tr.abs() / 4.0) < 1e-12 {
        return; // identity up to phase
    }
    if let Ok((_, a, b)) = kron_factor(mat, 1e-10) {
        push_u3(pair.0, &a, out);
        push_u3(pair.1, &b, out);
        return;
    }
    out.push(Gate::Su4(pair.0, pair.1, Box::new(mat.clone())));
}

/// Emits a 2×2 unitary as a single `U3` (skipping identities).
pub fn push_u3(q: usize, m: &CMat, out: &mut Circuit) {
    if (1.0 - m.trace().abs() / 2.0) < 1e-12 {
        return;
    }
    let (t, p, l, _gamma) = zyz_decompose(m);
    out.push(Gate::U3(q, t, p, l));
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::weyl::WeylCoord;
    use reqisc_qsim::process_infidelity;

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-9, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn fuses_adjacent_cnots() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(1));
        c.push(Gate::Cx(0, 1));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 1);
        check_equiv(&c, &f);
    }

    #[test]
    fn cancelling_cnots_vanish() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 0);
        assert_eq!(f.len(), 0);
        check_equiv(&c, &f);
    }

    #[test]
    fn local_block_becomes_u3s() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(0));
        c.push(Gate::T(1));
        c.push(Gate::Cx(0, 1));
        // CX·(H⊗T)·CX can stay entangling; instead use a genuinely local
        // run: CX, CX then 1Q gates.
        let mut c2 = Circuit::new(2);
        c2.push(Gate::Cx(0, 1));
        c2.push(Gate::Cx(0, 1));
        c2.push(Gate::H(0));
        c2.push(Gate::T(1));
        let f2 = fuse_2q(&c2);
        assert_eq!(f2.count_2q(), 0);
        check_equiv(&c2, &f2);
        let f = fuse_2q(&c);
        check_equiv(&c, &f);
    }

    #[test]
    fn different_pairs_break_blocks() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 3);
        check_equiv(&c, &f);
    }

    #[test]
    fn reversed_orientation_fuses() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 0));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 1);
        check_equiv(&c, &f);
    }

    #[test]
    fn pending_1q_seeds_block() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::T(1));
        c.push(Gate::Cx(0, 1));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 1);
        check_equiv(&c, &f);
    }

    #[test]
    fn trailing_1q_only() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::S(0));
        c.push(Gate::X(1));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 0);
        assert!(f.len() <= 2);
        check_equiv(&c, &f);
    }

    #[test]
    fn ccx_is_barrier() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(0, 1));
        let f = fuse_2q(&c);
        // The CCX prevents fusing the two CNOTs.
        assert_eq!(f.count_2q(), 2);
        assert!(f.gates().iter().any(|g| matches!(g, Gate::Ccx(..))));
        check_equiv(&c, &f);
    }

    #[test]
    fn can_gates_fuse_too() {
        let mut c = Circuit::new(2);
        c.push(Gate::Can(0, 1, WeylCoord::new(0.2, 0.1, 0.05)));
        c.push(Gate::U3(0, 0.3, 0.1, -0.2));
        c.push(Gate::Can(0, 1, WeylCoord::new(0.15, 0.1, -0.02)));
        let f = fuse_2q(&c);
        assert_eq!(f.count_2q(), 1);
        check_equiv(&c, &f);
    }

    #[test]
    fn idempotent() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
        let f1 = fuse_2q(&c);
        let f2 = fuse_2q(&f1);
        assert_eq!(f1.count_2q(), f2.count_2q());
        check_equiv(&f1, &f2);
    }
}
