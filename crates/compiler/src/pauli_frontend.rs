//! Pauli-evolution frontend for Type-II programs (paper §5.2.1, §6.1.3).
//!
//! Variational and Hamiltonian-simulation programs are lists of weighted
//! Pauli strings `exp(-iθ/2·P)`. The paper compiles these with a
//! high-level, ISA-independent engine (PHOENIX) into SU(4) gate sequences
//! before handing them to ReQISC. This module reproduces that front end:
//! each string's evolution is emitted as a CX-ladder-free sequence of
//! native 2Q blocks — basis changes fold into the blocks, the ladder pairs
//! up into `Rzz`-conjugations — so the ReQISC passes see SU(4)-dense
//! structure instead of CNOT spaghetti.

use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::CMat;

/// A single Pauli-axis factor on one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// σ_x
    X,
    /// σ_y
    Y,
    /// σ_z
    Z,
}

impl Axis {
    fn basis_change(&self) -> Option<CMat> {
        // C with C·σ·C† = Z.
        match self {
            Axis::X => Some(reqisc_qmath::gates::hadamard()),
            Axis::Y => Some(
                reqisc_qmath::gates::hadamard().mul_mat(&reqisc_qmath::gates::sdg_gate()),
            ),
            Axis::Z => None,
        }
    }
}

/// A weighted Pauli string: `exp(-i·theta/2 · ⊗_k σ_{axis_k}(qubit_k))`.
#[derive(Debug, Clone)]
pub struct PauliRotation {
    /// Support of the string: distinct `(qubit, axis)` pairs.
    pub factors: Vec<(usize, Axis)>,
    /// Rotation angle θ.
    pub theta: f64,
}

impl PauliRotation {
    /// Creates a rotation, validating distinct qubits.
    ///
    /// # Panics
    ///
    /// Panics on repeated qubits.
    pub fn new(factors: Vec<(usize, Axis)>, theta: f64) -> Self {
        for (i, (q, _)) in factors.iter().enumerate() {
            assert!(
                !factors[..i].iter().any(|(p, _)| p == q),
                "repeated qubit {q} in Pauli string"
            );
        }
        Self { factors, theta }
    }
}

/// Emits the evolution of one Pauli rotation as SU(4)-dense blocks.
///
/// Strategy (PHOENIX-style "2Q-block IR"): conjugate each factor to Z with
/// a 1Q basis change, then contract the parity chain pairwise — each chain
/// step is one `Su4` block equal to `CX` dressed with the neighbours'
/// basis changes, and the middle is a bare `Rz`. The emitted blocks fuse
/// aggressively under `fuse_2q` because consecutive strings share support.
pub fn emit_pauli_rotation(c: &mut Circuit, rot: &PauliRotation) {
    match rot.factors.len() {
        0 => {}
        1 => {
            let (q, ax) = rot.factors[0];
            match ax {
                Axis::Z => c.push(Gate::Rz(q, rot.theta)),
                Axis::X => c.push(Gate::Rx(q, rot.theta)),
                Axis::Y => c.push(Gate::Ry(q, rot.theta)),
            }
        }
        2 => {
            // exp(-iθ/2 σ⊗σ): one SU(4) block (basis changes folded in).
            let (qa, aa) = rot.factors[0];
            let (qb, ab) = rot.factors[1];
            let core = Gate::Rzz(0, 1, rot.theta).matrix();
            let m = dress_block(&core, &aa, &ab);
            c.push(Gate::Su4(qa, qb, Box::new(m)));
        }
        _ => {
            // Longer strings: basis-change + CX-ladder, but emitted as
            // Su4 blocks pairing (basis-change, CX) so the SU(4) passes
            // see at most `2(k-1)` blocks before fusion.
            for (q, ax) in &rot.factors {
                if let Some(b) = ax.basis_change() {
                    push_1q(c, *q, &b);
                }
            }
            let chain: Vec<usize> = rot.factors.iter().map(|(q, _)| *q).collect();
            for w in chain.windows(2) {
                c.push(Gate::Cx(w[0], w[1]));
            }
            c.push(Gate::Rz(*chain.last().unwrap(), rot.theta));
            for w in chain.windows(2).rev() {
                c.push(Gate::Cx(w[0], w[1]));
            }
            for (q, ax) in &rot.factors {
                if let Some(b) = ax.basis_change() {
                    push_1q(c, *q, &b.adjoint());
                }
            }
        }
    }
}

fn dress_block(core: &CMat, aa: &Axis, ab: &Axis) -> CMat {
    let one = CMat::identity(2);
    let ca = aa.basis_change().unwrap_or_else(|| one.clone());
    let cb = ab.basis_change().unwrap_or(one);
    let pre = ca.kron(&cb);
    pre.adjoint().mul_mat(core).mul_mat(&pre)
}

/// Two Pauli strings commute iff the number of positions where both act
/// with *different* axes is even.
pub fn strings_commute(a: &[(usize, Axis)], b: &[(usize, Axis)]) -> bool {
    let mut anticommuting = 0;
    for (qa, aa) in a {
        for (qb, ab) in b {
            if qa == qb && aa != ab {
                anticommuting += 1;
            }
        }
    }
    anticommuting % 2 == 0
}

fn push_1q(c: &mut Circuit, q: usize, m: &CMat) {
    let (t, p, l, _) = reqisc_qmath::gates::zyz_decompose(m);
    c.push(Gate::U3(q, t, p, l));
}

/// Compiles a whole Pauli program into a circuit, grouping commuting
/// 2Q-support strings so they sit adjacently for fusion.
pub fn compile_pauli_program(num_qubits: usize, rotations: &[PauliRotation]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    // Stable grouping: strings whose support pairs match are emitted
    // together (they commute when diagonal in the same dressed basis).
    let mut emitted = vec![false; rotations.len()];
    for i in 0..rotations.len() {
        if emitted[i] {
            continue;
        }
        emit_pauli_rotation(&mut c, &rotations[i]);
        emitted[i] = true;
        if rotations[i].factors.len() == 2 {
            let key: Vec<(usize, Axis)> = rotations[i].factors.clone();
            for (j, rot) in rotations.iter().enumerate().skip(i + 1) {
                if emitted[j] {
                    continue;
                }
                if rot.factors == key {
                    emit_pauli_rotation(&mut c, rot);
                    emitted[j] = true;
                } else if !strings_commute(&key, &rot.factors) {
                    // Pulling later matches across this rotation would
                    // reorder non-commuting evolutions — stop the scan.
                    break;
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse_2q;
    use reqisc_benchsuite::generators::push_pauli_evolution;
    use reqisc_qsim::process_infidelity;

    fn reference(n: usize, rot: &PauliRotation) -> Circuit {
        let mut c = Circuit::new(n);
        let string: Vec<(usize, u8)> = rot
            .factors
            .iter()
            .map(|(q, a)| {
                let ax = match a {
                    Axis::X => 0u8,
                    Axis::Y => 1,
                    Axis::Z => 2,
                };
                (*q, ax)
            })
            .collect();
        push_pauli_evolution(&mut c, &string, rot.theta);
        c
    }

    #[test]
    fn two_qubit_strings_are_single_blocks() {
        for axes in [
            (Axis::Z, Axis::Z),
            (Axis::X, Axis::X),
            (Axis::X, Axis::Y),
            (Axis::Y, Axis::Z),
        ] {
            let rot = PauliRotation::new(vec![(0, axes.0), (1, axes.1)], 0.73);
            let mut c = Circuit::new(2);
            emit_pauli_rotation(&mut c, &rot);
            assert_eq!(c.count_2q(), 1, "{axes:?}");
            let r = reference(2, &rot);
            let inf = process_infidelity(&c.unitary(), &r.unitary());
            assert!(inf < 1e-10, "{axes:?}: infidelity {inf}");
        }
    }

    #[test]
    fn single_qubit_strings() {
        for ax in [Axis::X, Axis::Y, Axis::Z] {
            let rot = PauliRotation::new(vec![(0, ax)], -0.41);
            let mut c = Circuit::new(1);
            emit_pauli_rotation(&mut c, &rot);
            let r = reference(1, &rot);
            let inf = process_infidelity(&c.unitary(), &r.unitary());
            assert!(inf < 1e-10);
        }
    }

    #[test]
    fn four_qubit_string_matches_reference() {
        let rot = PauliRotation::new(
            vec![(0, Axis::X), (1, Axis::Y), (2, Axis::Z), (3, Axis::X)],
            0.29,
        );
        let mut c = Circuit::new(4);
        emit_pauli_rotation(&mut c, &rot);
        let r = reference(4, &rot);
        let inf = process_infidelity(&c.unitary(), &r.unitary());
        assert!(inf < 1e-9, "infidelity {inf}");
    }

    #[test]
    fn grouping_fuses_same_support_strings() {
        // Two identical-support rotations (as in Trotter repetitions) are
        // grouped adjacently and fuse into one SU(4).
        let rots = vec![
            PauliRotation::new(vec![(0, Axis::Z), (1, Axis::Z)], 0.3),
            PauliRotation::new(vec![(2, Axis::Z), (1, Axis::Z)], 0.9),
            PauliRotation::new(vec![(0, Axis::Z), (1, Axis::Z)], 0.5),
        ];
        let c = compile_pauli_program(3, &rots);
        let fused = fuse_2q(&c);
        // The two (0,1) ZZ strings group: 2 blocks total.
        assert!(fused.count_2q() <= 2, "got {}", fused.count_2q());
        // Grouping preserved semantics (the pulled-forward string has the
        // same factors, hence commutes with everything it crossed only if
        // the crossing is safe — identical-factor grouping is always safe
        // because e^{-iθP} and e^{-iφP} commute and the middle strings are
        // unaffected by their relative order… verify numerically).
        let mut lin = Circuit::new(3);
        for r in &rots {
            emit_pauli_rotation(&mut lin, r);
        }
        let inf = reqisc_qsim::process_infidelity(&lin.unitary(), &c.unitary());
        assert!(inf < 1e-10, "grouping changed semantics: {inf}");
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn rejects_repeated_qubits() {
        PauliRotation::new(vec![(0, Axis::X), (0, Axis::Z)], 0.1);
    }

    #[test]
    fn commutation_rule() {
        let zz = vec![(0, Axis::Z), (1, Axis::Z)];
        let xx = vec![(0, Axis::X), (1, Axis::X)];
        let x0 = vec![(0, Axis::X)];
        assert!(strings_commute(&zz, &xx)); // two anticommuting positions
        assert!(!strings_commute(&zz, &x0)); // one
        assert!(strings_commute(&zz, &[(2, Axis::X)])); // disjoint
    }

    #[test]
    fn grouping_never_crosses_noncommuting_strings() {
        // ZZ(0,1), X(0), ZZ(0,1): the second ZZ must NOT be pulled across
        // the X rotation.
        let rots = vec![
            PauliRotation::new(vec![(0, Axis::Z), (1, Axis::Z)], 0.3),
            PauliRotation::new(vec![(0, Axis::X)], 0.7),
            PauliRotation::new(vec![(0, Axis::Z), (1, Axis::Z)], 0.5),
        ];
        let c = compile_pauli_program(2, &rots);
        let mut lin = Circuit::new(2);
        for r in &rots {
            emit_pauli_rotation(&mut lin, r);
        }
        let inf = reqisc_qsim::process_infidelity(&lin.unitary(), &c.unitary());
        assert!(inf < 1e-10, "non-commuting reorder changed the unitary: {inf}");
    }
}
