//! The compilation service layer's cache: content-addressed memo tables
//! shared by every worker of a [`crate::pipelines::Compiler`] batch run.
//!
//! Three pools, all built on the sharded read-mostly map of
//! [`reqisc_microarch::cache`]:
//!
//! * **programs** — whole-pipeline results keyed by (circuit content
//!   hash, pipeline, compiler-options fingerprint). A warm hit returns a
//!   finished circuit without touching the synthesis stack at all.
//! * **synthesis** — per-block [`synthesize_if_shorter`] results keyed by
//!   (target-unitary content hash, width, block budget, search-options
//!   fingerprint). Repeated 3Q subprograms — Toffoli/MAJ/UMA blocks
//!   appear hundreds of times across a benchsuite — synthesize once.
//!   Failures (`None`) are cached too: proving "no shorter realization"
//!   is the *most* expensive outcome.
//! * **pulses** — the [`PulseCache`] solver hook, keyed by (coupling,
//!   SU(4) class at the 1e-5 grouping tolerance of
//!   [`reqisc_qmath::SU4_CLASS_TOL`]).
//!
//! Key-design note: program and synthesis keys use *exact* content
//! hashes (deterministic pipelines reproduce inputs bit-for-bit, and an
//! exact key can never alias two different computations), while the
//! pulse pool groups by quantized Weyl class because instruction
//! identity — not bit identity — is the paper's §5.3.1 calibration
//! contract.

use reqisc_microarch::cache::{CacheStats, PulseCache, ShardedMap, SolverStats};
use reqisc_qcircuit::Circuit;
use reqisc_qmath::{CMat, Fnv128};
use reqisc_synthesis::{synthesize_if_shorter, BlockCircuit, SearchOptions};
use std::sync::Arc;

use crate::pipelines::Pipeline;

/// Key of one memoized whole-program compilation. Built once per
/// `compile` call (hashing the circuit is a full pass over its gates)
/// and reused for both the lookup and the fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ProgramKey {
    pub(crate) circuit: u128,
    pub(crate) pipeline: Pipeline,
    pub(crate) options: u128,
}

impl ProgramKey {
    pub(crate) fn new(circuit: &Circuit, pipeline: Pipeline, options_fp: u128) -> Self {
        Self { circuit: circuit.content_hash(), pipeline, options: options_fp }
    }
}

/// Key of one memoized block-synthesis attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SynthKey {
    pub(crate) target: u128,
    pub(crate) num_qubits: usize,
    pub(crate) budget: usize,
    pub(crate) options: u128,
}

/// Aggregated snapshot over the cache's pools.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Whole-program pool.
    pub programs: CacheStats,
    /// Block-synthesis pool.
    pub synthesis: CacheStats,
    /// Pulse-solution pool.
    pub pulses: CacheStats,
    /// Cold-path EA-solver counters behind the pulse pool's misses (the
    /// boundary-curve solver's deterministic cost profile, aggregated).
    pub solver: SolverStats,
}

impl CompileCacheStats {
    /// Sum over all pools.
    pub fn total(&self) -> CacheStats {
        self.programs.merged(&self.synthesis).merged(&self.pulses)
    }
}

impl std::fmt::Display for CompileCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "programs: {}\nsynthesis: {}\npulses: {}\nsolver: {}",
            self.programs, self.synthesis, self.pulses, self.solver
        )
    }
}

/// The shared compilation cache. Every method takes `&self`; a single
/// instance is safely shared by reference across `std::thread::scope`
/// workers (reads are shard-read-lock only — see
/// [`reqisc_microarch::cache`]).
#[derive(Debug, Default)]
pub struct CompileCache {
    programs: ShardedMap<ProgramKey, Arc<Circuit>>,
    synthesis: ShardedMap<SynthKey, Arc<Option<BlockCircuit>>>,
    pulses: PulseCache,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with an explicit shard count and per-shard entry
    /// capacity applied to all three pools — the LRU-eviction knob. The
    /// default shape ([`CompileCache::new`]) is deliberately generous
    /// (16 × 1024 entries per pool, effectively unbounded for the demo
    /// suite); a bounded shape evicts least-recently-used entries once a
    /// shard fills, with [`reqisc_microarch::cache::CacheStats::evictions`]
    /// counting every displacement.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `shard_capacity` is zero.
    pub fn with_shape(shards: usize, shard_capacity: usize) -> Self {
        Self {
            programs: ShardedMap::with_shape(shards, shard_capacity),
            synthesis: ShardedMap::with_shape(shards, shard_capacity),
            pulses: PulseCache::with_shape(shards, shard_capacity),
        }
    }

    /// Looks up a memoized whole-program compilation.
    pub(crate) fn get_program(&self, key: &ProgramKey) -> Option<Arc<Circuit>> {
        self.programs.get(key)
    }

    /// Hit-only-counted lookup of a memoized whole-program compilation
    /// (see [`ShardedMap::probe`]): a present entry counts a hit and
    /// returns; an absent one counts nothing, leaving the miss to the
    /// eventual [`Compiler::compile`](crate::Compiler::compile) that does
    /// the cold work. The service's pipeline lookup stage is the caller.
    pub(crate) fn probe_program(&self, key: &ProgramKey) -> Option<Arc<Circuit>> {
        self.programs.probe(key)
    }

    /// Stores a finished whole-program compilation.
    pub(crate) fn put_program(&self, key: ProgramKey, out: Arc<Circuit>) {
        self.programs.insert(key, out);
    }

    /// Memoized [`synthesize_if_shorter`]: blocks with the same target
    /// unitary, width, and budget synthesize once per cache lifetime.
    pub fn synthesize_if_shorter_cached(
        &self,
        target: &CMat,
        num_qubits: usize,
        current_count: usize,
        opts: &SearchOptions,
    ) -> Arc<Option<BlockCircuit>> {
        // `synthesize_if_shorter` only depends on `current_count` through
        // the clamped block budget; folding the clamp into the key lets
        // e.g. 7- and 9-gate blocks with the same target share an entry.
        let budget = opts.max_blocks.min(current_count.saturating_sub(1));
        if budget == 0 {
            // Degenerate budgets short-circuit inside the search; not
            // worth a cache slot.
            return Arc::new(synthesize_if_shorter(target, num_qubits, current_count, opts));
        }
        let key = SynthKey {
            target: target.fingerprint(),
            num_qubits,
            budget,
            options: opts.fingerprint(),
        };
        self.synthesis.get_or_insert_with(&key, || {
            Arc::new(synthesize_if_shorter(target, num_qubits, current_count, opts))
        })
    }

    /// The microarchitecture solver hook: memoized pulse solutions per
    /// (coupling, SU(4) class).
    pub fn pulses(&self) -> &PulseCache {
        &self.pulses
    }

    /// Exports the whole-program pool for a persistent-store save; the
    /// trailing flag is `true` for entries a live lookup or insert touched
    /// (`false` = bulk-seeded and never served — GC-aging candidates).
    pub(crate) fn export_programs(&self) -> Vec<(ProgramKey, Arc<Circuit>, bool)> {
        let mut out = Vec::new();
        self.programs.for_each_with_used(|k, v, used| out.push((*k, v.clone(), used)));
        out
    }

    /// Exports the block-synthesis pool for a persistent-store save (same
    /// used-flag contract as [`CompileCache::export_programs`]).
    pub(crate) fn export_synthesis(&self) -> Vec<(SynthKey, Arc<Option<BlockCircuit>>, bool)> {
        let mut out = Vec::new();
        self.synthesis.for_each_with_used(|k, v, used| out.push((*k, v.clone(), used)));
        out
    }

    /// Removes one whole-program entry (the store GC's in-memory purge).
    pub(crate) fn remove_program(&self, key: &ProgramKey) -> bool {
        self.programs.remove(key)
    }

    /// Removes one block-synthesis entry (the store GC's in-memory purge).
    pub(crate) fn remove_synthesis(&self, key: &SynthKey) -> bool {
        self.synthesis.remove(key)
    }

    /// Seeds one whole-program entry (counter-free warm start — see
    /// [`reqisc_microarch::cache::ShardedMap::seed`]).
    pub(crate) fn seed_program(&self, key: ProgramKey, out: Arc<Circuit>) {
        self.programs.seed(key, out);
    }

    /// Seeds one block-synthesis entry (counter-free warm start).
    pub(crate) fn seed_synthesis(&self, key: SynthKey, v: Arc<Option<BlockCircuit>>) {
        self.synthesis.seed(key, v);
    }

    /// Counter snapshot across all pools.
    pub fn stats(&self) -> CompileCacheStats {
        CompileCacheStats {
            programs: self.programs.stats(),
            synthesis: self.synthesis.stats(),
            pulses: self.pulses.stats(),
            solver: self.pulses.solver_stats(),
        }
    }

    /// Resident entries across all pools.
    pub fn len(&self) -> usize {
        self.programs.len() + self.synthesis.len() + self.pulses.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized entries in every pool (counters survive).
    pub fn clear(&self) {
        self.programs.clear();
        self.synthesis.clear();
        self.pulses.clear();
    }
}

/// Fingerprint of everything in [`crate::hierarchical::HsOptions`] that
/// can change a compilation result. Hashing the `Debug` rendering keeps
/// the fingerprint automatically in sync with future option fields at the
/// cost of a small format per compile — noise next to any pipeline run.
pub(crate) fn hs_options_fingerprint(hs: &crate::hierarchical::HsOptions) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(&format!("{hs:?}"));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qcircuit::Gate;

    #[test]
    fn synthesis_pool_memoizes_including_failures() {
        let cache = CompileCache::new();
        let mut opts = SearchOptions::default();
        opts.sweep.restarts = 2;
        opts.sweep.max_sweeps = 150;
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        let target = c.unitary();
        let a = cache.synthesize_if_shorter_cached(&target, 3, 6, &opts);
        assert!(a.is_some(), "CCX must synthesize below 6 blocks");
        let b = cache.synthesize_if_shorter_cached(&target, 3, 6, &opts);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats().synthesis;
        assert_eq!((s.hits, s.misses), (1, 1));
        // current_count = 1 ⇒ budget 0 ⇒ uncached fast path, no lookup.
        let none = cache.synthesize_if_shorter_cached(&target, 3, 1, &opts);
        assert!(none.is_none());
        let s = cache.stats().synthesis;
        assert_eq!((s.hits, s.misses), (1, 1), "degenerate budgets bypass the cache");
    }

    #[test]
    fn synthesis_key_includes_budget_and_options() {
        let cache = CompileCache::new();
        let mut opts = SearchOptions::default();
        opts.sweep.restarts = 2;
        opts.sweep.max_sweeps = 150;
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        let target = c.unitary();
        cache.synthesize_if_shorter_cached(&target, 3, 6, &opts);
        // Same clamped budget (7 and 9 both clamp at max_blocks) shares.
        cache.synthesize_if_shorter_cached(&target, 3, 8, &opts);
        cache.synthesize_if_shorter_cached(&target, 3, 8, &opts);
        assert_eq!(cache.stats().synthesis.misses, 2, "budgets 5 and 7 are distinct");
        // Changing options misses.
        let mut opts2 = opts.clone();
        opts2.sweep.seed = 99;
        cache.synthesize_if_shorter_cached(&target, 3, 6, &opts2);
        assert_eq!(cache.stats().synthesis.misses, 3);
    }
}
