//! Shared-segment bridge: moves individual pool entries between a
//! [`CompileCache`] and a [`reqisc_shmem::Segment`].
//!
//! The segment stores raw `(pool tag, key bytes, value bytes)` records;
//! this module owns the typed entry codecs for the three memo pools,
//! reusing the exact value codecs the persistent store uses
//! (`write_circuit` / `BlockCircuit::encode_into` /
//! `write_solved_class`), so a segment entry round-trips bit-for-bit
//! the same artifacts as a store file. The key byte orders below are
//! cross-process wire surface and sit in a `lint:store-surface` region:
//! editing them without a `STORE_FORMAT_VERSION` bump + registry
//! regeneration fails `reqisc-lint --deny-all`. Segments are attached
//! with [`crate::store::STORE_FORMAT_VERSION`], so a codec bump
//! invalidates stale segments exactly like it invalidates store files.

use crate::cache::{CompileCache, ProgramKey, SynthKey};
use crate::pipelines::Pipeline;
use reqisc_microarch::cache::{read_solved_class, write_solved_class};
use reqisc_qcircuit::{read_circuit, write_circuit, Circuit};
use reqisc_qmath::{ByteReader, ByteWriter, WeylClassKey};
use reqisc_shmem::{PublishOutcome, Segment};
use reqisc_synthesis::BlockCircuit;
use std::sync::Arc;

// lint:store-surface-begin
/// Segment pool tag of whole-program entries.
pub const POOL_PROGRAM: u8 = 1;
/// Segment pool tag of block-synthesis entries.
pub const POOL_SYNTHESIS: u8 = 2;
/// Segment pool tag of pulse-class entries.
pub const POOL_PULSE: u8 = 3;

fn program_key_bytes(circuit: u128, pipeline: Pipeline, options: u128) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u128(circuit);
    w.put_u8(pipeline.store_tag());
    w.put_u128(options);
    w.into_bytes()
}

fn synth_key_bytes(k: &SynthKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u128(k.target);
    w.put_usize(k.num_qubits);
    w.put_usize(k.budget);
    w.put_u128(k.options);
    w.into_bytes()
}

fn pulse_key_bytes(coupling: [i64; 3], class: WeylClassKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for c in coupling {
        w.put_i64(c);
    }
    for c in class.0 {
        w.put_i64(c);
    }
    w.into_bytes()
}

fn decode_synth_key(bytes: &[u8]) -> Option<SynthKey> {
    let mut r = ByteReader::new(bytes);
    let key = SynthKey {
        target: r.get_u128().ok()?,
        num_qubits: r.get_usize().ok()?,
        budget: r.get_usize().ok()?,
        options: r.get_u128().ok()?,
    };
    r.is_exhausted().then_some(key)
}

fn decode_program_key(bytes: &[u8]) -> Option<ProgramKey> {
    let mut r = ByteReader::new(bytes);
    let circuit = r.get_u128().ok()?;
    let pipeline = Pipeline::from_store_tag(r.get_u8().ok()?)?;
    let options = r.get_u128().ok()?;
    r.is_exhausted()
        .then_some(ProgramKey { circuit, pipeline, options })
}

fn decode_pulse_key(bytes: &[u8]) -> Option<([i64; 3], WeylClassKey)> {
    let mut r = ByteReader::new(bytes);
    let cp = [r.get_i64().ok()?, r.get_i64().ok()?, r.get_i64().ok()?];
    let class = WeylClassKey([r.get_i64().ok()?, r.get_i64().ok()?, r.get_i64().ok()?]);
    r.is_exhausted().then_some((cp, class))
}

fn circuit_val_bytes(c: &Circuit) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_circuit(&mut w, c);
    w.into_bytes()
}

fn decode_circuit_val(bytes: &[u8]) -> Option<Circuit> {
    let mut r = ByteReader::new(bytes);
    let c = read_circuit(&mut r).ok()?;
    r.is_exhausted().then_some(c)
}

fn synth_val_bytes(v: &Option<BlockCircuit>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match v {
        Some(bc) => {
            w.put_u8(1);
            bc.encode_into(&mut w);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

fn decode_synth_val(bytes: &[u8]) -> Option<Option<BlockCircuit>> {
    let mut r = ByteReader::new(bytes);
    let v = match r.get_u8().ok()? {
        0 => None,
        1 => Some(BlockCircuit::decode_from(&mut r).ok()?),
        _ => return None,
    };
    r.is_exhausted().then_some(v)
}

fn pulse_val_bytes(v: &reqisc_microarch::cache::SolvedClass) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_solved_class(&mut w, v);
    w.into_bytes()
}

fn decode_pulse_val(bytes: &[u8]) -> Option<reqisc_microarch::cache::SolvedClass> {
    let mut r = ByteReader::new(bytes);
    let v = read_solved_class(&mut r).ok()?;
    r.is_exhausted().then_some(v)
}
// lint:store-surface-end

/// Outcome tallies of one bulk publish pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Entries newly appended to the segment.
    pub published: u64,
    /// Entries another daemon (or an earlier pass) already published.
    pub duplicates: u64,
    /// Entries rejected because the segment was full.
    pub full_rejects: u64,
}

impl ShareStats {
    fn absorb(&mut self, outcome: PublishOutcome) {
        match outcome {
            PublishOutcome::Published => self.published += 1,
            PublishOutcome::Duplicate => self.duplicates += 1,
            PublishOutcome::SegmentFull => self.full_rejects += 1,
        }
    }
}

/// Probes the shared segment for a whole-program entry (the lookup
/// tier between the local pool and a cold solve). A hit decodes the
/// circuit and seeds it into the local pool — counter-free, exactly
/// like a store warm start — so the next request for this key is a
/// local hit.
pub fn probe_shared_program(
    seg: &Segment,
    cache: &CompileCache,
    circuit: u128,
    pipeline: Pipeline,
    options: u128,
) -> Option<Arc<Circuit>> {
    let key_bytes = program_key_bytes(circuit, pipeline, options);
    let val = seg.probe(POOL_PROGRAM, &key_bytes)?;
    let decoded = Arc::new(decode_circuit_val(&val)?);
    let key = ProgramKey { circuit, pipeline, options };
    cache.seed_program(key, decoded.clone());
    Some(decoded)
}

/// Publishes one finished whole-program compilation (the solve stage's
/// at-completion hook: every daemon on the box sees the hit instantly).
pub fn publish_program(
    seg: &Segment,
    circuit: u128,
    pipeline: Pipeline,
    options: u128,
    value: &Circuit,
) -> PublishOutcome {
    seg.publish(
        POOL_PROGRAM,
        &program_key_bytes(circuit, pipeline, options),
        &circuit_val_bytes(value),
    )
}

/// Publishes every entry of all three pools into the segment (the
/// snapshot/shutdown bulk hook; `Duplicate` outcomes are the common
/// case for a warm pool and cost one probe each).
pub fn publish_all(seg: &Segment, cache: &CompileCache) -> ShareStats {
    let mut stats = ShareStats::default();
    for (k, v, _used) in cache.export_programs() {
        stats.absorb(seg.publish(
            POOL_PROGRAM,
            &program_key_bytes(k.circuit, k.pipeline, k.options),
            &circuit_val_bytes(&v),
        ));
    }
    for (k, v, _used) in cache.export_synthesis() {
        stats.absorb(seg.publish(POOL_SYNTHESIS, &synth_key_bytes(&k), &synth_val_bytes(&v)));
    }
    for ((cp, class), v, _used) in cache.pulses().export_classes() {
        stats.absorb(seg.publish(POOL_PULSE, &pulse_key_bytes(cp, class), &pulse_val_bytes(&v)));
    }
    stats
}

/// Seeds every decodable segment entry into the local pools
/// (counter-free warm start, like [`crate::store::CacheStore::load_into`]).
/// Returns the number of entries seeded; undecodable entries are
/// skipped — a checksum-valid record that fails the typed decode can
/// only come from a foreign build, and a skip is a future cache miss,
/// never an error.
pub fn seed_from_segment(seg: &Segment, cache: &CompileCache) -> usize {
    seed_filtered(seg, cache, true)
}

/// Seeds only the synthesis and pulse pools from the segment. This is
/// the *service* startup hook: sub-program entries are consulted deep
/// inside a cold solve where nothing probes the segment, so they must
/// be local to help — while whole-program entries stay segment-only so
/// the lookup stage's shared-probe tier answers (and counts) them.
pub fn seed_subprogram_pools(seg: &Segment, cache: &CompileCache) -> usize {
    seed_filtered(seg, cache, false)
}

fn seed_filtered(seg: &Segment, cache: &CompileCache, include_programs: bool) -> usize {
    let mut seeded = 0usize;
    seg.for_each(|pool, key, val, _stamp| {
        let ok = match pool {
            POOL_PROGRAM if include_programs => {
                match (decode_program_key(key), decode_circuit_val(val)) {
                    (Some(k), Some(v)) => {
                        cache.seed_program(k, Arc::new(v));
                        true
                    }
                    _ => false,
                }
            }
            POOL_PROGRAM => false,
            POOL_SYNTHESIS => match (decode_synth_key(key), decode_synth_val(val)) {
                (Some(k), Some(v)) => {
                    cache.seed_synthesis(k, Arc::new(v));
                    true
                }
                _ => false,
            },
            POOL_PULSE => match (decode_pulse_key(key), decode_pulse_val(val)) {
                (Some((cp, class)), Some(v)) => {
                    cache.pulses().seed_class(cp, class, Arc::new(v));
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if ok {
            seeded += 1;
        }
    });
    seeded
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qcircuit::Gate;
    use reqisc_shmem::layout::MIN_CAPACITY;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static NEXT: AtomicU32 = AtomicU32::new(0);

    fn tmp_seg(tag: &str) -> (Segment, PathBuf) {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "reqisc-sharing-{tag}-{}-{n}.seg",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        (Segment::attach(&path, MIN_CAPACITY, 7).unwrap(), path)
    }

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c
    }

    #[test]
    fn program_entries_roundtrip_through_segment() {
        let (seg, path) = tmp_seg("program");
        let value = small_circuit();
        let (h, opts) = (value.content_hash(), 42u128);
        assert_eq!(
            publish_program(&seg, h, Pipeline::ReqiscEff, opts, &value),
            PublishOutcome::Published
        );
        assert_eq!(
            publish_program(&seg, h, Pipeline::ReqiscEff, opts, &value),
            PublishOutcome::Duplicate
        );
        let cache = CompileCache::new();
        let got = probe_shared_program(&seg, &cache, h, Pipeline::ReqiscEff, opts)
            .expect("published program must probe back");
        assert_eq!(got.content_hash(), h);
        // The probe seeded the local pool: a counter-free warm entry.
        let key = ProgramKey { circuit: h, pipeline: Pipeline::ReqiscEff, options: opts };
        assert!(cache.probe_program(&key).is_some());
        // Different pipeline / options miss.
        assert!(probe_shared_program(&seg, &cache, h, Pipeline::ReqiscFull, opts).is_none());
        assert!(probe_shared_program(&seg, &cache, h, Pipeline::ReqiscEff, 43).is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn publish_all_then_seed_restores_pools() {
        let (seg, path) = tmp_seg("bulk");
        let cache = CompileCache::new();
        let value = Arc::new(small_circuit());
        let pk = ProgramKey {
            circuit: value.content_hash(),
            pipeline: Pipeline::ReqiscEff,
            options: 1,
        };
        cache.seed_program(pk, value.clone());
        // A negative synthesis result ("no shorter realization") is
        // cacheable wire content too.
        let sk = SynthKey { target: 9, num_qubits: 3, budget: 4, options: 2 };
        cache.seed_synthesis(sk, Arc::new(None));

        let stats = publish_all(&seg, &cache);
        assert_eq!(stats.published, 2);
        assert_eq!((stats.duplicates, stats.full_rejects), (0, 0));
        // Re-publishing a warm pool is all duplicates.
        let again = publish_all(&seg, &cache);
        assert_eq!((again.published, again.duplicates), (0, 2));

        let fresh = CompileCache::new();
        assert_eq!(seed_from_segment(&seg, &fresh), 2);
        assert!(fresh.probe_program(&pk).is_some());
        assert_eq!(fresh.len(), 2);
        let _ = std::fs::remove_file(path);
    }
}
