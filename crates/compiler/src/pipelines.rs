//! End-to-end compilation pipelines (paper §5.4, §6.1.2): the two ReQISC
//! schemes and the five baselines, with the common metrics of §6.1.1.

use crate::cache::{hs_options_fingerprint, CompileCache, CompileCacheStats};
use crate::cnot_opt::{qiskit_like, tket_like};
use crate::fuse::fuse_2q;
use crate::hierarchical::{hierarchical_synthesis_batched, HsOptions};
use crate::template_pass::template_synthesis;
use reqisc_microarch::{duration_in_g, Coupling};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::weyl_coords;
use reqisc_synthesis::{SearchOptions, TemplateLibrary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The compilation pipelines compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Qiskit-like O3 (CNOT ISA).
    Qiskit,
    /// TKet-like with Pauli simplification (CNOT ISA).
    Tket,
    /// BQSKit-like: partition + unconditional approximate synthesis
    /// (SU(4) ISA, no calibration awareness).
    BqskitSu4,
    /// Qiskit-like followed by a 2Q fuse-to-SU(4) pass.
    QiskitSu4,
    /// TKet-like followed by a 2Q fuse-to-SU(4) pass.
    TketSu4,
    /// ReQISC-Eff: template-based synthesis only (minimal calibration).
    ReqiscEff,
    /// ReQISC-Full: template synthesis + hierarchical synthesis.
    ReqiscFull,
    /// ReQISC-Full without DAG compacting (ablation "ReQISC-NC").
    ReqiscNc,
}

impl Pipeline {
    /// Every pipeline, in evaluation order — the one list tests and
    /// round-robin schedulers should index so a new variant extends them
    /// all at once.
    pub const ALL: [Pipeline; 8] = [
        Pipeline::Qiskit,
        Pipeline::Tket,
        Pipeline::QiskitSu4,
        Pipeline::TketSu4,
        Pipeline::BqskitSu4,
        Pipeline::ReqiscEff,
        Pipeline::ReqiscFull,
        Pipeline::ReqiscNc,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Pipeline::Qiskit => "qiskit",
            Pipeline::Tket => "tket",
            Pipeline::BqskitSu4 => "bqskit-su4",
            Pipeline::QiskitSu4 => "qiskit-su4",
            Pipeline::TketSu4 => "tket-su4",
            Pipeline::ReqiscEff => "reqisc-eff",
            Pipeline::ReqiscFull => "reqisc-full",
            Pipeline::ReqiscNc => "reqisc-nc",
        }
    }

    /// True for pipelines emitting the SU(4) ISA.
    pub fn is_su4(&self) -> bool {
        !matches!(self, Pipeline::Qiskit | Pipeline::Tket)
    }

    /// Inverse of [`Pipeline::name`]: resolves the short display name back
    /// to the variant (`None` for unknown names). The service protocol's
    /// pipeline field parses through this, so wire names and display
    /// names can never drift apart.
    pub fn from_name(name: &str) -> Option<Pipeline> {
        Pipeline::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Stable on-disk tag for the persistent store's program keys.
    /// Append-only: new variants take fresh numbers, existing values are
    /// frozen (a renumber must bump the store format version).
    pub(crate) fn store_tag(&self) -> u8 {
        match self {
            Pipeline::Qiskit => 0,
            Pipeline::Tket => 1,
            Pipeline::QiskitSu4 => 2,
            Pipeline::TketSu4 => 3,
            Pipeline::BqskitSu4 => 4,
            Pipeline::ReqiscEff => 5,
            Pipeline::ReqiscFull => 6,
            Pipeline::ReqiscNc => 7,
        }
    }

    /// Inverse of [`Pipeline::store_tag`]; `None` for unknown tags (a
    /// store file written by a newer build).
    pub(crate) fn from_store_tag(tag: u8) -> Option<Pipeline> {
        Pipeline::ALL.iter().copied().find(|p| p.store_tag() == tag)
    }
}

/// Shared, reusable compilation context: the pre-synthesized template
/// library, the hierarchical-synthesis options, and the content-addressed
/// [`CompileCache`] every compilation goes through.
///
/// All compilation entry points take `&self`, so one `Compiler` is safely
/// shared across threads ([`Compiler::compile_batch`] does exactly that) —
/// the cache is internally synchronized with read-mostly sharded locks.
pub struct Compiler {
    /// The pre-synthesized template library.
    pub library: TemplateLibrary,
    /// Hierarchical-synthesis options. May be adjusted after construction;
    /// the cache keys every result under a fingerprint of these options,
    /// so adjustments never serve stale entries.
    pub hs: HsOptions,
    /// Block-level batching width for single-program compiles: the
    /// distinct dense blocks of one program are synthesized on up to this
    /// many scoped workers (`0` = available hardware parallelism, `1` =
    /// serial). Results are bit-identical at any setting, so this is
    /// deliberately *not* part of the cache key.
    pub block_threads: usize,
    cache: CompileCache,
}

impl Compiler {
    /// Builds a compiler with default options (pre-synthesizes the
    /// built-in template library — a one-time cost).
    pub fn new() -> Self {
        Self::new_with_library(Self::builtin_library())
    }

    /// Synthesizes the built-in template library at the default search
    /// budget — the library [`Compiler::new`] uses. Exposed so callers
    /// composing a compiler by parts ([`Compiler::new_with_library_and_cache`])
    /// get the identical library without duplicating the budget choice.
    pub fn builtin_library() -> TemplateLibrary {
        let mut search = SearchOptions::default();
        search.sweep.restarts = 3;
        TemplateLibrary::builtin(&search)
    }

    /// Builds a compiler around an existing template library — the cheap
    /// constructor for callers that need many compilers with *fresh
    /// caches* (store tests, multi-tenant fronts) without re-synthesizing
    /// the library each time.
    pub fn new_with_library(library: TemplateLibrary) -> Self {
        Self::new_with_library_and_cache(library, CompileCache::new())
    }

    /// Builds a compiler around an existing template library *and* an
    /// explicit cache — the constructor for callers that bound the memo
    /// pools (see [`CompileCache::with_shape`]) or pre-warm a cache before
    /// handing it to the compiler.
    pub fn new_with_library_and_cache(library: TemplateLibrary, cache: CompileCache) -> Self {
        Self { library, hs: HsOptions::default(), block_threads: 0, cache }
    }

    /// The shared compilation cache.
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Fingerprint of the current [`Compiler::hs`] options — the third
    /// component of every whole-program cache key. The service layer's
    /// in-flight coalescing keys on `(circuit content hash, pipeline,
    /// this)` so two requests coalesce exactly when a cache hit would
    /// serve one from the other.
    pub fn options_fingerprint(&self) -> u128 {
        hs_options_fingerprint(&self.hs)
    }

    /// Snapshot of the cache counters (hits / misses / inserts /
    /// evictions per pool).
    pub fn cache_stats(&self) -> CompileCacheStats {
        self.cache.stats()
    }

    /// Warm-path probe of the whole-program pool by precomputed key
    /// parts: a resident compilation returns immediately (counted as one
    /// pool hit, entry marked most-recently-used); absence counts
    /// **nothing** and returns `None`, leaving the miss accounting to the
    /// [`Compiler::compile`] call that eventually does the cold work.
    /// This is the service pipeline's lookup stage entry point — it must
    /// never synthesize, solve, or otherwise block, and its counters must
    /// compose with a later `compile` to exactly one hit *or* one miss
    /// per job.
    pub fn lookup_program(
        &self,
        circuit_hash: u128,
        pipeline: Pipeline,
        options_fp: u128,
    ) -> Option<Arc<Circuit>> {
        let key =
            crate::cache::ProgramKey { circuit: circuit_hash, pipeline, options: options_fp };
        self.cache.probe_program(&key)
    }

    /// Cold-path solver counters behind the pulse pool: how much
    /// boundary-curve work the EA solver did across every class miss this
    /// compiler served. Deterministic (no wall clocks), so benches and CI
    /// can assert budgets on it directly.
    pub fn solver_stats(&self) -> reqisc_microarch::SolverStats {
        self.cache.pulses().solver_stats()
    }

    /// Runs one pipeline on a program, memoizing through the shared
    /// cache: a repeat compile of the same program bits under the same
    /// pipeline and options returns the cached circuit. (The one clone
    /// per call is the cost of the owned return type every existing
    /// consumer expects; lookups themselves are a single content hash.)
    pub fn compile(&self, c: &Circuit, p: Pipeline) -> Circuit {
        self.compile_with_block_threads(c, p, self.effective_block_threads())
    }

    /// The configured [`Compiler::block_threads`] with `0` resolved to the
    /// available hardware parallelism.
    fn effective_block_threads(&self) -> usize {
        if self.block_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.block_threads
        }
    }

    /// [`Compiler::compile`] with an explicit block-batching width —
    /// the internal entry point [`Compiler::compile_batch`] workers use so
    /// program-level and block-level parallelism compose instead of
    /// oversubscribing.
    fn compile_with_block_threads(&self, c: &Circuit, p: Pipeline, bt: usize) -> Circuit {
        let key = crate::cache::ProgramKey::new(c, p, hs_options_fingerprint(&self.hs));
        if let Some(hit) = self.cache.get_program(&key) {
            return (*hit).clone();
        }
        let out = self.run_pipeline(c, p, Some(&self.cache), bt);
        self.cache.put_program(key, Arc::new(out.clone()));
        out
    }

    /// Runs one pipeline without consulting the whole-program memo table
    /// (block-level pools are also bypassed). This is the reference cold
    /// path the property/stress tests compare cache hits against.
    pub fn compile_uncached(&self, c: &Circuit, p: Pipeline) -> Circuit {
        self.run_pipeline(c, p, None, 1)
    }

    fn run_pipeline(
        &self,
        c: &Circuit,
        p: Pipeline,
        cache: Option<&CompileCache>,
        block_threads: usize,
    ) -> Circuit {
        match p {
            Pipeline::Qiskit => qiskit_like(c),
            Pipeline::Tket => tket_like(c),
            Pipeline::QiskitSu4 => fuse_2q(&qiskit_like(c)),
            Pipeline::TketSu4 => fuse_2q(&tket_like(c)),
            Pipeline::BqskitSu4 => {
                // Aggressive synthesis with no template/calibration
                // awareness: threshold m_th = 1 resynthesizes every dense
                // block, compacting off.
                let mut o = self.hs.clone();
                o.m_th = 1;
                o.compacting = false;
                hierarchical_synthesis_batched(c, &o, cache, block_threads)
            }
            Pipeline::ReqiscEff => template_synthesis(c, &self.library),
            Pipeline::ReqiscFull => {
                let t = template_synthesis(c, &self.library);
                hierarchical_synthesis_batched(&t, &self.hs, cache, block_threads)
            }
            Pipeline::ReqiscNc => {
                let t = template_synthesis(c, &self.library);
                let mut o = self.hs.clone();
                o.compacting = false;
                hierarchical_synthesis_batched(&t, &o, cache, block_threads)
            }
        }
    }

    /// Compiles a whole batch of `(program, pipeline)` jobs across
    /// `threads` OS threads sharing this compiler's cache, returning the
    /// compiled circuits in job order.
    ///
    /// `threads = 0` uses the available hardware parallelism. Workers
    /// claim jobs from a shared cursor, so a few slow programs do not
    /// starve the rest of a worker's stripe; results are bit-identical to
    /// the serial path because every pipeline is deterministic and cache
    /// entries are immutable once written.
    ///
    /// Leftover parallelism flows down a level: when there are fewer jobs
    /// than threads (one big program in the extreme), each worker batches
    /// that program's distinct dense blocks across the spare threads — so
    /// a single large program saturates the machine the same way a suite
    /// of small ones does.
    pub fn compile_batch(&self, jobs: &[(&Circuit, Pipeline)], threads: usize) -> Vec<Circuit> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        let workers = threads.min(jobs.len().max(1));
        // Spare threads (if any) become per-job block-batching width.
        let block_threads = (threads / jobs.len().max(1)).max(1);
        let slots: Vec<OnceLock<Circuit>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(c, p)) = jobs.get(i) else { break };
                    let out = self.compile_with_block_threads(c, p, block_threads);
                    slots[i].set(out).expect("job slot written twice");
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker panicked before finishing its job"))
            .collect()
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

/// The §6.1.1 metrics of one compiled circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Two-qubit gate count.
    pub count_2q: usize,
    /// Two-qubit depth.
    pub depth_2q: usize,
    /// Total pulse duration in `g⁻¹` (critical path).
    pub duration: f64,
}

/// Per-gate pulse duration in `g⁻¹` under `cp`:
/// CNOT-ISA gates use the conventional implementations, SU(4)-ISA gates
/// the genAshN optimal durations; 1Q gates are free.
pub fn gate_duration(g: &Gate, cp: &Coupling) -> f64 {
    if g.arity() < 2 {
        return 0.0;
    }
    match g {
        Gate::Cx(..) | Gate::Cz(..) => reqisc_microarch::conventional_cnot_duration(),
        Gate::Swap(..) => 3.0 * reqisc_microarch::conventional_cnot_duration(),
        Gate::Su4(..) | Gate::Can(..) | Gate::Rzz(..) | Gate::ISwap(..) | Gate::SqiSw(..)
        | Gate::BGate(..) => {
            let w = g
                .weyl()
                .or_else(|| weyl_coords(&g.matrix()).ok())
                .unwrap_or_default();
            duration_in_g(&w, cp)
        }
        other => {
            // ≥3Q gates should be lowered before timing; price them as
            // their CX lowering.
            let mut c = Circuit::new(other.qubits().iter().max().unwrap() + 1);
            c.push(other.clone());
            c.lowered_to_cx().count_2q() as f64 * reqisc_microarch::conventional_cnot_duration()
        }
    }
}

/// Computes the metrics of a compiled circuit under a coupling.
pub fn metrics(c: &Circuit, cp: &Coupling) -> Metrics {
    Metrics {
        count_2q: c.count_2q(),
        depth_2q: c.depth_2q(),
        duration: c.duration(&|g| gate_duration(g, cp)),
    }
}

/// Counts distinct SU(4) classes in a compiled circuit at the default
/// grouping tolerance [`reqisc_qmath::SU4_CLASS_TOL`] — the calibration
/// cost (paper §6.5). Two gates are "the same instruction" when their
/// Weyl coordinates agree within the tolerance (1Q corrections are
/// calibration-free via the PMW protocol, §5.3.1).
///
/// The default is the right call for essentially every consumer:
/// synthesis converges to ~1e-11 infidelity, which leaves ~1e-6
/// coordinate noise, so grouping tighter than 1e-5 over-splits identical
/// instructions (and silently diverges from the pulse cache's own class
/// keys). Pass a different tolerance explicitly via
/// [`distinct_su4_count_with_tol`] only when you have a reason.
pub fn distinct_su4_count(c: &Circuit) -> usize {
    distinct_su4_count_with_tol(c, reqisc_qmath::SU4_CLASS_TOL)
}

/// [`distinct_su4_count`] at an explicit grouping tolerance. Tolerances
/// below [`reqisc_qmath::SU4_CLASS_TOL`] are noise-sensitive — they count
/// synthesis jitter as distinct instructions.
pub fn distinct_su4_count_with_tol(c: &Circuit, tol: f64) -> usize {
    let mut classes: Vec<reqisc_qmath::WeylCoord> = Vec::new();
    for g in c.gates() {
        if !g.is_2q() {
            continue;
        }
        let w = match g.weyl().or_else(|| weyl_coords(&g.matrix()).ok()) {
            Some(w) => w,
            None => continue,
        };
        if w.l1_norm() < tol {
            continue; // identity-class: nothing to calibrate
        }
        if !classes.iter().any(|k| k.approx_eq(&w, tol)) {
            classes.push(w);
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;
    use std::sync::OnceLock;

    fn compiler() -> &'static Compiler {
        static C: OnceLock<Compiler> = OnceLock::new();
        C.get_or_init(|| {
            let mut c = Compiler::new();
            c.hs.search.sweep.restarts = 2;
            c.hs.search.sweep.max_sweeps = 150;
            c
        })
    }

    fn toffoli_chain() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Ccx(1, 2, 3));
        c.push(Gate::H(0));
        c.push(Gate::Ccx(0, 1, 3));
        c
    }

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-6, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn all_pipelines_preserve_semantics() {
        let c = toffoli_chain();
        for p in [
            Pipeline::Qiskit,
            Pipeline::Tket,
            Pipeline::QiskitSu4,
            Pipeline::TketSu4,
            Pipeline::BqskitSu4,
            Pipeline::ReqiscEff,
            Pipeline::ReqiscFull,
            Pipeline::ReqiscNc,
        ] {
            let out = compiler().compile(&c, p);
            check_equiv(&c, &out);
        }
    }

    #[test]
    fn reqisc_beats_cnot_baselines_on_type1() {
        let c = toffoli_chain();
        let cp = Coupling::xy(1.0);
        let q = metrics(&compiler().compile(&c, Pipeline::Qiskit), &cp);
        let eff = metrics(&compiler().compile(&c, Pipeline::ReqiscEff), &cp);
        let full = metrics(&compiler().compile(&c, Pipeline::ReqiscFull), &cp);
        assert!(eff.count_2q < q.count_2q, "eff {} vs qiskit {}", eff.count_2q, q.count_2q);
        assert!(full.count_2q <= eff.count_2q);
        assert!(full.duration < q.duration);
    }

    #[test]
    fn su4_variants_fuse_blocks() {
        let c = toffoli_chain();
        let q = compiler().compile(&c, Pipeline::Qiskit);
        let qs = compiler().compile(&c, Pipeline::QiskitSu4);
        assert!(qs.count_2q() <= q.count_2q());
        assert!(qs.gates().iter().filter(|g| g.is_2q()).all(|g| matches!(g, Gate::Su4(..))));
    }

    #[test]
    fn calibration_counts() {
        let c = toffoli_chain();
        // The default tolerance groups at SU4_CLASS_TOL = 1e-5: the
        // synthesis sweep stops at infidelity ~1e-11, which leaves per-run
        // Weyl-coordinate noise of order 1e-6, so a tighter tolerance
        // over-splits identical gate classes.
        let eff = compiler().compile(&c, Pipeline::ReqiscEff);
        let n_eff = distinct_su4_count(&eff);
        assert!(n_eff > 0 && n_eff < 12, "eff distinct = {n_eff}");
        assert_eq!(
            n_eff,
            distinct_su4_count_with_tol(&eff, reqisc_qmath::SU4_CLASS_TOL),
            "default must equal the explicit SU4_CLASS_TOL call"
        );
        let bq = compiler().compile(&c, Pipeline::BqskitSu4);
        let n_bq = distinct_su4_count(&bq);
        // BQSKit-style synthesis produces (at least as) diverse gates.
        assert!(n_bq + 2 >= n_eff, "bqskit {n_bq} vs eff {n_eff}");
    }

    #[test]
    fn compile_memoizes_per_program_and_options() {
        let mut comp = Compiler::new();
        comp.hs.search.sweep.restarts = 2;
        comp.hs.search.sweep.max_sweeps = 150;
        let c = toffoli_chain();
        let cold = comp.compile(&c, Pipeline::ReqiscFull);
        assert_eq!(comp.cache_stats().programs.hits, 0);
        let warm = comp.compile(&c, Pipeline::ReqiscFull);
        assert_eq!(warm, cold, "cache hit must return the identical circuit");
        assert_eq!(comp.cache_stats().programs.hits, 1);
        // A different pipeline is a different key.
        comp.compile(&c, Pipeline::Qiskit);
        assert_eq!(comp.cache_stats().programs.hits, 1);
        // Changing options invalidates (fresh key, not a stale hit).
        comp.hs.m_th = 5;
        comp.compile(&c, Pipeline::ReqiscFull);
        assert_eq!(comp.cache_stats().programs.hits, 1);
        let s = comp.cache_stats();
        assert!(s.programs.is_consistent() && s.synthesis.is_consistent());
    }

    #[test]
    fn compile_batch_matches_serial_in_job_order() {
        let mut comp = Compiler::new();
        comp.hs.search.sweep.restarts = 2;
        comp.hs.search.sweep.max_sweeps = 150;
        let a = toffoli_chain();
        let mut b = Circuit::new(3);
        b.push(Gate::Ccx(0, 1, 2));
        b.push(Gate::H(2));
        let jobs: Vec<(&Circuit, Pipeline)> = vec![
            (&a, Pipeline::Qiskit),
            (&b, Pipeline::ReqiscEff),
            (&a, Pipeline::ReqiscFull),
            (&b, Pipeline::TketSu4),
            (&a, Pipeline::Qiskit), // duplicate job: must hit the cache
        ];
        let batch = comp.compile_batch(&jobs, 4);
        assert_eq!(batch.len(), jobs.len());
        for (i, &(c, p)) in jobs.iter().enumerate() {
            assert_eq!(batch[i], comp.compile(c, p), "job {i} diverged from serial");
        }
        assert_eq!(batch[0], batch[4]);
        let s = comp.cache_stats().programs;
        assert!(s.hits >= 1, "duplicate batch job should hit: {s}");
        // threads = 0 (auto) and a single thread also work.
        assert_eq!(comp.compile_batch(&jobs[..2], 0), &batch[..2]);
        assert_eq!(comp.compile_batch(&jobs[..2], 1), &batch[..2]);
        assert_eq!(comp.compile_batch(&[], 3), Vec::<Circuit>::new());
    }

    #[test]
    fn bounded_cache_evicts_lru_with_exact_accounting() {
        // A deliberately tiny pool: 1 shard × 2 entries per pool. The
        // library is cloned from the shared compiler (synthesis cost paid
        // once); pipelines are CNOT-level so the test is pure cache churn.
        let comp = Compiler::new_with_library_and_cache(
            compiler().library.clone(),
            crate::cache::CompileCache::with_shape(1, 2),
        );
        let mk = |n: usize| {
            let mut c = Circuit::new(3);
            c.push(Gate::Ccx(0, 1, 2));
            for _ in 0..n {
                c.push(Gate::H(0));
            }
            c
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let out_a = comp.compile(&a, Pipeline::Qiskit); // miss, insert
        assert_eq!(comp.compile(&a, Pipeline::Qiskit), out_a); // hit
        comp.compile(&b, Pipeline::Qiskit); // miss, insert (full now)
        comp.compile(&c, Pipeline::Qiskit); // miss, insert, evicts LRU = a
        // The evicted program recomputes — an honest miss — and the
        // result is bit-identical to the first compile.
        assert_eq!(comp.compile(&a, Pipeline::Qiskit), out_a);
        let s = comp.cache_stats().programs;
        assert_eq!(
            (s.hits, s.misses, s.inserts, s.evictions),
            (1, 4, 4, 2),
            "accounting must stay exact under eviction: {s}"
        );
        assert!(s.is_consistent());
    }

    #[test]
    fn durations_favour_su4_isa() {
        let cp = Coupling::xy(1.0);
        // A SWAP as one SU(4) pulse vs three CNOTs.
        let mut su4 = Circuit::new(2);
        su4.push(Gate::Su4(0, 1, Box::new(reqisc_qmath::gates::swap())));
        let mut cx = Circuit::new(2);
        for _ in 0..3 {
            cx.push(Gate::Cx(0, 1));
        }
        let d_su4 = metrics(&su4, &cp).duration;
        let d_cx = metrics(&cx, &cp).duration;
        assert!(d_su4 < d_cx / 2.0, "{d_su4} vs {d_cx}");
    }
}
