//! End-to-end compilation pipelines (paper §5.4, §6.1.2): the two ReQISC
//! schemes and the five baselines, with the common metrics of §6.1.1.

use crate::cnot_opt::{qiskit_like, tket_like};
use crate::fuse::fuse_2q;
use crate::hierarchical::{hierarchical_synthesis, HsOptions};
use crate::template_pass::template_synthesis;
use reqisc_microarch::{duration_in_g, Coupling};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::weyl_coords;
use reqisc_synthesis::{SearchOptions, TemplateLibrary};

/// The compilation pipelines compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Qiskit-like O3 (CNOT ISA).
    Qiskit,
    /// TKet-like with Pauli simplification (CNOT ISA).
    Tket,
    /// BQSKit-like: partition + unconditional approximate synthesis
    /// (SU(4) ISA, no calibration awareness).
    BqskitSu4,
    /// Qiskit-like followed by a 2Q fuse-to-SU(4) pass.
    QiskitSu4,
    /// TKet-like followed by a 2Q fuse-to-SU(4) pass.
    TketSu4,
    /// ReQISC-Eff: template-based synthesis only (minimal calibration).
    ReqiscEff,
    /// ReQISC-Full: template synthesis + hierarchical synthesis.
    ReqiscFull,
    /// ReQISC-Full without DAG compacting (ablation "ReQISC-NC").
    ReqiscNc,
}

impl Pipeline {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Pipeline::Qiskit => "qiskit",
            Pipeline::Tket => "tket",
            Pipeline::BqskitSu4 => "bqskit-su4",
            Pipeline::QiskitSu4 => "qiskit-su4",
            Pipeline::TketSu4 => "tket-su4",
            Pipeline::ReqiscEff => "reqisc-eff",
            Pipeline::ReqiscFull => "reqisc-full",
            Pipeline::ReqiscNc => "reqisc-nc",
        }
    }

    /// True for pipelines emitting the SU(4) ISA.
    pub fn is_su4(&self) -> bool {
        !matches!(self, Pipeline::Qiskit | Pipeline::Tket)
    }
}

/// Shared, reusable compilation context (template library etc.).
pub struct Compiler {
    /// The pre-synthesized template library.
    pub library: TemplateLibrary,
    /// Hierarchical-synthesis options.
    pub hs: HsOptions,
}

impl Compiler {
    /// Builds a compiler with default options (pre-synthesizes the
    /// built-in template library — a one-time cost).
    pub fn new() -> Self {
        let mut search = SearchOptions::default();
        search.sweep.restarts = 3;
        Self { library: TemplateLibrary::builtin(&search), hs: HsOptions::default() }
    }

    /// Runs one pipeline on a program.
    pub fn compile(&self, c: &Circuit, p: Pipeline) -> Circuit {
        match p {
            Pipeline::Qiskit => qiskit_like(c),
            Pipeline::Tket => tket_like(c),
            Pipeline::QiskitSu4 => fuse_2q(&qiskit_like(c)),
            Pipeline::TketSu4 => fuse_2q(&tket_like(c)),
            Pipeline::BqskitSu4 => {
                // Aggressive synthesis with no template/calibration
                // awareness: threshold m_th = 1 resynthesizes every dense
                // block, compacting off.
                let mut o = self.hs.clone();
                o.m_th = 1;
                o.compacting = false;
                hierarchical_synthesis(c, &o)
            }
            Pipeline::ReqiscEff => template_synthesis(c, &self.library),
            Pipeline::ReqiscFull => {
                let t = template_synthesis(c, &self.library);
                hierarchical_synthesis(&t, &self.hs)
            }
            Pipeline::ReqiscNc => {
                let t = template_synthesis(c, &self.library);
                let mut o = self.hs.clone();
                o.compacting = false;
                hierarchical_synthesis(&t, &o)
            }
        }
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

/// The §6.1.1 metrics of one compiled circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Two-qubit gate count.
    pub count_2q: usize,
    /// Two-qubit depth.
    pub depth_2q: usize,
    /// Total pulse duration in `g⁻¹` (critical path).
    pub duration: f64,
}

/// Per-gate pulse duration in `g⁻¹` under `cp`:
/// CNOT-ISA gates use the conventional implementations, SU(4)-ISA gates
/// the genAshN optimal durations; 1Q gates are free.
pub fn gate_duration(g: &Gate, cp: &Coupling) -> f64 {
    if g.arity() < 2 {
        return 0.0;
    }
    match g {
        Gate::Cx(..) | Gate::Cz(..) => reqisc_microarch::conventional_cnot_duration(),
        Gate::Swap(..) => 3.0 * reqisc_microarch::conventional_cnot_duration(),
        Gate::Su4(..) | Gate::Can(..) | Gate::Rzz(..) | Gate::ISwap(..) | Gate::SqiSw(..)
        | Gate::BGate(..) => {
            let w = g
                .weyl()
                .or_else(|| weyl_coords(&g.matrix()).ok())
                .unwrap_or_default();
            duration_in_g(&w, cp)
        }
        other => {
            // ≥3Q gates should be lowered before timing; price them as
            // their CX lowering.
            let mut c = Circuit::new(other.qubits().iter().max().unwrap() + 1);
            c.push(other.clone());
            c.lowered_to_cx().count_2q() as f64 * reqisc_microarch::conventional_cnot_duration()
        }
    }
}

/// Computes the metrics of a compiled circuit under a coupling.
pub fn metrics(c: &Circuit, cp: &Coupling) -> Metrics {
    Metrics {
        count_2q: c.count_2q(),
        depth_2q: c.depth_2q(),
        duration: c.duration(&|g| gate_duration(g, cp)),
    }
}

/// Counts distinct SU(4) classes in a compiled circuit — the calibration
/// cost (paper §6.5). Two gates are "the same instruction" when their Weyl
/// coordinates agree within `tol` (1Q corrections are calibration-free via
/// the PMW protocol, §5.3.1).
pub fn distinct_su4_count(c: &Circuit, tol: f64) -> usize {
    let mut classes: Vec<reqisc_qmath::WeylCoord> = Vec::new();
    for g in c.gates() {
        if !g.is_2q() {
            continue;
        }
        let w = match g.weyl().or_else(|| weyl_coords(&g.matrix()).ok()) {
            Some(w) => w,
            None => continue,
        };
        if w.l1_norm() < tol {
            continue; // identity-class: nothing to calibrate
        }
        if !classes.iter().any(|k| k.approx_eq(&w, tol)) {
            classes.push(w);
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;
    use std::sync::OnceLock;

    fn compiler() -> &'static Compiler {
        static C: OnceLock<Compiler> = OnceLock::new();
        C.get_or_init(|| {
            let mut c = Compiler::new();
            c.hs.search.sweep.restarts = 2;
            c.hs.search.sweep.max_sweeps = 150;
            c
        })
    }

    fn toffoli_chain() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Ccx(1, 2, 3));
        c.push(Gate::H(0));
        c.push(Gate::Ccx(0, 1, 3));
        c
    }

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-6, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn all_pipelines_preserve_semantics() {
        let c = toffoli_chain();
        for p in [
            Pipeline::Qiskit,
            Pipeline::Tket,
            Pipeline::QiskitSu4,
            Pipeline::TketSu4,
            Pipeline::BqskitSu4,
            Pipeline::ReqiscEff,
            Pipeline::ReqiscFull,
            Pipeline::ReqiscNc,
        ] {
            let out = compiler().compile(&c, p);
            check_equiv(&c, &out);
        }
    }

    #[test]
    fn reqisc_beats_cnot_baselines_on_type1() {
        let c = toffoli_chain();
        let cp = Coupling::xy(1.0);
        let q = metrics(&compiler().compile(&c, Pipeline::Qiskit), &cp);
        let eff = metrics(&compiler().compile(&c, Pipeline::ReqiscEff), &cp);
        let full = metrics(&compiler().compile(&c, Pipeline::ReqiscFull), &cp);
        assert!(eff.count_2q < q.count_2q, "eff {} vs qiskit {}", eff.count_2q, q.count_2q);
        assert!(full.count_2q <= eff.count_2q);
        assert!(full.duration < q.duration);
    }

    #[test]
    fn su4_variants_fuse_blocks() {
        let c = toffoli_chain();
        let q = compiler().compile(&c, Pipeline::Qiskit);
        let qs = compiler().compile(&c, Pipeline::QiskitSu4);
        assert!(qs.count_2q() <= q.count_2q());
        assert!(qs.gates().iter().filter(|g| g.is_2q()).all(|g| matches!(g, Gate::Su4(..))));
    }

    #[test]
    fn calibration_counts() {
        let c = toffoli_chain();
        // Group at 1e-5: the synthesis sweep stops at infidelity ~1e-11,
        // which leaves per-run Weyl-coordinate noise of order 1e-6, so a
        // tighter tolerance over-splits identical gate classes.
        let eff = compiler().compile(&c, Pipeline::ReqiscEff);
        let n_eff = distinct_su4_count(&eff, 1e-5);
        assert!(n_eff > 0 && n_eff < 12, "eff distinct = {n_eff}");
        let bq = compiler().compile(&c, Pipeline::BqskitSu4);
        let n_bq = distinct_su4_count(&bq, 1e-5);
        // BQSKit-style synthesis produces (at least as) diverse gates.
        assert!(n_bq + 2 >= n_eff, "bqskit {n_bq} vs eff {n_eff}");
    }

    #[test]
    fn durations_favour_su4_isa() {
        let cp = Coupling::xy(1.0);
        // A SWAP as one SU(4) pulse vs three CNOTs.
        let mut su4 = Circuit::new(2);
        su4.push(Gate::Su4(0, 1, Box::new(reqisc_qmath::gates::swap())));
        let mut cx = Circuit::new(2);
        for _ in 0..3 {
            cx.push(Gate::Cx(0, 1));
        }
        let d_su4 = metrics(&su4, &cp).duration;
        let d_cx = metrics(&cx, &cp).duration;
        assert!(d_su4 < d_cx / 2.0, "{d_su4} vs {d_cx}");
    }
}
