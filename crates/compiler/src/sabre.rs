//! SABRE qubit routing and the SU(4)-aware **mirroring-SABRE** variant
//! (paper §5.3.2, Fig. 11).
//!
//! SABRE (Li–Ding–Xie) maps 2Q gates layer by layer, inserting the SWAP
//! that minimizes a lookahead heuristic. Mirroring-SABRE additionally
//! prefers SWAPs that the *last mapped layer* can absorb: appending a SWAP
//! to an SU(4) gate yields another SU(4) — one pulse, zero extra #2Q.

// lint:allow-file(tolerance-literal, router tie-break epsilon local to the heuristic; not a serialized contract)
use crate::topology::Topology;
use reqisc_qcircuit::{Circuit, Dag, Gate};
use reqisc_qmath::gates::swap as swap_mat;

/// Routing algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// Plain SABRE: every routing SWAP is a real gate.
    Sabre,
    /// Mirroring-SABRE: SWAPs absorbable by the last mapped layer are
    /// fused into the preceding SU(4) at zero #2Q cost.
    MirroringSabre,
}

/// Result of routing a circuit onto a topology.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The routed circuit on *physical* qubits (includes `Swap`/fused
    /// gates).
    pub circuit: Circuit,
    /// Initial logical→physical mapping used.
    pub initial_mapping: Vec<usize>,
    /// Final logical→physical mapping after all SWAPs.
    pub final_mapping: Vec<usize>,
    /// SWAPs inserted as real gates.
    pub swaps_inserted: usize,
    /// SWAPs absorbed into preceding SU(4)s (mirroring-SABRE only).
    pub swaps_absorbed: usize,
}

/// Options for [`route`].
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Which router to use.
    pub router: Router,
    /// Lookahead weight `W` for the extended set.
    pub lookahead_weight: f64,
    /// Extended-set size (gates beyond the front layer).
    pub extended_size: usize,
    /// Decay factor discouraging ping-pong swaps.
    pub decay: f64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            router: Router::MirroringSabre,
            lookahead_weight: 0.5,
            extended_size: 20,
            decay: 0.001,
        }
    }
}

/// Routes `c` onto `topo` with SABRE's bidirectional initial-mapping
/// refinement: forward, reverse and forward traversals, each seeding the
/// next with its final mapping (Li–Ding–Xie §"initial mapping").
///
/// # Panics
///
/// Panics if the circuit has more logical qubits than the topology has
/// physical ones, or contains gates of arity ≥ 3.
pub fn route(c: &Circuit, topo: &Topology, opts: &RouteOptions) -> Routed {
    let fwd = route_from(c, topo, opts, None);
    // Reverse traversal: routing the reversed gate list from the forward
    // run's final mapping yields an initial mapping adapted to the front
    // of the circuit.
    let reversed = Circuit::from_gates(c.num_qubits(), c.gates().iter().rev().cloned().collect());
    let back = route_from(&reversed, topo, opts, Some(fwd.final_mapping.clone()));
    let refined = route_from(c, topo, opts, Some(back.final_mapping.clone()));
    if refined.circuit.count_2q() <= fwd.circuit.count_2q() {
        refined
    } else {
        fwd
    }
}

/// Routes with an explicit initial logical→physical mapping (identity when
/// `None`).
///
/// # Panics
///
/// Same conditions as [`route`].
pub fn route_from(
    c: &Circuit,
    topo: &Topology,
    opts: &RouteOptions,
    initial: Option<Vec<usize>>,
) -> Routed {
    assert!(c.num_qubits() <= topo.len(), "circuit wider than device");
    for g in c.gates() {
        assert!(g.arity() <= 2, "route expects a 2Q-lowered circuit");
    }
    let dag = Dag::build(c);
    let gates = c.gates();
    let n_log = c.num_qubits();
    let n_phys = topo.len();
    // mapping[logical] = physical; inverse[physical] = logical (or usize::MAX).
    let mut mapping: Vec<usize> = initial.unwrap_or_else(|| (0..n_log).collect());
    assert_eq!(mapping.len(), n_log, "initial mapping width mismatch");
    let initial_mapping = mapping.clone();
    let mut inverse: Vec<usize> = vec![usize::MAX; n_phys];
    for (l, &p) in mapping.iter().enumerate() {
        inverse[p] = l;
    }
    let mut done = vec![false; gates.len()];
    let mut out = Circuit::new(n_phys);
    // last_touch[p] = index in `out` of the last gate touching physical p.
    let mut last_touch: Vec<Option<usize>> = vec![None; n_phys];
    let mut decay = vec![1.0f64; n_phys];
    let mut swaps_inserted = 0usize;
    let mut swaps_absorbed = 0usize;
    let mut remaining = gates.len();
    let mut stall_guard = 0usize;
    while remaining > 0 {
        // Execute every currently executable gate.
        let mut progressed = false;
        loop {
            let front = dag.front_layer(&done);
            let mut executed_any = false;
            for &gi in &front {
                let g = &gates[gi];
                let qs = g.qubits();
                let executable = match qs.len() {
                    1 => true,
                    2 => topo.adjacent(mapping[qs[0]], mapping[qs[1]]),
                    _ => unreachable!(),
                };
                if executable {
                    let mapped = g.remap(&|q| mapping[q]);
                    let idx = out.len();
                    for q in mapped.qubits() {
                        last_touch[q] = Some(idx);
                    }
                    out.push(mapped);
                    done[gi] = true;
                    remaining -= 1;
                    executed_any = true;
                    progressed = true;
                }
            }
            if !executed_any {
                break;
            }
        }
        if remaining == 0 {
            break;
        }
        if progressed {
            for d in decay.iter_mut() {
                *d = 1.0;
            }
            stall_guard = 0;
        }
        stall_guard += 1;
        assert!(stall_guard < 10_000 * (n_phys + 1), "router stalled");
        // Need a SWAP: gather candidates on edges touching front qubits.
        let front = dag.front_layer(&done);
        let front_2q: Vec<usize> = front
            .iter()
            .copied()
            .filter(|&gi| gates[gi].is_2q())
            .collect();
        let extended: Vec<usize> = extended_set(&dag, &done, &front, opts.extended_size)
            .into_iter()
            .filter(|&gi| gates[gi].is_2q())
            .collect();
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &gi in &front_2q {
            for q in gates[gi].qubits() {
                let p = mapping[q];
                for &nb in topo.neighbors(p) {
                    let e = if p < nb { (p, nb) } else { (nb, p) };
                    if !candidates.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
        }
        let h0 = heuristic(&front_2q, &extended, gates, &mapping, topo, opts, None);
        // Score each candidate; mirroring-SABRE checks absorbability.
        let mut best: Option<(f64, (usize, usize), bool)> = None;
        for &e in &candidates {
            let h = heuristic(&front_2q, &extended, gates, &mapping, topo, opts, Some(e))
                * decay[e.0].max(decay[e.1]);
            let absorbable = opts.router == Router::MirroringSabre
                && is_absorbable(e, &last_touch, &out);
            // Absorbable candidates that improve on H0 take priority
            // (paper: "prioritizes SWAP candidates that L can absorb while
            // reducing the heuristic cost").
            let rank = (absorbable && h < h0, h);
            let better = match &best {
                None => true,
                Some((bh, _, babs)) => {
                    let brank = (*babs, *bh);
                    (rank.0 && !brank.0) || (rank.0 == brank.0 && rank.1 < brank.1 - 1e-12)
                }
            };
            if better {
                best = Some((h, e, absorbable && h < h0));
            }
        }
        let (_, (pa, pb), absorb) = best.expect("no swap candidate — disconnected?");
        // Apply the mapping change.
        let (la, lb) = (inverse[pa], inverse[pb]);
        if la != usize::MAX {
            mapping[la] = pb;
        }
        if lb != usize::MAX {
            mapping[lb] = pa;
        }
        inverse.swap(pa, pb);
        decay[pa] += opts.decay;
        decay[pb] += opts.decay;
        if absorb {
            // Fuse SWAP into the last gate on this edge: G ← SWAP·G.
            let idx = last_touch[pa].expect("absorbable implies a last gate");
            let prev = out.gates()[idx].clone();
            let fused = fuse_swap_after(&prev, (pa, pb));
            replace_gate(&mut out, idx, fused);
            swaps_absorbed += 1;
        } else {
            let idx = out.len();
            last_touch[pa] = Some(idx);
            last_touch[pb] = Some(idx);
            out.push(Gate::Swap(pa, pb));
            swaps_inserted += 1;
        }
    }
    let final_mapping = mapping;
    Routed {
        circuit: out,
        initial_mapping,
        final_mapping,
        swaps_inserted,
        swaps_absorbed,
    }
}

/// The SABRE heuristic: mean front-layer distance plus weighted mean
/// extended-set distance, optionally under a hypothetical SWAP.
#[allow(clippy::too_many_arguments)]
fn heuristic(
    front: &[usize],
    extended: &[usize],
    gates: &[Gate],
    mapping: &[usize],
    topo: &Topology,
    opts: &RouteOptions,
    swap: Option<(usize, usize)>,
) -> f64 {
    let map = |l: usize| -> usize {
        let p = mapping[l];
        match swap {
            Some((a, b)) if p == a => b,
            Some((a, b)) if p == b => a,
            _ => p,
        }
    };
    let dist_of = |gi: usize| -> f64 {
        let qs = gates[gi].qubits();
        topo.distance(map(qs[0]), map(qs[1])) as f64
    };
    let mut h = 0.0;
    if !front.is_empty() {
        h += front.iter().map(|&g| dist_of(g)).sum::<f64>() / front.len() as f64;
    }
    if !extended.is_empty() {
        h += opts.lookahead_weight * extended.iter().map(|&g| dist_of(g)).sum::<f64>()
            / extended.len() as f64;
    }
    h
}

/// The next `size` 2Q gates after the front layer (SABRE's extended set).
fn extended_set(dag: &Dag, done: &[bool], front: &[usize], size: usize) -> Vec<usize> {
    let mut seen: Vec<usize> = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
    let mut visited = vec![false; dag.len()];
    for &f in front {
        visited[f] = true;
    }
    while let Some(g) = queue.pop_front() {
        for &s in dag.succs(g) {
            if !visited[s] && !done[s] {
                visited[s] = true;
                queue.push_back(s);
                seen.push(s);
                if seen.len() >= size {
                    return seen;
                }
            }
        }
    }
    seen
}

/// True when the edge's two physical qubits were last touched by the same
/// 2Q SU(4)-fusible output gate with no later gate on either qubit — i.e.
/// the gate sits on the last mapped layer and can absorb a SWAP.
fn is_absorbable(e: (usize, usize), last_touch: &[Option<usize>], out: &Circuit) -> bool {
    match (last_touch[e.0], last_touch[e.1]) {
        (Some(i), Some(j)) if i == j => {
            let g = &out.gates()[i];
            g.is_2q() && swap_fusible(g)
        }
        _ => false,
    }
}

fn swap_fusible(g: &Gate) -> bool {
    matches!(
        g,
        Gate::Su4(..)
            | Gate::Can(..)
            | Gate::Cx(..)
            | Gate::Cz(..)
            | Gate::ISwap(..)
            | Gate::SqiSw(..)
            | Gate::BGate(..)
            | Gate::Rzz(..)
            | Gate::Swap(..)
    )
}

/// `G ← SWAP·G` on the gate's own pair, returned as an `Su4`.
fn fuse_swap_after(g: &Gate, _edge: (usize, usize)) -> Gate {
    let qs = g.qubits();
    let m = swap_mat().mul_mat(&g.matrix());
    Gate::Su4(qs[0], qs[1], Box::new(m))
}

fn replace_gate(c: &mut Circuit, idx: usize, g: Gate) {
    let mut gates = c.gates().to_vec();
    gates[idx] = g;
    *c = Circuit::from_gates(c.num_qubits(), gates);
}

/// Expands routing `Swap` gates into 3 CNOTs (for CNOT-ISA accounting).
pub fn expand_swaps_to_cx(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.num_qubits());
    for g in c.gates() {
        if let Gate::Swap(a, b) = g {
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Cx(*b, *a));
            out.push(Gate::Cx(*a, *b));
        } else {
            out.push(g.clone());
        }
    }
    out
}

/// Verifies a routed circuit against the original by undoing the qubit
/// permutation: `routed == P_final† · original(mapped) `… in practice we
/// check that `routed`, with the final-mapping permutation appended,
/// implements `original` under the initial mapping. Only for tests/small
/// circuits.
pub fn routing_preserves_semantics(original: &Circuit, routed: &Routed, topo: &Topology) -> bool {
    let n = topo.len();
    if n > 12 {
        return true; // too large to verify densely
    }
    // Build original embedded on physical qubits via the initial mapping.
    let orig_phys = {
        let mut c = Circuit::new(n);
        for g in original.gates() {
            c.push(g.remap(&|q| routed.initial_mapping[q]));
        }
        c.unitary()
    };
    // The routed circuit followed by un-permuting from final to initial.
    let mut undo = routed.circuit.clone();
    // occupant[p] = Some(l) when logical l currently sits on physical p.
    let mut occupant: Vec<Option<usize>> = vec![None; n];
    for (l, &p) in routed.final_mapping.iter().enumerate() {
        occupant[p] = Some(l);
    }
    for l in 0..routed.final_mapping.len() {
        let want = routed.initial_mapping[l];
        let at = occupant.iter().position(|&o| o == Some(l)).expect("logical tracked");
        if at != want {
            undo.push(Gate::Swap(at, want));
            occupant.swap(at, want);
        }
    }
    let inf = reqisc_qsim::process_infidelity(&orig_phys, &undo.unitary());
    inf < 1e-7
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_circuit() -> Circuit {
        // Gates between distant qubits force routing on a chain.
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 3));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 2));
        c
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let c = line_circuit();
        let topo = Topology::all_to_all(4);
        let r = route(&c, &topo, &RouteOptions::default());
        assert_eq!(r.swaps_inserted + r.swaps_absorbed, 0);
        assert_eq!(r.circuit.count_2q(), c.count_2q());
    }

    #[test]
    fn chain_routing_preserves_semantics_sabre() {
        let c = line_circuit();
        let topo = Topology::chain(4);
        let mut o = RouteOptions::default();
        o.router = Router::Sabre;
        let r = route(&c, &topo, &o);
        // The bidirectional initial-mapping refinement may route this tiny
        // circuit swap-free; correctness is what matters.
        assert!(routing_preserves_semantics(&c, &r, &topo));
    }

    #[test]
    fn chain_routing_preserves_semantics_mirroring() {
        let c = line_circuit();
        let topo = Topology::chain(4);
        let r = route(&c, &topo, &RouteOptions::default());
        assert!(routing_preserves_semantics(&c, &r, &topo));
    }

    #[test]
    fn mirroring_never_worse_in_2q_count() {
        for seed in 0..6u64 {
            let c = random_circuit(6, 24, seed);
            let topo = Topology::chain(6);
            let mut so = RouteOptions::default();
            so.router = Router::Sabre;
            let rs = route(&c, &topo, &so);
            let rm = route(&c, &topo, &RouteOptions::default());
            let sabre_2q = rs.circuit.count_2q();
            let mirror_2q = rm.circuit.count_2q();
            assert!(
                mirror_2q <= sabre_2q + 2,
                "mirroring much worse: {mirror_2q} vs {sabre_2q} (seed {seed})"
            );
            assert!(routing_preserves_semantics(&c, &rm, &topo), "seed {seed}");
        }
    }

    #[test]
    fn absorbed_swaps_cost_nothing() {
        // Adjacent gate then far gate: the SWAP should fuse into the first.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 2));
        let topo = Topology::chain(3);
        let r = route(&c, &topo, &RouteOptions::default());
        assert!(routing_preserves_semantics(&c, &r, &topo));
        if r.swaps_absorbed > 0 {
            assert_eq!(r.circuit.count_2q(), 2);
        }
    }

    #[test]
    fn grid_routing_works() {
        let c = random_circuit(8, 30, 3);
        let topo = Topology::grid(3, 3);
        let r = route(&c, &topo, &RouteOptions::default());
        assert!(routing_preserves_semantics(&c, &r, &topo));
    }

    #[test]
    fn expand_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let e = expand_swaps_to_cx(&c);
        assert_eq!(e.count_2q(), 3);
        assert!(e.unitary().approx_eq(&reqisc_qmath::gates::swap(), 1e-12));
    }

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.push(Gate::Cx(a, b));
        }
        c
    }
}
