//! Device topologies for qubit routing (paper §6.4: 1D chain and 2D grid).

/// An undirected coupling graph over physical qubits.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    adj: Vec<Vec<usize>>,
    dist: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a disconnected graph.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n && a != b, "bad edge ({a},{b})");
            if !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        let dist = all_pairs_bfs(n, &adj);
        for row in &dist {
            for &d in row {
                assert!(d < usize::MAX, "topology is disconnected");
            }
        }
        Self { n, adj, dist }
    }

    /// A 1D chain `0–1–…–(n-1)`.
    pub fn chain(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Self::from_edges(n, &edges)
    }

    /// A `rows × cols` 2D grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        Self::from_edges(rows * cols, &edges)
    }

    /// A near-square grid with at least `n` sites.
    pub fn grid_for(n: usize) -> Self {
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        Self::grid(rows.max(1), cols.max(1))
    }

    /// Fully connected topology (no routing needed).
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Number of physical qubits.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty device.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbours of physical qubit `p`.
    pub fn neighbors(&self, p: usize) -> &[usize] {
        &self.adj[p]
    }

    /// Shortest-path distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.dist[a][b]
    }

    /// True when `a` and `b` are directly coupled.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.dist[a][b] == 1
    }

    /// All edges (each once, `a < b`).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for a in 0..self.n {
            for &b in &self.adj[a] {
                if a < b {
                    e.push((a, b));
                }
            }
        }
        e
    }
}

fn all_pairs_bfs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut dist = vec![vec![usize::MAX; n]; n];
    for s in 0..n {
        let mut queue = std::collections::VecDeque::new();
        dist[s][s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[s][v] == usize::MAX {
                    dist[s][v] = dist[s][u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_distances() {
        let t = Topology::chain(5);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(2, 3), 1);
        assert!(t.adjacent(1, 2));
        assert!(!t.adjacent(0, 2));
    }

    #[test]
    fn grid_distances() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.len(), 9);
        assert_eq!(t.distance(0, 8), 4); // manhattan
        assert_eq!(t.distance(4, 0), 2);
        assert_eq!(t.neighbors(4).len(), 4);
    }

    #[test]
    fn all_to_all_is_flat() {
        let t = Topology::all_to_all(6);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(t.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn grid_for_covers() {
        let t = Topology::grid_for(7);
        assert!(t.len() >= 7);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn rejects_disconnected() {
        Topology::from_edges(4, &[(0, 1), (2, 3)]);
    }
}
