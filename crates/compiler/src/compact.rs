//! The DAG-compacting pass (paper §5.1.3, Fig. 8).
//!
//! Exploits (approximately) commuting SU(4) neighbours to move blocks
//! together: when an `Su4` on pair `p` can slide right past every
//! intervening gate it overlaps (commutation checked numerically on the
//! joint qubit space) until it reaches another `Su4` on the same pair, the
//! two fuse into one — raising the partition *compactness* and cutting
//! #SU(4) directly.

use reqisc_qcircuit::{embed, Circuit, Gate};
use reqisc_qmath::CMat;

/// Options for [`compact`].
#[derive(Debug, Clone, Copy)]
pub struct CompactOptions {
    /// Commutator tolerance: gates with `max|AB−BA| ≤ tol` are treated as
    /// commuting. `1e-9` keeps compilation error at machine scale; larger
    /// values trade fidelity for compactness (the paper's "approximate
    /// commutation").
    pub tol: f64,
    /// How far ahead to search for a fusion partner.
    pub window: usize,
    /// Maximum full passes.
    pub max_passes: usize,
}

impl Default for CompactOptions {
    fn default() -> Self {
        Self { tol: 1e-9, window: 24, max_passes: 4 }
    }
}

fn unordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// True when gates `g1`, `g2` commute on their joint qubit space.
pub fn gates_commute(g1: &Gate, g2: &Gate, tol: f64) -> bool {
    let q1 = g1.qubits();
    let q2 = g2.qubits();
    let mut joint: Vec<usize> = q1.iter().chain(q2.iter()).copied().collect();
    joint.sort_unstable();
    joint.dedup();
    if joint.len() == q1.len() + q2.len() {
        return true; // disjoint supports always commute
    }
    if joint.len() > 4 {
        return false; // too big to check cheaply; be conservative
    }
    // Re-index onto the joint space.
    let local = |qs: &[usize]| -> Vec<usize> {
        qs.iter().map(|q| joint.iter().position(|j| j == q).unwrap()).collect()
    };
    let n = joint.len();
    let a = embed(&g1.matrix(), &local(&q1), n);
    let b = embed(&g2.matrix(), &local(&q2), n);
    let comm = &a.mul_mat(&b) - &b.mul_mat(&a);
    comm.max_dist(&CMat::zeros(1 << n, 1 << n)) <= tol
}

/// Runs the DAG-compacting pass on a fused (`U3`/`Su4`) circuit.
///
/// The output is unitarily equivalent to the input whenever `tol` is at
/// machine scale; with a loose `tol` the deviation is bounded by the sum of
/// accepted commutator norms.
pub fn compact(c: &Circuit, opts: &CompactOptions) -> Circuit {
    let mut gates: Vec<Gate> = c.gates().to_vec();
    for _pass in 0..opts.max_passes {
        let mut changed = false;
        let mut i = 0;
        while i < gates.len() {
            if let Some(pair_i) = two_qubit_pair(&gates[i]) {
                if let Some(j) = find_fusion_partner(&gates, i, pair_i, opts) {
                    // Slide gate i next to j and fuse (i applied first).
                    let gi = gates.remove(i);
                    // Removing i shifts j down by one.
                    let j = j - 1;
                    let fused = fuse_pair(&gi, &gates[j]);
                    gates[j] = fused;
                    changed = true;
                    continue; // re-examine position i
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }
    Circuit::from_gates(c.num_qubits(), gates)
}

fn two_qubit_pair(g: &Gate) -> Option<(usize, usize)> {
    if g.is_2q() {
        let q = g.qubits();
        Some(unordered(q[0], q[1]))
    } else {
        None
    }
}

/// Finds the nearest later `Su4`-fusible gate on the same pair such that
/// every intervening overlapping gate commutes with gate `i`.
fn find_fusion_partner(
    gates: &[Gate],
    i: usize,
    pair: (usize, usize),
    opts: &CompactOptions,
) -> Option<usize> {
    let end = (i + 1 + opts.window).min(gates.len());
    for (j, gate_j) in gates.iter().enumerate().take(end).skip(i + 1) {
        if two_qubit_pair(gate_j) == Some(pair) {
            // All gates strictly between must commute with gate i if they
            // overlap it.
            let ok = gates[i + 1..j].iter().all(|mid| {
                let overlap = mid.qubits().iter().any(|q| pair == unordered(*q, *q) || *q == pair.0 || *q == pair.1);
                !overlap || gates_commute(&gates[i], mid, opts.tol)
            });
            return if ok { Some(j) } else { None };
        }
        // A non-commuting blocker on our pair that is not fusible ends the
        // search early only if it overlaps and fails to commute; otherwise
        // keep scanning.
        let overlap = gate_j.qubits().iter().any(|q| *q == pair.0 || *q == pair.1);
        if overlap && !gates_commute(&gates[i], gate_j, opts.tol) {
            return None;
        }
    }
    None
}

/// Fuses `first` then `second` (same unordered pair) into one `Su4`.
fn fuse_pair(first: &Gate, second: &Gate) -> Gate {
    let qf = first.qubits();
    let qs = second.qubits();
    let pair = unordered(qs[0], qs[1]);
    let orient = |g: &Gate, q: &[usize]| -> CMat {
        if (q[0], q[1]) == pair {
            g.matrix()
        } else {
            let s = reqisc_qmath::gates::swap();
            s.mul_mat(&g.matrix()).mul_mat(&s)
        }
    };
    let m = orient(second, &qs).mul_mat(&orient(first, &qf));
    Gate::Su4(pair.0, pair.1, Box::new(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse_2q;
    use reqisc_qsim::process_infidelity;

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-8, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn commuting_rzz_fuse_across_neighbour() {
        // Rzz(0,1), Rzz(1,2), Rzz(0,1): diagonal gates all commute, so the
        // outer pair fuses: 3 → 2 two-qubit gates.
        let mut c = Circuit::new(3);
        c.push(Gate::Rzz(0, 1, 0.3));
        c.push(Gate::Rzz(1, 2, 0.5));
        c.push(Gate::Rzz(0, 1, 0.7));
        let k = compact(&c, &CompactOptions::default());
        assert_eq!(k.count_2q(), 2);
        check_equiv(&c, &k);
    }

    #[test]
    fn non_commuting_blocks_stay() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
        let k = compact(&c, &CompactOptions::default());
        // CX(1,2) does not commute with CX(0,1) (shared qubit 1, and
        // CX(0,1) writes X on 1): no fusion.
        assert_eq!(k.count_2q(), 3);
        check_equiv(&c, &k);
    }

    #[test]
    fn disjoint_gates_are_transparent() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Cx(0, 1));
        let k = compact(&c, &CompactOptions::default());
        assert_eq!(k.count_2q(), 2); // the two CX(0,1) cancel into... fuse
        check_equiv(&c, &k);
    }

    #[test]
    fn grover_like_pattern_improves_compactness() {
        // The Fig. 8 pattern: SU(4)₁,₂ then SU(4)₂,₃ that commutes, then a
        // 3Q-block boundary; compacting lets the SU(4)₁,₂ pair fuse.
        let mut c = Circuit::new(3);
        c.push(Gate::Rzz(0, 1, 0.4));
        c.push(Gate::Rzz(1, 2, 0.9));
        c.push(Gate::Rzz(0, 1, -0.2));
        c.push(Gate::Rzz(1, 2, 0.1));
        let k = compact(&c, &CompactOptions::default());
        assert_eq!(k.count_2q(), 2);
        check_equiv(&c, &k);
    }

    #[test]
    fn respects_one_qubit_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(0, 0.3)); // commutes with CX control
        c.push(Gate::Cx(0, 1));
        let k = compact(&fuse_2q(&c), &CompactOptions::default());
        // fuse_2q already merges everything here.
        assert!(k.count_2q() <= 1);
        check_equiv(&c, &k);
    }

    #[test]
    fn pass_is_equivalence_preserving_on_mixed_circuit() {
        let mut c = Circuit::new(4);
        c.push(Gate::Rzz(0, 1, 0.2));
        c.push(Gate::H(2));
        c.push(Gate::Rzz(2, 3, 0.8));
        c.push(Gate::Rzz(1, 2, 0.5));
        c.push(Gate::Rzz(0, 1, 0.9));
        c.push(Gate::Cx(2, 3));
        let k = compact(&c, &CompactOptions::default());
        assert!(k.count_2q() <= c.count_2q());
        check_equiv(&c, &k);
    }

    #[test]
    fn commute_checker_basics() {
        assert!(gates_commute(&Gate::Rzz(0, 1, 0.3), &Gate::Rzz(1, 2, 0.4), 1e-10));
        assert!(!gates_commute(&Gate::Cx(0, 1), &Gate::Cx(1, 2), 1e-10));
        assert!(gates_commute(&Gate::Cx(0, 1), &Gate::Cx(0, 2), 1e-10)); // share control
        assert!(gates_commute(&Gate::Cx(0, 1), &Gate::Cx(2, 1), 1e-10)); // share target
        assert!(gates_commute(&Gate::H(0), &Gate::X(1), 1e-10)); // disjoint
    }
}
