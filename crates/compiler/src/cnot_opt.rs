//! CNOT-based baseline compilers (paper §6.1.2).
//!
//! * **Qiskit-like O3**: lower to {1Q, CX}, consolidate 2Q blocks, and
//!   re-synthesize each block into its minimal CNOT count
//!   (Shende–Bullock–Markov) with exact 1Q dressing.
//! * **TKet-like**: the same, preceded by a Pauli-gadget simplification
//!   that merges commuting `Rzz` rotations (the `PauliSimp` effect on
//!   Hamiltonian-evolution programs).

use crate::compact::{compact, CompactOptions};
use crate::fuse::{fuse_2q, push_u3};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::gates::cnot;
use reqisc_synthesis::synthesize_to_cnots;

/// Re-synthesizes every fused SU(4) block into minimal CNOTs + 1Q gates.
///
/// Blocks that fail the (never-failing in practice) core search are left
/// as lowered 3-CNOT dressings of themselves via the general branch.
pub fn resynthesize_to_cx(c: &Circuit) -> Circuit {
    let fused = fuse_2q(c);
    let mut out = Circuit::new(c.num_qubits());
    for g in fused.gates() {
        match g {
            Gate::Su4(a, b, m) => emit_cx_block(&mut out, *a, *b, m),
            Gate::Can(a, b, w) => {
                let m = reqisc_qmath::gates::canonical_gate(w.x, w.y, w.z);
                emit_cx_block(&mut out, *a, *b, &m);
            }
            other if other.is_2q() && !matches!(other, Gate::Cx(..)) => {
                let qs = other.qubits();
                emit_cx_block(&mut out, qs[0], qs[1], &other.matrix());
            }
            other => out.push(other.clone()),
        }
    }
    out
}

fn emit_cx_block(out: &mut Circuit, a: usize, b: usize, m: &reqisc_qmath::CMat) {
    match synthesize_to_cnots(m) {
        Ok((r, _k)) => {
            for (qs, g) in &r.slots {
                match qs.len() {
                    1 => {
                        let q = if qs[0] == 0 { a } else { b };
                        push_u3(q, g, out);
                    }
                    _ => {
                        debug_assert!(g.approx_eq(&cnot(), 1e-9));
                        let (c0, c1) = (qs[0], qs[1]);
                        let (qa, qb) = (
                            if c0 == 0 { a } else { b },
                            if c1 == 0 { a } else { b },
                        );
                        out.push(Gate::Cx(qa, qb));
                    }
                }
            }
        }
        Err(_) => {
            // Should not happen for unitary blocks; keep the block.
            out.push(Gate::Su4(a, b, Box::new(m.clone())));
        }
    }
}

/// The Qiskit-like O3 pipeline: lower, consolidate, min-CNOT resynthesis.
pub fn qiskit_like(c: &Circuit) -> Circuit {
    let lowered = c.lowered_to_cx();
    resynthesize_to_cx(&lowered)
}

/// Merges commuting `Rzz` rotations on the same pair (PauliSimp-lite).
pub fn merge_pauli_rotations(c: &Circuit) -> Circuit {
    compact(c, &CompactOptions { tol: 1e-10, window: 64, max_passes: 4 })
}

/// The TKet-like pipeline: Pauli-gadget simplification, then the standard
/// lowering + consolidation + resynthesis.
pub fn tket_like(c: &Circuit) -> Circuit {
    let simplified = merge_pauli_rotations(c);
    qiskit_like(&simplified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-7, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn qiskit_like_cancels_redundancy() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(0));
        let q = qiskit_like(&c);
        assert_eq!(q.count_2q(), 0);
        check_equiv(&c, &q);
    }

    #[test]
    fn qiskit_like_minimizes_block_cnots() {
        // Three CNOTs same pair with interleaved 1Q: block is one SU(4);
        // generic class costs at most 3, often less.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(1, 0.7));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(1, -0.2));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1)); // cancels with previous
        let q = qiskit_like(&c);
        assert!(q.count_2q() <= 2, "got {}", q.count_2q());
        check_equiv(&c, &q);
    }

    #[test]
    fn toffoli_stays_six_cnots() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        let q = qiskit_like(&c);
        // Qiskit-like has no 3Q synthesis: CCX costs 6 CNOTs (2Q blocks on
        // distinct pairs cannot merge).
        assert_eq!(q.count_2q(), 6);
        check_equiv(&c, &q);
    }

    #[test]
    fn tket_like_merges_rzz_chains() {
        // Trotterized evolution: repeated Rzz on the same pairs, fully
        // commuting — TKet-like merges them, Qiskit-like alone does too
        // via fusion, but TKet also merges across interleavings.
        let mut c = Circuit::new(3);
        for _ in 0..3 {
            c.push(Gate::Rzz(0, 1, 0.2));
            c.push(Gate::Rzz(1, 2, 0.4));
        }
        let t = tket_like(&c);
        let q = qiskit_like(&c);
        assert!(t.count_2q() <= q.count_2q());
        // Each merged Rzz class needs ≤ 2 CNOTs.
        assert!(t.count_2q() <= 4, "got {}", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn swap_costs_three() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let q = qiskit_like(&c);
        assert_eq!(q.count_2q(), 3);
        check_equiv(&c, &q);
    }
}
