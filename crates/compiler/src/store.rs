//! The persistent, cross-process half of the compilation service layer: a
//! versioned on-disk serialization of the [`CompileCache`] pools, so a
//! fresh `cargo run` / CI job warm-starts from what earlier processes
//! already compiled instead of paying the full cold batch.
//!
//! ## File format
//!
//! One file, `reqisc-cache.bin`, in the store directory:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RQCS"
//! 4       4     format version (little-endian u32)
//! 8       8     payload length in bytes (little-endian u64)
//! 16      16    FNV-128 digest of the payload bytes (little-endian u128)
//! 32      …     payload
//! ```
//!
//! The payload opens with the file's **generation** (a u64 that every
//! save increments), followed by three length-prefixed sections in fixed
//! order — whole-program entries, block-synthesis entries, pulse-class
//! entries — each entry a content-addressed key (the same 128-bit FNV
//! fingerprints the in-memory pools use), the entry's **last-referenced
//! generation** stamp, then its codec-encoded value (see
//! `reqisc_qmath::bytes`).
//!
//! ## GC / compaction
//!
//! Each save re-stamps the entries the in-memory cache actually
//! *referenced* (served or computed — not merely bulk-loaded) with the
//! new generation; everything else keeps its old stamp and silently ages.
//! [`CacheStore::compact`] is a save that additionally drops entries
//! whose stamp is more than `max_idle_gens` generations old *and* purges
//! the same entries from the live cache, so a long-lived shared cache
//! directory converges to its working set instead of growing without
//! bound. Compaction never changes any served result: dropped entries are
//! simply recomputed (bit-identically — pipelines are deterministic) if
//! a future request needs them.
//!
//! ## Invalidation rules
//!
//! A file is loaded **whole or not at all**:
//!
//! * wrong magic, wrong version, length mismatch, checksum mismatch, or
//!   any entry-level decode failure rejects the entire file — the cache
//!   stays cold, the `rejected` stat increments, and the caller keeps
//!   going (never a panic, never a partial seed);
//! * option/tolerance changes need no file-level invalidation: every key
//!   embeds the options fingerprint (and the class keys embed the
//!   grouping tolerance via quantization), so stale entries simply never
//!   hit. They are garbage-collected by the next save only if still
//!   resident in memory — i.e. a save persists the *union* of the
//!   current file and the in-memory pools;
//! * any change to a codec layout, a fingerprint definition, or a
//!   canonicalization tolerance (e.g. `KAK_FACE_SNAP_TOL`,
//!   `SU4_CLASS_TOL`) must bump [`STORE_FORMAT_VERSION`] so old files
//!   reject cleanly instead of mis-addressing.
//!
//! ## Concurrency
//!
//! Saves serialize to a temp file in the same directory and `rename` into
//! place, so concurrent writers (two processes sharing a cache dir) race
//! to a *complete* file — last writer wins, readers never observe a torn
//! write. Because each save merges the on-disk union first, the losing
//! writer's entries survive unless both saved simultaneously (in which
//! case one batch's worth of work is recompiled next run — a performance
//! blip, never a correctness issue).

use crate::cache::{CompileCache, ProgramKey, SynthKey};
use crate::pipelines::Pipeline;
use reqisc_microarch::cache::{read_solved_class, write_solved_class};
use reqisc_qcircuit::{read_circuit, write_circuit, Circuit};
use reqisc_qmath::{ByteReader, ByteWriter, CodecError, Fnv128, WeylClassKey};
use reqisc_synthesis::BlockCircuit;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// The header constants, the payload serializer, and the decoder below
// are marked store-surface regions: `reqisc-lint`'s store-format rule
// fingerprints them into `crates/lint/store_surface.lock` (keyed by
// STORE_FORMAT_VERSION) and denies any edit that doesn't come with a
// version bump + registry regeneration. See that file's header for the
// regeneration command.
// lint:store-surface-begin
/// Magic bytes opening every store file.
pub const STORE_MAGIC: [u8; 4] = *b"RQCS";

/// On-disk format version. Bump on **any** change to the header, section
/// layout, value codecs, fingerprint definitions, or canonicalization
/// tolerances baked into the keys.
///
/// History: v1 = PR 3 (no generations); v2 adds the file generation and
/// per-entry last-referenced stamps that GC/compaction ages on; v3 adds
/// `ByteReader::get_bytes` plus the shared-memory segment surface (the
/// `reqisc-shmem` header/record layout and the `sharing` pool-tag +
/// key/value codecs) — segments stamp this version into their header,
/// so the bump retires any segment written before the surface existed.
pub const STORE_FORMAT_VERSION: u32 = 3;

/// Store file name inside the store directory.
pub const STORE_FILE_NAME: &str = "reqisc-cache.bin";

const HEADER_LEN: usize = 32;
// lint:store-surface-end

/// Counter snapshot of one [`CacheStore`]'s activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries seeded into caches by successful loads.
    pub loaded_entries: u64,
    /// Entries written by successful saves (compactions included).
    pub saved_entries: u64,
    /// Files rejected (missing counts as cold, not rejected): corruption,
    /// truncation, version/magic mismatch, or unreadable.
    pub rejected: u64,
    /// [`CacheStore::compact`] passes completed.
    pub compactions: u64,
    /// Entries dropped by compaction (aged out of the file and purged
    /// from the live cache).
    pub gc_dropped: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries loaded, {} saved, {} files rejected, {} compactions ({} dropped)",
            self.loaded_entries, self.saved_entries, self.rejected, self.compactions, self.gc_dropped
        )
    }
}

/// Result of one [`CacheStore::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Entries surviving in the rewritten file.
    pub kept: usize,
    /// Entries dropped (from the file and the live cache).
    pub dropped: usize,
    /// The rewritten file's generation.
    pub generation: u64,
}

/// Result of one [`CacheStore::load_into`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// No store file yet: clean cold start.
    Missing,
    /// File loaded; counts per pool.
    Loaded {
        /// Whole-program entries seeded.
        programs: usize,
        /// Block-synthesis entries seeded.
        synthesis: usize,
        /// Pulse-class entries seeded.
        pulses: usize,
    },
    /// File present but unusable (corrupt/stale/truncated): clean cold
    /// start, `rejected` stat incremented.
    Rejected {
        /// Human-readable rejection cause.
        reason: String,
    },
}

impl LoadOutcome {
    /// Total entries seeded (0 unless `Loaded`).
    pub fn entries(&self) -> usize {
        match self {
            LoadOutcome::Loaded { programs, synthesis, pulses } => programs + synthesis + pulses,
            _ => 0,
        }
    }
}

/// Handle to one on-disk cache store directory.
#[derive(Debug)]
pub struct CacheStore {
    path: PathBuf,
    loaded_entries: AtomicU64,
    saved_entries: AtomicU64,
    rejected: AtomicU64,
    compactions: AtomicU64,
    gc_dropped: AtomicU64,
}

/// Process-global temp-file sequence: two `CacheStore` handles on the
/// same directory (one per tenant/thread is the normal shape) must never
/// generate the same temp name, or one writer truncates the file another
/// is about to rename and the atomicity guarantee dies.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Decoded payload sections, fully materialized before any seeding so a
/// late decode error can never leave a cache partially warmed. Each entry
/// carries its last-referenced generation stamp.
struct Decoded {
    generation: u64,
    programs: Vec<(ProgramKey, u64, Arc<Circuit>)>,
    synthesis: Vec<(SynthKey, u64, Arc<Option<BlockCircuit>>)>,
    pulses: Vec<(([i64; 3], WeylClassKey), u64, Arc<reqisc_microarch::SolvedClass>)>,
}

impl CacheStore {
    /// A store rooted at `dir` (created on first save; loading from a
    /// nonexistent directory is a clean [`LoadOutcome::Missing`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            path: dir.into().join(STORE_FILE_NAME),
            loaded_entries: AtomicU64::new(0),
            saved_entries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            gc_dropped: AtomicU64::new(0),
        }
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loaded_entries: self.loaded_entries.load(Ordering::Relaxed),
            saved_entries: self.saved_entries.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            gc_dropped: self.gc_dropped.load(Ordering::Relaxed),
        }
    }

    /// Loads the store file (if any) and seeds every entry into `cache`.
    /// Never panics and never partially seeds: a bad file is counted,
    /// reported, and otherwise ignored — the caller proceeds cold.
    pub fn load_into(&self, cache: &CompileCache) -> LoadOutcome {
        let outcome = self.read_decoded();
        match outcome {
            Ok(None) => LoadOutcome::Missing,
            Ok(Some(d)) => {
                let (np, ns, nu) = (d.programs.len(), d.synthesis.len(), d.pulses.len());
                for (k, _, v) in d.programs {
                    cache.seed_program(k, v);
                }
                for (k, _, v) in d.synthesis {
                    cache.seed_synthesis(k, v);
                }
                for ((cp, class), _, v) in d.pulses {
                    cache.pulses().seed_class(cp, class, v);
                }
                self.loaded_entries.fetch_add((np + ns + nu) as u64, Ordering::Relaxed);
                LoadOutcome::Loaded { programs: np, synthesis: ns, pulses: nu }
            }
            Err(reason) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                LoadOutcome::Rejected { reason }
            }
        }
    }

    /// Serializes the union of the current store file and `cache`'s pools
    /// to a temp file and atomically renames it into place. Returns the
    /// number of entries written.
    ///
    /// Generation stamping: the new file's generation is the old one + 1;
    /// entries the cache actually *referenced* (served or computed, not
    /// merely bulk-loaded) are stamped with it, everything else keeps its
    /// old stamp and ages — the raw material [`CacheStore::compact`]
    /// collects.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, write, rename).
    /// An unreadable/corrupt existing file is *not* an error: it is
    /// silently superseded by the fresh snapshot.
    pub fn save(&self, cache: &CompileCache) -> std::io::Result<usize> {
        let (n, _) = self.write_merged(cache, None)?;
        Ok(n)
    }

    /// A save that also **garbage-collects**: entries whose last-reference
    /// stamp is more than `max_idle_gens` generations behind the new file
    /// generation are dropped from the rewritten file *and* purged from
    /// `cache` (so the next save cannot resurrect them). `max_idle_gens =
    /// 0` keeps only entries this process referenced; a production
    /// snapshot timer wants something like 2–8 so entries survive across
    /// a few idle snapshots before aging out.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, same as [`CacheStore::save`].
    pub fn compact(
        &self,
        cache: &CompileCache,
        max_idle_gens: u64,
    ) -> std::io::Result<CompactOutcome> {
        let (kept, outcome) = self.write_merged(cache, Some(max_idle_gens))?;
        let outcome = outcome.unwrap_or(CompactOutcome { kept, dropped: 0, generation: 1 });
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.gc_dropped.fetch_add(outcome.dropped as u64, Ordering::Relaxed);
        Ok(outcome)
    }

    /// The shared save/compact path: merges disk + memory with generation
    /// stamping, optionally drops entries idle for more than
    /// `gc_max_idle_gens` generations (purging them from `cache` too),
    /// sorts, serializes, and atomically renames into place. Returns the
    /// entry count written plus the compaction outcome (when GC ran).
    fn write_merged(
        &self,
        cache: &CompileCache,
        gc_max_idle_gens: Option<u64>,
    ) -> std::io::Result<(usize, Option<CompactOutcome>)> {
        // Start from what is already on disk (merge, don't clobber), then
        // overlay the in-memory pools — newer results win on key clashes.
        let disk = match self.read_decoded() {
            Ok(Some(d)) => d,
            _ => Decoded {
                generation: 0,
                programs: Vec::new(),
                synthesis: Vec::new(),
                pulses: Vec::new(),
            },
        };
        let new_gen = disk.generation + 1;
        // Referenced entries take the new stamp; bulk-loaded-but-unused
        // entries keep the stamp the file already had (aging), and unused
        // entries with no on-disk stamp (seeded into a cache that is saved
        // to a *different* directory) count as fresh — a new file starts a
        // new aging history.
        let mut programs = stamp_merge(disk.programs, cache.export_programs(), new_gen);
        let mut synthesis = stamp_merge(disk.synthesis, cache.export_synthesis(), new_gen);
        let mut pulses = stamp_merge(disk.pulses, cache.pulses().export_classes(), new_gen);

        let mut outcome = None;
        if let Some(max_idle) = gc_max_idle_gens {
            let before = programs.len() + synthesis.len() + pulses.len();
            let live = |stamp: u64| new_gen.saturating_sub(stamp) <= max_idle;
            programs.retain(|(k, stamp, _)| {
                let keep = live(*stamp);
                if !keep {
                    cache.remove_program(k);
                }
                keep
            });
            synthesis.retain(|(k, stamp, _)| {
                let keep = live(*stamp);
                if !keep {
                    cache.remove_synthesis(k);
                }
                keep
            });
            pulses.retain(|((cp, class), stamp, _)| {
                let keep = live(*stamp);
                if !keep {
                    cache.pulses().remove_class(*cp, *class);
                }
                keep
            });
            let kept = programs.len() + synthesis.len() + pulses.len();
            outcome = Some(CompactOutcome { kept, dropped: before - kept, generation: new_gen });
        }

        // Deterministic entry order: the in-memory pools iterate in hash
        // order, but equal cache *content* must serialize to equal *bytes*
        // (the round-trip tests diff whole files, and stable bytes make
        // repeated saves rsync/dedup-friendly).
        // lint:store-surface-begin
        programs.sort_by_key(|(k, _, _)| (k.circuit, k.pipeline.store_tag(), k.options));
        synthesis.sort_by_key(|(k, _, _)| (k.target, k.num_qubits, k.budget, k.options));
        pulses.sort_by_key(|((cp, class), _, _)| (*cp, class.0));
        let n = programs.len() + synthesis.len() + pulses.len();

        let mut payload = ByteWriter::new();
        payload.put_u64(new_gen);
        payload.put_usize(programs.len());
        for (k, stamp, v) in &programs {
            payload.put_u128(k.circuit);
            payload.put_u8(k.pipeline.store_tag());
            payload.put_u128(k.options);
            payload.put_u64(*stamp);
            write_circuit(&mut payload, v);
        }
        payload.put_usize(synthesis.len());
        for (k, stamp, v) in &synthesis {
            payload.put_u128(k.target);
            payload.put_usize(k.num_qubits);
            payload.put_usize(k.budget);
            payload.put_u128(k.options);
            payload.put_u64(*stamp);
            match v.as_ref() {
                Some(bc) => {
                    payload.put_u8(1);
                    bc.encode_into(&mut payload);
                }
                None => payload.put_u8(0),
            }
        }
        payload.put_usize(pulses.len());
        for ((cp, class), stamp, v) in &pulses {
            for c in cp {
                payload.put_i64(*c);
            }
            for c in class.0 {
                payload.put_i64(c);
            }
            payload.put_u64(*stamp);
            write_solved_class(&mut payload, v);
        }
        let payload = payload.into_bytes();

        let mut file = ByteWriter::new();
        file.put_bytes(&STORE_MAGIC);
        file.put_u32(STORE_FORMAT_VERSION);
        file.put_u64(payload.len() as u64);
        file.put_u128(checksum(&payload));
        file.put_bytes(&payload);
        // lint:store-surface-end

        let dir = self.path.parent().unwrap_or_else(|| Path::new("."));
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".{}.tmp.{}.{}",
            STORE_FILE_NAME,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, file.as_bytes())?;
        match std::fs::rename(&tmp, &self.path) {
            Ok(()) => {}
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
        self.saved_entries.fetch_add(n as u64, Ordering::Relaxed);
        Ok((n, outcome))
    }

    /// Reads and fully decodes the store file. `Ok(None)` = no file;
    /// `Err(reason)` = present but unusable.
    fn read_decoded(&self) -> Result<Option<Decoded>, String> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable store file: {e}")),
        };
        decode_file(&bytes).map(Some).map_err(|e| e.message)
    }
}

/// Overlays the in-memory `fresh` exports on the on-disk `base`: a
/// *referenced* fresh entry (used flag set) is stamped `new_gen`; an
/// unreferenced one keeps the on-disk stamp if the key is on disk, else
/// counts as fresh. Disk entries whose key does not reappear survive with
/// their old stamp. HashMap-indexed so a save stays linear in total entry
/// count even for long-lived shared cache directories.
fn stamp_merge<K: Eq + std::hash::Hash + Copy, V>(
    base: Vec<(K, u64, V)>,
    fresh: Vec<(K, V, bool)>,
    new_gen: u64,
) -> Vec<(K, u64, V)> {
    let mut merged: std::collections::HashMap<K, (u64, V)> =
        base.into_iter().map(|(k, stamp, v)| (k, (stamp, v))).collect();
    for (k, v, used) in fresh {
        let stamp = if used { new_gen } else { merged.get(&k).map(|(s, _)| *s).unwrap_or(new_gen) };
        merged.insert(k, (stamp, v));
    }
    merged.into_iter().map(|(k, (stamp, v))| (k, stamp, v)).collect()
}

/// FNV-128 digest of raw bytes (the header checksum).
fn checksum(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    for b in bytes {
        h.write_u8(*b);
    }
    h.finish()
}

// lint:store-surface-begin
fn decode_file(bytes: &[u8]) -> Result<Decoded, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::new(format!("file too short ({} bytes)", bytes.len())));
    }
    let mut r = ByteReader::new(bytes);
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.get_u8()?;
    }
    if magic != STORE_MAGIC {
        return Err(CodecError::new("bad magic"));
    }
    let version = r.get_u32()?;
    if version != STORE_FORMAT_VERSION {
        return Err(CodecError::new(format!(
            "format version {version} (expected {STORE_FORMAT_VERSION})"
        )));
    }
    let payload_len = r.get_u64()? as usize;
    if payload_len != bytes.len() - HEADER_LEN {
        return Err(CodecError::new(format!(
            "payload length {payload_len} but {} bytes present",
            bytes.len() - HEADER_LEN
        )));
    }
    let digest = r.get_u128()?;
    let payload = &bytes[HEADER_LEN..];
    if checksum(payload) != digest {
        return Err(CodecError::new("payload checksum mismatch"));
    }
    let mut r = ByteReader::new(payload);
    let generation = r.get_u64()?;

    let np = r.get_count(41)?;
    let mut programs = Vec::with_capacity(np);
    for _ in 0..np {
        let circuit = r.get_u128()?;
        let tag = r.get_u8()?;
        let pipeline = Pipeline::from_store_tag(tag)
            .ok_or_else(|| CodecError::new(format!("unknown pipeline tag {tag}")))?;
        let options = r.get_u128()?;
        let stamp = r.get_u64()?;
        let value = read_circuit(&mut r)?;
        programs.push((ProgramKey { circuit, pipeline, options }, stamp, Arc::new(value)));
    }

    let ns = r.get_count(57)?;
    let mut synthesis = Vec::with_capacity(ns);
    for _ in 0..ns {
        let target = r.get_u128()?;
        let num_qubits = r.get_usize()?;
        let budget = r.get_usize()?;
        let options = r.get_u128()?;
        let stamp = r.get_u64()?;
        let value = match r.get_u8()? {
            0 => None,
            1 => Some(BlockCircuit::decode_from(&mut r)?),
            t => return Err(CodecError::new(format!("bad synthesis presence flag {t}"))),
        };
        synthesis.push((SynthKey { target, num_qubits, budget, options }, stamp, Arc::new(value)));
    }

    let nu = r.get_count(56)?;
    let mut pulses = Vec::with_capacity(nu);
    for _ in 0..nu {
        let cp = [r.get_i64()?, r.get_i64()?, r.get_i64()?];
        let class = WeylClassKey([r.get_i64()?, r.get_i64()?, r.get_i64()?]);
        let stamp = r.get_u64()?;
        let value = read_solved_class(&mut r)?;
        pulses.push(((cp, class), stamp, Arc::new(value)));
    }
    if !r.is_exhausted() {
        return Err(CodecError::new(format!("{} trailing bytes", r.remaining())));
    }
    Ok(Decoded { generation, programs, synthesis, pulses })
}
// lint:store-surface-end
