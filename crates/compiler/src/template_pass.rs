//! Program-aware template-based synthesis (paper §5.2.2, Fig. 10).
//!
//! Matches the 3Q IRs of Type-I programs — explicit `Ccx`/`Peres` gates
//! plus the MAJ/UMA/CSWAP gate-sequence patterns — and replaces each with a
//! pre-synthesized SU(4) template, *selectively assembling* ECC variants so
//! that adjacent templates share a qubit pair and fuse.

use crate::fuse::fuse_2q;
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_synthesis::{SearchOptions, Template, TemplateLibrary};

/// A matched IR occurrence in the gate stream.
#[derive(Debug, Clone)]
struct Match {
    /// IR name in the library.
    name: &'static str,
    /// Actual qubits carrying IR wires 0, 1, 2.
    qubits: [usize; 3],
    /// How many gates of the stream this match consumes.
    span: usize,
}

/// Tries to match an IR starting at `gates[i]`.
///
/// Sequence patterns (MAJ/UMA/CSWAP) must be consecutive in the gate list —
/// our benchmark generators emit them that way, and the matcher is a
/// peephole by design (a full DAG matcher would only widen coverage).
fn match_ir(gates: &[Gate], i: usize) -> Option<Match> {
    match &gates[i] {
        Gate::Ccx(a, b, c) => {
            // Peres fusion: CCX(a,b,c) followed immediately by CX(a,b).
            if let Some(Gate::Cx(x, y)) = gates.get(i + 1) {
                if x == a && y == b {
                    return Some(Match { name: "peres", qubits: [*a, *b, *c], span: 2 });
                }
            }
            Some(Match { name: "ccx", qubits: [*a, *b, *c], span: 1 })
        }
        Gate::Peres(a, b, c) => Some(Match { name: "peres", qubits: [*a, *b, *c], span: 1 }),
        Gate::Cx(c1, b) => {
            // MAJ(a,b,c) = CX(c,b); CX(c,a); CCX(a,b,c).
            if let (Some(Gate::Cx(c2, a)), Some(Gate::Ccx(a2, b2, c3))) =
                (gates.get(i + 1), gates.get(i + 2))
            {
                if c1 == c2 && a2 == a && b2 == b && c3 == c1 && a != b {
                    return Some(Match { name: "maj", qubits: [*a, *b, *c1], span: 3 });
                }
            }
            // CSWAP(a,b,c) = CX(c,b); CCX(a,b,c); CX(c,b).
            if let (Some(Gate::Ccx(a2, b2, c2)), Some(Gate::Cx(c3, b3))) =
                (gates.get(i + 1), gates.get(i + 2))
            {
                if b2 == b && c2 == c1 && c3 == c1 && b3 == b && a2 != b {
                    return Some(Match { name: "cswap", qubits: [*a2, *b, *c1], span: 3 });
                }
            }
            None
        }
        _ => {
            // UMA(a,b,c) = CCX(a,b,c); CX(c,a); CX(a,b) — starts with CCX,
            // so it is found through the Ccx arm below via lookahead.
            None
        }
    }
}

/// Extended CCX lookahead: UMA(a,b,c) = CCX; CX(c,a); CX(a,b).
fn match_uma(gates: &[Gate], i: usize) -> Option<Match> {
    if let Gate::Ccx(a, b, c) = &gates[i] {
        if let (Some(Gate::Cx(c2, a2)), Some(Gate::Cx(a3, b3))) =
            (gates.get(i + 1), gates.get(i + 2))
        {
            if c2 == c && a2 == a && a3 == a && b3 == b {
                return Some(Match { name: "uma", qubits: [*a, *b, *c], span: 3 });
            }
        }
    }
    None
}

/// Runs template-based synthesis over a CCX-level circuit.
///
/// Unmatched gates (CX, 1Q rotations, …) pass through untouched and are
/// merged into neighbouring SU(4)s by the final fusion pass.
pub fn template_synthesis(c: &Circuit, lib: &TemplateLibrary) -> Circuit {
    let lowered = c.lowered_to_ccx();
    let gates = lowered.gates();
    let mut out = Circuit::new(c.num_qubits());
    // Last emitted SU(4) pair per qubit (for selective assembly).
    let mut last_pair: Option<(usize, usize)> = None;
    let mut i = 0usize;
    while i < gates.len() {
        let m = match_uma(gates, i).or_else(|| match_ir(gates, i));
        match m {
            Some(m) if lib.get(m.name).is_some() => {
                let entry = lib.get(m.name).unwrap();
                let t = select_variant(&entry.variants, &m.qubits, last_pair);
                for ((la, lb), blk) in &t.circuit.blocks {
                    let (ga, gb) = (m.qubits[*la], m.qubits[*lb]);
                    out.push(Gate::Su4(ga, gb, Box::new(blk.clone())));
                    last_pair = Some(sorted(ga, gb));
                }
                i += m.span;
            }
            _ => {
                let g = &gates[i];
                if g.is_2q() {
                    let q = g.qubits();
                    last_pair = Some(sorted(q[0], q[1]));
                }
                out.push(g.clone());
                i += 1;
            }
        }
    }
    fuse_2q(&out)
}

fn sorted(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Selective assembly: prefer the ECC variant whose first block lands on
/// the most recently emitted SU(4) pair (it will fuse), breaking ties by
/// block count.
fn select_variant<'a>(
    variants: &'a [Template],
    qubits: &[usize; 3],
    last_pair: Option<(usize, usize)>,
) -> &'a Template {
    let score = |t: &Template| -> (i32, usize) {
        let fusion = match (t.first_pair(), last_pair) {
            (Some((la, lb)), Some(lp)) => {
                let actual = sorted(qubits[la], qubits[lb]);
                i32::from(actual == lp)
            }
            _ => 0,
        };
        (fusion, t.circuit.len())
    };
    variants
        .iter()
        .min_by(|a, b| {
            let (fa, ca) = score(a);
            let (fb, cb) = score(b);
            // Higher fusion first, then fewer blocks.
            fb.cmp(&fa).then(ca.cmp(&cb))
        })
        .expect("non-empty variant list")
}

/// Builds the default library once with the given search options.
pub fn default_library(opts: &SearchOptions) -> TemplateLibrary {
    TemplateLibrary::builtin(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;
    use std::sync::OnceLock;

    fn lib() -> &'static TemplateLibrary {
        static LIB: OnceLock<TemplateLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let mut o = SearchOptions::default();
            o.sweep.restarts = 3;
            TemplateLibrary::builtin(&o)
        })
    }

    fn check_equiv(a: &Circuit, b: &Circuit) {
        let inf = process_infidelity(&a.unitary(), &b.unitary());
        assert!(inf < 1e-7, "not equivalent: infidelity {inf}");
    }

    #[test]
    fn single_ccx_uses_template() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        let t = template_synthesis(&c, lib());
        assert!(t.count_2q() <= 5, "CCX as {} SU(4)s", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn consecutive_toffolis_fuse_via_ecc() {
        // Fig. 10: adjacent Toffoli/Peres sharing qubits: selective
        // assembly buys at least one fusion.
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Peres(0, 1, 2));
        let t = template_synthesis(&c, lib());
        let naive = 2 * 5;
        assert!(t.count_2q() < naive, "no fusion: {}", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn maj_pattern_matched() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(2, 1));
        c.push(Gate::Cx(2, 0));
        c.push(Gate::Ccx(0, 1, 2));
        let t = template_synthesis(&c, lib());
        // MAJ as one template ≤ 5 SU(4)s (vs 8 CNOTs lowered).
        assert!(t.count_2q() <= 5, "MAJ as {}", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn uma_pattern_matched() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(2, 0));
        c.push(Gate::Cx(0, 1));
        let t = template_synthesis(&c, lib());
        assert!(t.count_2q() <= 5, "UMA as {}", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn cswap_pattern_matched() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(2, 1));
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Cx(2, 1));
        let t = template_synthesis(&c, lib());
        assert!(t.count_2q() <= 6, "CSWAP as {}", t.count_2q());
        check_equiv(&c, &t);
    }

    #[test]
    fn plain_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::T(1));
        let t = template_synthesis(&c, lib());
        check_equiv(&c, &t);
        assert!(t.count_2q() <= 1);
    }

    #[test]
    fn mcx_is_lowered_first() {
        let mut c = Circuit::new(5);
        c.push(Gate::Mcx(vec![0, 1, 2], 3));
        let t = template_synthesis(&c, lib());
        check_equiv(&c, &t);
        // 6 CCX → ≤ 30 SU(4)s; in practice far fewer after fusion.
        assert!(t.count_2q() <= 30);
    }
}
