#![warn(missing_docs)]
//! # reqisc-compiler
//!
//! **Regulus** — the end-to-end SU(4)-native compiler of the ReQISC stack
//! (paper §5): program-aware template-based synthesis, program-agnostic
//! hierarchical synthesis with DAG compacting, SU(4)-aware
//! mirroring-SABRE routing, the CNOT-based baseline pipelines it is
//! evaluated against, and the §6 metrics.
//!
//! ## Quick start
//!
//! ```no_run
//! use reqisc_compiler::{Compiler, Pipeline, metrics};
//! use reqisc_microarch::Coupling;
//! use reqisc_qcircuit::{Circuit, Gate};
//!
//! let mut program = Circuit::new(3);
//! program.push(Gate::Ccx(0, 1, 2));
//! let compiler = Compiler::new();
//! let out = compiler.compile(&program, Pipeline::ReqiscFull);
//! let m = metrics(&out, &Coupling::xy(1.0));
//! assert!(m.count_2q <= 5); // vs 6 CNOTs
//! ```

pub mod cache;
pub mod cnot_opt;
pub mod compact;
pub mod fuse;
pub mod hierarchical;
pub mod partition;
pub mod pauli_frontend;
pub mod pipelines;
pub mod sabre;
pub mod sharing;
pub mod store;
pub mod template_pass;
pub mod topology;
pub mod variational;

pub use cache::{CompileCache, CompileCacheStats};
pub use reqisc_microarch::cache::{CacheStats, SolverStats};
pub use cnot_opt::{merge_pauli_rotations, qiskit_like, resynthesize_to_cx, tket_like};
pub use compact::{compact, gates_commute, CompactOptions};
pub use fuse::fuse_2q;
pub use hierarchical::{
    hierarchical_synthesis, hierarchical_synthesis_batched, hierarchical_synthesis_cached,
    HsOptions,
};
pub use pauli_frontend::{compile_pauli_program, emit_pauli_rotation, Axis, PauliRotation};
pub use partition::{compactness, partition_3q, reassemble, Block, PartitionOptions};
pub use store::{CacheStore, CompactOutcome, LoadOutcome, StoreStats, STORE_FORMAT_VERSION};
pub use pipelines::{
    distinct_su4_count, distinct_su4_count_with_tol, gate_duration, metrics, Compiler, Metrics,
    Pipeline,
};
pub use sharing::{
    probe_shared_program, publish_all, publish_program, seed_from_segment, seed_subprogram_pools,
    ShareStats, POOL_PROGRAM, POOL_PULSE, POOL_SYNTHESIS,
};
pub use sabre::{
    expand_swaps_to_cx, route, routing_preserves_semantics, RouteOptions, Routed, Router,
};
pub use template_pass::{default_library, template_synthesis};
pub use topology::Topology;
pub use variational::{to_fixed_basis, FixedBasis};
