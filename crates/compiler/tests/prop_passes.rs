//! Property tests: every compiler pass preserves the program unitary on
//! random circuits, and the optimizing passes never increase #2Q.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reqisc_compiler::{
    compact, fuse_2q, hierarchical_synthesis, qiskit_like, route, routing_preserves_semantics,
    tket_like, CompactOptions, HsOptions, RouteOptions, Router, Topology,
};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qsim::{circuit_unitary, process_infidelity};

fn random_circuit(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..8) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => c.push(Gate::T(rng.gen_range(0..n))),
            2 => c.push(Gate::Rz(rng.gen_range(0..n), rng.gen_range(-1.5..1.5))),
            3 | 4 => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cx(a, b));
            }
            5 => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Rzz(a, b, rng.gen_range(-1.0..1.0)));
            }
            6 if n >= 3 => {
                let mut qs: Vec<usize> = (0..n).collect();
                for i in 0..3 {
                    let j = rng.gen_range(i..n);
                    qs.swap(i, j);
                }
                c.push(Gate::Ccx(qs[0], qs[1], qs[2]));
            }
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::SqiSw(a, b));
            }
        }
    }
    c
}

fn equiv(a: &Circuit, b: &Circuit, tol: f64) -> f64 {
    process_infidelity(&circuit_unitary(a), &circuit_unitary(b)).max(tol * 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fuse_preserves_and_never_grows(seed in 0u64..5000, n in 2usize..5, len in 4usize..24) {
        let c = random_circuit(n, len, seed).lowered_to_cx();
        let f = fuse_2q(&c);
        prop_assert!(f.count_2q() <= c.count_2q());
        let inf = equiv(&c, &f, 1e-9);
        prop_assert!(inf < 1e-8, "infidelity {inf}");
    }

    #[test]
    fn compact_preserves(seed in 0u64..5000, n in 3usize..5, len in 4usize..20) {
        let c = fuse_2q(&random_circuit(n, len, seed).lowered_to_cx());
        let k = compact(&c, &CompactOptions::default());
        prop_assert!(k.count_2q() <= c.count_2q());
        let inf = equiv(&c, &k, 1e-9);
        prop_assert!(inf < 1e-8, "infidelity {inf}");
    }

    #[test]
    fn baselines_preserve(seed in 0u64..5000, n in 2usize..4, len in 3usize..14) {
        let c = random_circuit(n, len, seed);
        for out in [qiskit_like(&c), tket_like(&c)] {
            let inf = equiv(&c.lowered_to_cx(), &out, 1e-8);
            prop_assert!(inf < 1e-7, "infidelity {inf}");
        }
    }

    #[test]
    fn hierarchical_preserves(seed in 0u64..5000, n in 3usize..5, len in 4usize..16) {
        let c = random_circuit(n, len, seed);
        let mut o = HsOptions::default();
        o.search.sweep.restarts = 2;
        o.search.sweep.max_sweeps = 150;
        let h = hierarchical_synthesis(&c, &o);
        let inf = equiv(&c.lowered_to_cx(), &h, 1e-7);
        prop_assert!(inf < 1e-6, "infidelity {inf}");
        prop_assert!(h.count_2q() <= fuse_2q(&c.lowered_to_cx()).count_2q());
    }

    #[test]
    fn routing_preserves_on_random(seed in 0u64..5000, n in 3usize..6, len in 4usize..18) {
        let c = random_circuit(n, len, seed).lowered_to_cx();
        let topo = Topology::chain(n);
        for router in [Router::Sabre, Router::MirroringSabre] {
            let mut o = RouteOptions::default();
            o.router = router;
            let r = route(&c, &topo, &o);
            prop_assert!(
                routing_preserves_semantics(&c, &r, &topo),
                "router {router:?} broke seed {seed}"
            );
        }
    }
}
