#![warn(missing_docs)]
//! # reqisc-env
//!
//! The **single registry** of `REQISC_*` environment knobs. Every
//! variable the workspace reads is declared exactly once here, as an
//! [`EnvKnob`] carrying the variable name and a one-line doc; consumers
//! (the service daemon, the bench binaries, the benchsuite scale switch)
//! reference the knob constant instead of spelling the string.
//!
//! This is enforced, not aspirational: the `reqisc-lint` `env-registry`
//! rule rejects any `"REQISC_*"` string literal outside this module, so a
//! new knob cannot ship undeclared or undocumented. The README's
//! environment-variable table is generated from [`markdown_table`] and a
//! test keeps the two in sync.

use std::path::PathBuf;

/// One declared environment knob: the variable name plus its
/// human-readable contract. Accessors implement the one shared parse for
/// each value shape, so two binaries can never drift on semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// The environment variable name (always `REQISC_*`).
    pub name: &'static str,
    /// One-line description of what the knob does and who reads it.
    pub doc: &'static str,
}

impl EnvKnob {
    /// The raw value (`None` when unset or not valid UTF-8).
    pub fn var(&self) -> Option<String> {
        std::env::var(self.name).ok()
    }

    /// True when the variable is set at all (even to the empty string).
    pub fn is_set(&self) -> bool {
        std::env::var_os(self.name).is_some()
    }

    /// Integer knob: `default` when unset or unparseable.
    pub fn usize_or(&self, default: usize) -> usize {
        self.var().and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Byte-size knob (`u64` even on 32-bit hosts — segment capacities
    /// exceed `usize` there): `default` when unset or unparseable.
    pub fn u64_or(&self, default: u64) -> u64 {
        self.var().and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Float knob (`None` when unset/unparseable) — the shape of the
    /// `REQISC_REQUIRE_*` assertion thresholds.
    pub fn f64(&self) -> Option<f64> {
        self.var().and_then(|v| v.parse().ok())
    }

    /// Boolean flag: set and neither empty nor `"0"`.
    pub fn flag(&self) -> bool {
        self.var().map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    }

    /// Path knob: `None` when unset **or empty** (an empty cache-dir
    /// means "no persistent store", not "the current directory").
    pub fn path(&self) -> Option<PathBuf> {
        let v = std::env::var_os(self.name)?;
        if v.is_empty() {
            return None;
        }
        Some(PathBuf::from(v))
    }
}

/// Persistent compile-store directory shared by the daemon, the bench
/// binaries, and CI (unset or empty = in-memory only).
pub const CACHE_DIR: EnvKnob = EnvKnob {
    name: "REQISC_CACHE_DIR",
    doc: "Persistent compile-store directory (daemon + every bench binary); unset/empty = in-memory only",
};

/// Shared-memory cache segment path (the cross-daemon warm tier).
pub const SHM_PATH: EnvKnob = EnvKnob {
    name: "REQISC_SHM_PATH",
    doc: "Shared-memory cache segment file attached by reqiscd and servebench (unset/empty = no shared tier)",
};

/// Capacity used when the shared segment is (re)created.
pub const SHM_CAPACITY_BYTES: EnvKnob = EnvKnob {
    name: "REQISC_SHM_CAPACITY_BYTES",
    doc: "Shared segment capacity in bytes when it is first created (default 67108864 = 64 MiB; existing segments keep theirs)",
};

/// Benchsuite scale switch: `paper` selects Table-1-sized programs.
pub const SCALE: EnvKnob = EnvKnob {
    name: "REQISC_SCALE",
    doc: "Benchsuite scale: `paper` = Table-1-sized programs (slow), anything else = demo scale",
};

/// Trial count of the `fig15` pulse-robustness sweep.
pub const TRIALS: EnvKnob = EnvKnob {
    name: "REQISC_TRIALS",
    doc: "fig15 robustness-sweep trial count (default 120)",
};

/// Sample count of the `table3` Haar-random evaluation.
pub const HAAR_SAMPLES: EnvKnob = EnvKnob {
    name: "REQISC_HAAR_SAMPLES",
    doc: "table3 Haar-random SU(4) sample count (default 2000; the paper uses 1e5)",
};

/// Cap on how many suite programs `cachebench`/`servebench` drive.
pub const BENCH_N: EnvKnob = EnvKnob {
    name: "REQISC_BENCH_N",
    doc: "Program-count cap for cachebench (default: whole suite) and servebench (default 24)",
};

/// Worker-thread pin of `cachebench`'s batch tier.
pub const THREADS: EnvKnob = EnvKnob {
    name: "REQISC_THREADS",
    doc: "cachebench batch worker count (default 0 = hardware parallelism)",
};

/// Worker-pool size of `servebench`'s in-process service.
pub const SERVE_WORKERS: EnvKnob = EnvKnob {
    name: "REQISC_SERVE_WORKERS",
    doc: "servebench service worker-pool size (default 0 = hardware parallelism)",
};

/// Lookup-stage worker count of the pipelined service core.
pub const SERVE_LOOKUP_WORKERS: EnvKnob = EnvKnob {
    name: "REQISC_SERVE_LOOKUP_WORKERS",
    doc: "Pipeline lookup-stage worker count for reqiscd and servebench (default 1)",
};

/// Deterministic cold-solve stall for the stall-isolation tests.
pub const DEBUG_SOLVE_DELAY_MS: EnvKnob = EnvKnob {
    name: "REQISC_DEBUG_SOLVE_DELAY_MS",
    doc: "Milliseconds a solve worker sleeps before each cold compile it claims (stall-isolation drills; default 0 = off)",
};

/// Where `servebench` writes its machine-readable results.
pub const BENCH_JSON: EnvKnob = EnvKnob {
    name: "REQISC_BENCH_JSON",
    doc: "Path servebench writes its BENCH_*.json results to (unset/empty = no JSON emitted)",
};

/// Git revision stamped into bench JSON artifacts.
pub const BENCH_GIT_REV: EnvKnob = EnvKnob {
    name: "REQISC_BENCH_GIT_REV",
    doc: "Git revision the CI/bench driver stamps into BENCH_*.json artifacts (unset = `unknown`)",
};

/// Skip `cachebench`'s slow serial reference column.
pub const SKIP_SERIAL: EnvKnob = EnvKnob {
    name: "REQISC_SKIP_SERIAL",
    doc: "Set non-zero to skip cachebench's slow serial reference column",
};

/// CI assertion: minimum disk-warm speedup over cold.
pub const REQUIRE_DISK_WARM_X: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_DISK_WARM_X",
    doc: "cachebench assertion: store must pre-exist and disk-warm must be >= this x over cold",
};

/// CI assertion: minimum disk-warm program-pool hit percentage.
pub const REQUIRE_PROGRAM_HIT_PCT: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_PROGRAM_HIT_PCT",
    doc: "cachebench assertion: disk-warm program-pool hit rate must be >= this percentage",
};

/// CI assertion: solver cost ceiling on the sliver tier.
pub const REQUIRE_SLIVER_BUDGET: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_SLIVER_BUDGET",
    doc: "solverbench assertion: max total evals+verifies on the sliver tier",
};

/// CI assertion: solver cost ceiling on the generic tier.
pub const REQUIRE_GENERIC_BUDGET: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_GENERIC_BUDGET",
    doc: "solverbench assertion: max total evals+verifies on the generic tier",
};

/// CI assertion: solver cost ceiling on the degenerate tier.
pub const REQUIRE_DEGENERATE_BUDGET: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_DEGENERATE_BUDGET",
    doc: "solverbench assertion: max total evals+verifies on the degenerate tier",
};

/// CI assertion: the wrong-subscheme reject path must cost zero evals.
pub const REQUIRE_ZERO_REJECT_EVALS: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_ZERO_REJECT_EVALS",
    doc: "solverbench assertion: set = the wrong-subscheme reject tier must cost exactly 0 evaluations",
};

/// CI assertion: warm jobs must never traverse the solve stage.
pub const REQUIRE_ZERO_WARM_SOLVES: EnvKnob = EnvKnob {
    name: "REQISC_REQUIRE_ZERO_WARM_SOLVES",
    doc: "servebench mixed-tier assertion: set = every warm request must short-circuit in the lookup stage (zero warm solve claims)",
};

/// Every declared knob, in the order the README table presents them.
pub const ALL: &[&EnvKnob] = &[
    &CACHE_DIR,
    &SHM_PATH,
    &SHM_CAPACITY_BYTES,
    &SCALE,
    &TRIALS,
    &HAAR_SAMPLES,
    &BENCH_N,
    &THREADS,
    &SERVE_WORKERS,
    &SERVE_LOOKUP_WORKERS,
    &DEBUG_SOLVE_DELAY_MS,
    &BENCH_JSON,
    &BENCH_GIT_REV,
    &SKIP_SERIAL,
    &REQUIRE_DISK_WARM_X,
    &REQUIRE_PROGRAM_HIT_PCT,
    &REQUIRE_SLIVER_BUDGET,
    &REQUIRE_GENERIC_BUDGET,
    &REQUIRE_DEGENERATE_BUDGET,
    &REQUIRE_ZERO_REJECT_EVALS,
    &REQUIRE_ZERO_WARM_SOLVES,
];

/// The README "Environment variables" table, generated from [`ALL`] so
/// docs can never silently drift from the registry.
pub fn markdown_table() -> String {
    let mut out = String::from("| Variable | Meaning |\n|---|---|\n");
    for k in ALL {
        out.push_str(&format!("| `{}` | {} |\n", k.name, k.doc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for k in ALL {
            assert!(k.name.starts_with("REQISC_"), "{} lacks the prefix", k.name);
            assert!(!k.doc.trim().is_empty(), "{} lacks a doc line", k.name);
            assert!(seen.insert(k.name), "{} declared twice", k.name);
        }
        assert_eq!(seen.len(), ALL.len());
    }

    #[test]
    fn markdown_table_covers_every_knob() {
        let t = markdown_table();
        for k in ALL {
            assert!(t.contains(k.name), "table misses {}", k.name);
        }
    }

    #[test]
    fn readme_documents_every_knob() {
        // The README env table is pasted from `markdown_table()`; this
        // pin catches a knob added to the registry but not to the docs.
        let readme = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md"),
        )
        .expect("README.md readable");
        for k in ALL {
            assert!(readme.contains(k.name), "README does not mention {}", k.name);
        }
    }

    #[test]
    fn accessor_semantics() {
        // Use a name that is *declared* (the registry rule forbids ad-hoc
        // literals), reading through a knob whose value we control.
        std::env::set_var(SKIP_SERIAL.name, "0");
        assert!(!SKIP_SERIAL.flag());
        assert!(SKIP_SERIAL.is_set());
        std::env::set_var(SKIP_SERIAL.name, "1");
        assert!(SKIP_SERIAL.flag());
        std::env::set_var(BENCH_N.name, "17");
        assert_eq!(BENCH_N.usize_or(3), 17);
        std::env::set_var(BENCH_N.name, "junk");
        assert_eq!(BENCH_N.usize_or(3), 3);
        std::env::set_var(REQUIRE_DISK_WARM_X.name, "2.5");
        assert_eq!(REQUIRE_DISK_WARM_X.f64(), Some(2.5));
        std::env::set_var(CACHE_DIR.name, "");
        assert_eq!(CACHE_DIR.path(), None, "empty path knob means no store");
        std::env::set_var(CACHE_DIR.name, "/tmp/x");
        assert_eq!(CACHE_DIR.path(), Some(std::path::PathBuf::from("/tmp/x")));
        std::env::remove_var(CACHE_DIR.name);
        std::env::remove_var(BENCH_N.name);
        std::env::remove_var(SKIP_SERIAL.name);
        std::env::remove_var(REQUIRE_DISK_WARM_X.name);
        assert_eq!(CACHE_DIR.path(), None);
    }
}
