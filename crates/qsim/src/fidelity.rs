//! Fidelity metrics: Hellinger fidelity between distributions (the paper's
//! program-fidelity metric, §6.1.1) and process infidelity between
//! unitaries (the compilation-error metric, §6.8).

use reqisc_qmath::CMat;

/// Hellinger fidelity between two probability distributions:
/// `F_H(p, q) = (Σ√(p_i·q_i))²`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hellinger_fidelity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let bc: f64 = p.iter().zip(q).map(|(a, b)| (a * b).max(0.0).sqrt()).sum();
    bc * bc
}

/// Hellinger distance `√(1 − √F_H)` — occasionally handier than fidelity.
pub fn hellinger_distance(p: &[f64], q: &[f64]) -> f64 {
    (1.0 - hellinger_fidelity(p, q).sqrt()).max(0.0).sqrt()
}

/// Process infidelity between unitaries:
/// `1 − |Tr(U†V)| / N` — the paper's compilation-error metric, which is
/// phase-insensitive and zero iff `U = e^{iφ}V`.
///
/// # Panics
///
/// Panics if shapes differ or inputs are not square.
pub fn process_infidelity(u: &CMat, v: &CMat) -> f64 {
    assert!(u.is_square() && v.is_square(), "expected square matrices");
    assert_eq!(u.rows(), v.rows(), "dimension mismatch");
    let n = u.rows() as f64;
    (1.0 - u.hs_inner(v).abs() / n).max(0.0)
}

/// Average gate fidelity `(N·F_pro + 1)/(N + 1)` with
/// `F_pro = |Tr(U†V)|²/N²`.
pub fn average_gate_fidelity(u: &CMat, v: &CMat) -> f64 {
    let n = u.rows() as f64;
    let fpro = (u.hs_inner(v).abs() / n).powi(2);
    (n * fpro + 1.0) / (n + 1.0)
}

/// Total-variation distance `½·Σ|p_i − q_i|`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reqisc_qmath::{haar_unitary, C64};

    #[test]
    fn hellinger_of_identical_is_one() {
        let p = [0.25, 0.25, 0.5];
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-15);
        assert!(hellinger_distance(&p, &p) < 1e-12);
    }

    #[test]
    fn hellinger_of_disjoint_is_zero() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!(hellinger_fidelity(&p, &q) < 1e-15);
        assert!((hellinger_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_is_symmetric() {
        let p = [0.7, 0.2, 0.1, 0.0];
        let q = [0.1, 0.4, 0.3, 0.2];
        assert!((hellinger_fidelity(&p, &q) - hellinger_fidelity(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn process_infidelity_phase_invariant() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = haar_unitary(4, &mut rng);
        let v = u.scale(C64::cis(1.234));
        assert!(process_infidelity(&u, &v) < 1e-12);
        assert!(process_infidelity(&u, &u) < 1e-15);
        assert!((average_gate_fidelity(&u, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn process_infidelity_detects_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = haar_unitary(4, &mut rng);
        let v = haar_unitary(4, &mut rng);
        assert!(process_infidelity(&u, &v) > 1e-3);
    }

    #[test]
    fn tv_bounds() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-15);
        assert!(total_variation(&p, &p) < 1e-15);
    }
}
