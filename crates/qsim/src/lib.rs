#![warn(missing_docs)]
//! # reqisc-qsim
//!
//! Simulation backends for the ReQISC reproduction: a dense state-vector
//! simulator, Monte-Carlo depolarizing noise matching the paper's fidelity
//! experiment (§6.7), and the fidelity/infidelity metrics of §6.
//!
//! ## Quick start
//!
//! ```
//! use reqisc_qcircuit::{Circuit, Gate};
//! use reqisc_qsim::{ideal_distribution, StateVector};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H(0));
//! c.push(Gate::Cx(0, 1));
//! let p = ideal_distribution(&c);
//! assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
//! ```

pub mod density;
pub mod fidelity;
pub mod noisy;
pub mod state;

pub use density::{exact_noisy_distribution, DensityMatrix};
pub use fidelity::{
    average_gate_fidelity, hellinger_distance, hellinger_fidelity, process_infidelity,
    total_variation,
};
pub use noisy::{ideal_distribution, noisy_distribution, run_trajectory, NoiseModel, P0, TAU0};
pub use state::{circuit_unitary, StateVector};
