//! Dense state-vector simulation.
//!
//! Qubit 0 is the most significant bit of the basis index, matching
//! `reqisc_qcircuit::embed`. Gates of any arity are applied by
//! gather–multiply–scatter over the amplitudes, so circuits never need their
//! full `4^n` unitary materialized.

use rand::Rng;
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::c64::{C64, ONE, ZERO};
use reqisc_qmath::CMat;

/// A normalized pure state on `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero(n: usize) -> Self {
        let mut amps = vec![ZERO; 1 << n];
        amps[0] = ONE;
        Self { n, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^n`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(index < (1 << n), "basis index out of range");
        let mut amps = vec![ZERO; 1 << n];
        amps[index] = ONE;
        Self { n, amps }
    }

    /// Builds a state from raw amplitudes (must have length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two(), "amplitude count must be 2^n");
        Self { n: len.trailing_zeros() as usize, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Borrows the amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Squared-magnitude distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn fidelity(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n, "width mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum::<C64>()
            .norm_sqr()
    }

    /// Applies a `2^k × 2^k` matrix to the listed qubits (first listed qubit
    /// most significant within the gate).
    ///
    /// # Panics
    ///
    /// Panics if the matrix size and qubit count disagree, or on repeated or
    /// out-of-range qubits.
    pub fn apply_matrix(&mut self, m: &CMat, qs: &[usize]) {
        let k = qs.len();
        assert_eq!(m.rows(), 1 << k, "matrix/qubit mismatch");
        for (i, &q) in qs.iter().enumerate() {
            assert!(q < self.n, "qubit {q} out of range");
            assert!(!qs[..i].contains(&q), "repeated qubit {q}");
        }
        let shifts: Vec<usize> = qs.iter().map(|&q| self.n - 1 - q).collect();
        // Iterate over all base indices whose gate-bit positions are zero.
        let mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let dim = 1usize << self.n;
        let mut gathered = vec![ZERO; 1 << k];
        let mut idx = vec![0usize; 1 << k];
        // Precompute the scatter offsets for each local index.
        let offsets: Vec<usize> = (0..(1 << k))
            .map(|i| {
                let mut off = 0usize;
                for (bi, &sh) in shifts.iter().enumerate() {
                    if (i >> (k - 1 - bi)) & 1 == 1 {
                        off |= 1 << sh;
                    }
                }
                off
            })
            .collect();
        let mut base = 0usize;
        while base < dim {
            if base & mask != 0 {
                // Skip runs where gate bits are set: advance to next clear.
                base += 1;
                continue;
            }
            for (i, &off) in offsets.iter().enumerate() {
                idx[i] = base | off;
                gathered[i] = self.amps[base | off];
            }
            for (i, &target) in idx.iter().enumerate() {
                let mut acc = ZERO;
                for (j, &g) in gathered.iter().enumerate() {
                    let v = m[(i, j)];
                    if v.re != 0.0 || v.im != 0.0 {
                        acc += v * g;
                    }
                }
                self.amps[target] = acc;
            }
            base += 1;
        }
    }

    /// Applies one gate.
    pub fn apply_gate(&mut self, g: &Gate) {
        self.apply_matrix(&g.matrix(), &g.qubits());
    }

    /// Runs a whole circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is wider than the state.
    pub fn run(&mut self, c: &Circuit) {
        assert!(c.num_qubits() <= self.n, "circuit wider than state");
        for g in c.gates() {
            self.apply_gate(g);
        }
    }

    /// Samples one basis state from the measurement distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// L2 norm (should be 1 for physical states).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Computes the full circuit unitary column-by-column via state-vector
/// runs — `O(2^n · gates · 2^k)` instead of dense `4^n` matrix products.
///
/// # Panics
///
/// Panics for registers wider than 14 qubits.
pub fn circuit_unitary(c: &Circuit) -> CMat {
    let n = c.num_qubits();
    assert!(n <= 14, "circuit_unitary materializes 4^n entries");
    let dim = 1usize << n;
    let mut u = CMat::zeros(dim, dim);
    for col in 0..dim {
        let mut sv = StateVector::basis(n, col);
        sv.run(c);
        for (row, &a) in sv.amplitudes().iter().enumerate() {
            u[(row, col)] = a;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reqisc_qmath::weyl::WeylCoord;

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero(5);
        assert!((sv.norm() - 1.0).abs() < 1e-15);
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let mut sv = StateVector::zero(2);
        sv.run(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
    }

    #[test]
    fn matches_dense_unitary() {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 2));
        c.push(Gate::Can(1, 3, WeylCoord::new(0.3, 0.2, 0.1)));
        c.push(Gate::Ccx(0, 1, 3));
        c.push(Gate::U3(2, 0.5, -0.3, 0.9));
        let dense = c.unitary();
        let fast = circuit_unitary(&c);
        assert!(fast.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn apply_matrix_respects_order() {
        // CX(1,0): control qubit 1, target qubit 0.
        let mut sv = StateVector::basis(2, 0b01); // q0=0, q1=1
        sv.apply_matrix(&reqisc_qmath::gates::cnot(), &[1, 0]);
        let p = sv.probabilities();
        assert!((p[0b11] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_preserves_norm() {
        let mut c = Circuit::new(3);
        for i in 0..3 {
            c.push(Gate::U3(i, 0.3 * i as f64 + 0.2, 0.1, -0.4));
        }
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::SqiSw(0, 2));
        let mut sv = StateVector::zero(3);
        sv.run(&c);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert!(a.fidelity(&b) < 1e-15);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let mut sv = StateVector::zero(1);
        sv.run(&c);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4000;
        let ones = (0..n).filter(|_| sv.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn rejects_repeated_qubits() {
        let mut sv = StateVector::zero(2);
        sv.apply_matrix(&reqisc_qmath::gates::cnot(), &[0, 0]);
    }
}
