//! Duration-scaled depolarizing noise (paper §6.7).
//!
//! The paper's fidelity experiment appends a two-qubit depolarizing channel
//! to every 2Q gate, with error rate proportional to the gate's pulse
//! duration: `p = p0 · τ/τ0` where `τ0 = π/√2 · g⁻¹` is the baseline CNOT
//! duration and `p0 = 0.001`. We realize the channel by Monte-Carlo
//! trajectories: after each noisy gate, with probability `p` a uniformly
//! random non-identity two-qubit Pauli is applied.

use crate::state::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qmath::gates::{pauli_x, pauli_y, pauli_z};
use reqisc_qmath::CMat;

/// Baseline CNOT pulse duration `π/√2` in units of `g⁻¹` (paper §6.1).
pub const TAU0: f64 = std::f64::consts::FRAC_PI_2 * std::f64::consts::SQRT_2;

/// Baseline depolarizing probability `p0` for a CNOT-duration gate.
pub const P0: f64 = 0.001;

/// A per-gate depolarizing noise model.
pub struct NoiseModel<'a> {
    /// Returns the depolarizing probability of a gate (0 disables noise).
    pub error_rate: Box<dyn Fn(&Gate) -> f64 + 'a>,
}

impl<'a> NoiseModel<'a> {
    /// The paper's duration-scaled model: `p = p0·τ/τ0` for multi-qubit
    /// gates, no error on 1Q gates. `dur` maps a gate to its pulse duration
    /// in `g⁻¹`.
    pub fn duration_scaled(dur: impl Fn(&Gate) -> f64 + 'a) -> Self {
        Self {
            error_rate: Box::new(move |g| {
                if g.arity() >= 2 {
                    P0 * dur(g) / TAU0
                } else {
                    0.0
                }
            }),
        }
    }

    /// A fixed-rate model: every multi-qubit gate has probability `p`.
    pub fn fixed(p: f64) -> Self {
        Self {
            error_rate: Box::new(move |g| if g.arity() >= 2 { p } else { 0.0 }),
        }
    }
}

fn pauli_on(which: usize) -> Option<CMat> {
    match which {
        0 => None,
        1 => Some(pauli_x()),
        2 => Some(pauli_y()),
        _ => Some(pauli_z()),
    }
}

/// Runs one noisy trajectory of `c` from `|0…0⟩` and returns the final
/// state.
pub fn run_trajectory(c: &Circuit, noise: &NoiseModel, rng: &mut StdRng) -> StateVector {
    let mut sv = StateVector::zero(c.num_qubits());
    for g in c.gates() {
        sv.apply_gate(g);
        let p = (noise.error_rate)(g);
        if p > 0.0 && rng.gen_range(0.0..1.0) < p {
            // Uniform non-identity Pauli pair on the first two qubits the
            // gate touches (standard two-qubit depolarizing channel).
            let qs = g.qubits();
            let (qa, qb) = (qs[0], qs[1]);
            let which = rng.gen_range(1usize..16);
            let (wa, wb) = (which / 4, which % 4);
            if let Some(pa) = pauli_on(wa) {
                sv.apply_matrix(&pa, &[qa]);
            }
            if let Some(pb) = pauli_on(wb) {
                sv.apply_matrix(&pb, &[qb]);
            }
        }
    }
    sv
}

/// Averages the measurement distribution over `trials` noisy trajectories.
pub fn noisy_distribution(c: &Circuit, noise: &NoiseModel, trials: usize, seed: u64) -> Vec<f64> {
    let dim = 1usize << c.num_qubits();
    let mut acc = vec![0.0f64; dim];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let sv = run_trajectory(c, noise, &mut rng);
        for (a, p) in acc.iter_mut().zip(sv.probabilities()) {
            *a += p;
        }
    }
    for a in acc.iter_mut() {
        *a /= trials as f64;
    }
    acc
}

/// The noiseless measurement distribution of `c` from `|0…0⟩`.
pub fn ideal_distribution(c: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::zero(c.num_qubits());
    sv.run(c);
    sv.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::H(0));
        for i in 1..n {
            c.push(Gate::Cx(i - 1, i));
        }
        c
    }

    #[test]
    fn zero_noise_matches_ideal() {
        let c = ghz(3);
        let noise = NoiseModel::fixed(0.0);
        let noisy = noisy_distribution(&c, &noise, 4, 7);
        let ideal = ideal_distribution(&c);
        for (a, b) in noisy.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_spreads_distribution() {
        let c = ghz(3);
        let noise = NoiseModel::fixed(0.5);
        let noisy = noisy_distribution(&c, &noise, 400, 11);
        // Ideal GHZ puts all mass on |000>, |111>; heavy noise must leak.
        let leaked: f64 = noisy
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != 7)
            .map(|(_, p)| p)
            .sum();
        assert!(leaked > 0.05, "expected leakage, got {leaked}");
        // Still a distribution.
        assert!((noisy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scaled_rates() {
        let nm = NoiseModel::duration_scaled(|_| TAU0);
        assert!(((nm.error_rate)(&Gate::Cx(0, 1)) - P0).abs() < 1e-15);
        assert_eq!((nm.error_rate)(&Gate::H(0)), 0.0);
        let nm2 = NoiseModel::duration_scaled(|_| TAU0 / 2.0);
        assert!(((nm2.error_rate)(&Gate::Cx(0, 1)) - P0 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn trajectories_are_reproducible() {
        let c = ghz(4);
        let noise = NoiseModel::fixed(0.05);
        let a = noisy_distribution(&c, &noise, 50, 42);
        let b = noisy_distribution(&c, &noise, 50, 42);
        assert_eq!(a, b);
    }
}
