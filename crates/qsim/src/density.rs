//! Exact density-matrix simulation of the depolarizing noise model.
//!
//! The Monte-Carlo trajectories in [`crate::noisy`] scale further, but for
//! small registers the channel can be applied exactly:
//! `ρ ← (1−p)·UρU† + p/15·Σ_{P≠I⊗I} (PU)ρ(PU)†` for each noisy 2Q gate.
//! Used to validate the trajectory sampler and for deterministic
//! small-instance fidelity numbers.

use crate::noisy::NoiseModel;
use reqisc_qcircuit::{embed, Circuit, Gate};
use reqisc_qmath::gates::{id2, pauli_x, pauli_y, pauli_z};
use reqisc_qmath::{CMat, C64};

/// A density matrix on `n` qubits.
#[derive(Debug, Clone)]
pub struct DensityMatrix {
    n: usize,
    rho: CMat,
}

impl DensityMatrix {
    /// `|0…0⟩⟨0…0|`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 7, "density-matrix simulation is exponential; use trajectories");
        let dim = 1usize << n;
        let mut rho = CMat::zeros(dim, dim);
        rho[(0, 0)] = reqisc_qmath::c64::ONE;
        Self { n, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Borrows the raw matrix.
    pub fn matrix(&self) -> &CMat {
        &self.rho
    }

    /// Applies a unitary gate exactly.
    pub fn apply_gate(&mut self, g: &Gate) {
        let u = embed(&g.matrix(), &g.qubits(), self.n);
        self.rho = u.mul_mat(&self.rho).mul_mat(&u.adjoint());
    }

    /// Applies the two-qubit depolarizing channel with probability `p` on
    /// the pair `(a, b)`.
    pub fn depolarize_pair(&mut self, a: usize, b: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let paulis = [id2(), pauli_x(), pauli_y(), pauli_z()];
        let mut mixed = CMat::zeros(self.rho.rows(), self.rho.cols());
        for (i, pa) in paulis.iter().enumerate() {
            for (j, pb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let op = embed(&pa.kron(pb), &[a, b], self.n);
                let term = op.mul_mat(&self.rho).mul_mat(&op.adjoint());
                mixed = &mixed + &term;
            }
        }
        self.rho = &self.rho.scale(C64::real(1.0 - p)) + &mixed.scale(C64::real(p / 15.0));
    }

    /// Runs a circuit under a noise model (channel after each noisy gate).
    pub fn run_noisy(&mut self, c: &Circuit, noise: &NoiseModel) {
        for g in c.gates() {
            self.apply_gate(g);
            let p = (noise.error_rate)(g);
            if p > 0.0 && g.arity() >= 2 {
                let qs = g.qubits();
                self.depolarize_pair(qs[0], qs[1], p);
            }
        }
    }

    /// Measurement distribution (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows()).map(|i| self.rho[(i, i)].re.max(0.0)).collect()
    }

    /// Trace (1 for valid states).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }
}

/// Exact noisy measurement distribution from `|0…0⟩`.
pub fn exact_noisy_distribution(c: &Circuit, noise: &NoiseModel) -> Vec<f64> {
    let mut dm = DensityMatrix::zero(c.num_qubits());
    dm.run_noisy(c, noise);
    dm.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noisy::{ideal_distribution, noisy_distribution};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::H(0));
        for i in 1..n {
            c.push(Gate::Cx(i - 1, i));
        }
        c
    }

    #[test]
    fn noiseless_matches_statevector() {
        let c = ghz(3);
        let noise = NoiseModel::fixed(0.0);
        let exact = exact_noisy_distribution(&c, &noise);
        let ideal = ideal_distribution(&c);
        for (a, b) in exact.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_preserved_under_noise() {
        let c = ghz(4);
        let noise = NoiseModel::fixed(0.2);
        let mut dm = DensityMatrix::zero(4);
        dm.run_noisy(&c, &noise);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        let p = dm.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trajectories_converge_to_exact() {
        let c = ghz(3);
        let noise = NoiseModel::fixed(0.1);
        let exact = exact_noisy_distribution(&c, &noise);
        let noise2 = NoiseModel::fixed(0.1);
        let mc = noisy_distribution(&c, &noise2, 3000, 31);
        let tv: f64 = exact
            .iter()
            .zip(&mc)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.03, "trajectories diverge from exact channel: TV = {tv}");
    }

    #[test]
    fn full_depolarizing_mixes() {
        // p = 1 on every gate of a 2-qubit circuit drives the pair toward
        // the maximally mixed state.
        let mut c = Circuit::new(2);
        for _ in 0..6 {
            c.push(Gate::Cx(0, 1));
        }
        let noise = NoiseModel::fixed(1.0);
        let p = exact_noisy_distribution(&c, &noise);
        for v in p {
            assert!((v - 0.25).abs() < 0.05, "not mixed: {v}");
        }
    }
}
