//! Pre-synthesized 3Q IR template library (paper §5.2.2).
//!
//! Type-I (arithmetic-logic) programs are built from a small set of 3Q
//! intermediate representations — Toffoli, Peres, the MAJ/UMA adders of
//! Cuccaro et al., controlled-SWAP — so the compiler pre-synthesizes each
//! IR's minimal-#SU(4) realization once, derives its *equivalent circuit
//! class* (ECC) variants from self-invertibility and control-bit
//! permutability, and then assembles programs from the library with
//! constant per-gate cost (and constant calibration overhead).

// lint:allow-file(tolerance-literal, template canonicalization guards local to synthesis)
use crate::search::{synthesize, SearchOptions};
use crate::sweep::BlockCircuit;
use reqisc_qcircuit::{embed, Circuit, Gate};
use reqisc_qmath::CMat;
use std::collections::HashMap;

/// One pre-synthesized realization of a 3Q IR on wires `(0, 1, 2)`.
#[derive(Debug, Clone)]
pub struct Template {
    /// The SU(4)-block circuit realizing the IR (up to global phase).
    pub circuit: BlockCircuit,
    /// The wire permutation applied to the IR before synthesis; entry `i`
    /// is the template wire carrying IR wire `i`.
    pub wire_perm: [usize; 3],
    /// Whether this variant is the *reverse* (inverse-order daggered
    /// blocks) of the base synthesis — valid only for self-inverse IRs.
    pub reversed: bool,
}

impl Template {
    /// The qubit pair of the first block (for fusion with a predecessor).
    pub fn first_pair(&self) -> Option<(usize, usize)> {
        self.circuit.blocks.first().map(|(p, _)| *p)
    }

    /// The qubit pair of the last block (for fusion with a successor).
    pub fn last_pair(&self) -> Option<(usize, usize)> {
        self.circuit.blocks.last().map(|(p, _)| *p)
    }
}

/// A named 3Q IR with all its ECC template variants.
#[derive(Debug, Clone)]
pub struct IrEntry {
    /// Canonical 8×8 unitary of the IR.
    pub unitary: CMat,
    /// All usable template variants (base + ECC).
    pub variants: Vec<Template>,
}

/// The pre-synthesized template library.
#[derive(Debug, Clone, Default)]
pub struct TemplateLibrary {
    entries: HashMap<String, IrEntry>,
}

/// The built-in 3Q IRs of Type-I programs, as circuits on wires (0,1,2).
pub fn builtin_irs() -> Vec<(String, Circuit)> {
    let mk = |gates: Vec<Gate>| Circuit::from_gates(3, gates);
    vec![
        ("ccx".to_string(), mk(vec![Gate::Ccx(0, 1, 2)])),
        ("peres".to_string(), mk(vec![Gate::Peres(0, 1, 2)])),
        // MAJ of Cuccaro et al.: CX(2,1); CX(2,0); CCX(0,1,2).
        (
            "maj".to_string(),
            mk(vec![Gate::Cx(2, 1), Gate::Cx(2, 0), Gate::Ccx(0, 1, 2)]),
        ),
        // UMA (2-CNOT form): CCX(0,1,2); CX(2,0); CX(0,1).
        (
            "uma".to_string(),
            mk(vec![Gate::Ccx(0, 1, 2), Gate::Cx(2, 0), Gate::Cx(0, 1)]),
        ),
        // Controlled-SWAP (Fredkin).
        (
            "cswap".to_string(),
            mk(vec![Gate::Cx(2, 1), Gate::Ccx(0, 1, 2), Gate::Cx(2, 1)]),
        ),
    ]
}

impl TemplateLibrary {
    /// Builds a library by pre-synthesizing every IR in `irs` and deriving
    /// ECC variants. This is the paper's "pre-synthesis stage"; it runs
    /// once per (program suite, ISA).
    pub fn build(irs: &[(String, Circuit)], opts: &SearchOptions) -> Self {
        let mut entries = HashMap::new();
        for (name, circ) in irs {
            assert_eq!(circ.num_qubits(), 3, "IR '{name}' must be a 3Q circuit");
            let u = circ.unitary();
            let base = match synthesize(&u, 3, opts) {
                Some(c) => c,
                None => continue, // unsynthesizable IR: callers fall back
            };
            let mut variants = vec![Template {
                circuit: base.clone(),
                wire_perm: [0, 1, 2],
                reversed: false,
            }];
            // Control-bit permutability: wire permutations σ with
            // P_σ† U P_σ = U give alternative wire assignments (§5.2.2).
            for perm in wire_permutations() {
                if perm == [0, 1, 2] {
                    continue;
                }
                if unitary_invariant_under(&u, &perm) {
                    variants.push(Template {
                        circuit: permute_blocks(&base, &perm),
                        wire_perm: perm,
                        reversed: false,
                    });
                }
            }
            // Self-invertibility: U† = U (up to phase) lets the reversed,
            // daggered block sequence serve as another variant.
            if self_inverse(&u) {
                let base_variants: Vec<Template> = variants.clone();
                for t in base_variants {
                    let mut blocks: Vec<((usize, usize), CMat)> = t
                        .circuit
                        .blocks
                        .iter()
                        .rev()
                        .map(|(p, b)| (*p, b.adjoint()))
                        .collect();
                    // Keep the no-immediate-repeat invariant (it holds
                    // automatically under reversal).
                    blocks.dedup_by(|a, b| {
                        if a.0 == b.0 {
                            b.1 = a.1.mul_mat(&b.1);
                            true
                        } else {
                            false
                        }
                    });
                    variants.push(Template {
                        circuit: BlockCircuit { num_qubits: 3, blocks },
                        wire_perm: t.wire_perm,
                        reversed: true,
                    });
                }
            }
            entries.insert(name.clone(), IrEntry { unitary: u, variants });
        }
        Self { entries }
    }

    /// Builds the built-in library (CCX, Peres, MAJ, UMA, CSWAP).
    pub fn builtin(opts: &SearchOptions) -> Self {
        Self::build(&builtin_irs(), opts)
    }

    /// Looks up an IR by name.
    pub fn get(&self, name: &str) -> Option<&IrEntry> {
        self.entries.get(name)
    }

    /// Number of IRs in the library.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &IrEntry)> {
        self.entries.iter()
    }

    /// Total distinct SU(4) blocks across the library — the calibration
    /// cost of template-based compilation (paper §5.3.1).
    pub fn distinct_block_count(&self, tol: f64) -> usize {
        let mut distinct: Vec<CMat> = Vec::new();
        for e in self.entries.values() {
            for t in &e.variants {
                for (_, b) in &t.circuit.blocks {
                    if !distinct.iter().any(|d| d.approx_eq(b, tol)) {
                        distinct.push(b.clone());
                    }
                }
            }
        }
        distinct.len()
    }
}

fn wire_permutations() -> [[usize; 3]; 6] {
    [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

/// 8×8 permutation operator sending IR wire `i` to wire `perm[i]`.
fn perm_operator(perm: &[usize; 3]) -> CMat {
    let mut p = CMat::zeros(8, 8);
    for src in 0..8usize {
        let bits = [(src >> 2) & 1, (src >> 1) & 1, src & 1];
        let mut dst = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            dst |= b << (2 - perm[i]);
        }
        p[(dst, src)] = reqisc_qmath::c64::ONE;
    }
    p
}

fn unitary_invariant_under(u: &CMat, perm: &[usize; 3]) -> bool {
    let p = perm_operator(perm);
    p.adjoint().mul_mat(u).mul_mat(&p).approx_eq(u, 1e-9)
}

fn self_inverse(u: &CMat) -> bool {
    let sq = u.mul_mat(u);
    let dim = sq.rows() as f64;
    (1.0 - sq.trace().abs() / dim) < 1e-9 && {
        // Ensure it's identity up to phase, not merely trace-aligned.
        let phase = sq.trace().unit();
        sq.approx_eq(&CMat::identity(sq.rows()).scale(phase), 1e-8)
    }
}

fn permute_blocks(base: &BlockCircuit, perm: &[usize; 3]) -> BlockCircuit {
    BlockCircuit {
        num_qubits: 3,
        blocks: base
            .blocks
            .iter()
            .map(|((a, b), g)| ((perm[*a], perm[*b]), g.clone()))
            .collect(),
    }
}

/// Verifies that a template reproduces `ir_unitary` up to global phase.
pub fn template_matches(t: &Template, ir_unitary: &CMat) -> bool {
    let u = t.circuit.unitary();
    let dim = u.rows() as f64;
    (1.0 - ir_unitary.hs_inner(&u).abs() / dim) < 1e-8
}

const _: fn(&CMat, &[usize], usize) -> CMat = embed;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SearchOptions {
        // Smaller search budget for test speed; CCX-family IRs synthesize
        // comfortably within these limits.
        let mut o = SearchOptions::default();
        o.max_blocks = 6;
        o.sweep.restarts = 3;
        o.sweep.max_sweeps = 200;
        o
    }

    #[test]
    fn builtin_library_synthesizes_all_irs() {
        let lib = TemplateLibrary::builtin(&quick_opts());
        assert_eq!(lib.len(), 5, "all built-in IRs must synthesize");
        for (name, entry) in lib.iter() {
            assert!(!entry.variants.is_empty());
            for t in &entry.variants {
                assert!(
                    template_matches(t, &entry.unitary),
                    "variant of {name} (perm {:?}, rev {}) does not match",
                    t.wire_perm,
                    t.reversed
                );
            }
        }
    }

    #[test]
    fn ccx_has_control_permuted_and_reversed_variants() {
        let lib = TemplateLibrary::builtin(&quick_opts());
        let e = lib.get("ccx").unwrap();
        // CCX is invariant under swapping its two controls and is
        // self-inverse → at least base + perm + 2 reversed variants.
        assert!(
            e.variants.iter().any(|t| t.wire_perm == [1, 0, 2]),
            "missing control-swap variant"
        );
        assert!(e.variants.iter().any(|t| t.reversed), "missing reversed variant");
        assert!(e.variants.len() >= 4);
    }

    #[test]
    fn peres_is_not_self_inverse() {
        let lib = TemplateLibrary::builtin(&quick_opts());
        let e = lib.get("peres").unwrap();
        assert!(e.variants.iter().all(|t| !t.reversed));
    }

    #[test]
    fn ccx_template_beats_cnot_count() {
        let lib = TemplateLibrary::builtin(&quick_opts());
        let e = lib.get("ccx").unwrap();
        let min_blocks = e.variants.iter().map(|t| t.circuit.len()).min().unwrap();
        assert!(min_blocks <= 5, "CCX template has {min_blocks} blocks; 6-CNOT baseline");
    }

    #[test]
    fn library_has_bounded_distinct_blocks() {
        let lib = TemplateLibrary::builtin(&quick_opts());
        let n = lib.distinct_block_count(1e-9);
        // Finite and small — the §5.3.1 calibration argument.
        assert!(n > 0 && n < 100, "distinct blocks = {n}");
    }

    #[test]
    fn perm_operator_is_permutation() {
        for perm in wire_permutations() {
            let p = perm_operator(&perm);
            assert!(p.is_unitary(1e-12));
        }
        // Explicit spot check: perm [1,0,2] swaps the first two wires.
        let p = perm_operator(&[1, 0, 2]);
        // |100> (wire0=1) → wire1=1 → |010>.
        assert!((p[(0b010, 0b100)].re - 1.0).abs() < 1e-15);
    }
}
