//! Fixed-basis decomposition for variational workloads (paper §5.3.1).
//!
//! Variational programs would require continual recalibration of their
//! parameter-dependent SU(4)s. Instead, the paper shifts the reconfiguration
//! into 1Q gates (calibration-free via the PMW phase-shift protocol) by
//! decomposing every SU(4) into a *fixed* 2Q basis gate (SQiSW or B)
//! interleaved with parameterized 1Q layers. This module finds such
//! decompositions numerically: the interior local layers are optimized by
//! Nelder–Mead on the Weyl-coordinate residual, and the exact outer locals
//! come from two canonical decompositions.

// lint:allow-file(tolerance-literal, template-matching score thresholds local to synthesis search)
use reqisc_qcircuit::embed;
use reqisc_qmath::gates::u3;
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{kak_decompose, weyl_coords, CMat};

/// A fixed-basis decomposition:
/// `target = slots…` where each slot is a 1Q gate or the basis gate.
#[derive(Debug, Clone)]
pub struct BasisDecomposition {
    /// `(qubits, matrix)` in execution order; 2Q entries are the basis.
    pub slots: Vec<(Vec<usize>, CMat)>,
    /// Number of basis-gate applications.
    pub basis_count: usize,
    /// Final process infidelity against the target.
    pub infidelity: f64,
}

impl BasisDecomposition {
    /// Multiplies the slots back into a 4×4 unitary.
    pub fn unitary(&self) -> CMat {
        let mut u = CMat::identity(4);
        for (qs, g) in &self.slots {
            u = embed(g, qs, 2).mul_mat(&u);
        }
        u
    }
}

/// Decomposes `target` into the minimal number of `basis` applications
/// (≤ `max_count`) with interleaved 1Q gates.
///
/// Returns `None` when no count up to `max_count` reaches coordinate
/// residual `1e-8` (for SQiSW and B, 3 applications always suffice for any
/// SU(4); 2 suffice on a large sub-polytope).
pub fn synthesize_with_basis(
    target: &CMat,
    basis: &CMat,
    max_count: usize,
) -> Option<BasisDecomposition> {
    let tw = weyl_coords(target).ok()?;
    let bw = weyl_coords(basis).ok()?;
    // Zero applications: local target.
    if tw.l1_norm() < 1e-9 {
        let k = kak_decompose(target).ok()?;
        let slots = vec![
            (vec![0usize], k.a1.mul_mat(&k.b1).scale(k.phase)),
            (vec![1usize], k.a2.mul_mat(&k.b2)),
        ];
        return finish(target, slots, 0);
    }
    // One application: same Weyl class as the basis gate.
    if tw.approx_eq(&bw, 1e-9) {
        let core = vec![(vec![0usize, 1], basis.clone())];
        let slots = dress(target, core)?;
        return finish(target, slots, 1);
    }
    for count in 2..=max_count {
        if let Some(core) = search_core(&tw, basis, count) {
            if let Some(slots) = dress(target, core) {
                return finish(target, slots, count);
            }
        }
    }
    None
}

fn finish(
    target: &CMat,
    slots: Vec<(Vec<usize>, CMat)>,
    basis_count: usize,
) -> Option<BasisDecomposition> {
    let d = BasisDecomposition { slots, basis_count, infidelity: 0.0 };
    let inf = (1.0 - target.hs_inner(&d.unitary()).abs() / 4.0).max(0.0);
    (inf < 1e-7).then_some(BasisDecomposition { infidelity: inf, ..d })
}

/// Builds `basis · L_{k-1} · … · L_1 · basis` with interior local layers
/// parameterized as `u3⊗u3`, searching the layer angles so the product's
/// Weyl coordinates match `tw`.
fn search_core(tw: &WeylCoord, basis: &CMat, count: usize) -> Option<Vec<(Vec<usize>, CMat)>> {
    let layers = count - 1;
    let dim = 6 * layers;
    let build = |params: &[f64]| -> Vec<(Vec<usize>, CMat)> {
        let mut slots: Vec<(Vec<usize>, CMat)> = vec![(vec![0, 1], basis.clone())];
        for l in 0..layers {
            let p = &params[6 * l..6 * l + 6];
            slots.push((vec![0], u3(p[0], p[1], p[2])));
            slots.push((vec![1], u3(p[3], p[4], p[5])));
            slots.push((vec![0, 1], basis.clone()));
        }
        slots
    };
    let coords_of = |params: &[f64]| -> Option<WeylCoord> {
        let mut u = CMat::identity(4);
        for (qs, g) in build(params) {
            u = embed(&g, &qs, 2).mul_mat(&u);
        }
        weyl_coords(&u).ok()
    };
    let objective = |params: &[f64]| -> f64 {
        coords_of(params).map_or(1e3, |c| c.dist(tw))
    };
    // Multi-start Nelder–Mead over the layer angles; the budget grows with
    // the dimension (3-application cores are a 12-dimensional search).
    let n_starts = 8 + 8 * layers;
    let iters = 800 + 900 * layers;
    let mut starts: Vec<Vec<f64>> = vec![vec![0.0; dim]];
    starts.extend((0..n_starts).map(|s| {
        (0..dim)
            .map(|i| {
                // Deterministic quasi-random starting angles.
                let x = ((s * dim + i + 1) as f64 * 0.618_033_988_75).fract();
                (x - 0.5) * std::f64::consts::PI * 2.0
            })
            .collect::<Vec<f64>>()
    }));
    let mut best: Option<(Vec<f64>, f64)> = None;
    for s in starts {
        let (p0, r0) = nelder_mead(&objective, &s, 0.4, iters);
        // Polish the most promising basins with a tighter restart.
        let (p, r) = if r0 < 1e-2 && r0 > 1e-10 {
            nelder_mead(&objective, &p0, 0.02, iters)
        } else {
            (p0, r0)
        };
        if best.as_ref().is_none_or(|(_, br)| r < *br) {
            best = Some((p, r));
        }
        if best.as_ref().unwrap().1 < 1e-10 {
            break;
        }
    }
    let (p, r) = best?;
    (r < 1e-8).then(|| build(&p))
}

/// Dresses a core circuit with exact outer 1Q gates so it equals `target`.
fn dress(target: &CMat, core: Vec<(Vec<usize>, CMat)>) -> Option<Vec<(Vec<usize>, CMat)>> {
    let mut core_u = CMat::identity(4);
    for (qs, g) in &core {
        core_u = embed(g, qs, 2).mul_mat(&core_u);
    }
    let kt = kak_decompose(target).ok()?;
    let kc = kak_decompose(&core_u).ok()?;
    if kt.coords.dist(&kc.coords) > 1e-6 {
        return None;
    }
    let phase = kt.phase * kc.phase.recip();
    let a1 = kt.a1.mul_mat(&kc.a1.adjoint()).scale(phase);
    let a2 = kt.a2.mul_mat(&kc.a2.adjoint());
    let b1 = kc.b1.adjoint().mul_mat(&kt.b1);
    let b2 = kc.b2.adjoint().mul_mat(&kt.b2);
    let mut slots: Vec<(Vec<usize>, CMat)> = vec![(vec![0], b1), (vec![1], b2)];
    slots.extend(core);
    slots.push((vec![0], a1));
    slots.push((vec![1], a2));
    Some(slots)
}

/// Minimal n-dimensional Nelder–Mead.
fn nelder_mead(
    f: &dyn Fn(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iter: usize,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), f(x0)));
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += step;
        let v = f(&p);
        simplex.push((p, v));
    }
    for _ in 0..max_iter {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if simplex[0].1 < 1e-12 {
            break;
        }
        let worst = simplex[n].clone();
        let mut cen = vec![0.0; n];
        for s in simplex.iter().take(n) {
            for (c, v) in cen.iter_mut().zip(&s.0) {
                *c += v / n as f64;
            }
        }
        let combine = |alpha: f64| -> Vec<f64> {
            cen.iter()
                .zip(&worst.0)
                .map(|(c, w)| c + alpha * (c - w))
                .collect()
        };
        let refl = combine(1.0);
        let fr = f(&refl);
        if fr < simplex[0].1 {
            let exp = combine(2.0);
            let fe = f(&exp);
            simplex[n] = if fe < fr { (exp, fe) } else { (refl, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (refl, fr);
        } else {
            let con = combine(-0.5);
            let fc = f(&con);
            if fc < worst.1 {
                simplex[n] = (con, fc);
            } else {
                let best = simplex[0].0.clone();
                for s in simplex.iter_mut().skip(1) {
                    for (x, b) in s.0.iter_mut().zip(&best) {
                        *x = b + 0.5 * (*x - b);
                    }
                    s.1 = f(&s.0);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let (p, v) = simplex.remove(0);
    (p, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;
    use reqisc_qmath::haar_su4;

    #[test]
    fn local_target_needs_zero_basis_gates() {
        let t = qg::hadamard().kron(&qg::t_gate());
        let d = synthesize_with_basis(&t, &qg::sqisw(), 3).unwrap();
        assert_eq!(d.basis_count, 0);
        assert!(d.infidelity < 1e-9);
    }

    #[test]
    fn sqisw_class_needs_one() {
        // Anything locally equivalent to SQiSW itself.
        let t = qg::hadamard()
            .kron(&qg::t_gate())
            .mul_mat(&qg::sqisw())
            .mul_mat(&qg::s_gate().kron(&qg::hadamard()));
        let d = synthesize_with_basis(&t, &qg::sqisw(), 3).unwrap();
        assert_eq!(d.basis_count, 1);
        assert!(d.infidelity < 1e-8);
    }

    #[test]
    fn cnot_needs_two_sqisw() {
        // Huang et al.: CNOT is inside the 2-SQiSW polytope.
        let d = synthesize_with_basis(&qg::cnot(), &qg::sqisw(), 3).unwrap();
        assert_eq!(d.basis_count, 2);
        assert!(d.infidelity < 1e-8);
    }

    #[test]
    fn swap_needs_three_sqisw() {
        // SWAP lies outside the 2-SQiSW polytope.
        let d = synthesize_with_basis(&qg::swap(), &qg::sqisw(), 3).unwrap();
        assert_eq!(d.basis_count, 3);
        assert!(d.infidelity < 1e-8);
    }

    #[test]
    fn haar_random_within_three_sqisw() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let t = haar_su4(&mut rng);
            let d = synthesize_with_basis(&t, &qg::sqisw(), 3)
                .expect("3 SQiSW suffice for any SU(4)");
            assert!(d.basis_count <= 3);
            assert!(d.infidelity < 1e-7, "infidelity {}", d.infidelity);
        }
    }

    #[test]
    fn b_gate_basis_needs_two_for_haar() {
        use rand::SeedableRng;
        // Zhang et al.: the B gate synthesizes any SU(4) in 2 applications.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let t = haar_su4(&mut rng);
        let d = synthesize_with_basis(&t, &qg::b_gate(), 3).unwrap();
        assert!(d.basis_count <= 2, "B-gate count {}", d.basis_count);
        assert!(d.infidelity < 1e-7);
    }
}
