//! Environment-sweep instantiation of SU(4)-block circuits.
//!
//! Given a target `2^n × 2^n` unitary and a fixed *structure* (an ordered
//! list of qubit pairs, each carrying one arbitrary SU(4) block), the sweep
//! alternately re-optimizes each block in closed form: with all other
//! blocks fixed, the fidelity `Re Tr(U†·C)` is linear in the block, and the
//! optimal block is the unitary polar factor of its "environment" matrix.
//! This is the numerical engine behind the paper's approximate synthesis
//! (§5.1.1), reaching machine-precision infidelity when the structure is
//! expressive enough.

// lint:allow-file(tolerance-literal, sweep dedup epsilon local to synthesis)
use rand::rngs::StdRng;
use rand::SeedableRng;
use reqisc_qcircuit::embed;
use reqisc_qmath::{haar_unitary, polar_unitary, CMat, C64};

/// An ordered list of qubit pairs, one per SU(4) block.
pub type Structure = Vec<(usize, usize)>;

/// A structure instantiated with concrete SU(4) blocks.
#[derive(Debug, Clone)]
pub struct BlockCircuit {
    /// Register width.
    pub num_qubits: usize,
    /// `(pair, block)` in execution order.
    pub blocks: Vec<((usize, usize), CMat)>,
}

impl BlockCircuit {
    /// The full unitary `G_{m-1}···G_0` of the block sequence.
    pub fn unitary(&self) -> CMat {
        let dim = 1usize << self.num_qubits;
        let mut u = CMat::identity(dim);
        for ((a, b), g) in &self.blocks {
            u = embed(g, &[*a, *b], self.num_qubits).mul_mat(&u);
        }
        u
    }

    /// Number of SU(4) blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the circuit has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Process infidelity `1 − |Tr(target†·C)|/2^n` against a target.
    pub fn infidelity(&self, target: &CMat) -> f64 {
        let dim = 1usize << self.num_qubits;
        (1.0 - target.hs_inner(&self.unitary()).abs() / dim as f64).max(0.0)
    }

    /// Encodes the block circuit for the persistent compile store
    /// (deterministic, bit-exact — see `reqisc_qmath::bytes`).
    pub fn encode_into(&self, w: &mut reqisc_qmath::ByteWriter) {
        w.put_usize(self.num_qubits);
        w.put_usize(self.blocks.len());
        for ((a, b), m) in &self.blocks {
            w.put_usize(*a);
            w.put_usize(*b);
            reqisc_qmath::bytes::write_cmat(w, m);
        }
    }

    /// Decodes a block circuit, validating pair indices against the
    /// declared width.
    ///
    /// # Errors
    ///
    /// [`reqisc_qmath::CodecError`] on truncation or out-of-range qubits.
    pub fn decode_from(
        r: &mut reqisc_qmath::ByteReader<'_>,
    ) -> Result<Self, reqisc_qmath::CodecError> {
        let num_qubits = r.get_usize()?;
        if num_qubits > 64 {
            return Err(reqisc_qmath::CodecError::new(format!(
                "implausible block-circuit width {num_qubits}"
            )));
        }
        let n = r.get_count(16)?;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.get_usize()?;
            let b = r.get_usize()?;
            if a >= num_qubits || b >= num_qubits || a == b {
                return Err(reqisc_qmath::CodecError::new(format!(
                    "block pair ({a}, {b}) invalid for width {num_qubits}"
                )));
            }
            let m = reqisc_qmath::bytes::read_cmat(r)?;
            if m.rows() != 4 || m.cols() != 4 {
                return Err(reqisc_qmath::CodecError::new("SU(4) block must be 4x4"));
            }
            blocks.push(((a, b), m));
        }
        Ok(Self { num_qubits, blocks })
    }
}

/// Result of one instantiation attempt.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The optimized blocks.
    pub circuit: BlockCircuit,
    /// Final process infidelity against the target.
    pub infidelity: f64,
    /// Sweeps executed.
    pub sweeps: usize,
}

/// Options for [`instantiate`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Maximum alternating sweeps per restart.
    pub max_sweeps: usize,
    /// Stop when infidelity falls below this.
    pub target_infidelity: f64,
    /// Random restarts (the first start is always identity blocks).
    pub restarts: usize,
    /// RNG seed for the random restarts.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self { max_sweeps: 300, target_infidelity: 1e-11, restarts: 4, seed: 7 }
    }
}

/// Optimizes the blocks of `structure` to approximate `target` on
/// `num_qubits` qubits.
///
/// # Panics
///
/// Panics if `target` is not `2^num_qubits`-dimensional or a pair index is
/// out of range.
pub fn instantiate(
    target: &CMat,
    structure: &[(usize, usize)],
    num_qubits: usize,
    opts: &SweepOptions,
) -> SweepResult {
    let dim = 1usize << num_qubits;
    assert_eq!(target.rows(), dim, "target dimension mismatch");
    for &(a, b) in structure {
        assert!(a < num_qubits && b < num_qubits && a != b, "bad pair ({a},{b})");
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best: Option<SweepResult> = None;
    for restart in 0..=opts.restarts {
        let init: Vec<CMat> = if restart == 0 {
            vec![CMat::identity(4); structure.len()]
        } else {
            (0..structure.len()).map(|_| haar_unitary(4, &mut rng)).collect()
        };
        let r = sweep_once(target, structure, num_qubits, init, opts);
        let better = best.as_ref().is_none_or(|b| r.infidelity < b.infidelity);
        if better {
            best = Some(r);
        }
        if best.as_ref().unwrap().infidelity <= opts.target_infidelity {
            break;
        }
    }
    best.expect("at least one restart ran")
}

fn sweep_once(
    target: &CMat,
    structure: &[(usize, usize)],
    num_qubits: usize,
    mut blocks: Vec<CMat>,
    opts: &SweepOptions,
) -> SweepResult {
    let dim = 1usize << num_qubits;
    let m = structure.len();
    let udag = target.adjoint();
    let mut sweeps = 0;
    let mut last = f64::INFINITY;
    for s in 0..opts.max_sweeps {
        sweeps = s + 1;
        // Prefix products R_k = G_{k-1}···G_0 and suffixes L_k = G_{m-1}···G_{k+1}.
        let mut prefix = vec![CMat::identity(dim)];
        for k in 0..m {
            let g = embed(&blocks[k], &[structure[k].0, structure[k].1], num_qubits);
            prefix.push(g.mul_mat(&prefix[k]));
        }
        let mut suffix = vec![CMat::identity(dim); m + 1];
        for k in (0..m).rev() {
            let g = embed(&blocks[k], &[structure[k].0, structure[k].1], num_qubits);
            suffix[k] = suffix[k + 1].mul_mat(&g);
        }
        for k in 0..m {
            // M = R_k · U† · L_k ; environment N_ij = Σ_ctx M[(ctx,j)][(ctx,i)].
            let mmat = prefix[k].mul_mat(&udag).mul_mat(&suffix[k + 1]);
            let env = partial_trace_env(&mmat, structure[k], num_qubits);
            // Optimal block maximizing Re Tr(B·envᵀ) = Re Tr((conj(env))†·B):
            // the unitary polar factor of conj(env).
            blocks[k] = polar_unitary(&env.conj());
            // Refresh prefix for subsequent blocks in this sweep.
            let g = embed(&blocks[k], &[structure[k].0, structure[k].1], num_qubits);
            prefix[k + 1] = g.mul_mat(&prefix[k]);
            // Suffixes for earlier indices are unused for j > k in this
            // sweep, so only prefix needs the refresh.
        }
        // Recompute suffixes lazily next sweep; track convergence.
        let c = BlockCircuit {
            num_qubits,
            blocks: structure.iter().copied().zip(blocks.iter().cloned()).collect(),
        };
        let inf = c.infidelity(target);
        if inf <= opts.target_infidelity || (last - inf).abs() < 1e-16 {
            return SweepResult { circuit: c, infidelity: inf, sweeps };
        }
        last = inf;
    }
    let c = BlockCircuit {
        num_qubits,
        blocks: structure.iter().copied().zip(blocks.iter().cloned()).collect(),
    };
    let inf = c.infidelity(target);
    SweepResult { circuit: c, infidelity: inf, sweeps }
}

/// Environment of a block: `N[i][j] = Σ_ctx M[(ctx,j)][(ctx,i)]` so that
/// `Tr(emb(B)·M) = Tr(B·Nᵀ) = Σ_ij B_ij·N_ij`.
fn partial_trace_env(m: &CMat, pair: (usize, usize), num_qubits: usize) -> CMat {
    let n = num_qubits;
    let shifts = [n - 1 - pair.0, n - 1 - pair.1];
    let rest: Vec<usize> = (0..n)
        .filter(|&q| q != pair.0 && q != pair.1)
        .map(|q| n - 1 - q)
        .collect();
    let mut env = CMat::zeros(4, 4);
    for ctx in 0..(1usize << rest.len()) {
        let mut base = 0usize;
        for (bi, &sh) in rest.iter().enumerate() {
            if (ctx >> bi) & 1 == 1 {
                base |= 1 << sh;
            }
        }
        for i in 0..4usize {
            let row_i = base
                | (((i >> 1) & 1) << shifts[0])
                | ((i & 1) << shifts[1]);
            for j in 0..4usize {
                let row_j = base
                    | (((j >> 1) & 1) << shifts[0])
                    | ((j & 1) << shifts[1]);
                env[(i, j)] += m[(row_j, row_i)];
            }
        }
    }
    env
}

const _: C64 = reqisc_qmath::c64::ONE;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use reqisc_qmath::gates as qg;

    #[test]
    fn single_block_recovers_su4_target() {
        // A 2Q target with a single block must reach machine precision in
        // one polar update.
        let mut rng = StdRng::seed_from_u64(3);
        let target = haar_unitary(4, &mut rng);
        let r = instantiate(&target, &[(0, 1)], 2, &SweepOptions::default());
        assert!(r.infidelity < 1e-12, "infidelity {}", r.infidelity);
    }

    #[test]
    fn product_of_two_blocks_on_3q() {
        // Target built from a known 2-block structure is exactly recovered.
        let mut rng = StdRng::seed_from_u64(5);
        let g1 = haar_unitary(4, &mut rng);
        let g2 = haar_unitary(4, &mut rng);
        let target = embed(&g2, &[1, 2], 3).mul_mat(&embed(&g1, &[0, 1], 3));
        let r = instantiate(&target, &[(0, 1), (1, 2)], 3, &SweepOptions::default());
        assert!(r.infidelity < 1e-10, "infidelity {}", r.infidelity);
    }

    #[test]
    fn ccx_with_five_blocks() {
        // Toffoli is synthesizable with 5 arbitrary 2Q gates.
        let mut c = reqisc_qcircuit::Circuit::new(3);
        c.push(reqisc_qcircuit::Gate::Ccx(0, 1, 2));
        let target = c.unitary();
        let structure = vec![(1, 2), (0, 2), (1, 2), (0, 2), (0, 1)];
        let r = instantiate(&target, &structure, 3, &SweepOptions::default());
        assert!(r.infidelity < 1e-9, "infidelity {}", r.infidelity);
        // The instantiated circuit reproduces CCX up to global phase.
        let diff = 1.0 - target.hs_inner(&r.circuit.unitary()).abs() / 8.0;
        assert!(diff < 1e-9);
    }

    #[test]
    fn infeasible_structure_reports_high_infidelity() {
        // One block on (0,1) cannot produce an entangler on (0,2).
        let target = embed(&qg::cnot(), &[0, 2], 3);
        let r = instantiate(&target, &[(0, 1)], 3, &SweepOptions::default());
        assert!(r.infidelity > 1e-3, "should not converge: {}", r.infidelity);
    }

    #[test]
    fn environment_gradient_consistency() {
        // Numerically verify: Tr(emb(B)·M) == Tr(B·Nᵀ) for random inputs.
        let mut rng = StdRng::seed_from_u64(11);
        let m = CMat::from_fn(8, 8, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let b = haar_unitary(4, &mut rng);
        for pair in [(0usize, 1usize), (1, 2), (0, 2)] {
            let env = partial_trace_env(&m, pair, 3);
            let lhs = embed(&b, &[pair.0, pair.1], 3).mul_mat(&m).trace();
            let rhs: C64 = (0..4)
                .flat_map(|i| (0..4).map(move |j| (i, j)))
                .map(|(i, j)| b[(i, j)] * env[(i, j)])
                .sum();
            assert!(lhs.dist(rhs) < 1e-10, "env mismatch for {pair:?}");
        }
    }

    #[test]
    fn reversed_pair_order_in_structure() {
        // Pairs like (2, 0) (high qubit first) must work too.
        let mut rng = StdRng::seed_from_u64(13);
        let g = haar_unitary(4, &mut rng);
        let target = embed(&g, &[2, 0], 3);
        let r = instantiate(&target, &[(2, 0)], 3, &SweepOptions::default());
        assert!(r.infidelity < 1e-11);
    }

    #[test]
    fn block_circuit_codec_roundtrips_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let bc = BlockCircuit {
            num_qubits: 3,
            blocks: vec![
                ((0, 1), haar_unitary(4, &mut rng)),
                ((2, 1), haar_unitary(4, &mut rng)),
            ],
        };
        let mut w = reqisc_qmath::ByteWriter::new();
        bc.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = reqisc_qmath::ByteReader::new(&bytes);
        let back = BlockCircuit::decode_from(&mut r).expect("roundtrip");
        assert!(r.is_exhausted());
        assert_eq!(back.num_qubits, 3);
        assert_eq!(back.blocks.len(), 2);
        for (orig, dec) in bc.blocks.iter().zip(&back.blocks) {
            assert_eq!(orig.0, dec.0);
            assert_eq!(orig.1.fingerprint(), dec.1.fingerprint(), "blocks must be bit-exact");
        }
        // Truncations fail cleanly.
        for cut in 0..bytes.len() {
            assert!(
                BlockCircuit::decode_from(&mut reqisc_qmath::ByteReader::new(&bytes[..cut]))
                    .is_err(),
                "cut {cut}"
            );
        }
    }
}
