//! Skeleton instantiation: optimize the *local* layers of a circuit with a
//! fixed entangling skeleton (e.g. `k` CNOTs) to match a 2Q target.
//!
//! This powers the CNOT-based baselines' block re-synthesis: a consolidated
//! 2Q block with Weyl coordinates `(x, y, z)` needs 0–3 CNOTs
//! (Shende–Bullock–Markov), and the interleaved 1Q layers are found by the
//! same environment-sweep trick as [`crate::sweep`], with 2×2 polar
//! updates.

// lint:allow-file(tolerance-literal, skeleton-fit residual thresholds local to synthesis)
use rand::rngs::StdRng;
use rand::SeedableRng;
use reqisc_qcircuit::embed;
use reqisc_qmath::gates::cnot;
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{haar_unitary, polar_unitary, weyl_coords, CMat};

/// One slot of a skeleton: either a fixed gate or a free 1Q block.
#[derive(Debug, Clone)]
pub enum Slot {
    /// A fixed gate on the given qubits (matrix of matching dimension).
    Fixed(Vec<usize>, CMat),
    /// A free 1Q block on one qubit, optimized by the sweep.
    Free1Q(usize),
}

/// Result of a skeleton instantiation.
#[derive(Debug, Clone)]
pub struct SkeletonResult {
    /// All slots with the free blocks filled in (in execution order).
    pub slots: Vec<(Vec<usize>, CMat)>,
    /// Final process infidelity.
    pub infidelity: f64,
}

impl SkeletonResult {
    /// Full unitary of the instantiated skeleton.
    pub fn unitary(&self, num_qubits: usize) -> CMat {
        let mut u = CMat::identity(1 << num_qubits);
        for (qs, g) in &self.slots {
            u = embed(g, qs, num_qubits).mul_mat(&u);
        }
        u
    }
}

/// Optimizes the free 1Q blocks of `slots` to approximate `target`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn instantiate_skeleton(
    target: &CMat,
    slots: &[Slot],
    num_qubits: usize,
    restarts: usize,
    seed: u64,
) -> SkeletonResult {
    let dim = 1usize << num_qubits;
    assert_eq!(target.rows(), dim, "target dimension mismatch");
    let udag = target.adjoint();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<SkeletonResult> = None;
    for restart in 0..=restarts {
        // Materialize working blocks.
        let mut blocks: Vec<(Vec<usize>, CMat, bool)> = slots
            .iter()
            .map(|s| match s {
                Slot::Fixed(qs, m) => (qs.clone(), m.clone(), false),
                Slot::Free1Q(q) => {
                    let init = if restart == 0 {
                        CMat::identity(2)
                    } else {
                        haar_unitary(2, &mut rng)
                    };
                    (vec![*q], init, true)
                }
            })
            .collect();
        let m = blocks.len();
        let mut inf = f64::INFINITY;
        for _sweep in 0..400 {
            // Prefix/suffix products.
            let mut prefix = vec![CMat::identity(dim)];
            for (qs, g, _) in blocks.iter() {
                let e = embed(g, qs, num_qubits);
                let last = prefix.last().unwrap().clone();
                prefix.push(e.mul_mat(&last));
            }
            let mut suffix = vec![CMat::identity(dim); m + 1];
            for k in (0..m).rev() {
                let e = embed(&blocks[k].1, &blocks[k].0, num_qubits);
                suffix[k] = suffix[k + 1].mul_mat(&e);
            }
            for k in 0..m {
                if !blocks[k].2 {
                    continue;
                }
                let q = blocks[k].0[0];
                let mmat = prefix[k].mul_mat(&udag).mul_mat(&suffix[k + 1]);
                let env = env_1q(&mmat, q, num_qubits);
                blocks[k].1 = polar_unitary(&env.conj());
                let e = embed(&blocks[k].1, &blocks[k].0, num_qubits);
                prefix[k + 1] = e.mul_mat(&prefix[k]);
            }
            // Convergence check.
            let mut u = CMat::identity(dim);
            for (qs, g, _) in blocks.iter() {
                u = embed(g, qs, num_qubits).mul_mat(&u);
            }
            let now = (1.0 - target.hs_inner(&u).abs() / dim as f64).max(0.0);
            if (inf - now).abs() < 1e-16 || now < 1e-12 {
                inf = now;
                break;
            }
            inf = now;
        }
        let r = SkeletonResult {
            slots: blocks.into_iter().map(|(qs, g, _)| (qs, g)).collect(),
            infidelity: inf,
        };
        let better = best.as_ref().is_none_or(|b| r.infidelity < b.infidelity);
        if better {
            best = Some(r);
        }
        if best.as_ref().unwrap().infidelity < 1e-10 {
            break;
        }
    }
    best.expect("at least one restart")
}

fn env_1q(m: &CMat, q: usize, num_qubits: usize) -> CMat {
    let n = num_qubits;
    let sh = n - 1 - q;
    let rest: Vec<usize> = (0..n).filter(|&qq| qq != q).map(|qq| n - 1 - qq).collect();
    let mut env = CMat::zeros(2, 2);
    for ctx in 0..(1usize << rest.len()) {
        let mut base = 0usize;
        for (bi, &s) in rest.iter().enumerate() {
            if (ctx >> bi) & 1 == 1 {
                base |= 1 << s;
            }
        }
        for i in 0..2usize {
            for j in 0..2usize {
                env[(i, j)] += m[(base | (j << sh), base | (i << sh))];
            }
        }
    }
    env
}

/// Minimal CNOT count for a 2Q gate class (Shende–Bullock–Markov):
/// 0 for local gates, 1 for the CNOT class, 2 when `z = 0`, else 3.
pub fn min_cnots(w: &WeylCoord) -> usize {
    let eps = 1e-8;
    if w.l1_norm() < eps {
        0
    } else if w.approx_eq(&WeylCoord::cnot(), eps) {
        1
    } else if w.z.abs() < eps {
        2
    } else {
        3
    }
}

/// Synthesizes a 2Q unitary into the minimal number of CNOTs plus 1Q
/// layers, returning `(slots, cnot_count)`.
///
/// The construction is class-based and exact: a *core* circuit with the
/// target's Weyl coordinates is built per CNOT count (identity for 0, a
/// bare CNOT for 1, `CX·(Rx(2x)⊗Rz(2y))·CX` for the `z = 0` classes, and a
/// Vatan–Williams-style three-CNOT circuit whose middle angles are refined
/// numerically for the general case), then dressed with the exact 1Q
/// corrections from two canonical decompositions.
///
/// # Errors
///
/// Returns the achieved infidelity as `Err` if the input is not unitary or
/// the core search fails (not observed for unitary inputs).
pub fn synthesize_to_cnots(target: &CMat) -> Result<(SkeletonResult, usize), f64> {
    let w = weyl_coords(target).map_err(|_| 1.0f64)?;
    let k = min_cnots(&w);
    // Build core slots with the target's Weyl class.
    let core: Vec<(Vec<usize>, CMat)> = match k {
        0 => Vec::new(),
        1 => vec![(vec![0, 1], cnot())],
        2 => {
            let mid = reqisc_qmath::gates::rx(2.0 * w.x).kron(&reqisc_qmath::gates::rz(2.0 * w.y));
            vec![
                (vec![0, 1], cnot()),
                (vec![0], reqisc_qmath::gates::rx(2.0 * w.x)),
                (vec![1], reqisc_qmath::gates::rz(2.0 * w.y)),
                (vec![0, 1], cnot()),
            ]
            .into_iter()
            .collect::<Vec<_>>()
            .tap_check(&mid)
        }
        _ => three_cnot_core(&w).ok_or(1.0f64)?,
    };
    // Multiply out the core and dress it to equal the target exactly.
    let mut core_u = CMat::identity(4);
    for (qs, g) in &core {
        core_u = embed(g, qs, 2).mul_mat(&core_u);
    }
    let kt = reqisc_qmath::kak_decompose(target).map_err(|_| 1.0f64)?;
    let kc = reqisc_qmath::kak_decompose(&core_u).map_err(|_| 1.0f64)?;
    if kt.coords.dist(&kc.coords) > 1e-7 {
        return Err(kt.coords.dist(&kc.coords));
    }
    let phase = kt.phase * kc.phase.recip();
    let a1 = kt.a1.mul_mat(&kc.a1.adjoint()).scale(phase);
    let a2 = kt.a2.mul_mat(&kc.a2.adjoint());
    let b1 = kc.b1.adjoint().mul_mat(&kt.b1);
    let b2 = kc.b2.adjoint().mul_mat(&kt.b2);
    let mut slots: Vec<(Vec<usize>, CMat)> = vec![(vec![0], b1), (vec![1], b2)];
    slots.extend(core);
    slots.push((vec![0], a1));
    slots.push((vec![1], a2));
    let r = SkeletonResult { slots, infidelity: 0.0 };
    let u = r.unitary(2);
    let inf = (1.0 - target.hs_inner(&u).abs() / 4.0).max(0.0);
    if inf > 1e-8 {
        return Err(inf);
    }
    Ok((SkeletonResult { slots: r.slots, infidelity: inf }, k))
}

/// Helper trait used to keep the 2-CNOT construction readable while
/// asserting (in debug builds) that the flattened middle layer matches.
trait TapCheck {
    fn tap_check(self, mid: &CMat) -> Self;
}

impl TapCheck for Vec<(Vec<usize>, CMat)> {
    fn tap_check(self, mid: &CMat) -> Self {
        debug_assert!({
            let m = embed(&self[1].1, &self[1].0, 2).mul_mat(&embed(&self[2].1, &self[2].0, 2));
            m.approx_eq(mid, 1e-12)
        });
        self
    }
}

/// Builds a three-CNOT core with the given Weyl coordinates:
/// `CX₁₀ · (Rz(a)⊗Ry(b)) · CX₀₁ · (I⊗Ry(c)) · CX₁₀`, with the middle
/// angles found by Nelder–Mead from analytic initial guesses.
fn three_cnot_core(w: &WeylCoord) -> Option<Vec<(Vec<usize>, CMat)>> {
    use reqisc_qmath::gates::{ry, rz};
    let build = |a: f64, b: f64, c: f64| -> Vec<(Vec<usize>, CMat)> {
        vec![
            (vec![1, 0], cnot()),
            (vec![0], rz(a)),
            (vec![1], ry(b)),
            (vec![0, 1], cnot()),
            (vec![1], ry(c)),
            (vec![1, 0], cnot()),
        ]
    };
    let coords_of = |a: f64, b: f64, c: f64| -> Option<WeylCoord> {
        let mut u = CMat::identity(4);
        for (qs, g) in build(a, b, c) {
            u = embed(&g, &qs, 2).mul_mat(&u);
        }
        weyl_coords(&u).ok()
    };
    let objective = |p: &[f64; 3]| -> f64 {
        coords_of(p[0], p[1], p[2]).map_or(1e3, |c| c.dist(w))
    };
    // Analytic initial guesses for the standard conventions, plus sign
    // flips — the refiner snaps to the exact root from any nearby start.
    let mut inits = Vec::new();
    for s1 in [1.0f64, -1.0] {
        for s2 in [1.0f64, -1.0] {
            for s3 in [1.0f64, -1.0] {
                inits.push([
                    s1 * (2.0 * w.z - std::f64::consts::FRAC_PI_2),
                    s2 * (std::f64::consts::FRAC_PI_2 - 2.0 * w.x),
                    s3 * (2.0 * w.y - std::f64::consts::FRAC_PI_2),
                ]);
                inits.push([s1 * 2.0 * w.z, s2 * 2.0 * w.x, s3 * 2.0 * w.y]);
            }
        }
    }
    let mut best: Option<([f64; 3], f64)> = None;
    for init in inits {
        let (p, r) = nelder_mead_3d(&objective, init, 0.3, 400);
        if best.as_ref().is_none_or(|(_, br)| r < *br) {
            best = Some((p, r));
        }
        if best.as_ref().unwrap().1 < 1e-10 {
            break;
        }
    }
    let (p, r) = best?;
    if r > 1e-8 {
        return None;
    }
    Some(build(p[0], p[1], p[2]))
}

fn nelder_mead_3d(
    f: &dyn Fn(&[f64; 3]) -> f64,
    x0: [f64; 3],
    step: f64,
    max_iter: usize,
) -> ([f64; 3], f64) {
    let mut simplex: Vec<([f64; 3], f64)> = Vec::with_capacity(4);
    simplex.push((x0, f(&x0)));
    for i in 0..3 {
        let mut p = x0;
        p[i] += step;
        simplex.push((p, f(&p)));
    }
    for _ in 0..max_iter {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if simplex[0].1 < 1e-12 {
            break;
        }
        let worst = simplex[3];
        let mut cen = [0.0f64; 3];
        for s in simplex.iter().take(3) {
            for (c, v) in cen.iter_mut().zip(s.0) {
                *c += v / 3.0;
            }
        }
        let refl = [
            2.0 * cen[0] - worst.0[0],
            2.0 * cen[1] - worst.0[1],
            2.0 * cen[2] - worst.0[2],
        ];
        let fr = f(&refl);
        if fr < simplex[0].1 {
            let exp = [
                3.0 * cen[0] - 2.0 * worst.0[0],
                3.0 * cen[1] - 2.0 * worst.0[1],
                3.0 * cen[2] - 2.0 * worst.0[2],
            ];
            let fe = f(&exp);
            simplex[3] = if fe < fr { (exp, fe) } else { (refl, fr) };
        } else if fr < simplex[2].1 {
            simplex[3] = (refl, fr);
        } else {
            let con = [
                0.5 * (cen[0] + worst.0[0]),
                0.5 * (cen[1] + worst.0[1]),
                0.5 * (cen[2] + worst.0[2]),
            ];
            let fc = f(&con);
            if fc < worst.1 {
                simplex[3] = (con, fc);
            } else {
                let best = simplex[0].0;
                for s in simplex.iter_mut().skip(1) {
                    for i in 0..3 {
                        s.0[i] = best[i] + 0.5 * (s.0[i] - best[i]);
                    }
                    s.1 = f(&s.0);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    (simplex[0].0, simplex[0].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;
    use reqisc_qmath::haar_su4;

    #[test]
    fn min_cnot_classes() {
        assert_eq!(min_cnots(&WeylCoord::identity()), 0);
        assert_eq!(min_cnots(&WeylCoord::cnot()), 1);
        assert_eq!(min_cnots(&WeylCoord::sqisw()), 2);
        assert_eq!(min_cnots(&WeylCoord::b_gate()), 2);
        assert_eq!(min_cnots(&WeylCoord::swap()), 3);
        assert_eq!(min_cnots(&WeylCoord::ecp()), 3);
    }

    #[test]
    fn local_gate_needs_zero() {
        let t = qg::hadamard().kron(&qg::t_gate());
        let (r, k) = synthesize_to_cnots(&t).unwrap();
        assert_eq!(k, 0);
        assert!(r.infidelity < 1e-10);
    }

    #[test]
    fn cz_needs_one() {
        let (r, k) = synthesize_to_cnots(&qg::cz()).unwrap();
        assert_eq!(k, 1);
        assert!(r.infidelity < 1e-10);
    }

    #[test]
    fn b_gate_needs_two() {
        let (r, k) = synthesize_to_cnots(&qg::b_gate()).unwrap();
        assert_eq!(k, 2);
        assert!(r.infidelity < 1e-9);
    }

    #[test]
    fn swap_needs_three() {
        let (r, k) = synthesize_to_cnots(&qg::swap()).unwrap();
        assert_eq!(k, 3);
        assert!(r.infidelity < 1e-9);
    }

    #[test]
    fn haar_random_needs_three_and_reconstructs() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..3 {
            let t = haar_su4(&mut rng);
            let (r, k) = synthesize_to_cnots(&t).unwrap();
            assert_eq!(k, 3);
            let u = r.unitary(2);
            let inf = 1.0 - t.hs_inner(&u).abs() / 4.0;
            assert!(inf < 1e-9, "infidelity {inf}");
        }
    }
}
